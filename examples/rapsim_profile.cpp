// rapsim_profile — run any workload x scheme and print its telemetry.
//
// The one-stop observability tool: stands up a DMM with a telemetry sink,
// executes the requested workload under each requested scheme, and prints
//
//   * a per-bank request heatmap (one row per scheme) — shows *which*
//     banks serialize under RAW vs RAS vs RAP;
//   * the per-phase timeline (per-instruction dispatch windows and
//     congestion);
//   * a summary table: completion time, dispatches, pipeline slots,
//     congestion mean / p50 / p95 / p99 / max, warp stall and pipeline
//     idle slots.
//
//   $ rapsim_profile [--workload=transpose-crsw] [--schemes=raw,ras,rap]
//                    [--width=32] [--latency=5] [--seed=1] [--n=1024]
//                    [--format=ascii|json] [--chrome-trace=PATH]
//
// Workloads: transpose-crsw, transpose-srcw, transpose-drdw,
//            reduction-interleaved, reduction-sequential.
// --chrome-trace writes the LAST scheme's dispatch timeline in Trace
// Event Format for ui.perfetto.dev. --format=json emits a single
// document with the summary, the bank profile, and the full
// MetricsRegistry dump.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "telemetry/bank_profile.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_telemetry.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/reduction.hpp"

namespace {

using namespace rapsim;

std::optional<core::Scheme> parse_scheme(const std::string& name) {
  if (name == "raw") return core::Scheme::kRaw;
  if (name == "ras") return core::Scheme::kRas;
  if (name == "rap") return core::Scheme::kRap;
  if (name == "pad") return core::Scheme::kPad;
  return std::nullopt;
}

std::vector<core::Scheme> parse_schemes(const std::string& csv) {
  std::vector<core::Scheme> schemes;
  std::string item;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!item.empty()) {
        const auto scheme = parse_scheme(item);
        if (!scheme) {
          throw std::invalid_argument("unknown scheme: " + item +
                                      " (use raw, ras, rap, pad)");
        }
        schemes.push_back(*scheme);
        item.clear();
      }
    } else {
      item += csv[i];
    }
  }
  if (schemes.empty()) {
    throw std::invalid_argument("no schemes given (use raw, ras, rap, pad)");
  }
  return schemes;
}

struct SchemeResult {
  core::Scheme scheme;
  bool correct = false;
  dmm::RunStats stats;
  telemetry::RunTelemetry telemetry;
  dmm::Trace trace;
};

SchemeResult run_workload(const std::string& workload, core::Scheme scheme,
                          std::uint32_t width, std::uint32_t latency,
                          std::uint64_t seed, std::uint64_t n) {
  SchemeResult result;
  result.scheme = scheme;

  const auto transpose_algorithm =
      [&]() -> std::optional<transpose::Algorithm> {
    if (workload == "transpose-crsw") return transpose::Algorithm::kCrsw;
    if (workload == "transpose-srcw") return transpose::Algorithm::kSrcw;
    if (workload == "transpose-drdw") return transpose::Algorithm::kDrdw;
    return std::nullopt;
  }();

  if (transpose_algorithm) {
    const transpose::MatrixPair layout{width};
    const auto map = core::make_matrix_map(scheme, width, layout.rows(), seed);
    dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);
    machine.set_telemetry(&result.telemetry);
    const auto report = transpose::run_transpose_on(*transpose_algorithm,
                                                    machine, layout,
                                                    &result.trace);
    result.correct = report.correct;
    result.stats = report.stats;
    return result;
  }

  const auto reduction_variant =
      [&]() -> std::optional<workloads::ReductionVariant> {
    if (workload == "reduction-interleaved") {
      return workloads::ReductionVariant::kInterleaved;
    }
    if (workload == "reduction-sequential") {
      return workloads::ReductionVariant::kSequential;
    }
    return std::nullopt;
  }();

  if (reduction_variant) {
    const auto report =
        workloads::run_reduction(*reduction_variant, scheme, n, width, latency,
                                 seed, &result.trace, &result.telemetry);
    result.correct = report.correct;
    result.stats = report.stats;
    return result;
  }

  throw std::invalid_argument(
      "unknown workload: " + workload +
      " (use transpose-{crsw,srcw,drdw} or reduction-{interleaved,"
      "sequential})");
}

void emit_json(const std::string& workload, std::uint32_t width,
               std::uint32_t latency, std::uint64_t seed,
               const std::vector<SchemeResult>& results) {
  telemetry::MetricsRegistry registry;
  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("schema_version", 1);
  json.kv("experiment", "rapsim_profile");
  json.key("config").begin_object();
  json.kv("workload", std::string_view(workload));
  json.kv("width", static_cast<std::uint64_t>(width));
  json.kv("latency", static_cast<std::uint64_t>(latency));
  json.kv("seed", seed);
  json.end_object();

  json.key("results").begin_array();
  for (const auto& r : results) {
    const auto& t = r.telemetry;
    json.begin_object();
    json.kv("scheme", core::scheme_name(r.scheme));
    json.kv("correct", r.correct);
    json.kv("time", r.stats.time);
    json.kv("dispatches", r.stats.dispatches);
    json.kv("pipeline_slots", r.stats.total_stages);
    json.key("congestion").begin_object();
    json.kv("mean", r.stats.avg_congestion);
    json.kv("max", static_cast<std::uint64_t>(r.stats.max_congestion));
    json.kv("p50", t.congestion.percentile(50.0));
    json.kv("p95", t.congestion.percentile(95.0));
    json.kv("p99", t.congestion.percentile(99.0));
    json.end_object();
    json.kv("warp_stall_slots", t.warp_stall_slots);
    json.kv("pipeline_idle_slots", t.pipeline_idle_slots);
    json.key("bank_requests").begin_array();
    for (const std::uint64_t c : t.bank_requests) json.value(c);
    json.end_array();
    json.key("bank_peak").begin_array();
    for (const std::uint64_t c : t.bank_peak) json.value(c);
    json.end_array();
    json.end_object();

    t.flush_into(registry, {{"workload", workload},
                            {"scheme", core::scheme_name(r.scheme)},
                            {"width", std::to_string(width)},
                            {"seed", std::to_string(seed)}});
  }
  json.end_array();

  json.key("metrics").raw_value(registry.to_json());
  json.end_object();
  std::printf("%s\n", json.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string workload =
      args.get_string("workload", "transpose-crsw");
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 5));
  const std::uint64_t seed = args.get_uint("seed", 1);
  const std::uint64_t n = args.get_uint("n", 1024);

  std::vector<core::Scheme> schemes;
  std::vector<SchemeResult> results;
  try {
    schemes = parse_schemes(args.get_string("schemes", "raw,ras,rap"));
    for (const core::Scheme scheme : schemes) {
      results.push_back(
          run_workload(workload, scheme, width, latency, seed, n));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapsim_profile: %s\n", e.what());
    return 1;
  }

  if (const auto path = args.get("chrome-trace"); path && !results.empty()) {
    std::ofstream out(*path);
    if (!out) {
      std::fprintf(stderr, "rapsim_profile: cannot write %s\n", path->c_str());
      return 1;
    }
    out << telemetry::to_chrome_trace(results.back().trace) << '\n';
  }

  if (args.wants_json()) {
    emit_json(workload, width, latency, seed, results);
    return 0;
  }

  std::printf("== rapsim_profile: %s, w = %u, l = %u, seed = %llu ==\n\n",
              workload.c_str(), width, latency,
              static_cast<unsigned long long>(seed));

  // Totals are uniform for bijective workloads; the peak map is the one
  // that shows which banks serialize (a single dispatch's worst queue).
  telemetry::BankProfile totals(width);
  telemetry::BankProfile peaks(width);
  for (const auto& r : results) {
    totals.add_row(core::scheme_name(r.scheme), r.telemetry.bank_requests);
    peaks.add_row(core::scheme_name(r.scheme), r.telemetry.bank_peak);
  }
  std::printf("-- per-bank unique requests (total) --\n%s\n",
              totals.render_heatmap().c_str());
  std::printf("-- per-bank serialization (peak requests per dispatch) --\n%s\n",
              peaks.render_heatmap().c_str());

  util::TextTable table;
  table.row()
      .add("scheme")
      .add("ok")
      .add("time")
      .add("dispatches")
      .add("slots")
      .add("cong avg")
      .add("p50")
      .add("p95")
      .add("p99")
      .add("max")
      .add("stall")
      .add("idle");
  for (const auto& r : results) {
    const auto& t = r.telemetry;
    table.row()
        .add(core::scheme_name(r.scheme))
        .add(r.correct ? "yes" : "NO")
        .add(r.stats.time)
        .add(r.stats.dispatches)
        .add(r.stats.total_stages)
        .add(r.stats.avg_congestion, 2)
        .add(t.congestion.percentile(50.0))
        .add(t.congestion.percentile(95.0))
        .add(t.congestion.percentile(99.0))
        .add(static_cast<std::uint64_t>(r.stats.max_congestion))
        .add(t.warp_stall_slots)
        .add(t.pipeline_idle_slots);
  }
  table.print(std::cout, args.get_table_style());

  std::printf("\n-- phase timeline (%s) --\n%s",
              core::scheme_name(results.back().scheme),
              telemetry::render_phase_timeline(results.back().trace).c_str());

  bool all_correct = true;
  for (const auto& r : results) all_correct = all_correct && r.correct;
  return all_correct ? 0 : 1;
}
