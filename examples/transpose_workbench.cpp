// Transpose workbench: full algorithm x scheme sweep with timing.
//
// Runs all three transpose algorithms (CRSW, SRCW, DRDW) under all three
// mapping implementations (RAW, RAS, RAP) for a configurable width and
// latency, averaging the randomized schemes over many seeds, and prints a
// Table III-shaped report including the modeled GPU time.
//
//   $ transpose_workbench [--width=32] [--latency=1] [--seeds=100]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "gpu/sm_model.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const std::uint64_t seeds = args.get_uint("seeds", 100);
  const auto params = gpu::SmTimingParams::titan_calibrated();

  std::printf("== transpose workbench: w = %u, l = %u, %llu seeds ==\n\n",
              width, latency, static_cast<unsigned long long>(seeds));

  util::TextTable table;
  table.row()
      .add("algorithm")
      .add("scheme")
      .add("read cong")
      .add("write cong")
      .add("DMM time")
      .add("model ns")
      .add("correct");

  for (const auto alg : {transpose::Algorithm::kCrsw,
                         transpose::Algorithm::kSrcw,
                         transpose::Algorithm::kDrdw}) {
    for (const core::Scheme scheme : core::table2_schemes()) {
      double read = 0, write = 0, time = 0, ns = 0;
      bool all_correct = true;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto r =
            transpose::run_transpose(alg, scheme, width, latency, seed);
        all_correct &= r.correct;
        read += r.read.avg;
        write += r.write.avg;
        time += static_cast<double>(r.stats.time);
        ns += gpu::estimate_time_ns(r.stats.total_stages, r.stats.dispatches,
                                    scheme, params);
      }
      const auto n = static_cast<double>(seeds);
      table.row()
          .add(transpose::algorithm_name(alg))
          .add(core::scheme_name(scheme))
          .add(read / n, 2)
          .add(write / n, 2)
          .add(time / n, 1)
          .add(ns / n, 1)
          .add(all_correct ? "yes" : "NO");
    }
  }
  table.print(std::cout, args.get_table_style());
  std::printf(
      "\nDMM time is in model time units; 'model ns' applies the calibrated\n"
      "GTX-TITAN-shaped SM timing model (see src/gpu/sm_model.hpp).\n");
  return 0;
}
