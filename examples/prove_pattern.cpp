// Prove a pattern: classify a warp access stream and print the analyzer's
// congestion certificate for every scheme — the static companion to
// conflict_probe (which simulates). Feed it explicit logical addresses or
// a named pattern; it reports the affine form it inferred, then for each
// scheme the proof rule, the certified bound, and the claim.
//
//   $ prove_pattern --addrs=0,32,64,96 --width=32
//   $ prove_pattern --pattern=column --width=32
//   $ prove_pattern --pattern=flat --stride=6 --width=16 --format=json

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/affine.hpp"
#include "analyze/certificate.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"

namespace {

using namespace rapsim;

std::vector<std::uint64_t> parse_addrs(const std::string& spec) {
  std::vector<std::uint64_t> addrs;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) addrs.push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  return addrs;
}

std::vector<std::uint64_t> named_pattern(const std::string& name,
                                         std::uint32_t w,
                                         std::uint64_t stride) {
  std::vector<std::uint64_t> trace;
  for (std::uint32_t t = 0; t < w; ++t) {
    if (name == "contiguous") {
      trace.push_back(t);
    } else if (name == "column") {
      trace.push_back(static_cast<std::uint64_t>(t) * w);
    } else if (name == "diagonal") {
      trace.push_back(static_cast<std::uint64_t>(t) * w + t % w);
    } else if (name == "flat") {
      trace.push_back(stride * t);
    } else if (name == "broadcast") {
      trace.push_back(0);
    } else {
      std::fprintf(stderr,
                   "unknown pattern '%s' (contiguous, column, diagonal, "
                   "flat, broadcast)\n",
                   name.c_str());
      std::exit(1);
    }
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t stride = args.get_uint("stride", 1);
  const bool json = args.get_string("format", "text") == "json";

  std::vector<std::uint64_t> trace;
  if (const auto spec = args.get("addrs")) {
    trace = parse_addrs(*spec);
    if (trace.empty()) {
      std::fprintf(stderr, "--addrs parsed to nothing\n");
      return 1;
    }
  } else {
    trace = named_pattern(args.get_string("pattern", "column"), width, stride);
  }

  // Size the logical array to cover the trace with whole rows.
  std::uint64_t max_addr = 0;
  for (const std::uint64_t a : trace) max_addr = std::max(max_addr, a);
  const std::uint64_t rows =
      std::max<std::uint64_t>(args.get_uint("rows", 0), max_addr / width + 1);
  const std::uint64_t size = rows * width;

  const auto cls = analyze::classify_warp(trace, width, size);
  if (!json) {
    std::printf("%zu addresses on a %llu x %u array\n", trace.size(),
                static_cast<unsigned long long>(rows), width);
    std::printf("inferred form: %s\n\n", cls.describe().c_str());
  }

  for (const core::Scheme scheme :
       {core::Scheme::kRaw, core::Scheme::kPad, core::Scheme::kRas,
        core::Scheme::kRap}) {
    const auto cert = analyze::prove_trace(trace, width, size, scheme);
    if (json) {
      std::printf("%s\n", cert.to_json().c_str());
    } else {
      std::printf("%-3s congestion %s %g   [%s]\n",
                  core::scheme_name(scheme), cert.exact() ? "=" : "<=",
                  cert.bound, cert.rule.c_str());
      std::printf("    %s\n", cert.claim.c_str());
    }
  }
  if (!json) {
    std::printf(
        "\nExact bounds (=) hold for every draw of the scheme's randomness;\n"
        "<= bounds are proven envelopes on the expected congestion.\n");
  }
  return 0;
}
