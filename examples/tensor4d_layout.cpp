// Choosing a RAP extension for 4-D data (Section VII in practice).
//
// A developer storing a w x w x w x w tensor in shared memory must pick a
// layout. This example sweeps the paper's five RAP extensions (plus RAW
// and RAS) over the access directions a stencil/convolution workload
// would use, reports expected congestion and the random-word budget, and
// prints the paper's recommendation logic: 3P is the sweet spot — all
// strides conflict-free, malicious-resistant, only 3w random words.
//
//   $ tensor4d_layout [--width=16] [--trials=3000] [--seed=7]

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 16));
  const std::uint64_t trials = args.get_uint("trials", 3000);
  const std::uint64_t seed = args.get_uint("seed", 7);

  std::printf("== 4-D layout advisor: %u^4 tensor, %llu trials/cell ==\n\n",
              width, static_cast<unsigned long long>(trials));

  util::TextTable table;
  table.row().add("access");
  for (const core::Scheme s : core::table4_schemes()) {
    table.add(core::scheme_name(s));
  }

  for (const access::Pattern4d pattern : access::table4_patterns()) {
    table.row().add(access::pattern4d_name(pattern));
    for (const core::Scheme scheme : core::table4_schemes()) {
      const auto est = access::estimate_congestion_4d(scheme, pattern, width,
                                                      trials, seed);
      table.add(est.mean, 2);
    }
  }

  table.row().add("random words");
  for (const core::Scheme scheme : core::table4_schemes()) {
    table.add(core::make_tensor4d_map(scheme, width, seed)->random_words());
  }

  table.print(std::cout, args.get_table_style());
  std::printf(
      "\nReading the table the way Section VII does:\n"
      "  * 1P leaves stride2/stride3 fully congested (shift ignores i, j).\n"
      "  * R1P fixes all strides but its symmetric shift admits the\n"
      "    index-permutation attack (see the Malicious row).\n"
      "  * w2P and 1P+w2R are robust but spend w^3 / w^2 random words.\n"
      "  * 3P: every stride conflict-free, malicious ~= random, 3w words —\n"
      "    the paper's recommended extension.\n");
  return 0;
}
