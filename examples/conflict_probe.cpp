// Conflict probe: analyze a user-supplied access pattern.
//
// The paper's pitch is that a CUDA developer should not need to analyze
// bank conflicts by hand — RAP absorbs them. This tool demonstrates the
// "before" workflow: feed it a warp access pattern (a comma-separated list
// of `row:col` cells, or one of the named patterns) and it reports the
// congestion under RAW, RAS and RAP, plus the per-bank request histogram
// under RAW so the conflict is visible.
//
//   $ conflict_probe --cells=0:0,1:0,2:0,3:0 --width=4
//   $ conflict_probe --pattern=stride --width=32
//   $ conflict_probe --pattern=random --width=32 --trials=10000

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "access/advisor.hpp"
#include "access/montecarlo.hpp"
#include "access/pattern2d.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"

namespace {

using namespace rapsim;

std::vector<std::pair<std::uint64_t, std::uint64_t>> parse_cells(
    const std::string& spec) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cells;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) continue;
    cells.emplace_back(std::strtoull(item.substr(0, colon).c_str(), nullptr, 10),
                       std::strtoull(item.substr(colon + 1).c_str(), nullptr, 10));
  }
  return cells;
}

access::Pattern2d parse_pattern(const std::string& name) {
  if (name == "contiguous") return access::Pattern2d::kContiguous;
  if (name == "stride") return access::Pattern2d::kStride;
  if (name == "diagonal") return access::Pattern2d::kDiagonal;
  if (name == "random") return access::Pattern2d::kRandom;
  if (name == "malicious") return access::Pattern2d::kMalicious;
  std::fprintf(stderr, "unknown pattern '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t seed = args.get_uint("seed", 1);

  if (const auto cells_spec = args.get("cells")) {
    const auto cells = parse_cells(*cells_spec);
    if (cells.empty()) {
      std::fprintf(stderr, "--cells parsed to nothing\n");
      return 1;
    }
    std::uint64_t max_row = 0;
    for (const auto& [i, j] : cells) max_row = std::max(max_row, i);

    std::printf("probing %zu explicit cells on a %llux%u matrix\n\n",
                cells.size(), static_cast<unsigned long long>(max_row + 1),
                width);
    for (const core::Scheme scheme : core::table2_schemes()) {
      const auto map =
          core::make_matrix_map(scheme, width, max_row + 1, seed);
      std::vector<std::uint64_t> addrs;
      for (const auto& [i, j] : cells) addrs.push_back(map->index(i, j % width));
      const auto r = core::congestion_of_logical(addrs, *map);
      std::printf("%-3s: congestion %u\n", map->name().c_str(), r.congestion);
      if (scheme == core::Scheme::kRaw) {
        std::printf("     per-bank requests:");
        for (std::uint32_t b = 0; b < width; ++b) {
          if (r.per_bank[b]) std::printf(" bank%u=%u", b, r.per_bank[b]);
        }
        std::printf("\n");
      }
    }

    // Layout advisor: treat the cells as one warp trace.
    access::WarpTrace trace;
    const auto raw_map =
        core::make_matrix_map(core::Scheme::kRaw, width, max_row + 1, seed);
    for (const auto& [i, j] : cells) trace.push_back(raw_map->index(i, j % width));
    const auto advice =
        access::evaluate_schemes({trace}, width, max_row + 1);
    std::printf("\nadvisor: %s\n", advice.rationale.c_str());
    return 0;
  }

  const auto pattern =
      parse_pattern(args.get_string("pattern", "stride"));
  const std::uint64_t trials = args.get_uint("trials", 10000);
  std::printf("probing pattern '%s' on a %ux%u matrix, %llu trials\n\n",
              access::pattern2d_name(pattern), width, width,
              static_cast<unsigned long long>(trials));
  for (const core::Scheme scheme : core::table2_schemes()) {
    const auto est =
        access::estimate_congestion_2d(scheme, pattern, width, trials, seed);
    std::printf("%-3s: E[congestion] = %.3f  (+/- %.3f, min %u, max %u)\n",
                core::scheme_name(scheme), est.mean, est.ci95, est.min,
                est.max);
  }
  std::printf(
      "\nIf RAW shows congestion >> 1 here, switching the layout to RAP\n"
      "removes the serialization without changing the kernel.\n");
  return 0;
}
