// Quickstart: the RAP technique in five minutes.
//
// Builds a 32 x 32 matrix under the conventional (RAW) layout and under
// RAP, sends the classic worst-case access — a column (stride) read — at
// both, and prints the congestion and simulated DMM time. Then runs the
// naive CRSW transpose both ways to show the ~10x speedup the paper
// reports, with zero algorithmic cleverness required from the developer.
//
//   $ quickstart [--width=32] [--latency=1] [--seed=1]

#include <cstdio>

#include "access/pattern2d.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const std::uint64_t seed = args.get_uint("seed", 1);

  std::printf("== rapsim quickstart (w = %u, l = %u) ==\n\n", width, latency);

  // 1. One warp reads a column of a w x w matrix.
  util::Pcg32 rng(seed);
  for (const core::Scheme scheme : core::table2_schemes()) {
    const auto map = core::make_matrix_map(scheme, width, width, seed);
    const auto column =
        access::warp_addresses_2d(access::Pattern2d::kStride, *map, 0, rng);
    const auto result = core::congestion_of_logical(column, *map);
    std::printf("stride (column) read under %-3s: congestion %2u  "
                "(requests serialize into %u pipeline slots)\n",
                map->name().c_str(), result.congestion, result.congestion);
  }

  // 2. The naive CRSW transpose, as a developer would write it.
  std::printf("\nnaive CRSW transpose of a %ux%u matrix on the DMM:\n", width,
              width);
  for (const core::Scheme scheme : core::table2_schemes()) {
    const auto report = transpose::run_transpose(
        transpose::Algorithm::kCrsw, scheme, width, latency, seed);
    std::printf(
        "  %-3s: time %5llu units  read congestion %5.2f  write congestion "
        "%5.2f  %s\n",
        core::scheme_name(scheme),
        static_cast<unsigned long long>(report.stats.time), report.read.avg,
        report.write.avg, report.correct ? "correct" : "WRONG RESULT");
  }

  std::printf(
      "\nRAP makes the naive transpose conflict-free without touching the\n"
      "algorithm: the mapping, not the code, absorbs the bank conflicts.\n");
  return 0;
}
