// Reduction clinic: diagnosing and fixing a slow reduction kernel.
//
// A walk-through in the shape of a performance-debugging session: run the
// interleaved-addressing reduction (the one most people write first),
// watch its per-step congestion explode under RAW, then show the three
// fixes — rewrite the algorithm (sequential addressing), pad the array,
// or switch the layout to RAP — and what each costs.
//
//   $ reduction_clinic [--n=1024] [--width=32] [--seed=1]

#include <cstdio>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "dmm/trace.hpp"
#include "util/cli.hpp"
#include "workloads/reduction.hpp"

namespace {

using namespace rapsim;

void show_step_congestion(const char* label, workloads::ReductionVariant v,
                          core::Scheme scheme, std::uint64_t n,
                          std::uint32_t width, std::uint64_t seed) {
  const auto map = core::make_matrix_map(scheme, width, n / width, seed);
  dmm::Dmm machine(dmm::DmmConfig{width, 1}, *map);
  for (std::uint64_t i = 0; i < n; ++i) machine.store(i, i + 1);
  dmm::Trace trace;
  const auto stats =
      machine.run(workloads::build_reduction_kernel(v, n, width), &trace);

  std::printf("%s: total time %llu, per-step worst congestion:", label,
              static_cast<unsigned long long>(stats.time));
  // Three memory instructions per step (load/add/store) + barrier; report
  // the max congestion seen per step.
  std::uint32_t step = 0;
  std::uint32_t step_max = 0;
  std::uint32_t last_instr = 0;
  for (const auto& d : trace.dispatches) {
    if (d.instruction / 4 != last_instr / 4 && d.instruction > last_instr) {
      std::printf(" %u", step_max);
      step_max = 0;
      ++step;
    }
    last_instr = std::max(last_instr, d.instruction);
    step_max = std::max(step_max, d.stages);
  }
  std::printf(" %u\n", step_max);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::uint64_t n = args.get_uint("n", 1024);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t seed = args.get_uint("seed", 1);

  std::printf("== reduction clinic: summing %llu values in shared memory "
              "(w = %u) ==\n\n",
              static_cast<unsigned long long>(n), width);

  std::printf("the symptom —\n");
  show_step_congestion("  interleaved + RAW",
                       workloads::ReductionVariant::kInterleaved,
                       core::Scheme::kRaw, n, width, seed);

  std::printf("\nthe three fixes —\n");
  show_step_congestion("  1. rewrite: sequential + RAW",
                       workloads::ReductionVariant::kSequential,
                       core::Scheme::kRaw, n, width, seed);
  show_step_congestion("  2. pad the array: interleaved + PAD",
                       workloads::ReductionVariant::kInterleaved,
                       core::Scheme::kPad, n, width, seed);
  show_step_congestion("  3. randomize the layout: interleaved + RAP",
                       workloads::ReductionVariant::kInterleaved,
                       core::Scheme::kRap, n, width, seed);

  std::printf(
      "\ncosts: (1) needs the algorithmic insight; (2) is free here but\n"
      "fragile — only fixes strides aligned with the skew, and a real\n"
      "padded layout burns shared memory; (3) costs ~%u random words and a\n"
      "few ALU ops per access, fixes every pattern, and needs no insight\n"
      "at all — the paper's argument, played out on a second workload.\n",
      width);

  // Sanity: all four produce the right sum.
  for (const auto& [variant, scheme] :
       {std::pair{workloads::ReductionVariant::kInterleaved,
                  core::Scheme::kRaw},
        std::pair{workloads::ReductionVariant::kSequential,
                  core::Scheme::kRaw},
        std::pair{workloads::ReductionVariant::kInterleaved,
                  core::Scheme::kPad},
        std::pair{workloads::ReductionVariant::kInterleaved,
                  core::Scheme::kRap}}) {
    const auto report =
        workloads::run_reduction(variant, scheme, n, width, 1, seed);
    if (!report.correct) {
      std::printf("!! WRONG SUM under %s\n", core::scheme_name(scheme));
      return 1;
    }
  }
  std::printf("\nall four variants verified: sum = n(n+1)/2 = %llu\n",
              static_cast<unsigned long long>(n * (n + 1) / 2));
  return 0;
}
