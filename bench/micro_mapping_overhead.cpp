// google-benchmark micro benchmarks: the host-side cost of the address
// computations each scheme adds, plus simulator throughput.
//
// These measurements back the SM timing model's t_addr ordering
// (RAW < RAP < RAS): RAP's shift is a packed-register extract + add +
// mask; RAS needs a table lookup per row (which on the GPU spills to
// shared memory for large row counts). Absolute host numbers are not GPU
// numbers — only the ordering and rough ratios carry over.
//
// With --bench-json=PATH the binary bypasses google-benchmark and runs
// the same kernels under the perfbench warmup/repeat protocol (--quick /
// --bench-warmup / --bench-repeats), writing a BENCH document whose
// translate_* metrics carry the trajectory numbers (ns per translate).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "gpu/register_pack.hpp"
#include "perfbench/perfbench.hpp"
#include "telemetry/run_telemetry.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace rapsim;

void BM_TranslateRaw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRaw, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRaw)->Arg(32)->Arg(256);

void BM_TranslateRas(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRas, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRas)->Arg(32)->Arg(256);

void BM_TranslateRap(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRap, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRap)->Arg(32)->Arg(256);

// The inner RAP shift exactly as the CUDA kernel computes it: packed
// extract + add + mask (Figure 7's expression).
void BM_PackedShiftExtract(benchmark::State& state) {
  util::Pcg32 rng(1);
  const auto perm = core::Permutation::random(32, rng);
  std::vector<std::uint32_t> shifts(perm.image().begin(), perm.image().end());
  const gpu::PackedShifts packed(shifts, 32);
  std::uint32_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((j + packed.get(i)) & 0x1f);
    i = (i + 1) & 31;
    j = (j + 7) & 31;
  }
}
BENCHMARK(BM_PackedShiftExtract);

void BM_PermutationDraw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  util::Pcg32 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Permutation::random(w, rng));
  }
}
BENCHMARK(BM_PermutationDraw)->Arg(32)->Arg(256);

void BM_CongestionOfWarp(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRap, w, w, 1);
  util::Pcg32 rng(3);
  std::vector<std::uint64_t> addrs(w);
  for (auto& a : addrs) a = rng.bounded(w * w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::congestion_value(addrs, *map));
  }
}
BENCHMARK(BM_CongestionOfWarp)->Arg(32)->Arg(256);

void BM_DmmTransposeRun(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose::run_transpose(
        transpose::Algorithm::kCrsw, core::Scheme::kRap, w, 1, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * w *
                          w);
}
BENCHMARK(BM_DmmTransposeRun)->Arg(8)->Arg(32);

// Telemetry overhead check: the same pre-constructed machine run with and
// without a RunTelemetry sink (second arg 0 = null sink, 1 = instrumented).
// The null-sink run takes one predictable branch per event and must stay
// within noise of the pre-telemetry machine; the instrumented run should
// cost only a few percent more.
void BM_DmmTransposeRunTelemetry(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const bool instrumented = state.range(1) != 0;
  const transpose::MatrixPair layout{w};
  const auto map =
      core::make_matrix_map(core::Scheme::kRap, w, layout.rows(), 1);
  dmm::Dmm machine(dmm::DmmConfig{w, 1}, *map);
  telemetry::RunTelemetry sink;
  machine.set_telemetry(instrumented ? &sink : nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose::run_transpose_on(
        transpose::Algorithm::kCrsw, machine, layout));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * w *
                          w);
}
BENCHMARK(BM_DmmTransposeRunTelemetry)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// -------------------------------------------------- perfbench trajectory

/// ns per translate() for one scheme at width w, over `iters` calls per
/// timed sample.
perfbench::Aggregate time_translate(const perfbench::Protocol& protocol,
                                    core::Scheme scheme, std::uint32_t w,
                                    std::uint64_t iters) {
  const auto map = core::make_matrix_map(scheme, w, w, 1);
  std::uint64_t a = 0;
  return perfbench::run_timed(protocol, iters, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      benchmark::DoNotOptimize(map->translate(a));
      a = (a + 1) % map->size();
    }
  });
}

int emit_bench(const std::string& path, const util::CliArgs& args) {
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);
  const std::uint64_t iters = args.get_uint("iters", 1u << 20);

  perfbench::BenchReport report("micro_mapping_overhead");
  report.set_config("iters", iters);
  for (const core::Scheme scheme :
       {core::Scheme::kRaw, core::Scheme::kRas, core::Scheme::kRap}) {
    for (const std::uint32_t w : {32u, 256u}) {
      report.add(std::string("translate_") + core::scheme_name(scheme) +
                     "_w" + std::to_string(w),
                 time_translate(protocol, scheme, w, iters));
    }
  }

  {
    util::Pcg32 rng(1);
    const auto perm = core::Permutation::random(32, rng);
    std::vector<std::uint32_t> shifts(perm.image().begin(),
                                      perm.image().end());
    const gpu::PackedShifts packed(shifts, 32);
    std::uint32_t i = 0, j = 0;
    report.add("packed_shift_extract",
               perfbench::run_timed(protocol, iters, [&] {
                 for (std::uint64_t k = 0; k < iters; ++k) {
                   benchmark::DoNotOptimize((j + packed.get(i)) & 0x1f);
                   i = (i + 1) & 31;
                   j = (j + 7) & 31;
                 }
               }));
  }

  {
    const std::uint64_t draws = iters >> 8;
    util::Pcg32 rng(9);
    report.add("permutation_draw_w32",
               perfbench::run_timed(protocol, draws, [&] {
                 for (std::uint64_t k = 0; k < draws; ++k) {
                   benchmark::DoNotOptimize(core::Permutation::random(32, rng));
                 }
               }));
  }

  {
    const std::uint32_t w = 32;
    const std::uint64_t warps = iters >> 6;
    const auto map = core::make_matrix_map(core::Scheme::kRap, w, w, 1);
    util::Pcg32 rng(3);
    std::vector<std::uint64_t> addrs(w);
    for (auto& a : addrs) a = rng.bounded(w * w);
    report.add("congestion_of_warp_w32",
               perfbench::run_timed(protocol, warps, [&] {
                 for (std::uint64_t k = 0; k < warps; ++k) {
                   benchmark::DoNotOptimize(core::congestion_value(addrs, *map));
                 }
               }));
  }

  perfbench::write_bench_json(path, report);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (const auto bench_path = args.get("bench-json")) {
    return emit_bench(*bench_path, args);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
