// google-benchmark micro benchmarks: the host-side cost of the address
// computations each scheme adds, plus simulator throughput.
//
// These measurements back the SM timing model's t_addr ordering
// (RAW < RAP < RAS): RAP's shift is a packed-register extract + add +
// mask; RAS needs a table lookup per row (which on the GPU spills to
// shared memory for large row counts). Absolute host numbers are not GPU
// numbers — only the ordering and rough ratios carry over.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "gpu/register_pack.hpp"
#include "telemetry/run_telemetry.hpp"
#include "transpose/runner.hpp"
#include "util/rng.hpp"

namespace {

using namespace rapsim;

void BM_TranslateRaw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRaw, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRaw)->Arg(32)->Arg(256);

void BM_TranslateRas(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRas, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRas)->Arg(32)->Arg(256);

void BM_TranslateRap(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRap, w, w, 1);
  std::uint64_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->translate(a));
    a = (a + 1) % map->size();
  }
}
BENCHMARK(BM_TranslateRap)->Arg(32)->Arg(256);

// The inner RAP shift exactly as the CUDA kernel computes it: packed
// extract + add + mask (Figure 7's expression).
void BM_PackedShiftExtract(benchmark::State& state) {
  util::Pcg32 rng(1);
  const auto perm = core::Permutation::random(32, rng);
  std::vector<std::uint32_t> shifts(perm.image().begin(), perm.image().end());
  const gpu::PackedShifts packed(shifts, 32);
  std::uint32_t i = 0, j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((j + packed.get(i)) & 0x1f);
    i = (i + 1) & 31;
    j = (j + 7) & 31;
  }
}
BENCHMARK(BM_PackedShiftExtract);

void BM_PermutationDraw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  util::Pcg32 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Permutation::random(w, rng));
  }
}
BENCHMARK(BM_PermutationDraw)->Arg(32)->Arg(256);

void BM_CongestionOfWarp(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const auto map = core::make_matrix_map(core::Scheme::kRap, w, w, 1);
  util::Pcg32 rng(3);
  std::vector<std::uint64_t> addrs(w);
  for (auto& a : addrs) a = rng.bounded(w * w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::congestion_value(addrs, *map));
  }
}
BENCHMARK(BM_CongestionOfWarp)->Arg(32)->Arg(256);

void BM_DmmTransposeRun(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose::run_transpose(
        transpose::Algorithm::kCrsw, core::Scheme::kRap, w, 1, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * w *
                          w);
}
BENCHMARK(BM_DmmTransposeRun)->Arg(8)->Arg(32);

// Telemetry overhead check: the same pre-constructed machine run with and
// without a RunTelemetry sink (second arg 0 = null sink, 1 = instrumented).
// The null-sink run takes one predictable branch per event and must stay
// within noise of the pre-telemetry machine; the instrumented run should
// cost only a few percent more.
void BM_DmmTransposeRunTelemetry(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  const bool instrumented = state.range(1) != 0;
  const transpose::MatrixPair layout{w};
  const auto map =
      core::make_matrix_map(core::Scheme::kRap, w, layout.rows(), 1);
  dmm::Dmm machine(dmm::DmmConfig{w, 1}, *map);
  telemetry::RunTelemetry sink;
  machine.set_telemetry(instrumented ? &sink : nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose::run_transpose_on(
        transpose::Algorithm::kCrsw, machine, layout));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * w *
                          w);
}
BENCHMARK(BM_DmmTransposeRunTelemetry)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

}  // namespace

BENCHMARK_MAIN();
