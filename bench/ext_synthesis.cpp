// Extension experiment: throughput of the layout synthesizer
// (analyze/synth.hpp) over the built-in kernel catalog.
//
// Two phases, both driven by the shared warmup/repeat protocol:
//
//   synthesize  full family search per kernel (closure build, candidate
//               generation, evaluation, greedy repair, witness) —
//               ops_per_sec is KERNELS per second
//   certify     the auditor's half alone: certify_mapping of each
//               kernel's winning mapping — ops_per_sec is CERTIFICATES
//               per second (the cost a CI gate or the serve cache-miss
//               path pays to re-check a stored spec)
//
// The per-kernel table reports the searched bound, witness kind, class
// and candidate counts, so a throughput regression can be traced to the
// kernel whose search grew.
//
//   $ ext_synthesis [--width=32] [--draws=48] [--quick]
//                   [--bench-warmup=N] [--bench-repeats=N]
//                   [--format=ascii|markdown|csv] [--bench-json=PATH]
//
// Part of tools/run_all.sh ("synthesis" section); the committed baseline
// is BENCH_synth.json at the repo root. The bench doubles as a soundness
// check: it exits 1 if any audit disagrees with its search bound, so the
// ctest smoke entry (synthesis_bench_sound) also guards correctness.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/synth.hpp"
#include "builtin_kernels.hpp"
#include "perfbench/perfbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  analyze::SynthesisOptions options;
  options.random_draws = args.get_uint("draws", 48);
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);

  const std::vector<analyze::KernelDesc> catalog =
      tools::builtin_kernels(width);

  // Reference pass: one result per kernel, reused for the table, the
  // certify phase, and the soundness check.
  std::vector<analyze::SynthesisResult> results;
  results.reserve(catalog.size());
  for (const analyze::KernelDesc& kernel : catalog) {
    results.push_back(analyze::synthesize_mapping(kernel, options));
  }
  std::uint64_t audit_failures = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const analyze::CongestionCertificate audit =
        analyze::certify_mapping(catalog[i], results[i].mapping);
    if (audit.bound != results[i].certificate.bound) {
      std::cerr << "ext_synthesis: audit disagrees on " << catalog[i].name
                << ": searched " << results[i].certificate.bound
                << " vs audited " << audit.bound << "\n";
      ++audit_failures;
    }
  }
  if (audit_failures > 0) return 1;

  // Timed phases. The volatile sink keeps the searches observable.
  volatile std::uint64_t sink = 0;
  const perfbench::Aggregate synthesize = perfbench::run_timed(
      protocol, catalog.size(), [&] {
        std::uint64_t classes = 0;
        for (const analyze::KernelDesc& kernel : catalog) {
          classes += analyze::synthesize_mapping(kernel, options).classes;
        }
        sink = sink + classes;
      });
  const perfbench::Aggregate certify = perfbench::run_timed(
      protocol, catalog.size(), [&] {
        std::uint64_t exact = 0;
        for (std::size_t i = 0; i < catalog.size(); ++i) {
          exact += analyze::certify_mapping(catalog[i], results[i].mapping)
                       .exact();
        }
        sink = sink + exact;
      });

  if (const auto bench_path = args.get("bench-json")) {
    perfbench::BenchReport report("ext_synthesis");
    report.set_config("width", width);
    report.set_config("kernels", catalog.size());
    report.set_config("draws", options.random_draws);
    report.add("synthesize", synthesize);
    report.add("certify", certify);
    perfbench::write_bench_json(*bench_path, report);
    std::printf("wrote %s\n", bench_path->c_str());
    return 0;
  }

  util::TextTable table;
  table.row()
      .add("kernel")
      .add("bound")
      .add("witness")
      .add("classes")
      .add("candidates");
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    table.row()
        .add(catalog[i].name)
        .add(results[i].certificate.bound, 0)
        .add(analyze::witness_kind_name(results[i].witness.kind))
        .add(results[i].classes)
        .add(results[i].candidates);
  }
  table.print(std::cout, args.get_table_style());

  std::cout << "\nsynthesize: " << synthesize.ops_per_sec
            << " kernels/s (median of " << synthesize.samples
            << " repeats over " << catalog.size() << " kernels)\n"
            << "certify:    " << certify.ops_per_sec
            << " certificates/s\n";
  return 0;
}
