// Extension experiment: transpose of a large N x N matrix staged through
// shared-memory tiles on the hierarchical memory machine (global UMM +
// shared DMM) — the workload the paper's Section I motivation describes.
//
// Sweeps N = tiles * w and prints the weighted cost (global slots are
// ~8x a shared slot) of:
//   naive            — direct global transpose, uncoalesced writes
//   tiled + RAW      — classic tiling, shared column reads conflict w-way
//   tiled + RAS      — tiling with random shifts
//   tiled + RAP      — tiling with the paper's permute-shift
//   tiled+diag + RAW — the hand-tuned diagonal tile (expert baseline)
//
//   $ ext_tiled_transpose [--width=32] [--tiles=1,2,4] [--seeds=20]
//                         [--metrics-out=PATH]
//
// --metrics-out writes a MetricsRegistry JSON document with the
// hmm.{global,shared}_{time_units,slots} counters of the seed-1 run of
// every (strategy, scheme, N) cell — the same document shape every other
// subsystem drops under results/metrics/.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/factory.hpp"
#include "hmm/tiled_transpose.hpp"
#include "telemetry/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

double avg_cost(hmm::TransposeStrategy strategy, core::Scheme scheme,
                const hmm::TiledTransposeConfig& config, std::uint64_t seeds,
                telemetry::MetricsRegistry* registry) {
  const std::uint64_t n =
      scheme == core::Scheme::kRaw ? 1 : seeds;  // RAW is deterministic
  double sum = 0;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const auto report = hmm::run_tiled_transpose(strategy, scheme, config, seed);
    if (!report.correct) std::printf("!! INCORRECT TRANSPOSE !!\n");
    if (registry && seed == 1) {
      report.stats.flush_into(*registry,
                              {{"strategy", hmm::strategy_name(strategy)},
                               {"scheme", core::scheme_name(scheme)},
                               {"n", std::to_string(config.n())}});
    }
    sum += static_cast<double>(report.total_cost());
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto tiles = args.get_uint_list("tiles", {1, 2, 4});
  const std::uint64_t seeds = args.get_uint("seeds", 20);
  const auto metrics_out = args.get("metrics-out");
  telemetry::MetricsRegistry registry;
  telemetry::MetricsRegistry* sink = metrics_out ? &registry : nullptr;

  std::printf(
      "== Extension: tiled transpose on the HMM (w = %u; cost = 8 x global "
      "+ 1 x shared time units) ==\n\n",
      width);

  util::TextTable table;
  table.row()
      .add("N")
      .add("naive")
      .add("tiled RAW")
      .add("tiled RAS")
      .add("tiled RAP")
      .add("tiled+diag RAW")
      .add("naive/RAP")
      .add("RAP/diag");

  for (const auto t : tiles) {
    hmm::TiledTransposeConfig config;
    config.width = width;
    config.tiles = static_cast<std::uint32_t>(t);
    const double naive = avg_cost(hmm::TransposeStrategy::kNaive,
                                  core::Scheme::kRaw, config, seeds, sink);
    const double tiled_raw = avg_cost(hmm::TransposeStrategy::kTiled,
                                      core::Scheme::kRaw, config, seeds, sink);
    const double tiled_ras = avg_cost(hmm::TransposeStrategy::kTiled,
                                      core::Scheme::kRas, config, seeds, sink);
    const double tiled_rap = avg_cost(hmm::TransposeStrategy::kTiled,
                                      core::Scheme::kRap, config, seeds, sink);
    const double diag = avg_cost(hmm::TransposeStrategy::kTiledDiagonal,
                                 core::Scheme::kRaw, config, seeds, sink);
    table.row()
        .add(config.n())
        .add(naive, 0)
        .add(tiled_raw, 0)
        .add(tiled_ras, 0)
        .add(tiled_rap, 0)
        .add(diag, 0)
        .add(naive / tiled_rap, 2)
        .add(tiled_rap / diag, 2);
  }
  table.print(std::cout, args.get_table_style());

  if (metrics_out) {
    std::ofstream out(*metrics_out);
    if (!out) throw std::runtime_error("cannot write " + *metrics_out);
    out << registry.to_json() << '\n';
    std::printf("\nwrote %s\n", metrics_out->c_str());
  }

  std::printf(
      "\nExpected shape: naive pays w uncoalesced global slots per warp;\n"
      "tiled RAW trades them for w-way shared conflicts; RAP removes those\n"
      "automatically and matches the hand-tuned diagonal variant (RAP/diag\n"
      "~= 1) — tiling + RAP is the no-expertise path to the expert result.\n");
  return 0;
}
