// Reproduction of Table II: the congestion of memory access to a w x w
// matrix, for w in {16, 32, 64, 128, 256}, access patterns Contiguous /
// Stride / Diagonal / Random, under the RAW, RAS and RAP implementations.
//
// Paper values for reference (each cell is an expectation):
//
//            RAW: 16   32   64   128  256 | RAS: ...            | RAP: ...
// Contiguous      1    1    1    1    1   | all 1                | all 1
// Stride          16   32   64   128  256 | 3.08 3.53 3.96 4.38 4.77 | all 1
// Diagonal        1    1    1    1    1   | 3.08 3.53 3.96 4.38 4.77 | 3.20 3.61 4.00 4.41 4.78
// Random          2.92 3.44 3.90 4.34 4.75 (same for all three schemes)
//
//   $ table2_congestion_sim [--widths=16,32,64,128,256] [--trials=20000]

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto widths =
      args.get_uint_list("widths", {16, 32, 64, 128, 256});
  const std::uint64_t trials = args.get_uint("trials", 20000);
  const std::uint64_t seed = args.get_uint("seed", 20140811);

  std::printf(
      "== Table II: congestion of memory access to a w x w matrix "
      "(%llu trials/cell) ==\n\n",
      static_cast<unsigned long long>(trials));

  for (const core::Scheme scheme : core::table2_schemes()) {
    std::printf("-- %s implementation --\n", core::scheme_name(scheme));
    util::TextTable table;
    table.row().add("w");
    for (const auto w : widths) table.add(w);
    for (const access::Pattern2d pattern : access::table2_patterns()) {
      table.row().add(access::pattern2d_name(pattern));
      for (const auto w : widths) {
        const auto est = access::estimate_congestion_2d(
            scheme, pattern, static_cast<std::uint32_t>(w), trials, seed);
        // Integer cells print as integers, like the paper's table.
        if (est.min == est.max) {
          table.add(static_cast<std::uint64_t>(est.max));
        } else {
          table.add(est.mean, 2);
        }
      }
    }
    table.print(std::cout, args.get_table_style());
    std::printf("\n");
  }

  std::printf(
      "Expected shape: RAP has 1s on Contiguous AND Stride (RAS only on\n"
      "Contiguous; RAW is w on Stride); RAP's Diagonal is slightly above\n"
      "RAS's (collision probability 1/(w-1) vs 1/w); Random is identical\n"
      "across schemes.\n");
  return 0;
}
