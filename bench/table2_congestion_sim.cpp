// Reproduction of Table II: the congestion of memory access to a w x w
// matrix, for w in {16, 32, 64, 128, 256}, access patterns Contiguous /
// Stride / Diagonal / Random, under the RAW, RAS and RAP implementations.
//
// Paper values for reference (each cell is an expectation):
//
//            RAW: 16   32   64   128  256 | RAS: ...            | RAP: ...
// Contiguous      1    1    1    1    1   | all 1                | all 1
// Stride          16   32   64   128  256 | 3.08 3.53 3.96 4.38 4.77 | all 1
// Diagonal        1    1    1    1    1   | 3.08 3.53 3.96 4.38 4.77 | 3.20 3.61 4.00 4.41 4.78
// Random          2.92 3.44 3.90 4.34 4.75 (same for all three schemes)
//
//   $ table2_congestion_sim [--widths=16,32,64,128,256] [--trials=20000]
//
// With --format=json the binary instead emits one machine-readable
// document (schema below) carrying, per (scheme, pattern, width) cell,
// the mean/ci95, the exact congestion percentiles p50/p95/p99, and the
// per-bank unique-request totals — the stable schema tools/run_all.sh
// archives under results/metrics/ and tools/check_metrics_schema.sh
// validates.
//
// With --bench-json=PATH the binary instead times the full sweep under
// the perfbench warmup/repeat protocol (--quick / --bench-warmup /
// --bench-repeats) and writes a BENCH document there — one metric,
// "full_sweep", whose ns_per_op is nanoseconds per simulated warp
// access. tools/bench_compare diffs these across commits.

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "perfbench/perfbench.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// results[] cell schema: scheme, pattern, width, congestion{mean, ci95,
/// min, max, p50, p95, p99}, bank_requests[width].
int emit_json(const std::vector<std::uint64_t>& widths, std::uint64_t trials,
              std::uint64_t seed) {
  using namespace rapsim;
  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("schema_version", 1);
  json.kv("experiment", "table2_congestion_sim");
  json.key("units").begin_object();
  json.kv("congestion", "pipeline slots per warp access");
  json.kv("bank_requests", "unique requests summed over trials");
  json.end_object();
  json.key("config").begin_object();
  json.key("widths").begin_array();
  for (const auto w : widths) json.value(w);
  json.end_array();
  json.kv("trials", trials);
  json.kv("seed", seed);
  json.end_object();

  json.key("results").begin_array();
  for (const core::Scheme scheme : core::table2_schemes()) {
    for (const access::Pattern2d pattern : access::table2_patterns()) {
      for (const auto w : widths) {
        const auto profile = access::profile_congestion_2d(
            scheme, pattern, static_cast<std::uint32_t>(w), trials, seed);
        json.begin_object();
        json.kv("scheme", core::scheme_name(scheme));
        json.kv("pattern", access::pattern2d_name(pattern));
        json.kv("width", w);
        json.key("congestion").begin_object();
        json.kv("mean", profile.estimate.mean);
        json.kv("ci95", profile.estimate.ci95);
        json.kv("min", static_cast<std::uint64_t>(profile.estimate.min));
        json.kv("max", static_cast<std::uint64_t>(profile.estimate.max));
        json.kv("p50", profile.distribution.percentile(50.0));
        json.kv("p95", profile.distribution.percentile(95.0));
        json.kv("p99", profile.distribution.percentile(99.0));
        json.end_object();
        json.key("bank_requests").begin_array();
        for (const std::uint64_t c : profile.bank_requests) json.value(c);
        json.end_array();
        json.end_object();
      }
    }
  }
  json.end_array();
  json.end_object();
  std::printf("%s\n", json.str().c_str());
  return 0;
}

/// Perf-trajectory mode: time the whole (scheme x pattern x width)
/// sweep; one item = one simulated warp access (a trial).
int emit_bench(const std::string& path, const rapsim::util::CliArgs& args,
               const std::vector<std::uint64_t>& widths, std::uint64_t trials,
               std::uint64_t seed) {
  using namespace rapsim;
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);
  const std::uint64_t cells =
      static_cast<std::uint64_t>(core::table2_schemes().size()) *
      static_cast<std::uint64_t>(access::table2_patterns().size()) *
      static_cast<std::uint64_t>(widths.size());
  double sink = 0.0;
  const perfbench::Aggregate sweep =
      perfbench::run_timed(protocol, cells * trials, [&] {
        for (const core::Scheme scheme : core::table2_schemes()) {
          for (const access::Pattern2d pattern : access::table2_patterns()) {
            for (const auto w : widths) {
              sink += access::estimate_congestion_2d(
                          scheme, pattern, static_cast<std::uint32_t>(w),
                          trials, seed)
                          .mean;
            }
          }
        }
      });

  perfbench::BenchReport report("table2_congestion_sim");
  std::string widths_csv;
  for (const auto w : widths) {
    if (!widths_csv.empty()) widths_csv += ',';
    widths_csv += std::to_string(w);
  }
  report.set_config("widths", widths_csv);
  report.set_config("trials", trials);
  report.set_config("seed", seed);
  report.add("full_sweep", sweep);
  perfbench::write_bench_json(path, report);
  std::printf("wrote %s (checksum %.3f)\n", path.c_str(), sink);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto widths =
      args.get_uint_list("widths", {16, 32, 64, 128, 256});
  const std::uint64_t trials = args.get_uint("trials", 20000);
  const std::uint64_t seed = args.get_uint("seed", 20140811);

  if (const auto bench_path = args.get("bench-json")) {
    return emit_bench(*bench_path, args, widths, trials, seed);
  }
  if (args.wants_json()) return emit_json(widths, trials, seed);

  std::printf(
      "== Table II: congestion of memory access to a w x w matrix "
      "(%llu trials/cell) ==\n\n",
      static_cast<unsigned long long>(trials));

  for (const core::Scheme scheme : core::table2_schemes()) {
    std::printf("-- %s implementation --\n", core::scheme_name(scheme));
    util::TextTable table;
    table.row().add("w");
    for (const auto w : widths) table.add(w);
    for (const access::Pattern2d pattern : access::table2_patterns()) {
      table.row().add(access::pattern2d_name(pattern));
      for (const auto w : widths) {
        const auto est = access::estimate_congestion_2d(
            scheme, pattern, static_cast<std::uint32_t>(w), trials, seed);
        // Integer cells print as integers, like the paper's table.
        if (est.min == est.max) {
          table.add(static_cast<std::uint64_t>(est.max));
        } else {
          table.add(est.mean, 2);
        }
      }
    }
    table.print(std::cout, args.get_table_style());
    std::printf("\n");
  }

  std::printf(
      "Expected shape: RAP has 1s on Contiguous AND Stride (RAS only on\n"
      "Contiguous; RAW is w on Stride); RAP's Diagonal is slightly above\n"
      "RAS's (collision probability 1/(w-1) vs 1/w); Random is identical\n"
      "across schemes.\n");
  return 0;
}
