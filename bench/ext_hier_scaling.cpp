// Extension experiment: hierarchy-simulator scaling — simulation
// throughput and simulated cycle counts as SM count and warp-scheduling
// policy vary.
//
// Runs the bitonic workload (the catalog's most barrier-heavy kernel,
// so scheduling decisions actually matter) at width 32 under RAP across
// sms x scheduler in {1, 2, 4} x {roundrobin, gto, dwr}. The
// global-memory path runs at the defaults except for a 4-line L1 and 2
// MSHRs per SM: bitonic's working set fits the default 64-line L1 after
// one cold pass, which would let every scheduler converge on the same
// steady state — the cut-down front end keeps misses (and therefore
// dispatch-order-dependent completion times) flowing for the whole run.
// Two families of outputs:
//
//   * config entries  cycles_sms<N>_<sched> — the SIMULATED cycle count
//     of each cell. These are the model's scientific outputs: at >= 2
//     SMs the shared-port contention makes them scheduler-dependent
//     (pinned by tools/check_hier_schema.sh and
//     tests/hier_differential_test.cpp).
//   * metrics         sim_sms<N>_<sched> — wall-clock throughput of the
//     simulator itself (items = dispatched warp-instructions), the
//     perf-trajectory series BENCH_hier.json tracks.
//
//   $ ext_hier_scaling [--quick] [--bench-warmup=N] [--bench-repeats=N]
//                      [--format=ascii|markdown|csv] [--bench-json=PATH]
//
// Part of tools/run_all.sh ("hier" section); the committed baseline is
// BENCH_hier.json at the repo root.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "hier/hier.hpp"
#include "perfbench/perfbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "vm/suite.hpp"

namespace {

using namespace rapsim;

constexpr std::uint32_t kWidth = 32;
const std::uint32_t kSmCounts[] = {1, 2, 4};
const char* const kSchedulers[] = {"roundrobin", "gto", "dwr"};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);

  // The bitonic workload, lowered from its VM program like the catalog
  // does (tools/workload_kernels.cpp); n = 8w keys.
  vm::LoweredProgram lowered = vm::lower_program(
      vm::assemble(vm::suite_program("vm-bitonic", kWidth).text, kWidth));
  const dmm::Kernel& kernel = lowered.kernel;

  const auto map =
      core::make_matrix_map(core::Scheme::kRap, kWidth, lowered.rows, 1);

  struct Cell {
    std::uint32_t sms = 0;
    std::string scheduler;
    hier::HierResult result;
    perfbench::Aggregate timing;
  };
  std::vector<Cell> cells;

  for (const std::uint32_t sms : kSmCounts) {
    for (const char* const scheduler : kSchedulers) {
      hier::HierConfig config;
      config.sms = sms;
      config.width = kWidth;
      config.scheduler = scheduler;
      config.path = hier::PathParams::defaults();
      config.path.l1.lines = 4;  // keep the path hot (see header comment)
      config.path.mshrs = 2;
      hier::HierSim sim(config, *map);

      Cell cell;
      cell.sms = sms;
      cell.scheduler = scheduler;
      cell.result = sim.run(kernel, core::Scheme::kRap);

      volatile std::uint64_t sink = 0;
      cell.timing = perfbench::run_timed(
          protocol, cell.result.dispatches,
          [&] { sink = sink + sim.run(kernel, core::Scheme::kRap).cycles; });
      cells.push_back(std::move(cell));
    }
  }

  if (const auto bench_path = args.get("bench-json")) {
    perfbench::BenchReport report("ext_hier_scaling");
    report.set_config("width", std::uint64_t{kWidth});
    report.set_config("workload", "bitonic");
    report.set_config("scheme", "RAP");
    for (const Cell& cell : cells) {
      report.set_config(
          "cycles_sms" + std::to_string(cell.sms) + "_" + cell.scheduler,
          cell.result.cycles);
    }
    for (const Cell& cell : cells) {
      report.add(
          "sim_sms" + std::to_string(cell.sms) + "_" + cell.scheduler,
          cell.timing);
    }
    perfbench::write_bench_json(*bench_path, report);
    std::printf("wrote %s\n", bench_path->c_str());
    return 0;
  }

  util::TextTable table;
  table.row()
      .add("sms")
      .add("scheduler")
      .add("cycles")
      .add("dispatches")
      .add("l2 hits")
      .add("l2 misses")
      .add("sim ns/dispatch");
  for (const Cell& cell : cells) {
    table.row()
        .add(std::uint64_t{cell.sms})
        .add(cell.scheduler)
        .add(cell.result.cycles)
        .add(cell.result.dispatches)
        .add(cell.result.l2_hits)
        .add(cell.result.l2_misses)
        .add(cell.timing.ns_per_op, 1);
  }
  table.print(std::cout, args.get_table_style());
  return 0;
}
