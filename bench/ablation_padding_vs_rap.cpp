// Ablation: RAP vs the "+1 padding" folklore fix.
//
// Padding (`__shared__ double a[w][w+1]`, modeled bank-exactly as the
// skew bank(i,j) = (i+j) mod w) is the fix every CUDA guide teaches for
// stride conflicts. Like RAP it makes contiguous AND stride access
// conflict-free, and it costs zero random words — so why randomize?
// Three reasons this bench quantifies:
//
//   1. the skew is deterministic and public: anti-diagonal access (and
//      any adversary) puts the whole warp in one bank — congestion w,
//      exactly the failure RAW has on columns;
//   2. the real padded layout burns `rows` words of shared memory
//      (a 32x32 double tile grows by 256 bytes, ~3%), while RAP is
//      in-place;
//   3. padding only helps patterns aligned with its skew; RAP's
//      guarantee is distribution-wide (Theorem 2).
//
//   $ ablation_padding_vs_rap [--width=32] [--trials=20000]

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t trials = args.get_uint("trials", 20000);
  const std::uint64_t seed = args.get_uint("seed", 3);

  std::printf("== Ablation: padding (skew) vs RAP, w = %u ==\n\n", width);

  const core::Scheme schemes[] = {core::Scheme::kRaw, core::Scheme::kPad,
                                  core::Scheme::kRap};

  util::TextTable table;
  table.row().add("access");
  for (const auto s : schemes) table.add(core::scheme_name(s));

  const struct {
    const char* label;
    access::Pattern2d pattern;
  } rows[] = {
      {"Contiguous", access::Pattern2d::kContiguous},
      {"Stride", access::Pattern2d::kStride},
      {"Diagonal", access::Pattern2d::kDiagonal},
      {"Random", access::Pattern2d::kRandom},
      {"Malicious", access::Pattern2d::kMalicious},
  };

  for (const auto& row : rows) {
    table.row().add(row.label);
    for (const auto scheme : schemes) {
      const auto est = access::estimate_congestion_2d(scheme, row.pattern,
                                                      width, trials, seed);
      if (est.min == est.max) {
        table.add(static_cast<std::uint64_t>(est.max));
      } else {
        table.add(est.mean, 2);
      }
    }
  }

  table.row().add("random words");
  for (const auto scheme : schemes) {
    table.add(core::make_matrix_map(scheme, width, width, seed)->random_words());
  }
  table.row().add("extra shared words");
  table.add("0").add(std::to_string(width) + " (real layout)").add("0");

  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nPadding matches RAP on contiguous/stride at zero random cost, but\n"
      "its Malicious row collapses to w (the skew is public) and its\n"
      "Diagonal row shows the aligned-pattern fragility (bank (2i+d) hits\n"
      "each even bank twice for even w). RAP pays w random words for a\n"
      "guarantee that holds against every access pattern.\n");
  return 0;
}
