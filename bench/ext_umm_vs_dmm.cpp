// Extension: DMM vs UMM on the fundamental access operations.
//
// The paper introduces both machines (Figure 1): the DMM has per-bank
// address lines (shared-memory semantics), the UMM one broadcast address
// line (global-memory coalescing semantics). This bench runs the
// Section III access operations and the three transpose algorithms on
// both machines under RAW, showing where bank-level parallelism matters:
//
//   * contiguous access: identical (one row == one slot on both);
//   * stride access: identical cost, different reason (same-bank
//     serialization on the DMM, w distinct rows on the UMM);
//   * diagonal access: the separator — 1 slot/warp on the DMM (distinct
//     banks) but w slots/warp on the UMM (distinct rows). The DRDW
//     transpose therefore only works on the DMM: diagonal access is a
//     shared-memory trick with no global-memory analogue.
//
//   $ ext_umm_vs_dmm [--width=32] [--latency=8]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "dmm/umm.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

dmm::Kernel access_kernel(std::uint32_t w, int pattern) {
  dmm::Kernel k{w * w, {}, {}};
  dmm::Instruction instr(k.num_threads);
  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      std::uint64_t addr = 0;
      if (pattern == 0) addr = static_cast<std::uint64_t>(i) * w + j;  // cont
      if (pattern == 1) addr = static_cast<std::uint64_t>(j) * w + i;  // stride
      if (pattern == 2) {                                              // diag
        addr = static_cast<std::uint64_t>(j) * w + (i + j) % w;
      }
      instr[i * w + j] = dmm::ThreadOp::load(addr);
    }
  }
  k.push(std::move(instr));
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto w = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto l = static_cast<std::uint32_t>(args.get_uint("latency", 8));

  std::printf("== Extension: DMM vs UMM (RAW, w = %u, l = %u) ==\n\n", w, l);

  const auto map = core::make_matrix_map(core::Scheme::kRaw, w, 2ull * w, 1);

  util::TextTable table;
  table.row().add("operation").add("DMM time").add("UMM time").add("UMM/DMM");

  const char* names[] = {"contiguous read", "stride read", "diagonal read"};
  for (int pattern = 0; pattern < 3; ++pattern) {
    dmm::Dmm on_dmm(dmm::dmm_config(w, l), *map);
    dmm::Dmm on_umm(dmm::umm_config(w, l), *map);
    const auto kernel = access_kernel(w, pattern);
    const auto t_dmm = on_dmm.run(kernel).time;
    const auto t_umm = on_umm.run(kernel).time;
    table.row()
        .add(names[pattern])
        .add(t_dmm)
        .add(t_umm)
        .add(static_cast<double>(t_umm) / static_cast<double>(t_dmm), 2);
  }

  for (const auto alg : {transpose::Algorithm::kCrsw,
                         transpose::Algorithm::kDrdw}) {
    const transpose::MatrixPair layout{w};
    const auto pair_map =
        core::make_matrix_map(core::Scheme::kRaw, w, layout.rows(), 1);
    dmm::Dmm on_dmm(dmm::dmm_config(w, l), *pair_map);
    dmm::Dmm on_umm(dmm::umm_config(w, l), *pair_map);
    const auto kernel = transpose::build_kernel(alg, layout);
    const auto t_dmm = on_dmm.run(kernel).time;
    const auto t_umm = on_umm.run(kernel).time;
    table.row()
        .add(std::string(transpose::algorithm_name(alg)) + " transpose")
        .add(t_dmm)
        .add(t_umm)
        .add(static_cast<double>(t_umm) / static_cast<double>(t_dmm), 2);
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nDiagonal access separates the machines (%ux on the UMM): DRDW is\n"
      "a shared-memory-only trick, which is why the paper studies the DMM\n"
      "for the shared memory and treats coalescing (the UMM) separately.\n",
      w);
  return 0;
}
