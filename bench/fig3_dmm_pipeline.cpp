// Reproduction of Figure 3: the DMM pipeline worked example.
//
// w = 4 banks, latency l = 5. Warp W(0) accesses {7, 5, 15, 0}: addresses
// 7 and 15 collide in bank 3, so the warp occupies two pipeline stages.
// W(1) accesses {10, 11, 12, 9}: conflict-free, one stage. The three
// stages plus the 5-stage pipeline finish at time 3 + 5 - 1 = 7.
//
//   $ fig3_dmm_pipeline [--chrome-trace=PATH]
//
// --chrome-trace writes the dispatch timeline in Trace Event Format;
// open the file in https://ui.perfetto.dev (or chrome://tracing) to see
// the two warp tracks, the three pipeline slots, and completion at t = 7.

#include <cstdio>
#include <fstream>

#include "core/mapping2d.hpp"
#include "dmm/machine.hpp"
#include "telemetry/chrome_trace.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  constexpr std::uint32_t kWidth = 4, kLatency = 5;

  core::RawMap map(kWidth, 16 / kWidth);
  dmm::Dmm machine(dmm::DmmConfig{kWidth, kLatency}, map);

  dmm::Kernel kernel;
  kernel.num_threads = 8;
  dmm::Instruction instr(8);
  const std::uint64_t w0[4] = {7, 5, 15, 0};
  const std::uint64_t w1[4] = {10, 11, 12, 9};
  for (std::uint32_t t = 0; t < 4; ++t) {
    instr[t] = dmm::ThreadOp::load(w0[t]);
    instr[4 + t] = dmm::ThreadOp::load(w1[t]);
  }
  kernel.push(std::move(instr));

  dmm::Trace trace;
  const auto stats = machine.run(kernel, &trace);

  std::printf("== Figure 3: DMM pipeline example (w = 4, l = 5) ==\n\n");
  std::printf("W(0) -> {7, 5, 15, 0}   banks {3, 1, 3, 0}: bank 3 conflict\n");
  std::printf("W(1) -> {10, 11, 12, 9} banks {2, 3, 0, 1}: conflict-free\n\n");
  std::printf("%s\n", trace.to_string().c_str());
  std::printf("total pipeline stages: %llu (paper: 3)\n",
              static_cast<unsigned long long>(stats.total_stages));
  std::printf("completion time:       %llu (paper: 3 + 5 - 1 = 7)\n",
              static_cast<unsigned long long>(stats.time));

  if (const auto path = args.get("chrome-trace")) {
    std::ofstream out(*path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 1;
    }
    out << telemetry::to_chrome_trace(trace) << '\n';
    std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                path->c_str());
  }

  const bool ok = stats.total_stages == 3 && stats.time == 7;
  std::printf("%s\n", ok ? "reproduces the paper" : "MISMATCH");
  return ok ? 0 : 1;
}
