// Reproduction of Figure 1: the DMM and UMM architectures.
//
// The figure is a block diagram (threads -> warps -> MMU -> memory
// banks); this demo prints the structural difference — per-bank address
// lines (DMM) vs one broadcast address line (UMM) — and then *executes*
// the difference: the same warp access costs 1 pipeline slot on the DMM
// when its addresses hit distinct banks in distinct rows, but one slot
// per distinct row on the UMM.

#include <cstdio>

#include "core/mapping2d.hpp"
#include "dmm/umm.hpp"

int main() {
  using namespace rapsim;
  constexpr std::uint32_t kWidth = 4, kLatency = 5;

  std::printf("== Figure 1: the DMM and the UMM (w = %u) ==\n\n", kWidth);
  std::printf(
      "  DMM                                UMM\n"
      "  T T T T  x %u warps                T T T T  x %u warps\n"
      "     |                                  |\n"
      "  [  MMU  ]  (l = %u pipeline)       [  MMU  ]\n"
      "   | | | |   one address per bank       |      one broadcast address\n"
      "  MB MB MB MB                       MB MB MB MB\n\n",
      kWidth, kWidth, kLatency);

  core::RawMap map(kWidth, kWidth);
  // A warp reading one cell per row AND per bank (the diagonal): the
  // defining workload that separates the two machines.
  dmm::Kernel kernel{kWidth, {}, {}};
  dmm::Instruction instr(kWidth);
  for (std::uint32_t t = 0; t < kWidth; ++t) {
    instr[t] = dmm::ThreadOp::load(static_cast<std::uint64_t>(t) * kWidth + t);
  }
  kernel.push(std::move(instr));

  dmm::Dmm on_dmm(dmm::dmm_config(kWidth, kLatency), map);
  dmm::Dmm on_umm(dmm::umm_config(kWidth, kLatency), map);
  const auto t_dmm = on_dmm.run(kernel);
  const auto t_umm = on_umm.run(kernel);

  std::printf("warp accesses {0, 5, 10, 15} (distinct banks, distinct rows):\n");
  std::printf("  DMM: %llu slot(s), completes at t = %llu  "
              "(each bank serves its own address)\n",
              static_cast<unsigned long long>(t_dmm.total_stages),
              static_cast<unsigned long long>(t_dmm.time));
  std::printf("  UMM: %llu slot(s), completes at t = %llu  "
              "(one row broadcast per slot)\n",
              static_cast<unsigned long long>(t_umm.total_stages),
              static_cast<unsigned long long>(t_umm.time));

  const bool ok = t_dmm.total_stages == 1 && t_umm.total_stages == kWidth;
  std::printf("\n%s\n", ok ? "reproduces the architectural contrast"
                           : "MISMATCH");
  return ok ? 0 : 1;
}
