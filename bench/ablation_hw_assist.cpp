// Ablation: hardware-assisted RAP (Section VI's closing suggestion).
//
// The paper proposes embedding the (j + p_i) mod w address conversion in
// hardware so RAP's per-access overhead vanishes. In the SM timing model
// that is exactly t_addr(RAP) = 0; this bench prints Table III's RAP
// column with the software overhead (packed-register extraction) and with
// the hypothetical hardware support, plus the break-even point: how large
// t_addr could grow before RAP loses its CRSW advantage over RAS and RAW.
//
//   $ ablation_hw_assist [--width=32] [--seeds=300]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "gpu/sm_model.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t seeds = args.get_uint("seeds", 300);

  auto software = gpu::SmTimingParams::titan_calibrated();
  auto hardware = software;
  hardware.addr_rap_ns = 0.0;

  std::printf(
      "== Ablation: software vs hardware-assisted RAP address conversion "
      "(w = %u) ==\n\n",
      width);

  util::TextTable table;
  table.row()
      .add("algorithm")
      .add("RAP sw ns")
      .add("RAP hw ns")
      .add("hw saving")
      .add("RAW ns")
      .add("RAS ns");

  for (const auto alg : {transpose::Algorithm::kCrsw,
                         transpose::Algorithm::kSrcw,
                         transpose::Algorithm::kDrdw}) {
    double stages_rap = 0, dispatches_rap = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const auto r = transpose::run_transpose(alg, core::Scheme::kRap, width,
                                              1, seed);
      stages_rap += static_cast<double>(r.stats.total_stages);
      dispatches_rap += static_cast<double>(r.stats.dispatches);
    }
    stages_rap /= static_cast<double>(seeds);
    dispatches_rap /= static_cast<double>(seeds);

    const auto raw = transpose::run_transpose(alg, core::Scheme::kRaw, width,
                                              1, 1);
    double stages_ras = 0, dispatches_ras = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const auto r = transpose::run_transpose(alg, core::Scheme::kRas, width,
                                              1, seed);
      stages_ras += static_cast<double>(r.stats.total_stages);
      dispatches_ras += static_cast<double>(r.stats.dispatches);
    }
    stages_ras /= static_cast<double>(seeds);
    dispatches_ras /= static_cast<double>(seeds);

    const double sw = software.launch_ns + stages_rap * software.stage_ns +
                      dispatches_rap * software.addr_rap_ns;
    const double hw = hardware.launch_ns + stages_rap * hardware.stage_ns;
    const double raw_ns = gpu::estimate_time_ns(
        raw.stats.total_stages, raw.stats.dispatches, core::Scheme::kRaw,
        software);
    const double ras_ns = software.launch_ns + stages_ras * software.stage_ns +
                          dispatches_ras * software.addr_ras_ns;
    table.row()
        .add(transpose::algorithm_name(alg))
        .add(sw, 1)
        .add(hw, 1)
        .add(sw - hw, 1)
        .add(raw_ns, 1)
        .add(ras_ns, 1);
  }
  table.print(std::cout, args.get_table_style());

  // Break-even: on CRSW, RAP beats RAW while
  // t_addr < (stages_raw - stages_rap) * t_stage / dispatches.
  const auto raw = transpose::run_transpose(transpose::Algorithm::kCrsw,
                                            core::Scheme::kRaw, width, 1, 1);
  const auto rap = transpose::run_transpose(transpose::Algorithm::kCrsw,
                                            core::Scheme::kRap, width, 1, 1);
  const double headroom =
      static_cast<double>(raw.stats.total_stages - rap.stats.total_stages) *
      software.stage_ns / static_cast<double>(rap.stats.dispatches);
  std::printf(
      "\nRAP's software overhead (%.2f ns/warp-instruction) is tiny against\n"
      "its CRSW headroom (%.1f ns/warp-instruction before RAW wins back):\n"
      "hardware support, as Section VI suggests, is a nicety rather than a\n"
      "necessity at w = %u.\n",
      software.addr_rap_ns, headroom, width);
  return 0;
}
