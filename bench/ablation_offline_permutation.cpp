// Ablation: RAP vs the conflict-free graph-coloring scheduler on offline
// permutation — the comparison behind the paper's Section I narrative
// ("we have developed a complicated graph coloring technique ... it may
// be a very hard task"; RAP gets most of the benefit automatically).
//
// For several classic permutations of n = w^2 elements, prints the DMM
// time of: direct kernel under RAW / RAS / RAP, and the scheduled
// (edge-colored) kernel under RAW, plus the slowdown of RAP relative to
// the scheduled optimum.
//
//   $ ablation_offline_permutation [--width=32] [--seeds=50]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "permute/offline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

double direct_time(const core::Permutation& pi,
                   const permute::PermutationLayout& layout,
                   core::Scheme scheme, std::uint64_t seeds) {
  const auto kernel = permute::build_direct_kernel(pi, layout);
  double sum = 0;
  const std::uint64_t n_seeds = scheme == core::Scheme::kRaw ? 1 : seeds;
  for (std::uint64_t seed = 1; seed <= n_seeds; ++seed) {
    const auto map = core::make_matrix_map(scheme, layout.width,
                                           layout.total_rows(), seed);
    dmm::Dmm machine(dmm::DmmConfig{layout.width, 1}, *map);
    sum += static_cast<double>(machine.run(kernel).time);
  }
  return sum / static_cast<double>(n_seeds);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t seeds = args.get_uint("seeds", 50);
  const permute::PermutationLayout layout{width, width};
  const auto n = static_cast<std::uint32_t>(layout.elements());

  std::printf(
      "== Ablation: offline permutation of n = %u elements (w = %u) ==\n\n",
      n, width);

  util::Pcg32 rng(99);
  const struct {
    const char* label;
    core::Permutation pi;
  } cases[] = {
      {"transpose", permute::transpose_permutation(width)},
      {"bit-reversal", permute::bit_reversal_permutation(n)},
      {"stride w+1", permute::stride_permutation(n, width + 1)},
      {"random", core::Permutation::random(n, rng)},
      {"identity", core::Permutation::identity(n)},
  };

  util::TextTable table;
  table.row()
      .add("permutation")
      .add("direct RAW")
      .add("direct RAS")
      .add("direct RAP")
      .add("colored RAW")
      .add("RAP/colored");

  for (const auto& c : cases) {
    const double raw = direct_time(c.pi, layout, core::Scheme::kRaw, seeds);
    const double ras = direct_time(c.pi, layout, core::Scheme::kRas, seeds);
    const double rap = direct_time(c.pi, layout, core::Scheme::kRap, seeds);

    const auto raw_map = core::make_matrix_map(core::Scheme::kRaw, width,
                                               layout.total_rows(), 1);
    dmm::Dmm machine(dmm::DmmConfig{width, 1}, *raw_map);
    const auto colored =
        machine.run(permute::build_scheduled_kernel(c.pi, layout));

    table.row()
        .add(c.label)
        .add(raw, 1)
        .add(ras, 1)
        .add(rap, 1)
        .add(colored.time)
        .add(rap / static_cast<double>(colored.time), 2);
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nThe colored schedule is the conflict-free optimum (congestion 1 on\n"
      "both phases) but needs the full permutation in advance plus an\n"
      "O(n * w) coloring pass; RAP lands within a small constant factor\n"
      "with zero precomputation and works for addresses computed on the\n"
      "fly — the paper's trade-off in one table.\n");
  return 0;
}
