// Extension experiment: throughput of the workload VM (src/vm/) over
// the Sitchinava suite — the cost of treating workloads as programs
// rather than hand-written kernel builders.
//
// Three phases, all driven by the shared warmup/repeat protocol:
//
//   assemble_lower  assemble the `.rvm` source and interpret it down to
//                   the SIMD kernel — ops_per_sec is PROGRAMS per second
//                   (the capture path's cost per workload)
//   extract         symbolic extraction of loop-nest IR from the same
//                   sources — ops_per_sec is PROGRAMS per second (the
//                   lint/synthesis path's cost per workload)
//   replay          execute every lowered kernel on the DMM under RAW —
//                   ns_per_op is nanoseconds per THREAD-LEVEL ACCESS
//                   (the simulation cost the campaign driver pays)
//
// The per-program table reports lowered size, extracted site/var counts
// and barrier phases, so a throughput regression can be traced to the
// program whose lowering or extraction grew.
//
//   $ ext_vm_workloads [--width=32] [--quick]
//                      [--bench-warmup=N] [--bench-repeats=N]
//                      [--format=ascii|markdown|csv] [--bench-json=PATH]
//
// Part of tools/run_all.sh ("vm" section); the committed baseline is
// BENCH_vm.json at the repo root (schema pinned by
// tools/check_vm_schema.sh, ctest entry vm_schema).

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "perfbench/perfbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "vm/extract.hpp"
#include "vm/suite.hpp"

namespace {

using namespace rapsim;

std::uint64_t thread_accesses(const dmm::Kernel& kernel) {
  std::uint64_t accesses = 0;
  for (const dmm::Instruction& instr : kernel.instructions) {
    for (const dmm::ThreadOp& op : instr) {
      switch (op.kind) {
        case dmm::OpKind::kLoad:
        case dmm::OpKind::kLoadAdd:
        case dmm::OpKind::kLoadMulAdd:
        case dmm::OpKind::kStore:
        case dmm::OpKind::kStoreImm:
        case dmm::OpKind::kAtomicAdd:
          ++accesses;
          break;
        default:
          break;
      }
    }
  }
  return accesses;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);

  const std::vector<vm::SuiteProgram> suite = vm::suite_programs(width);

  // Reference pass: one assembled/lowered/extracted instance per
  // program, reused for the table and the replay phase.
  std::vector<vm::Program> programs;
  std::vector<vm::LoweredProgram> lowered;
  std::vector<vm::ExtractResult> extracted;
  std::uint64_t total_accesses = 0;
  for (const vm::SuiteProgram& entry : suite) {
    programs.push_back(vm::assemble(entry.text, width));
    lowered.push_back(vm::lower_program(programs.back()));
    extracted.push_back(vm::extract_kernel(programs.back()));
    total_accesses += thread_accesses(lowered.back().kernel);
  }

  // Pre-built machines so the replay phase times simulation, not setup.
  std::vector<std::unique_ptr<core::AddressMap>> maps;
  std::vector<std::unique_ptr<dmm::Dmm>> machines;
  for (const vm::LoweredProgram& low : lowered) {
    maps.push_back(
        core::make_matrix_map(core::Scheme::kRaw, width, low.rows, 1));
    machines.push_back(
        std::make_unique<dmm::Dmm>(dmm::DmmConfig{width, 1}, *maps.back()));
  }

  volatile std::uint64_t sink = 0;
  const perfbench::Aggregate assemble_lower = perfbench::run_timed(
      protocol, suite.size(), [&] {
        std::uint64_t steps = 0;
        for (const vm::SuiteProgram& entry : suite) {
          steps += vm::lower_program(vm::assemble(entry.text, width)).steps;
        }
        sink = sink + steps;
      });
  const perfbench::Aggregate extract = perfbench::run_timed(
      protocol, suite.size(), [&] {
        std::uint64_t sites = 0;
        for (const vm::Program& program : programs) {
          sites += vm::extract_kernel(program).kernel.sites.size();
        }
        sink = sink + sites;
      });
  const perfbench::Aggregate replay = perfbench::run_timed(
      protocol, total_accesses, [&] {
        std::uint64_t time = 0;
        for (std::size_t i = 0; i < lowered.size(); ++i) {
          time += machines[i]->run(lowered[i].kernel).time;
        }
        sink = sink + time;
      });

  if (const auto bench_path = args.get("bench-json")) {
    perfbench::BenchReport report("ext_vm_workloads");
    report.set_config("width", width);
    report.set_config("programs", suite.size());
    report.set_config("thread_accesses", total_accesses);
    report.add("assemble_lower", assemble_lower);
    report.add("extract", extract);
    report.add("replay", replay);
    perfbench::write_bench_json(*bench_path, report);
    std::printf("wrote %s\n", bench_path->c_str());
    return 0;
  }

  util::TextTable table;
  table.row()
      .add("program")
      .add("simd instrs")
      .add("accesses")
      .add("sites")
      .add("vars")
      .add("barriers");
  for (std::size_t i = 0; i < suite.size(); ++i) {
    table.row()
        .add(suite[i].name)
        .add(lowered[i].kernel.instructions.size())
        .add(thread_accesses(lowered[i].kernel))
        .add(extracted[i].kernel.sites.size())
        .add(extracted[i].kernel.vars.size())
        .add(lowered[i].barriers);
  }
  table.print(std::cout, args.get_table_style());

  std::cout << "\nassemble+lower: " << assemble_lower.ops_per_sec
            << " programs/s (median of " << assemble_lower.samples
            << " repeats)\n"
            << "extract:        " << extract.ops_per_sec << " programs/s\n"
            << "replay:         " << replay.ns_per_op
            << " ns/access over " << total_accesses << " accesses\n";
  return 0;
}
