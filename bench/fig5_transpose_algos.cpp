// Reproduction of Figure 5: the data movement of the CRSW, SRCW and DRDW
// transpose algorithms for w = 4, printed as before/after matrices plus
// the per-phase congestion under RAW.

#include <cstdio>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "transpose/runner.hpp"

namespace {

using namespace rapsim;

void print_matrix(const char* label, dmm::Dmm& machine,
                  const transpose::MatrixPair& layout, bool source) {
  std::printf("%s:\n", label);
  for (std::uint32_t i = 0; i < layout.width; ++i) {
    std::printf("  ");
    for (std::uint32_t j = 0; j < layout.width; ++j) {
      const auto addr =
          source ? layout.a_index(i, j) : layout.b_index(i, j);
      std::printf("%3llu", static_cast<unsigned long long>(machine.load(addr)));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  constexpr std::uint32_t kWidth = 4;
  std::printf("== Figure 5: the three transpose algorithms (w = 4, RAW) ==\n");

  bool all_correct = true;
  for (const auto alg : {transpose::Algorithm::kCrsw,
                         transpose::Algorithm::kSrcw,
                         transpose::Algorithm::kDrdw}) {
    const transpose::MatrixPair layout{kWidth};
    const auto map = core::make_matrix_map(core::Scheme::kRaw, kWidth,
                                           layout.rows(), 1);
    dmm::Dmm machine(dmm::DmmConfig{kWidth, 1}, *map);
    // Seed A with 0..15, Figure 5's labeling.
    for (std::uint32_t i = 0; i < kWidth; ++i) {
      for (std::uint32_t j = 0; j < kWidth; ++j) {
        machine.store(layout.a_index(i, j), i * kWidth + j);
      }
    }
    dmm::Trace trace;
    machine.run(transpose::build_kernel(alg, layout), &trace);

    std::printf("\n-- %s --\n", transpose::algorithm_name(alg));
    print_matrix("A (source)", machine, layout, true);
    print_matrix("B (destination)", machine, layout, false);

    std::uint32_t read_max = 0, write_max = 0;
    for (const auto& d : trace.dispatches) {
      (d.instruction == 0 ? read_max : write_max) =
          std::max(d.instruction == 0 ? read_max : write_max, d.stages);
    }
    std::printf("read congestion %u, write congestion %u\n", read_max,
                write_max);

    bool correct = true;
    for (std::uint32_t i = 0; i < kWidth; ++i) {
      for (std::uint32_t j = 0; j < kWidth; ++j) {
        correct &= machine.load(layout.b_index(i, j)) == j * kWidth + i;
      }
    }
    std::printf("transpose %s\n", correct ? "correct" : "WRONG");
    all_correct &= correct;
  }
  return all_correct ? 0 : 1;
}
