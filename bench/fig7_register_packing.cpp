// Reproduction of Figure 7: packing the 32 5-bit random shift values
// r_0..r_31 into six 32-bit local registers r[0..5], extracted in the
// kernel as (r[i/6] >> (5*(i%6))) & 0x1f.

#include <cstdio>
#include <vector>

#include "core/permutation.hpp"
#include "gpu/register_pack.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rapsim;
  constexpr std::uint32_t kWidth = 32;

  util::Pcg32 rng(2014);
  const auto perm = core::Permutation::random(kWidth, rng);
  std::vector<std::uint32_t> shifts(perm.image().begin(), perm.image().end());
  const gpu::PackedShifts packed(shifts, kWidth);

  std::printf("== Figure 7: RAP shifts packed into local registers ==\n\n");
  std::printf("w = %u, %u bits per value, %u values per 32-bit word, %zu "
              "words (paper: int r[6])\n\n",
              kWidth, packed.bits(), packed.values_per_word(),
              packed.words().size());

  for (std::size_t word = 0; word < packed.words().size(); ++word) {
    std::printf("r[%zu] = 0x%08x  holds p_%zu..p_%zu =", word,
                packed.words()[word], word * 6,
                std::min<std::size_t>(word * 6 + 5, kWidth - 1));
    for (std::size_t i = word * 6; i < std::min<std::size_t>(word * 6 + 6, kWidth);
         ++i) {
      std::printf(" %2u", packed.get(static_cast<std::uint32_t>(i)));
    }
    std::printf("\n");
  }

  bool ok = packed.words().size() == 6;
  for (std::uint32_t i = 0; i < kWidth; ++i) {
    ok &= packed.get(i) == shifts[i];
    // Check against the paper's literal extraction expression.
    ok &= ((packed.words()[i / 6] >> (5 * (i % 6))) & 0x1f) == shifts[i];
  }
  std::printf("\nround-trip through the paper's extraction formula: %s\n",
              ok ? "exact" : "MISMATCH");
  return ok ? 0 : 1;
}
