// Reproduction of Table IV: the congestion and the used random numbers by
// RAW, RAS and the five RAP extensions for a 4-D array of size w^4.
//
// Paper (symbolic; w = width, O = O(ln w / ln ln w), M = the R1P
// index-permutation attack Theta(w/6-grouped)):
//
//             RAW  RAS  1P   R1P  3P   w2P  1P+w2R
// Contiguous  1    1    1    1    1    1    1
// Stride1     w    O    1    1    1    1    1
// Stride2     w    O    w    1    1    O    O
// Stride3     w    O    w    1    1    O    O
// Random      O    O    O    O    O    O    O
// Malicious   w    O    w    M    O    O    O
// Rand words  0    w^3  w    w    3w   w^3  w+w^2
//
//   $ table4_higher_dim [--width=32] [--trials=3000] [--seed=7]

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t trials = args.get_uint("trials", 3000);
  const std::uint64_t seed = args.get_uint("seed", 7);

  std::printf(
      "== Table IV: congestion for a %u^4 4-D array (%llu trials/cell) "
      "==\n\n",
      width, static_cast<unsigned long long>(trials));

  util::TextTable table;
  table.row().add("access");
  for (const core::Scheme s : core::table4_schemes()) {
    table.add(core::scheme_name(s));
  }

  for (const access::Pattern4d pattern : access::table4_patterns()) {
    table.row().add(access::pattern4d_name(pattern));
    for (const core::Scheme scheme : core::table4_schemes()) {
      // w2P / RAS draw w^3 random words per trial: cap their trial count
      // to keep the bench quick while the cheap schemes keep full trials.
      const bool heavy = scheme == core::Scheme::kRapW2P ||
                         scheme == core::Scheme::kRas;
      const std::uint64_t cell_trials =
          heavy ? std::min<std::uint64_t>(trials, 600) : trials;
      const auto est = access::estimate_congestion_4d(
          scheme, pattern, width, cell_trials, seed);
      if (est.min == est.max) {
        table.add(static_cast<std::uint64_t>(est.max));
      } else {
        table.add(est.mean, 2);
      }
    }
  }

  table.row().add("random words");
  for (const core::Scheme scheme : core::table4_schemes()) {
    table.add(core::make_tensor4d_map(scheme, width, seed)->random_words());
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nExpected shape: R1P's Malicious row is >= 6 (the paper's\n"
      "index-permutation attack defeats the repeated permutation) while\n"
      "3P stays at the generic O(ln w/ln ln w) level with only 3w random\n"
      "words — the paper's argument that 3P is the best extension.\n");
  return 0;
}
