// Ablation: power-of-two strided access — the FFT-butterfly / padded-
// struct pattern that is the textbook shared-memory bank-conflict case.
//
// A warp touches addresses base + t * 2^s for t = 0..w-1. Under RAW only
// w / gcd(2^s, w) banks are hit, so congestion is min(2^s, w); under
// RAS/RAP the elements fall in distinct rows (for 2^s >= w ... and mixed
// rows below) and the congestion collapses to the O(log w / log log w)
// noise floor. This sweep prints congestion for s = 0..log2(w) + 2 and
// is the library's answer to "does RAP help beyond matrix transpose?".
//
//   $ ablation_power_stride [--width=32] [--trials=20000]

#include <cstdio>
#include <iostream>
#include <numeric>

#include "access/pattern2d.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t trials = args.get_uint("trials", 20000);
  const std::uint64_t seed = args.get_uint("seed", 12);

  // Array spans 4 w rows so large strides wrap across many rows.
  const std::uint64_t rows = 4ull * width;

  std::printf(
      "== Ablation: power-of-two strided access, w = %u (%llu trials) ==\n\n",
      width, static_cast<unsigned long long>(trials));

  util::TextTable table;
  table.row().add("stride").add("RAW").add("RAS").add("RAP").add(
      "RAW closed form");

  for (std::uint64_t stride = 1; stride <= 4ull * width; stride *= 2) {
    table.row().add(stride);
    for (const core::Scheme scheme : core::table2_schemes()) {
      util::OnlineStats stats;
      util::Pcg32 rng(seed ^ stride);
      const std::uint64_t n_trials =
          scheme == core::Scheme::kRaw ? 64 : trials;
      for (std::uint64_t t = 0; t < n_trials; ++t) {
        const auto map =
            core::make_matrix_map(scheme, width, rows, seed + t + 1);
        const std::uint64_t base =
            rng.bounded(static_cast<std::uint32_t>(map->size()));
        const auto addrs = access::strided_flat_addresses(*map, stride, base);
        stats.add(core::congestion_value(addrs, *map));
      }
      table.add(stats.mean(), 2);
    }
    // RAW closed form: requests hit w / gcd(stride, w) distinct banks.
    std::uint64_t g = std::gcd(stride, static_cast<std::uint64_t>(width));
    table.add(std::min<std::uint64_t>(g, width));
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nRAW congestion doubles with every power of two until it saturates\n"
      "at w; RAP (and RAS) stay at the ~%.1f noise floor because row\n"
      "rotations decorrelate the banks. This is why FFT and multi-word\n"
      "struct layouts need padding tricks under RAW but not under RAP.\n"
      "\nKnown artifact: above stride w, the 2-D RAP's cyclic reuse of its\n"
      "one permutation (row i shifts by p[i mod w]) aliases — stride k*w\n"
      "touches only rows congruent mod k, so shifts repeat and congestion\n"
      "is exactly gcd-structured (2 at 2w, 4 at 4w). RAS, with independent\n"
      "per-row words, does not alias. This is precisely the limitation the\n"
      "paper's Section VII extensions (3P etc.) remove for larger arrays.\n",
      3.5);
  return 0;
}
