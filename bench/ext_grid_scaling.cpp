// Extension: grid-level scaling of the tiled transpose.
//
// A large N x N transpose is a grid of independent tile blocks; each
// block's cost comes from the HMM (weighted global + shared time) and
// the grid scheduler spreads blocks over the GPU's SMs (GTX TITAN: 14).
// Sweeping the SM count shows that the shared-memory layout changes the
// per-block cost, not the scaling shape — RAP's advantage survives the
// whole-GPU view, which is the regime the paper's Section I motivates.
//
//   $ ext_grid_scaling [--width=32] [--tiles=8] [--sms=1,2,4,8,14]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/factory.hpp"
#include "gpu/grid.hpp"
#include "hmm/tiled_transpose.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

/// Per-block (one tile) weighted cost for a strategy/scheme, averaged
/// over seeds for the randomized schemes.
std::uint64_t block_cost(hmm::TransposeStrategy strategy, core::Scheme scheme,
                         std::uint32_t width, std::uint64_t seeds) {
  hmm::TiledTransposeConfig config;
  config.width = width;
  config.tiles = 1;  // one block
  const std::uint64_t n = scheme == core::Scheme::kRaw ? 1 : seeds;
  double sum = 0;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    sum += static_cast<double>(
        hmm::run_tiled_transpose(strategy, scheme, config, seed).total_cost());
  }
  return static_cast<std::uint64_t>(sum / static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto tiles = static_cast<std::uint32_t>(args.get_uint("tiles", 8));
  const auto sms = args.get_uint_list("sms", {1, 2, 4, 8, 14});
  const std::uint64_t seeds = args.get_uint("seeds", 10);

  const std::uint64_t num_blocks =
      static_cast<std::uint64_t>(tiles) * tiles;
  std::printf(
      "== Extension: grid scaling, %llu tile blocks (N = %u), cost = "
      "8 x global + shared ==\n\n",
      static_cast<unsigned long long>(num_blocks), tiles * width);

  const struct {
    const char* label;
    hmm::TransposeStrategy strategy;
    core::Scheme scheme;
  } variants[] = {
      {"naive", hmm::TransposeStrategy::kNaive, core::Scheme::kRaw},
      {"tiled RAW", hmm::TransposeStrategy::kTiled, core::Scheme::kRaw},
      {"tiled RAP", hmm::TransposeStrategy::kTiled, core::Scheme::kRap},
      {"tiled+diag RAW", hmm::TransposeStrategy::kTiledDiagonal,
       core::Scheme::kRaw},
  };

  util::TextTable table;
  table.row().add("SMs");
  for (const auto& v : variants) table.add(v.label);
  table.add("naive/RAP speedup");

  std::vector<std::vector<std::uint64_t>> costs;
  for (const auto& v : variants) {
    costs.emplace_back(num_blocks,
                       block_cost(v.strategy, v.scheme, width, seeds));
  }

  for (const auto s : sms) {
    table.row().add(s);
    std::uint64_t naive_make = 0, rap_make = 0;
    for (std::size_t v = 0; v < std::size(variants); ++v) {
      const auto schedule = gpu::schedule_blocks(
          costs[v], gpu::GridConfig{static_cast<std::uint32_t>(s), 0});
      table.add(schedule.makespan);
      if (v == 0) naive_make = schedule.makespan;
      if (v == 2) rap_make = schedule.makespan;
    }
    table.add(static_cast<double>(naive_make) / static_cast<double>(rap_make),
              2);
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nThe naive/RAP ratio is SM-count-invariant: layout quality is a\n"
      "per-block property, so the single-SM advantage the paper measures\n"
      "carries to the whole GPU unchanged.\n");
  return 0;
}
