// Extension experiment: scheme sweeps over captured traces instead of
// re-built kernels.
//
// Captures every built-in workload ONCE (traces record logical
// addresses, so one capture serves every scheme), then replays each
// trace under RAW / RAS / RAP / PAD, averaging the randomized schemes
// over --trials independent maps. Columns report replayed DMM time and
// max congestion, plus the static analyzer's certificate bound for the
// trace — the same replay-vs-certificate cross-check the campaign
// runner performs, here over the whole catalog.
//
// The shape to look for matches ext_workloads: capture-then-replay is
// exact, so the stride-broken workloads (transpose-srcw,
// reduction-interleaved, matmul-transposedb) collapse under RAW and
// recover under RAP, and the certificate column agrees with the
// replayed congestion wherever the bound is exact.
//
//   $ ext_trace_replay [--width=32] [--latency=1] [--trials=10]
//                      [--seed=1] [--format=ascii|markdown|csv]
//
// With --bench-json=PATH: perf-trajectory mode — capture the catalog
// once, then time replaying every workload under every scheme (one map
// draw each) under the perfbench protocol (--quick / --bench-warmup /
// --bench-repeats). ns_per_op is nanoseconds per replayed access record.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "perfbench/perfbench.hpp"
#include "replay/replay.hpp"
#include "replay/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload_kernels.hpp"

namespace {

using namespace rapsim;

bool randomized(core::Scheme scheme) {
  return scheme == core::Scheme::kRas || scheme == core::Scheme::kRap;
}

int emit_bench(const std::string& path, const util::CliArgs& args,
               std::uint32_t width, std::uint32_t latency,
               std::uint64_t seed) {
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);
  const std::vector<core::Scheme> schemes = {
      core::Scheme::kRaw, core::Scheme::kRas, core::Scheme::kRap,
      core::Scheme::kPad};

  // Capture once (untimed); the timed body replays the whole catalog.
  struct Captured {
    replay::AccessTrace trace;
    std::uint64_t rows = 0;
  };
  std::vector<Captured> captured;
  std::uint64_t records = 0;
  for (const tools::WorkloadKernel& entry : tools::workload_kernels(width)) {
    const auto capture_map =
        core::make_matrix_map(core::Scheme::kRaw, width, entry.rows, seed);
    dmm::Dmm recorder(dmm::DmmConfig{width, latency}, *capture_map);
    Captured c;
    c.trace = replay::capture_run(recorder, entry.kernel);
    c.rows = entry.rows;
    records += c.trace.records.size();
    captured.push_back(std::move(c));
  }

  std::uint64_t sink = 0;
  const perfbench::Aggregate replayed = perfbench::run_timed(
      protocol, records * schemes.size(), [&] {
        for (const Captured& c : captured) {
          for (const core::Scheme scheme : schemes) {
            const auto map =
                core::make_matrix_map(scheme, width, c.rows, seed);
            replay::ReplayOptions options;
            options.latency = latency;
            sink += replay::replay_trace(c.trace, *map, options).stats.time;
          }
        }
      });

  perfbench::BenchReport report("ext_trace_replay");
  report.set_config("width", width);
  report.set_config("latency", latency);
  report.set_config("seed", seed);
  report.set_config("workloads", static_cast<std::uint64_t>(captured.size()));
  report.set_config("records", records);
  report.add("replay_all_workloads", replayed);
  perfbench::write_bench_json(path, report);
  std::printf("wrote %s (checksum %llu)\n", path.c_str(),
              static_cast<unsigned long long>(sink));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const std::uint64_t trials = args.get_uint("trials", 10);
  const std::uint64_t seed = args.get_uint("seed", 1);

  if (const auto bench_path = args.get("bench-json")) {
    return emit_bench(*bench_path, args, width, latency, seed);
  }

  const std::vector<core::Scheme> schemes = {
      core::Scheme::kRaw, core::Scheme::kRas, core::Scheme::kRap,
      core::Scheme::kPad};

  util::TextTable table;
  table.row()
      .add("workload")
      .add("records")
      .add("scheme")
      .add("time")
      .add("max congestion")
      .add("certificate");

  for (const tools::WorkloadKernel& entry : tools::workload_kernels(width)) {
    // One capture per workload; the trace replays under every scheme.
    const auto capture_map =
        core::make_matrix_map(core::Scheme::kRaw, width, entry.rows, seed);
    dmm::Dmm recorder(dmm::DmmConfig{width, latency}, *capture_map);
    const replay::AccessTrace trace =
        replay::capture_run(recorder, entry.kernel);

    for (const core::Scheme scheme : schemes) {
      const std::uint64_t draws = randomized(scheme) ? trials : 1;
      util::OnlineStats time, congestion;
      for (std::uint64_t draw = 0; draw < draws; ++draw) {
        const auto map =
            core::make_matrix_map(scheme, width, entry.rows, seed + draw);
        replay::ReplayOptions options;
        options.latency = latency;
        const replay::ReplayResult result =
            replay::replay_trace(trace, *map, options);
        time.add(static_cast<double>(result.stats.time));
        congestion.add(static_cast<double>(result.stats.max_congestion));
      }
      const analyze::CongestionCertificate certificate =
          replay::certify_trace(trace, scheme);
      char bound[64];
      std::snprintf(bound, sizeof bound, "%s%.2f (%s)",
                    certificate.exact() ? "= " : "E<= ", certificate.bound,
                    certificate.rule.c_str());
      table.row()
          .add(entry.name)
          .add(static_cast<std::uint64_t>(trace.records.size()))
          .add(core::scheme_name(scheme))
          .add(time.mean(), 1)
          .add(congestion.mean(), 2)
          .add(bound);
    }
  }

  std::printf("trace replay scheme sweep: width=%u latency=%u trials=%llu\n",
              width, latency, static_cast<unsigned long long>(trials));
  table.print(std::cout, args.get_table_style());
  return 0;
}
