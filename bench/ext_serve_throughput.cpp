// Extension experiment: throughput of the serve engine on a hot certify
// workload, cold cache vs warm cache.
//
// Drives an in-process serve::Service (no sockets — the subject is the
// engine: routing, admission, the sharded response cache) from
// --clients submitter threads. The cold phase issues --unique distinct
// certify requests round-robin, so every request computes; the warm
// phase replays the same identities, so every request is a cache hit.
// Columns report wall time, requests/second and mean latency per phase;
// the summary line gives the cache-hit speedup — the number the
// response cache exists to deliver. A final coalescing phase hammers
// ONE identity from all clients against a cold cache to show the
// single-flight path.
//
//   $ ext_serve_throughput [--requests=2000] [--unique=64] [--clients=4]
//                          [--workers=0] [--width=32]
//                          [--format=ascii|markdown|csv]
//
// Part of tools/run_all.sh ("serve" section); stdout lands in
// results/ext_serve_throughput.txt.
//
// With --bench-json=PATH: perf-trajectory mode — the cold / warm /
// coalesce phases run once each (every phase is already thousands of
// operations) and each becomes one BENCH metric via
// perfbench::aggregate_latencies: ops_per_sec is true phase throughput,
// ns_per_op / p50 / p95 / p99 are per-REQUEST latency.

#include <atomic>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "perfbench/perfbench.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;
// All timing goes through the shared perfbench steady clock — benches
// must never mix clock sources.
using Clock = perfbench::Clock;

/// One certify request over a distinct stride pattern per identity slot.
std::string certify_line(std::uint64_t identity_slot, std::uint32_t width) {
  const std::uint64_t stride = 1 + identity_slot;
  std::string addresses;
  for (std::uint32_t lane = 0; lane < width; ++lane) {
    if (lane) addresses += ',';
    addresses += std::to_string(lane * stride);
  }
  return R"({"method":"certify","params":{"scheme":"rap","width":)" +
         std::to_string(width) + R"(,"addresses":[)" + addresses + "]}}";
}

struct PhaseResult {
  double seconds = 0.0;
  double requests_per_second = 0.0;
  double mean_latency_us = 0.0;
  std::uint64_t errors = 0;
  util::Tally latency_ns;       // per-request, merged over client threads
  std::uint64_t wall_ns = 0;
};

/// Fire `total` requests from `clients` threads, request i drawing its
/// line from lines[i % lines.size()].
PhaseResult run_phase(serve::Service& service,
                      const std::vector<std::string>& lines,
                      std::uint64_t total, std::uint64_t clients) {
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> errors{0};
  std::mutex tally_mutex;
  util::Tally latency_ns;
  const perfbench::TimePoint start = perfbench::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      util::Tally local;  // merged once at exit, not per request
      for (;;) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= total) break;
        const perfbench::TimePoint sent = perfbench::now();
        const std::string response =
            service.handle_line(lines[i % lines.size()]);
        local.add(perfbench::elapsed_ns(sent));
        if (response.find("\"ok\":true") == std::string::npos) {
          errors.fetch_add(1);
        }
      }
      const std::lock_guard<std::mutex> lock(tally_mutex);
      latency_ns.merge(local);
    });
  }
  for (std::thread& thread : threads) thread.join();

  PhaseResult result;
  result.wall_ns = perfbench::elapsed_ns(start);
  result.seconds = static_cast<double>(result.wall_ns) / 1e9;
  result.requests_per_second =
      result.seconds > 0 ? static_cast<double>(total) / result.seconds : 0;
  util::OnlineStats mean;
  for (const auto& [value, count] : latency_ns.histogram()) {
    mean.add_repeated(static_cast<double>(value), count);
  }
  result.mean_latency_us = mean.mean() / 1000.0;
  result.errors = errors.load();
  result.latency_ns = std::move(latency_ns);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::uint64_t requests = args.get_uint("requests", 2000);
  const std::uint64_t unique = std::max<std::uint64_t>(
      1, args.get_uint("unique", 64));
  const std::uint64_t clients =
      std::max<std::uint64_t>(1, args.get_uint("clients", 4));
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));

  std::vector<std::string> lines;
  lines.reserve(unique);
  for (std::uint64_t slot = 0; slot < unique; ++slot) {
    lines.push_back(certify_line(slot, width));
  }

  serve::ServiceConfig config;
  config.workers = static_cast<std::size_t>(args.get_uint("workers", 0));
  config.cache_capacity = static_cast<std::size_t>(unique * 2);

  if (const auto bench_path = args.get("bench-json")) {
    serve::Service service(config);
    const PhaseResult cold = run_phase(service, lines, requests, clients);
    const PhaseResult warm = run_phase(service, lines, requests, clients);
    serve::Service single(config);
    const std::vector<std::string> one = {certify_line(unique + 1, width)};
    const PhaseResult coalesce =
        run_phase(single, one, clients * 8, clients);
    if (cold.errors + warm.errors + coalesce.errors > 0) {
      std::cerr << "ext_serve_throughput: unexpected request failures\n";
      return 1;
    }

    perfbench::BenchReport report("ext_serve_throughput");
    report.set_config("requests", requests);
    report.set_config("unique", unique);
    report.set_config("clients", clients);
    report.set_config("workers",
                      static_cast<std::uint64_t>(service.worker_threads()));
    report.set_config("width", width);
    report.add("cold",
               perfbench::aggregate_latencies(cold.latency_ns, cold.wall_ns));
    report.add("warm",
               perfbench::aggregate_latencies(warm.latency_ns, warm.wall_ns));
    report.add("coalesce", perfbench::aggregate_latencies(
                               coalesce.latency_ns, coalesce.wall_ns));
    perfbench::write_bench_json(*bench_path, report);
    std::printf("wrote %s\n", bench_path->c_str());
    return 0;
  }

  util::TextTable table;
  table.row()
      .add("phase")
      .add("requests")
      .add("unique")
      .add("seconds")
      .add("req/s")
      .add("mean_us")
      .add("errors");

  serve::Service service(config);
  // Cold: every identity computes at least once (the first `unique`
  // requests miss; round-robin repeats within the phase may coalesce or
  // hit — exactly the mixed regime a compiler driving the daemon sees).
  const PhaseResult cold = run_phase(service, lines, requests, clients);
  table.row()
      .add("cold")
      .add(requests)
      .add(unique)
      .add(cold.seconds, 3)
      .add(cold.requests_per_second, 0)
      .add(cold.mean_latency_us, 1)
      .add(cold.errors);

  // Warm: identical identities, fully cached.
  const PhaseResult warm = run_phase(service, lines, requests, clients);
  table.row()
      .add("warm")
      .add(requests)
      .add(unique)
      .add(warm.seconds, 3)
      .add(warm.requests_per_second, 0)
      .add(warm.mean_latency_us, 1)
      .add(warm.errors);

  // Coalesce: a fresh service, one identity, all clients at once.
  serve::Service single(config);
  const std::vector<std::string> one = {certify_line(unique + 1, width)};
  const PhaseResult coalesce = run_phase(single, one, clients * 8, clients);
  table.row()
      .add("coalesce")
      .add(clients * 8)
      .add(std::uint64_t{1})
      .add(coalesce.seconds, 3)
      .add(coalesce.requests_per_second, 0)
      .add(coalesce.mean_latency_us, 1)
      .add(coalesce.errors);

  table.print(std::cout, args.get_table_style());

  const double speedup = warm.requests_per_second > 0 && cold.seconds > 0
                             ? warm.requests_per_second /
                                   cold.requests_per_second
                             : 0.0;
  std::cout << "\ncache-hit speedup (warm req/s over cold): " << speedup
            << "x\n";
  if (cold.errors + warm.errors + coalesce.errors > 0) {
    std::cerr << "ext_serve_throughput: unexpected request failures\n";
    return 1;
  }
  return 0;
}
