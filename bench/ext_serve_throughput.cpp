// Extension experiment: throughput of the serve engine on a hot certify
// workload, cold cache vs warm cache.
//
// Drives an in-process serve::Service (no sockets — the subject is the
// engine: routing, admission, the sharded response cache) from
// --clients submitter threads. The cold phase issues --unique distinct
// certify requests round-robin, so every request computes; the warm
// phase replays the same identities, so every request is a cache hit.
// Columns report wall time, requests/second and mean latency per phase;
// the summary line gives the cache-hit speedup — the number the
// response cache exists to deliver. A final coalescing phase hammers
// ONE identity from all clients against a cold cache to show the
// single-flight path.
//
//   $ ext_serve_throughput [--requests=2000] [--unique=64] [--clients=4]
//                          [--workers=0] [--width=32]
//                          [--format=ascii|markdown|csv]
//
// Part of tools/run_all.sh ("serve" section); stdout lands in
// results/ext_serve_throughput.txt.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;
using Clock = std::chrono::steady_clock;

/// One certify request over a distinct stride pattern per identity slot.
std::string certify_line(std::uint64_t identity_slot, std::uint32_t width) {
  const std::uint64_t stride = 1 + identity_slot;
  std::string addresses;
  for (std::uint32_t lane = 0; lane < width; ++lane) {
    if (lane) addresses += ',';
    addresses += std::to_string(lane * stride);
  }
  return R"({"method":"certify","params":{"scheme":"rap","width":)" +
         std::to_string(width) + R"(,"addresses":[)" + addresses + "]}}";
}

struct PhaseResult {
  double seconds = 0.0;
  double requests_per_second = 0.0;
  double mean_latency_us = 0.0;
  std::uint64_t errors = 0;
};

/// Fire `total` requests from `clients` threads, request i drawing its
/// line from lines[i % lines.size()].
PhaseResult run_phase(serve::Service& service,
                      const std::vector<std::string>& lines,
                      std::uint64_t total, std::uint64_t clients) {
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> latency_us_sum{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= total) return;
        const Clock::time_point sent = Clock::now();
        const std::string response =
            service.handle_line(lines[i % lines.size()]);
        latency_us_sum.fetch_add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - sent)
                .count()));
        if (response.find("\"ok\":true") == std::string::npos) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PhaseResult result;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.requests_per_second =
      result.seconds > 0 ? static_cast<double>(total) / result.seconds : 0;
  result.mean_latency_us =
      static_cast<double>(latency_us_sum.load()) /
      static_cast<double>(total ? total : 1);
  result.errors = errors.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::uint64_t requests = args.get_uint("requests", 2000);
  const std::uint64_t unique = std::max<std::uint64_t>(
      1, args.get_uint("unique", 64));
  const std::uint64_t clients =
      std::max<std::uint64_t>(1, args.get_uint("clients", 4));
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));

  std::vector<std::string> lines;
  lines.reserve(unique);
  for (std::uint64_t slot = 0; slot < unique; ++slot) {
    lines.push_back(certify_line(slot, width));
  }

  serve::ServiceConfig config;
  config.workers = static_cast<std::size_t>(args.get_uint("workers", 0));
  config.cache_capacity = static_cast<std::size_t>(unique * 2);

  util::TextTable table;
  table.row()
      .add("phase")
      .add("requests")
      .add("unique")
      .add("seconds")
      .add("req/s")
      .add("mean_us")
      .add("errors");

  serve::Service service(config);
  // Cold: every identity computes at least once (the first `unique`
  // requests miss; round-robin repeats within the phase may coalesce or
  // hit — exactly the mixed regime a compiler driving the daemon sees).
  const PhaseResult cold = run_phase(service, lines, requests, clients);
  table.row()
      .add("cold")
      .add(requests)
      .add(unique)
      .add(cold.seconds, 3)
      .add(cold.requests_per_second, 0)
      .add(cold.mean_latency_us, 1)
      .add(cold.errors);

  // Warm: identical identities, fully cached.
  const PhaseResult warm = run_phase(service, lines, requests, clients);
  table.row()
      .add("warm")
      .add(requests)
      .add(unique)
      .add(warm.seconds, 3)
      .add(warm.requests_per_second, 0)
      .add(warm.mean_latency_us, 1)
      .add(warm.errors);

  // Coalesce: a fresh service, one identity, all clients at once.
  serve::Service single(config);
  const std::vector<std::string> one = {certify_line(unique + 1, width)};
  const PhaseResult coalesce = run_phase(single, one, clients * 8, clients);
  table.row()
      .add("coalesce")
      .add(clients * 8)
      .add(std::uint64_t{1})
      .add(coalesce.seconds, 3)
      .add(coalesce.requests_per_second, 0)
      .add(coalesce.mean_latency_us, 1)
      .add(coalesce.errors);

  table.print(std::cout, args.get_table_style());

  const double speedup = warm.requests_per_second > 0 && cold.seconds > 0
                             ? warm.requests_per_second /
                                   cold.requests_per_second
                             : 0.0;
  std::cout << "\ncache-hit speedup (warm req/s over cold): " << speedup
            << "x\n";
  if (cold.errors + warm.errors + coalesce.errors > 0) {
    std::cerr << "ext_serve_throughput: unexpected request failures\n";
    return 1;
  }
  return 0;
}
