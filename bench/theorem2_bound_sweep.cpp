// Validation of Theorem 2: the measured expected congestion of RAP under
// random and adversarial access, swept over w, against the proof's
// envelope E[C] <= 2(3 ln w / ln ln w + 1/2) and the growth rate
// ln w / ln ln w itself.
//
//   $ theorem2_bound_sweep [--widths=8,16,32,64,128,256] [--trials=5000]
//
// With --bench-json=PATH: perf-trajectory mode — time the full
// random+malicious estimation sweep under the perfbench protocol
// (--quick / --bench-warmup / --bench-repeats) and write the BENCH
// document there instead of printing the table.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "core/theory.hpp"
#include "perfbench/perfbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// One item = one simulated warp access: random + malicious estimates
/// (trials each) per width.
int emit_bench(const std::string& path, const rapsim::util::CliArgs& args,
               const std::vector<std::uint64_t>& widths, std::uint64_t trials,
               std::uint64_t seed) {
  using namespace rapsim;
  const perfbench::Protocol protocol = perfbench::protocol_from_args(args);
  double sink = 0.0;
  const perfbench::Aggregate sweep = perfbench::run_timed(
      protocol, static_cast<std::uint64_t>(widths.size()) * 2 * trials, [&] {
        for (const auto w32 : widths) {
          const auto w = static_cast<std::uint32_t>(w32);
          sink += access::estimate_congestion_2d(core::Scheme::kRap,
                                                 access::Pattern2d::kRandom,
                                                 w, trials, seed)
                      .mean;
          sink += access::estimate_congestion_2d(core::Scheme::kRap,
                                                 access::Pattern2d::kMalicious,
                                                 w, trials, seed)
                      .mean;
        }
      });

  perfbench::BenchReport report("theorem2_bound_sweep");
  std::string widths_csv;
  for (const auto w : widths) {
    if (!widths_csv.empty()) widths_csv += ',';
    widths_csv += std::to_string(w);
  }
  report.set_config("widths", widths_csv);
  report.set_config("trials", trials);
  report.set_config("seed", seed);
  report.add("bound_sweep", sweep);
  perfbench::write_bench_json(path, report);
  std::printf("wrote %s (checksum %.3f)\n", path.c_str(), sink);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto widths = args.get_uint_list("widths", {8, 16, 32, 64, 128, 256});
  const std::uint64_t trials = args.get_uint("trials", 5000);
  const std::uint64_t seed = args.get_uint("seed", 2);

  if (const auto bench_path = args.get("bench-json")) {
    return emit_bench(*bench_path, args, widths, trials, seed);
  }

  std::printf(
      "== Theorem 2: measured RAP congestion vs the proof envelope "
      "(%llu trials) ==\n\n",
      static_cast<unsigned long long>(trials));

  util::TextTable table;
  table.row()
      .add("w")
      .add("E[C] random")
      .add("E[C] malicious")
      .add("max observed")
      .add("lnw/lnlnw")
      .add("Gonnet")
      .add("envelope")
      .add("P[C>=2T(w)] measured")
      .add("union bound 2/w");

  for (const auto w32 : widths) {
    const auto w = static_cast<std::uint32_t>(w32);
    const auto rand = access::estimate_congestion_2d(
        core::Scheme::kRap, access::Pattern2d::kRandom, w, trials, seed);
    const auto mal = access::estimate_congestion_2d(
        core::Scheme::kRap, access::Pattern2d::kMalicious, w, trials, seed);
    const auto tally = access::congestion_distribution_2d(
        core::Scheme::kRap, access::Pattern2d::kMalicious, w,
        std::min<std::uint64_t>(trials, 4000), seed);
    const auto tail_threshold =
        static_cast<std::uint64_t>(2.0 * core::lemma4_threshold(w));
    const double lw = std::log(static_cast<double>(w));
    table.row()
        .add(w32)
        .add(rand.mean, 3)
        .add(mal.mean, 3)
        .add(static_cast<std::uint64_t>(std::max(rand.max, mal.max)))
        .add(lw / std::log(lw), 3)
        .add(core::gonnet_expected_max_load(w), 3)
        .add(core::theorem2_expectation_bound(w), 2)
        .add(tally.tail_at_least(tail_threshold), 5)
        .add(2.0 / w, 5);
  }
  table.print(std::cout, args.get_table_style());
  std::printf(
      "\nBoth measured expectations must stay below the envelope for every\n"
      "w, and grow like ln w / ln ln w (ratios between consecutive rows\n"
      "shrink toward 1); the Random column tracks Gonnet's Gamma^-1(w)-3/2\n"
      "law. Contiguous/stride columns are omitted: they are\n"
      "deterministically 1 (tested in tests/properties_test.cpp).\n");
  return 0;
}
