// Ablation: why RAP's diagonal congestion is slightly above RAS's.
//
// Section V: two requests in *different rows* land in the same bank with
// probability 1/w under RAS (independent offsets) but 1/(w-1) under RAP
// (the offsets are distinct permutation entries: given the first row's
// shift, the second avoids exactly one of the remaining w-1 values that
// would separate them... symmetric over the w-1 remaining values, one of
// which collides). This bench measures both probabilities and the
// downstream effect on diagonal congestion, plus the hill-climbing
// adversary as a lower-bound probe that the structured attacks are tight.
//
//   $ ablation_collision_prob [--widths=8,16,32,64] [--trials=200000]

#include <cstdio>
#include <iostream>
#include <memory>

#include "access/adversary.hpp"
#include "access/montecarlo.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto widths = args.get_uint_list("widths", {8, 16, 32, 64});
  const std::uint64_t trials = args.get_uint("trials", 200000);
  const std::uint64_t seed = args.get_uint("seed", 4);

  std::printf("== Ablation: pairwise collision probability, RAS vs RAP ==\n\n");

  util::TextTable table;
  table.row()
      .add("w")
      .add("P[collide] RAS")
      .add("1/w")
      .add("P[collide] RAP")
      .add("1/(w-1)")
      .add("diag E[C] RAS")
      .add("diag E[C] RAP");

  for (const auto w64 : widths) {
    const auto w = static_cast<std::uint32_t>(w64);
    // Measure: cells (0, 0) and (1, 1) — different rows AND different
    // columns ("distant addresses"). Same-column pairs can never collide
    // under RAP (the permutation entries are distinct), which is exactly
    // the stride guarantee; the interesting case is a nonzero column
    // difference d, where RAP collides iff p_0 - p_1 = d: probability
    // 1/(w-1) vs RAS's 1/w.
    std::uint64_t ras_hits = 0, rap_hits = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto ras = core::make_matrix_map(core::Scheme::kRas, w, w, seed + t);
      const auto rap = core::make_matrix_map(core::Scheme::kRap, w, w, seed + t);
      ras_hits += ras->bank_of(ras->index(0, 0)) == ras->bank_of(ras->index(1, 1));
      rap_hits += rap->bank_of(rap->index(0, 0)) == rap->bank_of(rap->index(1, 1));
    }
    const auto diag_ras = access::estimate_congestion_2d(
        core::Scheme::kRas, access::Pattern2d::kDiagonal, w, trials / 10, seed);
    const auto diag_rap = access::estimate_congestion_2d(
        core::Scheme::kRap, access::Pattern2d::kDiagonal, w, trials / 10, seed);
    table.row()
        .add(w64)
        .add(static_cast<double>(ras_hits) / static_cast<double>(trials), 4)
        .add(1.0 / w, 4)
        .add(static_cast<double>(rap_hits) / static_cast<double>(trials), 4)
        .add(1.0 / (w - 1), 4)
        .add(diag_ras.mean, 3)
        .add(diag_rap.mean, 3);
  }
  table.print(std::cout, args.get_table_style());

  // Adversary-search probe: does an unstructured hill-climber beat the
  // structured one-cell-per-row adversary against RAP at w = 16?
  std::printf("\n-- adversary search probe (RAP, w = 16) --\n");
  const std::uint32_t w = 16;
  const auto searched = access::search_adversary(
      [&](std::uint64_t s) {
        return core::make_matrix_map(core::Scheme::kRap, w, w, s);
      },
      w, static_cast<std::uint64_t>(w) * w, 400, 32, seed);
  const auto structured = access::estimate_congestion_2d(
      core::Scheme::kRap, access::Pattern2d::kMalicious, w, 5000, seed);
  std::printf("structured adversary E[C] = %.3f\n", structured.mean);
  std::printf("hill-climber found    E[C] = %.3f (over its sample draws)\n",
              searched.mean_congestion);
  std::printf(
      "\nThe hill-climber cannot durably beat the structured attack: RAP's\n"
      "draw is fresh each trial, so only the placement *structure* helps,\n"
      "and one-cell-per-row already maximizes the collision surface.\n");
  return 0;
}
