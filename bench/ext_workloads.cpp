// Extension experiment: beyond transpose — reduction, bitonic sort and
// w x w matmul on the DMM under every 2-D scheme (plus the PAD baseline).
//
// Prints per-workload DMM time and worst warp congestion. The shape to
// look for:
//   * interleaved reduction and transposed-B matmul are stride-broken
//     under RAW and rescued by RAP;
//   * sequential reduction, row-major matmul and bitonic sort are already
//     well-behaved and RAP does not break them;
//   * PAD fixes the aligned strides for free but is fragile (see
//     ablation_padding_vs_rap for its adversarial collapse).
//
//   $ ext_workloads [--width=32] [--n=2048] [--seeds=10]

#include <cstdio>
#include <functional>
#include <iostream>
#include <utility>

#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/bitonic.hpp"
#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/reduction.hpp"

namespace {

using namespace rapsim;

struct Cell {
  double time = 0;
  double max_congestion = 0;
  bool correct = true;
};

template <typename RunFn>
Cell average(core::Scheme scheme, std::uint64_t seeds, RunFn run) {
  const std::uint64_t n =
      (scheme == core::Scheme::kRaw || scheme == core::Scheme::kPad) ? 1
                                                                     : seeds;
  Cell cell;
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const auto [stats, ok] = run(scheme, seed);
    cell.time += static_cast<double>(stats.time);
    cell.max_congestion += stats.max_congestion;
    cell.correct &= ok;
  }
  cell.time /= static_cast<double>(n);
  cell.max_congestion /= static_cast<double>(n);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t n = args.get_uint("n", 2048);
  const std::uint64_t seeds = args.get_uint("seeds", 10);

  std::printf(
      "== Extension: reduction / bitonic / matmul under each scheme "
      "(w = %u, n = %llu) ==\n\n",
      width, static_cast<unsigned long long>(n));

  const core::Scheme schemes[] = {core::Scheme::kRaw, core::Scheme::kPad,
                                  core::Scheme::kRas, core::Scheme::kRap};

  const struct {
    const char* label;
    std::function<std::pair<dmm::RunStats, bool>(core::Scheme, std::uint64_t)>
        run;
  } rows[] = {
      {"reduce interleaved",
       [&](core::Scheme s, std::uint64_t seed) {
         const auto r = workloads::run_reduction(
             workloads::ReductionVariant::kInterleaved, s, n, width, 1, seed);
         return std::make_pair(r.stats, r.correct);
       }},
      {"reduce sequential",
       [&](core::Scheme s, std::uint64_t seed) {
         const auto r = workloads::run_reduction(
             workloads::ReductionVariant::kSequential, s, n, width, 1, seed);
         return std::make_pair(r.stats, r.correct);
       }},
      {"bitonic sort",
       [&](core::Scheme s, std::uint64_t seed) {
         const auto r = workloads::run_bitonic_sort(s, n, width, 1, seed);
         return std::make_pair(r.stats, r.sorted && r.is_permutation);
       }},
      {"matmul row-major B",
       [&](core::Scheme s, std::uint64_t seed) {
         const auto r = workloads::run_matmul(
             workloads::MatmulLayout::kRowMajorB, s, width, 1, seed);
         return std::make_pair(r.stats, r.correct);
       }},
      {"matmul transposed B",
       [&](core::Scheme s, std::uint64_t seed) {
         const auto r = workloads::run_matmul(
             workloads::MatmulLayout::kTransposedB, s, width, 1, seed);
         return std::make_pair(r.stats, r.correct);
       }},
      {"histogram uniform",
       [&](core::Scheme s, std::uint64_t seed) {
         const workloads::HistogramConfig config{width, 2 * width, 32};
         const auto input = workloads::make_input(config, 0.0, 42);
         const auto r = workloads::run_histogram(config, s, input, seed);
         return std::make_pair(r.stats, r.correct);
       }},
      {"histogram skewed",
       [&](core::Scheme s, std::uint64_t seed) {
         const workloads::HistogramConfig config{width, 2 * width, 32};
         const auto input = workloads::make_input(config, 0.95, 42);
         const auto r = workloads::run_histogram(config, s, input, seed);
         return std::make_pair(r.stats, r.correct);
       }},
  };

  util::TextTable table;
  table.row().add("workload");
  for (const auto s : schemes) {
    table.add(std::string(core::scheme_name(s)) + " time");
    table.add(std::string(core::scheme_name(s)) + " maxC");
  }
  table.add("all correct");

  for (const auto& row : rows) {
    table.row().add(row.label);
    bool all_correct = true;
    for (const auto s : schemes) {
      const Cell cell = average(s, seeds, row.run);
      all_correct &= cell.correct;
      table.add(cell.time, 0).add(cell.max_congestion, 1);
    }
    table.add(all_correct ? "yes" : "NO");
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nInterleaved reduction, transposed-B matmul and the skewed\n"
      "privatized histogram are the layout-broken kernels: RAW pays up to\n"
      "w-way conflicts (for the histogram through non-mergeable atomics),\n"
      "RAP collapses them with no code change. The well-behaved rows show\n"
      "RAP's overhead side: never worse than a small constant.\n");
  return 0;
}
