// Reproduction of Table I: the memory access congestion of the RAW, RAS
// and RAP implementations for Any (adversarial), Contiguous and Stride
// access.
//
// The paper's Table I is analytic (w for RAW "any"/stride, 1 for the
// conflict-free cells, O(log w / log log w) for the randomized cells);
// this bench prints the paper's claims side by side with *measured*
// expectations at w = 32 so the asymptotic entries get concrete values,
// plus the Theorem 2 envelope for reference.
//
//   $ table1_congestion_summary [--width=32] [--trials=20000] [--seed=1]

#include <cstdio>
#include <iostream>

#include "access/montecarlo.hpp"
#include "core/factory.hpp"
#include "core/theory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t trials = args.get_uint("trials", 20000);
  const std::uint64_t seed = args.get_uint("seed", 1);

  std::printf("== Table I: congestion of RAW / RAS / RAP (w = %u) ==\n",
              width);
  std::printf("paper claims: Any = {w, O(ln w/ln ln w), O(ln w/ln ln w)}, "
              "Contiguous = 1 everywhere, Stride = {w, O(...), 1}\n\n");

  const struct {
    const char* label;
    access::Pattern2d pattern;
  } rows[] = {
      {"Any (malicious)", access::Pattern2d::kMalicious},
      {"Contiguous", access::Pattern2d::kContiguous},
      {"Stride", access::Pattern2d::kStride},
  };

  util::TextTable table;
  table.row().add("access");
  for (const core::Scheme s : core::table2_schemes()) {
    table.add(std::string("E[C] ") + core::scheme_name(s));
  }
  table.add("paper RAW").add("paper RAS").add("paper RAP");

  const std::string olog = "O(lnw/lnlnw)";
  const char* paper[3][3] = {
      {"w", olog.c_str(), olog.c_str()},
      {"1", "1", "1"},
      {"w", olog.c_str(), "1"},
  };

  for (std::size_t r = 0; r < 3; ++r) {
    table.row().add(rows[r].label);
    for (const core::Scheme scheme : core::table2_schemes()) {
      const auto est = access::estimate_congestion_2d(scheme, rows[r].pattern,
                                                      width, trials, seed);
      table.add(est.mean, 2);
    }
    for (const char* cell : paper[r]) table.add(cell);
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nTheorem 2 envelope at w = %u: E[C] <= %.2f "
      "(2*(3 ln w/ln ln w + 1/2)); Lemma 4 per-bank tail bound %.2e.\n",
      width, core::theorem2_expectation_bound(width),
      core::lemma4_tail_bound(width));
  return 0;
}
