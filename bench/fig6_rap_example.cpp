// Reproduction of Figure 6: the random address permute-shift example for
// w = 4 with permutation p = (2, 0, 3, 1). Prints the logical matrix, the
// physical (rotated) layout, and the resulting bank of each element, then
// verifies the two properties the figure illustrates: every row AND every
// column touches all four banks.

#include <cstdio>
#include <set>

#include "core/mapping2d.hpp"

int main() {
  using namespace rapsim;
  constexpr std::uint32_t kWidth = 4;
  const core::Permutation p({2, 0, 3, 1});
  const core::RapMap map(kWidth, kWidth, p);

  std::printf("== Figure 6: RAP example, w = 4, p = %s ==\n\n",
              p.to_string().c_str());

  std::printf("physical layout (value stored at each bank column):\n");
  std::printf("        B[0] B[1] B[2] B[3]\n");
  // Invert: for each physical slot, find the logical value stored there.
  for (std::uint32_t i = 0; i < kWidth; ++i) {
    std::printf("row %u:", i);
    std::uint64_t row_vals[kWidth];
    for (std::uint32_t j = 0; j < kWidth; ++j) {
      const std::uint64_t phys = map.translate(map.index(i, j));
      row_vals[phys % kWidth] = map.index(i, j);
    }
    for (std::uint32_t b = 0; b < kWidth; ++b) {
      std::printf("  %3llu", static_cast<unsigned long long>(row_vals[b]));
    }
    std::printf("   (rotated by p_%u = %u)\n", i, p[i]);
  }

  bool ok = true;
  for (std::uint32_t i = 0; i < kWidth; ++i) {
    std::set<std::uint32_t> row_banks;
    for (std::uint32_t j = 0; j < kWidth; ++j) {
      row_banks.insert(map.bank_of(map.index(i, j)));
    }
    ok &= row_banks.size() == kWidth;
  }
  std::printf("\nevery row touches all banks (contiguous congestion 1): %s\n",
              ok ? "yes" : "NO");

  bool cols_ok = true;
  for (std::uint32_t j = 0; j < kWidth; ++j) {
    std::set<std::uint32_t> col_banks;
    for (std::uint32_t i = 0; i < kWidth; ++i) {
      col_banks.insert(map.bank_of(map.index(i, j)));
    }
    cols_ok &= col_banks.size() == kWidth;
  }
  std::printf("every column touches all banks (stride congestion 1): %s\n",
              cols_ok ? "yes" : "NO");

  return (ok && cols_ok) ? 0 : 1;
}
