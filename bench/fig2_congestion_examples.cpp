// Reproduction of Figure 2: three worked examples of memory access and
// congestion on a 16-word memory with w = 4 banks.
//
//   (1) threads access {7, 5, 2, 0}  -> distinct banks, congestion 1
//   (2) threads access {1, 5, 9, 13} -> all bank 1, congestion 4
//   (3) threads access {10,10,10,10} -> merged into one request, congestion 1

#include <cstdio>
#include <vector>

#include "core/congestion.hpp"

int main() {
  using namespace rapsim;
  constexpr std::uint32_t kWidth = 4;

  const struct {
    const char* label;
    std::vector<std::uint64_t> addrs;
    std::uint32_t expected;
  } examples[] = {
      {"(1) distinct banks", {7, 5, 2, 0}, 1},
      {"(2) same bank", {1, 5, 9, 13}, 4},
      {"(3) same address (merged)", {10, 10, 10, 10}, 1},
  };

  std::printf("== Figure 2: memory access congestion examples (w = 4) ==\n\n");
  bool all_match = true;
  for (const auto& ex : examples) {
    const auto r = core::congestion_of_physical(ex.addrs, kWidth);
    std::printf("%s: threads access {", ex.label);
    for (std::size_t i = 0; i < ex.addrs.size(); ++i) {
      std::printf("%s%llu", i ? ", " : "",
                  static_cast<unsigned long long>(ex.addrs[i]));
    }
    std::printf("}\n  banks:");
    for (const auto a : ex.addrs) {
      std::printf(" B[%llu]", static_cast<unsigned long long>(a % kWidth));
    }
    std::printf("  -> %u unique requests, congestion %u (paper: %u) %s\n\n",
                r.unique_requests, r.congestion, ex.expected,
                r.congestion == ex.expected ? "OK" : "MISMATCH");
    all_match &= (r.congestion == ex.expected);
  }
  std::printf("%s\n", all_match ? "all three examples reproduce the paper"
                                : "MISMATCH against the paper");
  return all_match ? 0 : 1;
}
