// Reproduction of Table III: congestion on the DMM and computing time for
// the CRSW, SRCW and DRDW transpose algorithms under the RAW, RAS and RAP
// implementations (32 x 32 matrix).
//
// Paper values (GeForce GTX TITAN):
//
//                 RAW           RAS             RAP
//                 r/w    ns     r/w      ns     r/w      ns
//   CRSW          1/32   1595   1/3.53   303.6  1/1      154.5
//   SRCW          32/1   1596   3.53/1   297.1  1/1      159.1
//   DRDW          1/1    158.4  3.53/3.53 427.4 3.61/3.61 433.3
//
// Our "time" column is the calibrated SM timing model applied to the DMM
// trace (no GPU in this environment — see DESIGN.md section 2); the two
// RAW anchors are calibrated, everything else is predicted.
//
//   $ table3_transpose_gpu [--width=32] [--latency=1] [--seeds=500]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "gpu/sm_model.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const std::uint64_t seeds = args.get_uint("seeds", 500);
  const auto params = gpu::SmTimingParams::titan_calibrated();

  const double paper_ns[3][3] = {
      {1595.0, 303.6, 154.5},  // CRSW: RAW RAS RAP
      {1596.0, 297.1, 159.1},  // SRCW
      {158.4, 427.4, 433.3},   // DRDW
  };

  std::printf(
      "== Table III: transpose congestion on the DMM + modeled GPU time "
      "(w = %u, %llu seeds) ==\n\n",
      width, static_cast<unsigned long long>(seeds));

  util::TextTable table;
  table.row()
      .add("algorithm")
      .add("scheme")
      .add("read cong")
      .add("write cong")
      .add("model ns")
      .add("paper ns")
      .add("model/paper");

  const transpose::Algorithm algs[] = {transpose::Algorithm::kCrsw,
                                       transpose::Algorithm::kSrcw,
                                       transpose::Algorithm::kDrdw};
  for (std::size_t a = 0; a < 3; ++a) {
    const auto& schemes = core::table2_schemes();
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      double read = 0, write = 0, ns = 0;
      bool correct = true;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto r =
            transpose::run_transpose(algs[a], schemes[s], width, latency, seed);
        correct &= r.correct;
        read += r.read.avg;
        write += r.write.avg;
        ns += gpu::estimate_time_ns(r.stats.total_stages, r.stats.dispatches,
                                    schemes[s], params);
      }
      const auto n = static_cast<double>(seeds);
      if (!correct) std::printf("!! INCORRECT TRANSPOSE DETECTED !!\n");
      table.row()
          .add(transpose::algorithm_name(algs[a]))
          .add(core::scheme_name(schemes[s]))
          .add(read / n, 2)
          .add(write / n, 2)
          .add(ns / n, 1)
          .add(paper_ns[a][s], 1)
          .add(ns / n / paper_ns[a][s], 2);
    }
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nHeadline checks: RAP ~10x faster than RAW on CRSW/SRCW, ~2x faster\n"
      "than RAS, and ~2.5-3x slower than RAW on the (hand-optimized) DRDW.\n"
      "Times for w != 32 reuse the w = 32 calibration and are indicative\n"
      "only.\n");
  return 0;
}
