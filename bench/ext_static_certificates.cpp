// Extension: the static analyzer's certificates side by side with the
// Monte Carlo simulator. For each canonical access pattern and scheme,
// print the proof rule that fired, the certified bound (= exact, <=
// expected), and the simulated mean/max congestion over many draws —
// the table makes the prover's tightness visible at a glance.
//
//   $ ext_static_certificates [--width=32] [--draws=200] [--seed=1]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/certificate.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace rapsim;

std::vector<std::uint64_t> pattern_trace(const std::string& name,
                                         std::uint32_t w) {
  std::vector<std::uint64_t> trace;
  for (std::uint32_t t = 0; t < w; ++t) {
    if (name == "contiguous") {
      trace.push_back(t);
    } else if (name == "column") {
      trace.push_back(static_cast<std::uint64_t>(t) * w);
    } else if (name == "diagonal") {
      trace.push_back(static_cast<std::uint64_t>(t) * w + t % w);
    } else if (name == "anti-diagonal") {
      trace.push_back(static_cast<std::uint64_t>(t) * w +
                      (static_cast<std::uint64_t>(w - 1) * t) % w);
    } else if (name == "flat-stride-2") {
      trace.push_back(2ull * t);
    } else if (name == "broadcast") {
      trace.push_back(7);
    }
  }
  return trace;
}

std::string bound_cell(const analyze::CongestionCertificate& cert) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%g", cert.exact() ? "=" : "<=",
                cert.bound);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto w = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const std::uint64_t draws = args.get_uint("draws", 200);
  const std::uint64_t seed = args.get_uint("seed", 1);
  const std::uint64_t rows = w;

  std::printf(
      "== Static congestion certificates vs simulation (w=%u, %llu draws) "
      "==\n\n",
      w, static_cast<unsigned long long>(draws));

  util::TextTable table;
  table.row()
      .add("pattern")
      .add("scheme")
      .add("rule")
      .add("certified")
      .add("sim mean")
      .add("sim max");

  const char* patterns[] = {"contiguous",    "column",       "diagonal",
                            "anti-diagonal", "flat-stride-2", "broadcast"};
  bool all_sound = true;
  for (const char* name : patterns) {
    const auto trace = pattern_trace(name, w);
    for (const core::Scheme scheme :
         {core::Scheme::kRaw, core::Scheme::kPad, core::Scheme::kRas,
          core::Scheme::kRap}) {
      const auto cert = analyze::prove_trace(trace, w, rows * w, scheme);
      const std::uint64_t n =
          cert.exact() ? std::min<std::uint64_t>(draws, 32) : draws;
      double sum = 0.0;
      std::uint32_t worst = 0;
      for (std::uint64_t d = 0; d < n; ++d) {
        const auto map = core::make_matrix_map(scheme, w, rows, seed + d);
        const std::uint32_t c = core::congestion_value(trace, *map);
        sum += c;
        worst = std::max(worst, c);
      }
      const double mean = sum / static_cast<double>(n);
      const bool sound = cert.exact()
                             ? static_cast<double>(worst) == cert.bound &&
                                   mean == cert.bound
                             : mean <= cert.bound + 1e-9;
      all_sound = all_sound && sound;
      table.row()
          .add(name)
          .add(core::scheme_name(scheme))
          .add(cert.rule)
          .add(bound_cell(cert))
          .add(mean, 3)
          .add(static_cast<std::uint64_t>(worst));
    }
  }
  table.print(std::cout, args.get_table_style());

  std::printf(
      "\nExact certificates (=) must match the simulated congestion on\n"
      "every draw; expected-upper ones (<=) must dominate the simulated\n"
      "mean. %s\n",
      all_sound ? "All certificates check out."
                : "CERTIFICATE VIOLATION DETECTED!");
  return all_sound ? 0 : 1;
}
