// Validation of Lemma 1: DMM computing time of the three transpose
// algorithms across a (width, latency) sweep. The paper gives CRSW/SRCW =
// O(w^2 + l) and DRDW = O(w + l) using w^2 threads; this bench prints the
// simulated times next to the slot-count lower bounds so the asymptotics
// are visible.
//
//   $ lemma1_dmm_time [--widths=4,8,16,32] [--latencies=1,4,16,64]

#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto widths = args.get_uint_list("widths", {4, 8, 16, 32});
  const auto latencies = args.get_uint_list("latencies", {1, 4, 16, 64});

  std::printf("== Lemma 1: DMM transpose times (RAW implementation) ==\n");
  std::printf("paper: CRSW, SRCW = O(w^2 + l); DRDW = O(w + l)\n\n");

  util::TextTable table;
  table.row()
      .add("w")
      .add("l")
      .add("CRSW time")
      .add("SRCW time")
      .add("DRDW time")
      .add("w^2+l-1")
      .add("2w+l");

  for (const auto w : widths) {
    for (const auto l : latencies) {
      const auto crsw = transpose::run_transpose(
          transpose::Algorithm::kCrsw, core::Scheme::kRaw,
          static_cast<std::uint32_t>(w), static_cast<std::uint32_t>(l), 1);
      const auto srcw = transpose::run_transpose(
          transpose::Algorithm::kSrcw, core::Scheme::kRaw,
          static_cast<std::uint32_t>(w), static_cast<std::uint32_t>(l), 1);
      const auto drdw = transpose::run_transpose(
          transpose::Algorithm::kDrdw, core::Scheme::kRaw,
          static_cast<std::uint32_t>(w), static_cast<std::uint32_t>(l), 1);
      table.row()
          .add(w)
          .add(l)
          .add(crsw.stats.time)
          .add(srcw.stats.time)
          .add(drdw.stats.time)
          .add(w * w + l - 1)
          .add(2 * w + l);
    }
  }
  table.print(std::cout, args.get_table_style());
  std::printf(
      "\nCRSW/SRCW track w^2 + l (stride phase dominates); DRDW tracks\n"
      "2w + l (both phases conflict-free). The RAP implementation turns\n"
      "CRSW/SRCW into the DRDW column — see table3_transpose_gpu.\n");
  return 0;
}
