// Reproduction of Figure 4: the contiguous, stride and diagonal access
// operations for w = 4, printed as thread-to-cell maps with their banks
// and congestion.

#include <cstdio>

#include "access/pattern2d.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"

int main() {
  using namespace rapsim;
  constexpr std::uint32_t kWidth = 4;
  const auto map = core::make_matrix_map(core::Scheme::kRaw, kWidth, kWidth, 1);
  util::Pcg32 rng(1);

  std::printf("== Figure 4: fundamental access operations (w = 4, RAW) ==\n");

  const access::Pattern2d patterns[] = {access::Pattern2d::kContiguous,
                                        access::Pattern2d::kStride,
                                        access::Pattern2d::kDiagonal};
  for (const auto pattern : patterns) {
    std::printf("\n-- %s access --\n", access::pattern2d_name(pattern));
    // Show the full operation: one warp per row/column/diagonal index.
    std::uint32_t worst = 0;
    for (std::uint32_t warp = 0; warp < kWidth; ++warp) {
      const auto addrs = access::warp_addresses_2d(pattern, *map, warp, rng);
      const auto r = core::congestion_of_logical(addrs, *map);
      worst = std::max(worst, r.congestion);
      std::printf("warp %u -> cells", warp);
      for (const auto a : addrs) {
        std::printf(" (%llu,%llu)", static_cast<unsigned long long>(a / kWidth),
                    static_cast<unsigned long long>(a % kWidth));
      }
      std::printf("  banks");
      for (const auto a : addrs) {
        std::printf(" %u", map->bank_of(a));
      }
      std::printf("  congestion %u\n", r.congestion);
    }
    std::printf("operation congestion: %u (paper: %s)\n", worst,
                pattern == access::Pattern2d::kStride ? "w" : "1");
  }
  return 0;
}
