#!/usr/bin/env bash
# Build the whole tree with ASan + UBSan (RAPSIM_SANITIZE=ON) in a
# dedicated build-asan/ directory and run the tier-1 test suite under the
# instrumented binaries.
#
#   tools/run_sanitized.sh [extra ctest args...]
#
# Keeps the regular build/ untouched; re-runs are incremental.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-asan"

cmake -B "$BUILD" -S "$ROOT" -DRAPSIM_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error keeps a UBSan report from scrolling past unnoticed;
# detect_leaks stays on (the default) to catch allocator misuse in tests.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cd "$BUILD"
ctest --output-on-failure -j "$(nproc)" "$@"
