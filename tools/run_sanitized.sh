#!/usr/bin/env bash
# Build the whole tree under a sanitizer set and run tests against the
# instrumented binaries.
#
#   tools/run_sanitized.sh [extra ctest args...]          # ASan + UBSan
#   tools/run_sanitized.sh --tsan [extra ctest args...]   # ThreadSanitizer
#
# The default mode builds with RAPSIM_SANITIZE=ON (ASan + UBSan) in
# build-asan/ and runs the full tier-1 suite. --tsan builds with
# RAPSIM_SANITIZE=thread in build-tsan/ and runs the concurrency-bearing
# suites (serve transport, worker-pool campaign, parallel helpers) —
# the host-side counterpart of the guest-side race verifier. Exits 77
# (the autotools SKIP convention) when the toolchain cannot link TSan
# binaries, so CI treats an absent runtime as skipped, not failed.
# Keeps the regular build/ untouched; re-runs are incremental.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

MODE=address
if [[ "${1:-}" == "--tsan" ]]; then
  MODE=thread
  shift
fi

if [[ "$MODE" == "thread" ]]; then
  BUILD="$ROOT/build-tsan"

  # Probe for a working TSan toolchain before the expensive build: some
  # images ship the compiler flag but not libtsan.
  probe="$(mktemp -d)"
  trap 'rm -rf "$probe"' EXIT
  echo 'int main() { return 0; }' > "$probe/probe.cpp"
  if ! c++ -fsanitize=thread "$probe/probe.cpp" -o "$probe/probe" \
      >/dev/null 2>&1; then
    echo "run_sanitized.sh: ThreadSanitizer unavailable (cannot link" \
         "-fsanitize=thread); skipping" >&2
    exit 77
  fi

  cmake -B "$BUILD" -S "$ROOT" -DRAPSIM_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=Debug
  cmake --build "$BUILD" -j "$(nproc)"

  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

  cd "$BUILD"
  # The threaded subset: socket serve transport, campaign worker pool,
  # and the parallel utility layer.
  ctest --output-on-failure -j "$(nproc)" \
    -R "Serve|Campaign|Parallel" "$@"
  exit 0
fi

BUILD="$ROOT/build-asan"

cmake -B "$BUILD" -S "$ROOT" -DRAPSIM_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error keeps a UBSan report from scrolling past unnoticed;
# detect_leaks stays on (the default) to catch allocator misuse in tests.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cd "$BUILD"
ctest --output-on-failure -j "$(nproc)" "$@"
