// rapsim-hier: the multi-SM memory-hierarchy simulator driver.
//
// Runs one catalog workload (or an assembled `.rvm` VM program) on N
// streaming multiprocessors, each with its own banked shared memory
// under the chosen address scheme, a pluggable warp scheduler, and an
// L1/L2/DRAM global-memory path with shared L2/DRAM ports (src/hier/).
//
// Quickstarts:
//
//   rapsim-hier --workload=bitonic --width=32 --sms=4 --scheduler=gto
//   rapsim-hier --workload=transpose-crsw --scheme=rap --seed=7
//       --sms=2 --format=json
//   rapsim-hier --program=examples/shearsort.rvm --width=16 --path=off
//   rapsim-hier --list-workloads
//   rapsim-hier --list-schedulers
//
// --path=off disables the global-memory path entirely (the differential
// configuration: with --sms=1 --scheduler=roundrobin the run reproduces
// the plain Dmm bit for bit). With the path on, the cache geometry is
// PathParams::defaults() unless overridden by --line-words, --l1-lines,
// --l1-latency, --l2-lines, --l2-latency, --l2-service, --dram-latency,
// --dram-service and --mshrs.
//
// --format=json emits one machine-readable document on stdout
// (schema_version 1, validated by tools/check_hier_schema.sh); the
// default is a short human-readable summary.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "hier/hier.hpp"
#include "core/factory.hpp"
#include "replay/campaign.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "util/cli.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "workload_kernels.hpp"

namespace {

using namespace rapsim;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

hier::PathParams path_from_args(const util::CliArgs& args) {
  const std::string mode = args.get_string("path", "on");
  if (mode == "off") return hier::PathParams::zero();
  if (mode != "on") {
    throw std::invalid_argument("--path must be on or off, got " + mode);
  }
  hier::PathParams p = hier::PathParams::defaults();
  p.line_words =
      static_cast<std::uint32_t>(args.get_uint("line-words", p.line_words));
  if (p.line_words == 0) {
    throw std::invalid_argument("--line-words must be > 0 (use --path=off)");
  }
  p.l1.lines = args.get_uint("l1-lines", p.l1.lines);
  p.l1.latency =
      static_cast<std::uint32_t>(args.get_uint("l1-latency", p.l1.latency));
  p.l2.lines = args.get_uint("l2-lines", p.l2.lines);
  p.l2.latency =
      static_cast<std::uint32_t>(args.get_uint("l2-latency", p.l2.latency));
  p.l2_service =
      static_cast<std::uint32_t>(args.get_uint("l2-service", p.l2_service));
  p.dram_latency = static_cast<std::uint32_t>(
      args.get_uint("dram-latency", p.dram_latency));
  p.dram_service = static_cast<std::uint32_t>(
      args.get_uint("dram-service", p.dram_service));
  p.mshrs = static_cast<std::uint32_t>(args.get_uint("mshrs", p.mshrs));
  return p;
}

void write_json(const std::string& workload, core::Scheme scheme,
                std::uint64_t seed, const hier::HierConfig& config,
                const hier::HierResult& result,
                const telemetry::MetricsRegistry& registry) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", std::uint64_t{1});
  w.key("config");
  w.begin_object();
  w.kv("workload", workload);
  w.kv("width", std::uint64_t{config.width});
  w.kv("sms", std::uint64_t{config.sms});
  w.kv("scheduler", config.scheduler);
  w.kv("scheme", core::scheme_name(scheme));
  w.kv("seed", seed);
  w.kv("latency", std::uint64_t{config.shared_latency});
  w.key("path");
  w.begin_object();
  w.kv("enabled", config.path.enabled());
  w.kv("line_words", std::uint64_t{config.path.line_words});
  w.kv("l1_lines", config.path.l1.lines);
  w.kv("l1_latency", std::uint64_t{config.path.l1.latency});
  w.kv("l2_lines", config.path.l2.lines);
  w.kv("l2_latency", std::uint64_t{config.path.l2.latency});
  w.kv("l2_service", std::uint64_t{config.path.l2_service});
  w.kv("dram_latency", std::uint64_t{config.path.dram_latency});
  w.kv("dram_service", std::uint64_t{config.path.dram_service});
  w.kv("mshrs", std::uint64_t{config.path.mshrs});
  w.end_object();
  w.end_object();
  w.key("total");
  w.begin_object();
  w.kv("cycles", result.cycles);
  w.kv("dispatches", result.dispatches);
  w.kv("total_stages", result.total_stages);
  w.kv("max_congestion", std::uint64_t{result.max_congestion});
  w.kv("avg_congestion", result.avg_congestion);
  w.kv("l2_hits", result.l2_hits);
  w.kv("l2_misses", result.l2_misses);
  w.kv("l2_queue_cycles", result.l2_queue_cycles);
  w.kv("est_ns", result.est_ns);
  w.end_object();
  w.key("sms");
  w.begin_array();
  for (const hier::SmStats& sm : result.sms) {
    w.begin_object();
    w.kv("sm", std::uint64_t{sm.sm});
    w.kv("cycles", sm.run.time);
    w.kv("dispatches", sm.run.dispatches);
    w.kv("total_stages", sm.run.total_stages);
    w.kv("max_congestion", std::uint64_t{sm.run.max_congestion});
    w.kv("avg_congestion", sm.run.avg_congestion);
    w.kv("l1_hits", sm.l1_hits);
    w.kv("l1_misses", sm.l1_misses);
    w.kv("l2_hits", sm.l2_hits);
    w.kv("dram_fills", sm.dram_fills);
    w.kv("mshr_stall_cycles", sm.mshr_stall_cycles);
    w.kv("mem_wait_cycles", sm.mem_wait_cycles);
    w.kv("idle_slots", sm.idle_slots);
    w.kv("warp_stall_slots", sm.warp_stall_slots);
    w.kv("est_ns", sm.est_ns);
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.raw_value(registry.to_json());
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

void write_ascii(const std::string& workload, core::Scheme scheme,
                 const hier::HierConfig& config,
                 const hier::HierResult& result) {
  std::printf("workload %s  scheme %s  width %u  sms %u  scheduler %s\n",
              workload.c_str(), core::scheme_name(scheme), config.width,
              config.sms, config.scheduler.c_str());
  std::printf(
      "total: cycles %llu  dispatches %llu  stages %llu  max-cong %u  "
      "avg-cong %.3f  est %.1f ns\n",
      static_cast<unsigned long long>(result.cycles),
      static_cast<unsigned long long>(result.dispatches),
      static_cast<unsigned long long>(result.total_stages),
      result.max_congestion, result.avg_congestion, result.est_ns);
  if (config.path.enabled()) {
    std::printf("shared: l2-hits %llu  l2-misses %llu  queue %llu cycles\n",
                static_cast<unsigned long long>(result.l2_hits),
                static_cast<unsigned long long>(result.l2_misses),
                static_cast<unsigned long long>(result.l2_queue_cycles));
  }
  for (const hier::SmStats& sm : result.sms) {
    std::printf(
        "  sm %u: cycles %llu  dispatches %llu  l1 %llu/%llu  "
        "mem-wait %llu  idle %llu  stall %llu\n",
        sm.sm, static_cast<unsigned long long>(sm.run.time),
        static_cast<unsigned long long>(sm.run.dispatches),
        static_cast<unsigned long long>(sm.l1_hits),
        static_cast<unsigned long long>(sm.l1_hits + sm.l1_misses),
        static_cast<unsigned long long>(sm.mem_wait_cycles),
        static_cast<unsigned long long>(sm.idle_slots),
        static_cast<unsigned long long>(sm.warp_stall_slots));
  }
}

int run(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::uint32_t width =
      static_cast<std::uint32_t>(args.get_uint("width", 32));

  if (args.get_bool("list-schedulers", false)) {
    for (const std::string& name : hier::scheduler_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (args.get_bool("list-workloads", false)) {
    for (const auto& entry : tools::workload_kernels(width)) {
      std::printf("%-24s %8u threads  %4zu instructions  (%s)\n",
                  entry.name.c_str(), entry.kernel.num_threads,
                  entry.kernel.instructions.size(), entry.origin.c_str());
    }
    return 0;
  }

  tools::WorkloadKernel entry;
  if (const auto program_path = args.get("program")) {
    if (args.get("workload")) {
      throw std::invalid_argument("--workload and --program are exclusive");
    }
    const vm::Program program =
        vm::assemble(read_text_file(*program_path), width);
    vm::LoweredProgram lowered = vm::lower_program(program);
    entry = {program.name, std::move(lowered.kernel), lowered.rows,
             "program"};
  } else {
    entry = tools::workload_kernel(args.get_string("workload", "bitonic"),
                                   width);
  }

  const std::string scheme_arg = args.get_string("scheme", "rap");
  const auto scheme = replay::parse_scheme_name(scheme_arg);
  if (!scheme) {
    throw std::invalid_argument("unknown scheme: " + scheme_arg +
                                " (raw, ras, rap)");
  }
  const std::uint64_t seed = args.get_uint("seed", 1);

  hier::HierConfig config;
  config.sms = static_cast<std::uint32_t>(args.get_uint("sms", 1));
  config.width = width;
  config.shared_latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  config.scheduler = args.get_string("scheduler", "roundrobin");
  config.path = path_from_args(args);

  const auto map = core::make_matrix_map(*scheme, width, entry.rows, seed);
  hier::HierSim sim(config, *map);
  const hier::HierResult result = sim.run(entry.kernel, *scheme);

  telemetry::MetricsRegistry registry;
  hier::flush_metrics(result, registry,
                      {{"workload", entry.name},
                       {"scheme", core::scheme_name(*scheme)},
                       {"scheduler", config.scheduler}});

  if (args.wants_json()) {
    write_json(entry.name, *scheme, seed, config, result, registry);
  } else {
    write_ascii(entry.name, *scheme, config, result);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapsim-hier: %s\n", e.what());
    return 1;
  }
}
