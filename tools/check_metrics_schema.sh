#!/usr/bin/env bash
# Validate the stable JSON metrics schema of the bench binaries.
#
#   tools/check_metrics_schema.sh [path/to/table2_congestion_sim]
#
# Runs one small --format=json sweep and checks the document parses and
# carries every key downstream consumers (run_all.sh metric drops, the
# BENCH_*.json perf trajectory) rely on. Registered as the ctest entry
# `metrics_schema`; also run standalone by tools/run_all.sh.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/bench/table2_congestion_sim}"
if [ ! -x "$BIN" ]; then
  echo "check_metrics_schema: bench binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_metrics_schema

DOC="$(json_schema_tmpfile)"
"$BIN" --format=json --trials=200 --widths=16,32 > "$DOC"

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"metrics schema violation: {what}")

require(doc.get("schema_version") == 1, "schema_version == 1")
require(doc.get("experiment") == "table2_congestion_sim", "experiment name")
config = doc.get("config", {})
require(isinstance(config.get("widths"), list) and config["widths"],
        "config.widths is a non-empty list")
require(isinstance(config.get("trials"), int), "config.trials is an int")
require(isinstance(config.get("seed"), int), "config.seed is an int")

results = doc.get("results")
require(isinstance(results, list) and results, "results is a non-empty list")
schemes = set()
for cell in results:
    for key in ("scheme", "pattern", "width", "congestion", "bank_requests"):
        require(key in cell, f"results[] has '{key}'")
    congestion = cell["congestion"]
    for key in ("mean", "ci95", "min", "max", "p50", "p95", "p99"):
        require(key in congestion, f"congestion has '{key}'")
    require(isinstance(cell["bank_requests"], list)
            and len(cell["bank_requests"]) == cell["width"],
            "bank_requests has one total per bank")
    schemes.add(cell["scheme"])
require({"RAW", "RAS", "RAP"} <= schemes, "all of RAW/RAS/RAP present")

print(f"metrics schema OK: {len(results)} cells, schemes {sorted(schemes)}")
EOF
