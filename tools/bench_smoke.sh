#!/usr/bin/env bash
# Smoke of the perf-trajectory loop with real binaries, no python needed:
#
#   tools/bench_smoke.sh [path/to/bench] [path/to/bench_compare]
#
#   1. the bench runs in --bench-json --quick mode and writes a document;
#   2. bench_compare of the document against itself exits 0 (a trajectory
#      point never regresses against itself);
#   3. a hand-degraded copy (ns_per_op doubled via sed) makes
#      bench_compare exit 1 — the regression gate actually fires;
#   4. mismatched bench names exit 2 (usage/diagnostic path).
#
# Registered as the ctest entry `bench_smoke`; also run by run_all.sh.

set -euo pipefail

BENCH="${1:-build/bench/theorem2_bound_sweep}"
COMPARE="${2:-build/tools/bench_compare}"
for bin in "$BENCH" "$COMPARE"; do
  if [ ! -x "$bin" ]; then
    echo "bench_smoke: binary not found: $bin" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
fail() { echo "bench_smoke: $*" >&2; exit 1; }

BASE="$WORK/base.json"
"$BENCH" --bench-json="$BASE" --quick --widths=8,16 --trials=100 > /dev/null
[ -s "$BASE" ] || fail "bench wrote no document"

# --- self-compare passes ------------------------------------------------
"$COMPARE" "$BASE" "$BASE" > "$WORK/self.out" \
  || fail "self-compare exited nonzero: $(cat "$WORK/self.out")"
grep -q "verdict: ok" "$WORK/self.out" || fail "self-compare verdict not ok"
echo "bench_smoke: self-compare OK"

# --- a degraded ns_per_op trips the gate --------------------------------
# Inflate every ns_per_op by a numeric-prefix injection (well past the
# default 30% threshold); the document stays valid JSON.
sed 's/"ns_per_op": *\([0-9][0-9.]*\)/"ns_per_op":9999999\1/' "$BASE" \
    > "$WORK/slow.json"
RC=0
"$COMPARE" "$BASE" "$WORK/slow.json" > "$WORK/slow.out" || RC=$?
[ "$RC" -eq 1 ] || fail "degraded compare exited $RC, want 1"
grep -q "REGRESSED" "$WORK/slow.out" || fail "no REGRESSED marker printed"
echo "bench_smoke: regression gate fires OK"

# --- mismatched bench names are a usage error ---------------------------
sed 's/"bench":"/"bench":"other-/' "$BASE" > "$WORK/other.json"
RC=0
"$COMPARE" "$BASE" "$WORK/other.json" > /dev/null 2>&1 || RC=$?
[ "$RC" -eq 2 ] || fail "mismatched-name compare exited $RC, want 2"
echo "bench_smoke: mismatched bench name rejected OK"

echo "bench_smoke: PASS"
