#!/usr/bin/env bash
# Validate the machine-readable artifacts of a replay campaign.
#
#   tools/check_replay_schema.sh [path/to/rapsim-replay] [TRACE...]
#
# Runs a tiny campaign over the given traces (the shipped example traces
# by default) into a throwaway results directory, then checks both
# artifacts — manifest.json and summary.json — parse and carry every key
# the downstream consumers (run_all.sh metric drops, resume tooling)
# rely on, and that their cell grids agree. Registered as the ctest
# entry `replay_schema` with SKIP_RETURN_CODE 77 (skips without
# python3); also run standalone by tools/run_all.sh.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/tools/rapsim-replay}"
if [ ! -x "$BIN" ]; then
  echo "check_replay_schema: rapsim-replay binary not found: $BIN" >&2
  exit 1
fi
shift || true
if [ "$#" -gt 0 ]; then
  TRACES=("$@")
else
  TRACES=("$HERE/../examples/contiguous_stride.trace"
          "$HERE/../examples/same_bank_adversary.trace")
fi

json_schema_require_python3 check_replay_schema 77

RESULTS="$(mktemp -d)"
trap 'rm -rf "$RESULTS"' EXIT

"$BIN" campaign "${TRACES[@]}" --schemes=raw,ras,rap --trials=2 \
       --results="$RESULTS" >/dev/null

json_schema_validate "$RESULTS/manifest.json" "$RESULTS/summary.json" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    manifest = json.load(fh)
with open(sys.argv[2], encoding="utf-8") as fh:
    summary = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"replay schema violation: {what}")

for name, doc in (("manifest", manifest), ("summary", summary)):
    require(doc.get("schema_version") == 1, f"{name}.schema_version == 1")
    require(doc.get("experiment") == "rapsim_replay_campaign",
            f"{name}.experiment name")
    config = doc.get("config", {})
    for key in ("latency", "trials", "seed", "schemes", "traces"):
        require(key in config, f"{name}.config has '{key}'")
    require(isinstance(config["traces"], list) and config["traces"],
            f"{name}.config.traces is a non-empty list")
    for trace in config["traces"]:
        for key in ("name", "hash", "width", "threads", "memory_size",
                    "records"):
            require(key in trace, f"{name}.config.traces[] has '{key}'")

require(isinstance(manifest.get("cells"), list) and manifest["cells"],
        "manifest.cells is a non-empty list")
for cell in manifest["cells"]:
    for key in ("key", "trace", "scheme", "width", "status"):
        require(key in cell, f"manifest.cells[] has '{key}'")
    require(cell["status"] in ("cached", "pending"),
            "manifest cell status is cached|pending")

require(isinstance(summary.get("cells"), list) and summary["cells"],
        "summary.cells is a non-empty list")
keys = []
for cell in summary["cells"]:
    for key in ("key", "trace", "trace_hash", "scheme", "width", "latency",
                "trials", "seed", "time", "pipeline_slots", "dispatches",
                "congestion", "trial_times"):
        require(key in cell, f"summary.cells[] has '{key}'")
    for key in ("mean", "min", "max"):
        require(key in cell["time"], f"summary time has '{key}'")
    for key in ("count", "mean", "min", "max", "p50", "p95", "p99"):
        require(key in cell["congestion"], f"summary congestion has '{key}'")
    require(len(cell["trial_times"]) == cell["trials"],
            "one trial_times entry per trial")
    keys.append(cell["key"])

require(keys == sorted(keys), "summary cells are sorted by key")
require(keys == [c["key"] for c in manifest["cells"]],
        "manifest and summary list the same cell grid")
merged = summary.get("congestion_merged", {})
for key in ("count", "mean", "min", "max", "p50", "p95", "p99"):
    require(key in merged, f"congestion_merged has '{key}'")
require(merged["count"] == sum(c["congestion"]["count"]
                               for c in summary["cells"]),
        "merged tally count equals the sum over cells")

print(f"replay schema OK: {len(keys)} cells, "
      f"{merged['count']} merged congestion samples")
EOF
