// Built-in kernel catalog for rapsim-lint.
//
// Collects the loop-nest IR descriptions the libraries export — the
// Fig. 5 transpose variants, the tiled transpose, matmul, reduction,
// bitonic, histogram — plus the Table IV 4-D tensor access layouts
// (expressed directly here: they are access patterns, not kernels, so no
// library owns a describe_ function for them) and the affine VM-program
// suite members (vm-mergesort-round, vm-shearsort), whose IR is
// extracted from their `.rvm` source rather than hand-written. The
// catalog is the lint driver's default target set and the population of
// the differential test (tests/differential_kernel_test.cpp).
//
// This lives in tools/ (not src/analyze/) so the analyze library never
// links the workload libraries — the dependency points the other way.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/kernelir.hpp"

namespace rapsim::tools {

/// Every built-in kernel description at warp width `w` (a power of two,
/// >= 8 for the VM suite members). Problem sizes scale with w:
/// reduction/bitonic use n = 8w, the histogram uses 2w bins, the VM
/// mergesort round streams 4w runs of w keys.
[[nodiscard]] std::vector<analyze::KernelDesc> builtin_kernels(
    std::uint32_t width);

/// The catalog entry named `name`, or throws std::invalid_argument
/// listing the valid names.
[[nodiscard]] analyze::KernelDesc builtin_kernel(const std::string& name,
                                                 std::uint32_t width);

}  // namespace rapsim::tools
