#!/usr/bin/env bash
# Validate rapsim-lint's JSON diagnostic schema.
#
#   tools/check_lint_schema.sh [path/to/rapsim-lint]
#
# Lints the whole built-in kernel catalog under the RAW layout and checks
# the emitted document parses and carries every key downstream consumers
# (run_all.sh analysis drops, editor integrations) rely on — including at
# least one warning diagnostic with fix-its (the naive stride transpose
# must be flagged) and, for every report, the "races" block with its
# race-freedom certificate (the whole catalog is barrier-correct). A
# second run adds --synthesize and validates the report-level "synthesis"
# block (mapping spec, certificate, optimality witness) plus the
# SYNTHESIZE fix-it it feeds. A third run lints a barrier-stripped tile
# kernel and validates the race-finding shape: kind, two-binding witness
# and the INSERT-BARRIER fix-it. Registered as the ctest entry
# `lint_schema` with SKIP_RETURN_CODE 77: a host without python3 skips
# rather than fails.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/tools/rapsim-lint}"
if [ ! -x "$BIN" ]; then
  echo "check_lint_schema: rapsim-lint binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_lint_schema 77

DOC="$(json_schema_tmpfile)"
"$BIN" --width=16 --scheme=raw --format=json --fail-on=never > "$DOC"

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"lint schema violation: {what}")

require(doc.get("tool") == "rapsim-lint", "tool == rapsim-lint")
require(doc.get("version") == 1, "version == 1")
require(isinstance(doc.get("width"), int), "width is an int")
require(doc.get("scheme") == "RAW", "scheme name is RAW")

reports = doc.get("reports")
require(isinstance(reports, list) and reports, "reports is a non-empty list")

warnings_with_fixits = 0
for report in reports:
    for key in ("kernel", "width", "rows", "scheme", "severity", "clean",
                "worst", "worst_site", "diagnostics"):
        require(key in report, f"report has '{key}'")
    require(report["severity"] in ("info", "warning", "error"),
            "report severity is info/warning/error")
    require(isinstance(report["diagnostics"], list) and report["diagnostics"],
            "diagnostics is a non-empty list")
    for diag in report["diagnostics"]:
        for key in ("severity", "site", "dir", "message", "certificate",
                    "rule", "coverage", "bindings", "classes",
                    "out_of_bounds", "witness", "witness_trace", "fixits"):
            require(key in diag, f"diagnostic has '{key}'")
        cert = diag["certificate"]
        for key in ("scheme", "kind", "bound", "rule", "claim"):
            require(key in cert, f"certificate has '{key}'")
        require(isinstance(diag["witness"], dict), "witness is an object")
        require(isinstance(diag["witness_trace"], list),
                "witness_trace is a list")
        for fixit in diag["fixits"]:
            require("action" in fixit and "detail" in fixit,
                    "fixit has action and detail")
        if diag["severity"] == "warning" and diag["fixits"]:
            warnings_with_fixits += 1

require(warnings_with_fixits >= 1,
        "at least one warning carries fix-its (the stride transpose)")

# Races block: every builtin is barrier-correct, so each report must
# carry a certified race-free verdict.
for report in reports:
    races = report.get("races")
    require(isinstance(races, dict), f"report {report['kernel']} has 'races'")
    for key in ("phases", "pairs_checked", "exhaustive", "race_free",
                "findings"):
        require(key in races, f"races has '{key}'")
    require(races["race_free"] is True,
            f"builtin {report['kernel']} is race-free")
    require(races["findings"] == [], "race-free report has no findings")
    cert = races.get("certificate")
    require(isinstance(cert, dict),
            f"race-free report {report['kernel']} carries the certificate")
    for key in ("kind", "kernel", "width", "rows", "phases", "pairs_checked",
                "claim", "proofs"):
        require(key in cert, f"race certificate has '{key}'")
    require(cert["kind"] == "race-freedom-certificate",
            "certificate kind tag")
    for proof in cert["proofs"]:
        for key in ("first_site", "second_site", "rule", "detail"):
            require(key in proof, f"certificate proof has '{key}'")
        require(proof["rule"] in ("interval-disjoint", "residue-disjoint",
                                  "no-zero-sum", "single-warp",
                                  "enumerated-disjoint"),
                f"known proof rule (got {proof['rule']})")

kernels = {r["kernel"] for r in reports}
require("transpose-CRSW" in kernels, "built-in catalog includes the CRSW "
        "transpose")
print(f"lint schema OK: {len(reports)} kernel reports, "
      f"{warnings_with_fixits} warnings with fix-its, all race-certified")
EOF

# Second pass: the synthesis block. The CRSW transpose under RAW warns at
# bound w, and the family search must certify bound 1, so the report
# gains both the "synthesis" object and a SYNTHESIZE fix-it.
SYNTH_DOC="$(json_schema_tmpfile)"
"$BIN" --kernel=transpose-CRSW --width=16 --scheme=raw --synthesize \
  --format=json --fail-on=never > "$SYNTH_DOC"

json_schema_validate "$SYNTH_DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"lint synthesis schema violation: {what}")

reports = doc.get("reports")
require(isinstance(reports, list) and len(reports) == 1,
        "one report for --kernel")
report = reports[0]

synth = report.get("synthesis")
require(isinstance(synth, dict), "report has a 'synthesis' object")
for key in ("kernel", "width", "rows", "mapping", "certificate", "witness",
            "coverage", "classes", "candidates", "site_bounds",
            "witness_site", "witness_trace", "baseline"):
    require(key in synth, f"synthesis has '{key}'")
mapping = synth["mapping"]
for key in ("spec", "transform", "digits", "tables"):
    require(key in mapping, f"synthesis.mapping has '{key}'")
require(mapping["spec"].startswith("ps1:"), "mapping spec carries the magic")
cert = synth["certificate"]
for key in ("scheme", "kind", "bound", "rule", "claim"):
    require(key in cert, f"synthesis.certificate has '{key}'")
require(cert["scheme"] == "SYNTH", "certificate scheme is SYNTH")
witness = synth["witness"]
for key in ("kind", "lower_bound", "reason", "detail", "family_size",
            "evaluated", "pruned"):
    require(key in witness, f"synthesis.witness has '{key}'")
require(cert["bound"] == 1, "CRSW synthesizes to bound 1")
require(witness["kind"] == "global-optimal", "bound 1 is global-optimal")

synth_fixits = [f for d in report["diagnostics"] for f in d["fixits"]
                if f["action"] == "SYNTHESIZE"]
require(synth_fixits, "a SYNTHESIZE fix-it is emitted")
require(mapping["spec"] in synth_fixits[0]["detail"],
        "the fix-it quotes the synthesized spec")
print(f"lint synthesis schema OK: bound {cert['bound']}, "
      f"witness {witness['kind']}/{witness['reason']}, "
      f"{len(synth_fixits)} SYNTHESIZE fix-its")
EOF

# Third pass: the race-finding shape. A tile kernel with its barrier
# deleted must produce an error-severity RAW finding with a concrete
# two-binding witness and an INSERT-BARRIER fix-it.
RACY_KERNEL="$(json_schema_tmpfile)"
cat > "$RACY_KERNEL" <<'EOF'
kernel stripped-tile
width 16
rows 16
var u 16
site stage store flat lane=1 u=16 warp=u
site drain load  flat lane=16 u=1 warp=u
EOF

RACY_DOC="$(json_schema_tmpfile)"
"$BIN" --file="$RACY_KERNEL" --width=16 --scheme=raw --format=json \
  --fail-on=never > "$RACY_DOC"

json_schema_validate "$RACY_DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"lint race schema violation: {what}")

reports = doc.get("reports")
require(isinstance(reports, list) and len(reports) == 1,
        "one report for --file")
report = reports[0]
require(report["severity"] == "error", "a race is error severity")

races = report.get("races")
require(isinstance(races, dict), "report has 'races'")
require(races["race_free"] is False, "the stripped tile is not race-free")
require("certificate" not in races, "no certificate when races exist")
require(races["findings"], "findings is non-empty")

insert_barrier_fixits = 0
for finding in races["findings"]:
    for key in ("kind", "phase", "detail", "first", "second", "fixits"):
        require(key in finding, f"finding has '{key}'")
    require(finding["kind"] in ("RAW", "WAW", "WAR"), "known race kind")
    for side in (finding["first"], finding["second"]):
        for key in ("site", "dir", "lane", "warp", "address", "binding"):
            require(key in side, f"witness access has '{key}'")
        require(isinstance(side["binding"], dict), "binding is an object")
    require(finding["first"]["address"] == finding["second"]["address"],
            "both witness sides touch the same word")
    require(finding["first"]["warp"] != finding["second"]["warp"],
            "the witness crosses warps")
    for fixit in finding["fixits"]:
        require("action" in fixit and "detail" in fixit,
                "race fixit has action and detail")
        if fixit["action"] == "INSERT-BARRIER":
            insert_barrier_fixits += 1

require(insert_barrier_fixits >= 1, "an INSERT-BARRIER fix-it is emitted")
print(f"lint race schema OK: {len(races['findings'])} finding(s), "
      f"{insert_barrier_fixits} INSERT-BARRIER fix-it(s)")
EOF
