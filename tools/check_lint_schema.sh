#!/usr/bin/env bash
# Validate rapsim-lint's JSON diagnostic schema.
#
#   tools/check_lint_schema.sh [path/to/rapsim-lint]
#
# Lints the whole built-in kernel catalog under the RAW layout and checks
# the emitted document parses and carries every key downstream consumers
# (run_all.sh analysis drops, editor integrations) rely on — including at
# least one warning diagnostic with fix-its (the naive stride transpose
# must be flagged). Registered as the ctest entry `lint_schema` with
# SKIP_RETURN_CODE 77: a host without python3 skips rather than fails.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/tools/rapsim-lint}"
if [ ! -x "$BIN" ]; then
  echo "check_lint_schema: rapsim-lint binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_lint_schema 77

DOC="$(json_schema_tmpfile)"
"$BIN" --width=16 --scheme=raw --format=json --fail-on=never > "$DOC"

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"lint schema violation: {what}")

require(doc.get("tool") == "rapsim-lint", "tool == rapsim-lint")
require(doc.get("version") == 1, "version == 1")
require(isinstance(doc.get("width"), int), "width is an int")
require(doc.get("scheme") == "RAW", "scheme name is RAW")

reports = doc.get("reports")
require(isinstance(reports, list) and reports, "reports is a non-empty list")

warnings_with_fixits = 0
for report in reports:
    for key in ("kernel", "width", "rows", "scheme", "severity", "clean",
                "worst", "worst_site", "diagnostics"):
        require(key in report, f"report has '{key}'")
    require(report["severity"] in ("info", "warning", "error"),
            "report severity is info/warning/error")
    require(isinstance(report["diagnostics"], list) and report["diagnostics"],
            "diagnostics is a non-empty list")
    for diag in report["diagnostics"]:
        for key in ("severity", "site", "dir", "message", "certificate",
                    "rule", "coverage", "bindings", "classes",
                    "out_of_bounds", "witness", "witness_trace", "fixits"):
            require(key in diag, f"diagnostic has '{key}'")
        cert = diag["certificate"]
        for key in ("scheme", "kind", "bound", "rule", "claim"):
            require(key in cert, f"certificate has '{key}'")
        require(isinstance(diag["witness"], dict), "witness is an object")
        require(isinstance(diag["witness_trace"], list),
                "witness_trace is a list")
        for fixit in diag["fixits"]:
            require("action" in fixit and "detail" in fixit,
                    "fixit has action and detail")
        if diag["severity"] == "warning" and diag["fixits"]:
            warnings_with_fixits += 1

require(warnings_with_fixits >= 1,
        "at least one warning carries fix-its (the stride transpose)")

kernels = {r["kernel"] for r in reports}
require("transpose-CRSW" in kernels, "built-in catalog includes the CRSW "
        "transpose")
print(f"lint schema OK: {len(reports)} kernel reports, "
      f"{warnings_with_fixits} warnings with fix-its")
EOF
