// Executable workload catalog for rapsim-replay.
//
// The lint catalog (builtin_kernels.hpp) exports loop-nest IR; this one
// exports the *executable* dmm::Kernel builders the capture path needs —
// every workload whose kernel builder is public, with the backing matrix
// geometry it expects. rapsim-replay's `capture` subcommand and the
// replay differential test (tests/replay_differential_test.cpp) both
// iterate this catalog, so "every built-in workload round-trips exactly"
// means exactly this list.
//
// Lives in tools/ for the same reason builtin_kernels does: the workload
// libraries must not become a dependency of any src/ subsystem.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dmm/kernel.hpp"

namespace rapsim::tools {

/// One capture-ready workload: the kernel plus the number of rows the
/// backing width-wide MatrixMap needs (memory footprint = rows * width).
/// `origin` records where the kernel came from: "builtin" for the C++
/// builders, "program" for kernels lowered from `.rvm` VM programs
/// (vm/suite.hpp) — rapsim-replay's --list-workloads groups by it.
struct WorkloadKernel {
  std::string name;
  dmm::Kernel kernel;
  std::uint64_t rows = 0;
  std::string origin = "builtin";
};

/// Every executable built-in at warp width `w` (a power of two >= 8):
/// transpose-{crsw,srcw,drdw}, reduction-{interleaved,sequential},
/// matmul-{rowmajorb,transposedb}, bitonic (lowered from its VM
/// program), plus the VM suite: vm-shearsort, vm-mergesort-round and
/// vm-permute-{identity,bitrev,derange}. Reduction and bitonic run over
/// n = 8w elements.
[[nodiscard]] std::vector<WorkloadKernel> workload_kernels(
    std::uint32_t width);

/// The catalog entry named `name`, or throws std::invalid_argument
/// listing the valid names.
[[nodiscard]] WorkloadKernel workload_kernel(const std::string& name,
                                             std::uint32_t width);

}  // namespace rapsim::tools
