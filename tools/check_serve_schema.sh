#!/usr/bin/env bash
# Validate the machine-readable contracts of the serve protocol.
#
#   tools/check_serve_schema.sh [path/to/rapsim-served] [path/to/rapsim-client]
#
# Starts a throwaway daemon, exercises every method family, captures the
# FULL response envelopes (rapsim-client --verbose), drains via the
# shutdown method, then python-validates:
#
#   - the success envelope: member set, result strictly last, elapsed_us
#     integer, cached/coalesced booleans;
#   - the repeated certify: cached=true and a byte-identical result body;
#   - the error envelope: code/name/message, stable code<->name pairs;
#   - the stats result: queue/cache counters (including the derived
#     hit_rate / occupancy / busy_workers / utilization gauges) and the
#     metrics registry with serve.requests counters, serve.latency_us
#     p50/p95/p99 and the serve.phase_us request-phase distributions;
#   - the flushed metrics.json: schema_version 1 and the same registry;
#   - the --trace-out chrome://tracing document: a JSON array of "X"
#     events whose replay request nests admission/cache_lookup/
#     queue_wait/execute:replay/write under one root request span.
#
# Registered as the ctest entry `serve_schema` with SKIP_RETURN_CODE 77
# (skips without python3); also run standalone by tools/run_all.sh.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

SERVED="${1:-build/tools/rapsim-served}"
CLIENT="${2:-build/tools/rapsim-client}"
for bin in "$SERVED" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "check_serve_schema: binary not found: $bin" >&2
    exit 1
  fi
done

json_schema_require_python3 check_serve_schema 77

WORK="$(mktemp -d)"
SOCK="$WORK/served.sock"
METRICS="$WORK/metrics.json"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVED" --socket="$SOCK" --metrics-out="$METRICS" \
    --trace-out="$WORK/spans.trace.json" > "$WORK/served.log" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "check_serve_schema: daemon died on startup" >&2; exit 1; }
  sleep 0.1
done

rpc() { "$CLIENT" "$@" --socket="$SOCK" --verbose; }

CERTIFY='--addresses=0,32,64,96 --width=32 --scheme=rap --seed=9'
# shellcheck disable=SC2086  # word-splitting the flag bundle is intended
rpc certify $CERTIFY --id=cold > "$WORK/certify_cold.json"
# shellcheck disable=SC2086
rpc certify $CERTIFY --id=warm > "$WORK/certify_warm.json"
rpc lint --file="$HERE/../examples/naive_transpose.kernel" \
    > "$WORK/lint.json"
# Race-verdict coverage: a barrier-stripped tile kernel (must produce an
# error-severity finding with an INSERT-BARRIER fix-it) and the same
# request with the race pass disabled via params.races.
RACY_TEXT='kernel stripped-tile\nwidth 16\nrows 16\nvar u 16\nsite stage store flat lane=1 u=16 warp=u\nsite drain load flat lane=16 u=1 warp=u\n'
"$CLIENT" raw "{\"id\":\"racy\",\"method\":\"lint\",\"params\":{\"kernel\":\"$RACY_TEXT\",\"width\":16}}" \
    --socket="$SOCK" --verbose > "$WORK/lint_racy.json"
"$CLIENT" raw "{\"id\":\"noraces\",\"method\":\"lint\",\"params\":{\"kernel\":\"$RACY_TEXT\",\"width\":16,\"races\":false}}" \
    --socket="$SOCK" --verbose > "$WORK/lint_noraces.json"
rpc replay --trace="$HERE/../examples/contiguous_stride.trace" \
    --scheme=raw > "$WORK/replay.json"
rpc advise --addresses="0,16,32" --rows=4 --width=16 --draws=4 \
    > "$WORK/advise.json"
rpc synthesize --file="$HERE/../examples/naive_transpose.kernel" \
    --draws=8 --id=synth-cold > "$WORK/synth_cold.json"
rpc synthesize --file="$HERE/../examples/naive_transpose.kernel" \
    --draws=8 --id=synth-warm > "$WORK/synth_warm.json"
rpc stats > "$WORK/stats.json"
"$CLIENT" raw '{"id":1,"method":"no-such-method"}' --socket="$SOCK" \
    > "$WORK/error.json"
rpc shutdown > /dev/null
wait "$DAEMON_PID" || {
  echo "check_serve_schema: daemon did not drain cleanly" >&2; exit 1; }
DAEMON_PID=""

json_schema_validate "$WORK" <<'EOF'
import json
import sys

work = sys.argv[1]

def load(name):
    with open(f"{work}/{name}", encoding="utf-8") as fh:
        return fh.read().strip()

def require(cond, what):
    if not cond:
        sys.exit(f"serve schema violation: {what}")

ENVELOPE = ["id", "ok", "method", "cached", "coalesced", "elapsed_us",
            "result"]

def check_success(raw, name, method):
    doc = json.loads(raw)
    require(list(doc.keys()) == ENVELOPE,
            f"{name}: envelope members are exactly {ENVELOPE} in order, "
            f"got {list(doc.keys())}")
    require(doc["ok"] is True, f"{name}: ok is true")
    require(doc["method"] == method, f"{name}: method echoes '{method}'")
    require(isinstance(doc["cached"], bool), f"{name}: cached is a bool")
    require(isinstance(doc["coalesced"], bool),
            f"{name}: coalesced is a bool")
    require(isinstance(doc["elapsed_us"], int) and doc["elapsed_us"] >= 0,
            f"{name}: elapsed_us is a non-negative integer")
    marker = raw.find('"result":')
    require(marker != -1 and raw.endswith("}"),
            f"{name}: result is the last member")
    return doc, raw[marker + 9:-1]

cold_doc, cold_body = check_success(load("certify_cold.json"),
                                    "certify_cold", "certify")
warm_doc, warm_body = check_success(load("certify_warm.json"),
                                    "certify_warm", "certify")
require(cold_doc["id"] == "cold" and warm_doc["id"] == "warm",
        "certify: ids echo verbatim")
require(cold_doc["cached"] is False, "certify_cold: cached is false")
require(warm_doc["cached"] is True, "certify_warm: cached is true")
require(cold_body == warm_body,
        "certify: cached result body is byte-identical")
certificate = cold_doc["result"].get("certificate", {})
for key in ("scheme", "kind", "bound", "rule", "claim"):
    require(key in certificate, f"certify result certificate has '{key}'")

lint_doc, _ = check_success(load("lint.json"), "lint", "lint")
for key in ("kernel", "scheme", "severity", "clean", "worst",
            "diagnostics", "races"):
    require(key in lint_doc["result"], f"lint result has '{key}'")
races = lint_doc["result"]["races"]
for key in ("phases", "pairs_checked", "exhaustive", "race_free",
            "findings"):
    require(key in races, f"lint races block has '{key}'")
require(races["race_free"] is True,
        "the example transpose kernel is race-free")
require("certificate" in races,
        "a race-free lint result carries the freedom certificate")

racy_doc, _ = check_success(load("lint_racy.json"), "lint_racy", "lint")
racy = racy_doc["result"]["races"]
require(racy["race_free"] is False, "the stripped tile races")
require(racy["findings"], "the stripped tile has race findings")
finding = racy["findings"][0]
require(finding["kind"] in ("RAW", "WAW", "WAR"), "known race kind")
for side in (finding["first"], finding["second"]):
    for key in ("site", "dir", "lane", "warp", "address", "binding"):
        require(key in side, f"race witness access has '{key}'")
require(any(f["action"] == "INSERT-BARRIER"
            for f in finding["fixits"]),
        "the racy lint result carries an INSERT-BARRIER fix-it")
require(racy_doc["result"]["severity"] == "error",
        "a race lifts the report to error severity")

noraces_doc, _ = check_success(load("lint_noraces.json"),
                               "lint_noraces", "lint")
require("races" not in noraces_doc["result"],
        "params.races=false omits the races block")
require(noraces_doc["result"]["severity"] != "error",
        "without the race pass the missing barrier goes unnoticed")

replay_doc, _ = check_success(load("replay.json"), "replay", "replay")
for key in ("trace_hash", "scheme", "width", "latency", "seed", "time",
            "pipeline_slots", "dispatches", "max_congestion",
            "avg_congestion"):
    require(key in replay_doc["result"], f"replay result has '{key}'")

advise_doc, _ = check_success(load("advise.json"), "advise", "advise")
for key in ("scores", "recommended", "rationale"):
    require(key in advise_doc["result"], f"advise result has '{key}'")
require(len(advise_doc["result"]["scores"]) == 4,
        "advise scores cover all four schemes")

synth_doc, synth_body = check_success(load("synth_cold.json"),
                                      "synth_cold", "advise.synthesize")
synth = synth_doc["result"]
for key in ("kernel", "width", "rows", "mapping", "certificate", "witness",
            "coverage", "classes", "candidates", "site_bounds",
            "witness_trace", "baseline"):
    require(key in synth, f"advise.synthesize result has '{key}'")
for key in ("spec", "transform", "digits", "tables"):
    require(key in synth["mapping"], f"synthesize mapping has '{key}'")
require(synth["certificate"]["scheme"] == "SYNTH",
        "synthesize certificate scheme is SYNTH")
for key in ("kind", "lower_bound", "reason", "family_size"):
    require(key in synth["witness"], f"synthesize witness has '{key}'")
warm_synth_doc, warm_synth_body = check_success(
    load("synth_warm.json"), "synth_warm", "advise.synthesize")
require(warm_synth_doc["cached"] is True,
        "repeated advise.synthesize is cached (identity-keyed)")
require(synth_body == warm_synth_body,
        "advise.synthesize: cached result body is byte-identical")

stats_doc, _ = check_success(load("stats.json"), "stats", "stats")
require(stats_doc["cached"] is False,
        "stats is control-plane: never served from the cache")
stats = stats_doc["result"]
for key in ("uptime_ms", "workers", "queue_depth", "queue_capacity",
            "in_flight", "draining", "busy_workers", "utilization",
            "shed_total", "coalesced_total", "cache", "metrics"):
    require(key in stats, f"stats result has '{key}'")
for key in ("hits", "misses", "insertions", "evictions", "entries",
            "capacity", "hit_rate", "occupancy"):
    require(key in stats["cache"], f"stats cache has '{key}'")
require(stats["cache"]["hits"] >= 1, "the warm certify registered a hit")
cache = stats["cache"]
require(0.0 < cache["hit_rate"] <= 1.0,
        "hit_rate is a fraction in (0, 1] after the warm certify")
expected_rate = cache["hits"] / (cache["hits"] + cache["misses"])
require(abs(cache["hit_rate"] - expected_rate) < 1e-9,
        "hit_rate == hits / (hits + misses)")
require(0.0 <= cache["occupancy"] <= 1.0, "occupancy is a fraction")
require(isinstance(stats["busy_workers"], int)
        and 0 <= stats["busy_workers"] <= stats["workers"],
        "busy_workers is an int within the pool size")
require(0.0 <= stats["utilization"] <= 1.0, "utilization is a fraction")

def check_registry(registry, name):
    counters = registry.get("counters", [])
    requests = [c for c in counters if c["name"] == "serve.requests"]
    require(requests, f"{name}: serve.requests counters present")
    for counter in requests:
        require({"method", "status"} <= set(counter["labels"]),
                f"{name}: serve.requests labelled by method and status")
    methods = {c["labels"]["method"] for c in requests
               if c["labels"]["status"] == "ok"}
    require({"certify", "lint", "replay", "advise",
             "advise.synthesize"} <= methods,
            f"{name}: every pool method counted ok, got {sorted(methods)}")
    latency = [d for d in registry.get("distributions", [])
               if d["name"] == "serve.latency_us"]
    require(latency, f"{name}: serve.latency_us distributions present")
    for dist in latency:
        for key in ("count", "mean", "p50", "p95", "p99"):
            require(key in dist, f"{name}: latency distribution has '{key}'")
    phases = {d["labels"]["phase"]
              for d in registry.get("distributions", [])
              if d["name"] == "serve.phase_us"}
    require({"admission", "cache_lookup", "queue_wait", "execute",
             "write"} <= phases,
            f"{name}: serve.phase_us covers every request phase, "
            f"got {sorted(phases)}")

check_registry(stats["metrics"], "stats")

error_doc = json.loads(load("error.json"))
require(list(error_doc.keys()) == ["id", "ok", "method", "error"],
        "error envelope members in order")
require(error_doc["ok"] is False and error_doc["id"] == 1,
        "error envelope echoes the integer id")
error = error_doc["error"]
require(error["code"] == 404 and error["name"] == "unknown_method",
        "unknown method maps to 404 unknown_method")
require(isinstance(error["message"], str) and error["message"],
        "error message is a non-empty string")

metrics_doc = json.loads(load("metrics.json"))
require(metrics_doc.get("schema_version") == 1,
        "metrics.json schema_version == 1")
require(metrics_doc.get("experiment") == "rapsim_served",
        "metrics.json experiment name")
for key in ("uptime_ms", "workers", "queue_capacity", "shed_total",
            "coalesced_total", "cache", "metrics"):
    require(key in metrics_doc, f"metrics.json has '{key}'")
check_registry(metrics_doc["metrics"], "metrics.json")

# --- the --trace-out chrome://tracing document -------------------------
trace_doc = json.loads(load("spans.trace.json"))
events = [e for e in trace_doc.get("traceEvents", []) if e.get("ph") == "X"]
require(events, "trace-out document has complete ('X') span events")
for event in events:
    for key in ("name", "pid", "tid", "ts", "dur", "args"):
        require(key in event, f"span event has '{key}'")

by_id = {e["args"]["span"]: e for e in events}
replay_exec = [e for e in events if e["name"] == "execute:replay"]
require(replay_exec, "the replay request produced an execute:replay span")

# Walk one replay request's flame: the execute span's root must be a
# "request" span, and the request must also carry admission,
# cache_lookup, queue_wait and write children — >= 4 nested spans.
at = replay_exec[0]
while at["args"]["parent"] != 0 and at["args"]["parent"] in by_id:
    at = by_id[at["args"]["parent"]]
require(at["name"] == "request",
        f"execute:replay roots at a request span, got '{at['name']}'")
root_id = at["args"]["span"]

def roots_at(event):
    seen = set()
    while (event["args"]["parent"] != 0
           and event["args"]["parent"] in by_id
           and event["args"]["span"] not in seen):
        seen.add(event["args"]["span"])
        event = by_id[event["args"]["parent"]]
    return event["args"]["span"]

nested = {e["name"] for e in events
          if e["args"]["span"] != root_id and roots_at(e) == root_id}
require({"admission", "cache_lookup", "queue_wait", "execute:replay",
         "write"} <= nested,
        f"the replay request's flame nests every phase, got {sorted(nested)}")
require(len(nested) >= 4, "the replay request renders >= 4 nested spans")

# All of a request's spans land on ONE track (the root's), so the flame
# renders as a single nested stack in Perfetto.
tracks = {e["tid"] for e in events if roots_at(e) == root_id}
require(len(tracks) == 1,
        f"one request renders on one track, got tids {sorted(tracks)}")

print("serve schema OK: envelopes, cache byte-identity, error codes, "
      "stats registry (phase distributions, utilization gauges), the "
      "flushed metrics document and the span trace all conform")
EOF
