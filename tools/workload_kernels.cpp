#include "workload_kernels.hpp"

#include <stdexcept>

#include "transpose/algorithms.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "vm/suite.hpp"
#include "workloads/bitonic.hpp"
#include "workloads/matmul.hpp"
#include "workloads/reduction.hpp"

namespace rapsim::tools {

std::vector<WorkloadKernel> workload_kernels(std::uint32_t width) {
  const transpose::MatrixPair pair{width};
  const workloads::MatmulArrays arrays{width};
  const std::uint64_t n = 8ull * width;  // reduction / bitonic problem size

  std::vector<WorkloadKernel> catalog;
  catalog.push_back({"transpose-crsw",
                     transpose::build_kernel(transpose::Algorithm::kCrsw, pair),
                     pair.rows()});
  catalog.push_back({"transpose-srcw",
                     transpose::build_kernel(transpose::Algorithm::kSrcw, pair),
                     pair.rows()});
  catalog.push_back({"transpose-drdw",
                     transpose::build_kernel(transpose::Algorithm::kDrdw, pair),
                     pair.rows()});
  catalog.push_back(
      {"reduction-interleaved",
       workloads::build_reduction_kernel(
           workloads::ReductionVariant::kInterleaved, n, width),
       n / width});
  catalog.push_back(
      {"reduction-sequential",
       workloads::build_reduction_kernel(
           workloads::ReductionVariant::kSequential, n, width),
       n / width});
  catalog.push_back(
      {"matmul-rowmajorb",
       workloads::build_matmul_kernel(workloads::MatmulLayout::kRowMajorB,
                                      arrays),
       arrays.rows()});
  catalog.push_back(
      {"matmul-transposedb",
       workloads::build_matmul_kernel(workloads::MatmulLayout::kTransposedB,
                                      arrays),
       arrays.rows()});
  // bitonic is lowered from its VM program (workloads/bitonic.cpp);
  // every vm-* entry below assembles and lowers its `.rvm` source here.
  catalog.push_back({"bitonic", workloads::build_bitonic_kernel(n, width),
                     n / width, "program"});
  if (width >= 8) {  // the suite needs shearsort's 8-row grid
    for (vm::SuiteProgram& entry : vm::suite_programs(width)) {
      if (entry.name == "vm-bitonic") continue;  // aliased by "bitonic"
      const vm::LoweredProgram lowered =
          vm::lower_program(vm::assemble(entry.text, width));
      catalog.push_back(
          {std::move(entry.name), lowered.kernel, lowered.rows, "program"});
    }
  }
  return catalog;
}

WorkloadKernel workload_kernel(const std::string& name, std::uint32_t width) {
  std::vector<WorkloadKernel> catalog = workload_kernels(width);
  std::string known;
  for (WorkloadKernel& entry : catalog) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown workload '" + name + "' (known: " +
                              known + ")");
}

}  // namespace rapsim::tools
