#include "workload_kernels.hpp"

#include <stdexcept>

#include "transpose/algorithms.hpp"
#include "workloads/bitonic.hpp"
#include "workloads/matmul.hpp"
#include "workloads/reduction.hpp"

namespace rapsim::tools {

std::vector<WorkloadKernel> workload_kernels(std::uint32_t width) {
  const transpose::MatrixPair pair{width};
  const workloads::MatmulArrays arrays{width};
  const std::uint64_t n = 8ull * width;  // reduction / bitonic problem size

  std::vector<WorkloadKernel> catalog;
  catalog.push_back({"transpose-crsw",
                     transpose::build_kernel(transpose::Algorithm::kCrsw, pair),
                     pair.rows()});
  catalog.push_back({"transpose-srcw",
                     transpose::build_kernel(transpose::Algorithm::kSrcw, pair),
                     pair.rows()});
  catalog.push_back({"transpose-drdw",
                     transpose::build_kernel(transpose::Algorithm::kDrdw, pair),
                     pair.rows()});
  catalog.push_back(
      {"reduction-interleaved",
       workloads::build_reduction_kernel(
           workloads::ReductionVariant::kInterleaved, n, width),
       n / width});
  catalog.push_back(
      {"reduction-sequential",
       workloads::build_reduction_kernel(
           workloads::ReductionVariant::kSequential, n, width),
       n / width});
  catalog.push_back(
      {"matmul-rowmajorb",
       workloads::build_matmul_kernel(workloads::MatmulLayout::kRowMajorB,
                                      arrays),
       arrays.rows()});
  catalog.push_back(
      {"matmul-transposedb",
       workloads::build_matmul_kernel(workloads::MatmulLayout::kTransposedB,
                                      arrays),
       arrays.rows()});
  catalog.push_back(
      {"bitonic", workloads::build_bitonic_kernel(n, width), n / width});
  return catalog;
}

WorkloadKernel workload_kernel(const std::string& name, std::uint32_t width) {
  std::vector<WorkloadKernel> catalog = workload_kernels(width);
  std::string known;
  for (WorkloadKernel& entry : catalog) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown workload '" + name + "' (known: " +
                              known + ")");
}

}  // namespace rapsim::tools
