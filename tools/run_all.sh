#!/usr/bin/env bash
# Build, test, and regenerate every experiment into results/.
#
#   tools/run_all.sh [build-dir]
#
# Bench binaries accept --format=csv|markdown|ascii; this script captures
# the default ascii renderings, one file per experiment, plus combined
# test and bench logs at the repository root (test_output.txt /
# bench_output.txt, the names EXPERIMENTS.md references).
#
# Machine-readable telemetry lands under results/metrics/: the Table II
# congestion JSON (stable schema, validated by check_metrics_schema.sh),
# the Figure 3 chrome://tracing timeline (open in ui.perfetto.dev), and a
# rapsim_profile document per transpose algorithm. These files are the
# per-run metric drop that seeds the BENCH_*.json performance trajectory
# across PRs — see "Observability" in README.md.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# Prefer Ninja when available; fall back to the default generator so
# Make-only hosts still work. The choice only applies on first configure —
# an already-configured build dir keeps its generator (CMake refuses to
# switch in place).
GENERATOR=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi
cmake -B "$BUILD_DIR" "${GENERATOR[@]}"
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

mkdir -p results
: > bench_output.txt
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ===" | tee -a bench_output.txt
  "$bench" 2>&1 | tee "results/$name.txt" | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "=== machine-readable metrics -> results/metrics/ ==="
mkdir -p results/metrics
"$BUILD_DIR"/bench/table2_congestion_sim --format=json \
  > results/metrics/table2_congestion_sim.json
"$BUILD_DIR"/bench/fig3_dmm_pipeline \
  --chrome-trace=results/metrics/fig3_pipeline.trace.json > /dev/null
for workload in transpose-crsw transpose-srcw transpose-drdw; do
  "$BUILD_DIR"/examples/rapsim_profile --workload="$workload" --format=json \
    > "results/metrics/profile_${workload}.json"
done
tools/check_metrics_schema.sh "$BUILD_DIR"/bench/table2_congestion_sim

echo "=== demo replay campaign -> results/replay/ ==="
REPLAY="$BUILD_DIR/tools/rapsim-replay"
"$REPLAY" campaign examples/contiguous_stride.trace \
          examples/same_bank_adversary.trace \
          --schemes=raw,ras,rap,pad --trials=8 --results=results/replay
tools/check_replay_schema.sh "$REPLAY" \
  examples/contiguous_stride.trace examples/same_bank_adversary.trace

echo "=== serve daemon drill -> results/serve/ ==="
mkdir -p results/serve
tools/serve_smoke.sh "$BUILD_DIR"/tools/rapsim-served \
                     "$BUILD_DIR"/tools/rapsim-client
tools/check_serve_schema.sh "$BUILD_DIR"/tools/rapsim-served \
                            "$BUILD_DIR"/tools/rapsim-client || [ $? -eq 77 ]
# One short-lived daemon run whose drained metrics + span trace land in
# the results drop (the bench's stdout is already captured as
# results/ext_serve_throughput.txt by the loop above). Open the trace in
# ui.perfetto.dev to see each request's phase flame.
SERVE_SOCK="$(mktemp -u)"
"$BUILD_DIR"/tools/rapsim-served --socket="$SERVE_SOCK" \
  --metrics-out=results/serve/metrics.json \
  --trace-out=results/serve/spans.trace.json > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
for scheme in raw ras rap pad; do
  "$BUILD_DIR"/tools/rapsim-client certify --socket="$SERVE_SOCK" \
    --addresses="0,32,64,96,128" --width=32 --scheme="$scheme" > /dev/null
done
"$BUILD_DIR"/tools/rapsim-client stats --socket="$SERVE_SOCK" \
  > results/serve/stats.json
"$BUILD_DIR"/tools/rapsim-client shutdown --socket="$SERVE_SOCK" > /dev/null
wait "$SERVE_PID"

echo "=== perf trajectory -> results/bench/ ==="
mkdir -p results/bench
# Fresh BENCH_*.json documents from every instrumented bench (the quick
# protocol keeps this section to seconds; drop --quick for a real
# measurement run). Compared against the committed baselines at the repo
# root NON-fatally: a regression prints loudly but does not abort the
# sweep — promote a fresh document to the root baseline when a slowdown
# (or speedup) is intentional.
"$BUILD_DIR"/bench/table2_congestion_sim \
  --bench-json=results/bench/BENCH_table2.json --quick
"$BUILD_DIR"/bench/theorem2_bound_sweep \
  --bench-json=results/bench/BENCH_theorem2.json --quick
"$BUILD_DIR"/bench/micro_mapping_overhead \
  --bench-json=results/bench/BENCH_micro_mapping.json --quick
"$BUILD_DIR"/bench/ext_trace_replay \
  --bench-json=results/bench/BENCH_trace_replay.json --quick
"$BUILD_DIR"/bench/ext_serve_throughput \
  --bench-json=results/bench/BENCH_serve.json --quick
"$BUILD_DIR"/bench/ext_synthesis \
  --bench-json=results/bench/BENCH_synth.json --quick
"$BUILD_DIR"/bench/ext_vm_workloads \
  --bench-json=results/bench/BENCH_vm.json --quick
"$BUILD_DIR"/bench/ext_hier_scaling \
  --bench-json=results/bench/BENCH_hier.json --quick
tools/check_bench_schema.sh "$BUILD_DIR"/bench/theorem2_bound_sweep \
  || [ $? -eq 77 ]
tools/check_vm_schema.sh "$BUILD_DIR"/bench/ext_vm_workloads \
  || [ $? -eq 77 ]
tools/check_hier_schema.sh "$BUILD_DIR"/tools/rapsim-hier \
  "$BUILD_DIR"/bench/ext_hier_scaling || [ $? -eq 77 ]
COMPARE="$BUILD_DIR/tools/bench_compare"
for baseline in BENCH_table2.json BENCH_serve.json BENCH_synth.json \
                BENCH_vm.json BENCH_hier.json; do
  [ -f "$baseline" ] || continue
  "$COMPARE" "$baseline" "results/bench/$baseline" \
    || echo "bench_compare: $baseline moved past the threshold (see above)"
done

echo "=== workload VM suite -> results/vm/ ==="
mkdir -p results/vm
# The Sitchinava suite as .rvm programs (DESIGN.md §15): capture every
# program-origin workload's deterministic address stream once, sweep the
# captured traces through a resumable campaign, and lint the shipped
# example program end to end (extraction -> congestion proof -> layout
# synthesis -> race certificate) into one JSON report.
VM_TRACES=()
for workload in bitonic vm-shearsort vm-mergesort-round \
                vm-permute-identity vm-permute-bitrev vm-permute-derange; do
  "$REPLAY" capture --workload="$workload" --width=16 \
    > "results/vm/${workload}.trace"
  VM_TRACES+=("results/vm/${workload}.trace")
done
"$REPLAY" capture --program=examples/shearsort.rvm --width=16 \
  > results/vm/shearsort_example.trace
"$REPLAY" campaign "${VM_TRACES[@]}" results/vm/shearsort_example.trace \
  --schemes=raw,ras,rap,pad --trials=8 --results=results/vm/campaign
"$BUILD_DIR"/tools/rapsim-lint --program=examples/shearsort.rvm \
  --width=16 --synthesize --format=json --fail-on=never \
  --out=results/vm/lint_shearsort_example.json

echo "=== hierarchy simulation -> results/hier/ ==="
mkdir -p results/hier
# One full-path hierarchy run per scheduler (DESIGN.md §16): same
# workload, map seed and memory path, so the three documents differ only
# by warp-scheduling policy. The per-SM stats and hier.* metric registry
# are embedded in each JSON document.
HIER="$BUILD_DIR/tools/rapsim-hier"
for scheduler in roundrobin gto dwr; do
  "$HIER" --workload=bitonic --width=32 --sms=4 --scheduler="$scheduler" \
    --scheme=rap --format=json > "results/hier/bitonic_${scheduler}.json"
done
"$HIER" --program=examples/shearsort.rvm --width=16 --sms=2 \
  --scheduler=gto --scheme=rap --format=json \
  > results/hier/shearsort_example.json
# HMM cost counters for the tiled-transpose cells (same registry schema).
"$BUILD_DIR"/bench/ext_tiled_transpose --seeds=2 \
  --metrics-out=results/metrics/hmm_tiled_transpose.json > /dev/null

echo "=== static lint reports -> results/analysis/ ==="
mkdir -p results/analysis
LINT="$BUILD_DIR/tools/rapsim-lint"
"$LINT" --list | while read -r kernel; do
  "$LINT" --kernel="$kernel" --format=json --fail-on=never \
    --out="results/analysis/lint_${kernel}.json"
done
tools/check_lint_schema.sh "$LINT"

echo "=== layout synthesis -> results/analysis/ ==="
# Full search per catalog kernel: the JSON report gains a "synthesis"
# block (winning spec, certificate, optimality witness) and SYNTHESIZE
# fix-its on every warning a family member can beat.
"$LINT" --list | while read -r kernel; do
  "$LINT" --kernel="$kernel" --synthesize --format=json --fail-on=never \
    --out="results/analysis/synth_${kernel}.json"
done

echo "done: $(ls results | wc -l) experiment reports in results/," \
     "$(ls results/metrics | wc -l) metric files in results/metrics/," \
     "$(ls results/analysis | wc -l) lint reports in results/analysis/"
