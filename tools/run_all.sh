#!/usr/bin/env bash
# Build, test, and regenerate every experiment into results/.
#
#   tools/run_all.sh [build-dir]
#
# Bench binaries accept --format=csv|markdown|ascii; this script captures
# the default ascii renderings, one file per experiment, plus combined
# test and bench logs at the repository root (test_output.txt /
# bench_output.txt, the names EXPERIMENTS.md references).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

mkdir -p results
: > bench_output.txt
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ===" | tee -a bench_output.txt
  "$bench" 2>&1 | tee "results/$name.txt" | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: $(ls results | wc -l) experiment reports in results/"
