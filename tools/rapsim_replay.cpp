// rapsim-replay — capture, replay and sweep shared-memory access traces.
//
// Three subcommands:
//
//   capture   run a built-in workload with the capture hook installed and
//             write its portable access trace (text or binary):
//               $ rapsim-replay capture --workload=transpose-crsw
//                     [--width=32] [--latency=1] [--encoding=text|binary]
//                     [--out=PATH]
//             Traces record LOGICAL addresses, so a capture is
//             scheme-independent; --out defaults to stdout (text only).
//             --program=FILE.rvm assembles a VM program (vm/assembler.hpp)
//             at --width and captures its lowered kernel instead of a
//             catalog workload.
//
//   replay    execute a trace under a chosen scheme and print its stats:
//               $ rapsim-replay replay TRACE [--scheme=rap] [--seed=1]
//                     [--latency=1] [--certify] [--format=json]
//             --certify attaches the static analyzer's worst-warp
//             congestion certificate for the trace's address streams.
//             --map=SPEC (or --map-file=PATH) replays under a synthesized
//             permute-shift mapping from rapsim-lint --synthesize /
//             advise.synthesize instead of a named scheme — the way a
//             certified bound is confirmed on the full DMM.
//
//   campaign  fan a (trace x scheme) grid across worker shards, caching
//             finished cells under --results so a killed campaign
//             resumes where it stopped (see replay/campaign.hpp):
//               $ rapsim-replay campaign TRACE... [--schemes=raw,ras,rap,pad]
//                     [--trials=4] [--seed=1] [--latency=1]
//                     [--widths=16,32] [--results=results/replay]
//
// Workloads: `rapsim-replay --list-workloads` prints the catalog grouped
// by origin — the C++ builtin builders and the `.rvm` VM-program suite
// (bitonic, vm-shearsort, vm-mergesort-round, vm-permute-*).
//
// Quickstart (uses the example traces shipped in examples/):
//   $ rapsim-replay replay examples/contiguous_stride.trace --scheme=raw
//   $ rapsim-replay campaign examples/contiguous_stride.trace
//         examples/same_bank_adversary.trace --schemes=raw,rap --trials=8

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/synth.hpp"
#include "core/factory.hpp"
#include "dmm/machine.hpp"
#include "replay/campaign.hpp"
#include "replay/replay.hpp"
#include "replay/trace.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "workload_kernels.hpp"

namespace {

using namespace rapsim;

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s capture [--workload=NAME | --program=FILE.rvm] "
               "[--width=W] [--latency=L] "
               "[--encoding=text|binary] [--out=PATH]\n"
               "       %s replay TRACE [--scheme=S | --map=SPEC | "
               "--map-file=PATH] [--seed=N] [--latency=L] "
               "[--certify] [--format=json]\n"
               "       %s campaign TRACE... [--schemes=LIST] [--trials=N] "
               "[--seed=N] [--latency=L] [--widths=LIST] [--results=DIR]\n"
               "       %s --list-workloads [--width=W]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

std::vector<core::Scheme> parse_schemes_csv(const std::string& csv) {
  std::vector<core::Scheme> schemes;
  std::string item;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!item.empty()) {
        const auto scheme = replay::parse_scheme_name(item);
        if (!scheme) {
          throw std::invalid_argument("unknown scheme: " + item +
                                      " (use raw, ras, rap, pad)");
        }
        schemes.push_back(*scheme);
        item.clear();
      }
    } else {
      item += csv[i];
    }
  }
  if (schemes.empty()) {
    throw std::invalid_argument("no schemes given (use raw, ras, rap, pad)");
  }
  return schemes;
}

int cmd_capture(const util::CliArgs& args) {
  const auto program_path = args.get("program");
  if (program_path && args.get("workload")) {
    throw std::invalid_argument("--workload and --program are exclusive");
  }
  const std::string workload = args.get_string("workload", "transpose-crsw");
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const std::string encoding_name = args.get_string("encoding", "text");
  const std::string out = args.get_string("out", "");

  replay::TraceEncoding encoding;
  if (encoding_name == "text") {
    encoding = replay::TraceEncoding::kText;
  } else if (encoding_name == "binary") {
    encoding = replay::TraceEncoding::kBinary;
  } else {
    throw std::invalid_argument("unknown encoding '" + encoding_name +
                                "' (use text or binary)");
  }
  if (out.empty() && encoding == replay::TraceEncoding::kBinary) {
    throw std::invalid_argument("--encoding=binary requires --out=PATH");
  }

  tools::WorkloadKernel entry;
  if (program_path) {
    // Assemble + lower the user's `.rvm` program at the requested width.
    const vm::Program program =
        vm::assemble(read_text_file(*program_path), width);
    vm::LoweredProgram lowered = vm::lower_program(program);
    entry = {program.name, std::move(lowered.kernel), lowered.rows,
             "program"};
  } else {
    entry = tools::workload_kernel(workload, width);
  }
  // Capture records logical addresses; run under the identity (RAW) map.
  const auto map =
      core::make_matrix_map(core::Scheme::kRaw, width, entry.rows, 1);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);
  dmm::RunStats stats;
  const replay::AccessTrace trace =
      replay::capture_run(machine, entry.kernel, &stats);

  if (out.empty()) {
    std::cout << replay::to_text(trace);
  } else {
    replay::save_trace(trace, out, encoding);
    std::fprintf(stderr,
                 "captured %s: %zu records, %llu threads, hash %016llx -> "
                 "%s\n",
                 entry.name.c_str(), trace.records.size(),
                 static_cast<unsigned long long>(trace.header.num_threads),
                 static_cast<unsigned long long>(replay::content_hash(trace)),
                 out.c_str());
  }
  return 0;
}

int cmd_replay(const util::CliArgs& args, const std::string& path) {
  const std::string scheme_name = args.get_string("scheme", "raw");
  const auto scheme = replay::parse_scheme_name(scheme_name);
  if (!scheme) {
    throw std::invalid_argument("unknown scheme: " + scheme_name +
                                " (use raw, ras, rap, pad)");
  }
  const std::uint64_t seed = args.get_uint("seed", 1);
  const auto latency =
      static_cast<std::uint32_t>(args.get_uint("latency", 1));
  const bool certify = args.get_bool("certify", false);

  // --map=SPEC / --map-file=PATH: replay under a synthesized permute-shift
  // mapping (analyze/synth.hpp spec format) instead of a named scheme.
  std::optional<analyze::SynthMapping> synth_mapping;
  {
    const auto spec = args.get("map");
    const auto spec_file = args.get("map-file");
    if (spec && spec_file) {
      throw std::invalid_argument("--map and --map-file are exclusive");
    }
    if (spec || spec_file) {
      if (args.get("scheme")) {
        throw std::invalid_argument("--map and --scheme are exclusive");
      }
      if (certify) {
        throw std::invalid_argument(
            "--certify is not supported with --map (the spec carries its "
            "own certificate from synthesis)");
      }
      std::string text = spec ? *spec : read_text_file(*spec_file);
      // A spec file may end with a trailing newline; strip it.
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
      }
      synth_mapping = analyze::SynthMapping::parse_spec(text);
    }
  }

  const replay::AccessTrace trace = replay::load_trace(path);
  trace.validate();
  const std::uint32_t width = trace.header.width;
  const std::uint64_t rows = (trace.header.memory_size + width - 1) / width;
  if (synth_mapping && synth_mapping->width != width) {
    throw std::invalid_argument(
        "map width " + std::to_string(synth_mapping->width) +
        " != trace width " + std::to_string(width));
  }
  const std::unique_ptr<core::AddressMap> map =
      synth_mapping
          ? analyze::make_synth_map(*synth_mapping, trace.header.memory_size)
          : core::make_matrix_map(*scheme, width, rows, seed);
  replay::ReplayOptions options;
  options.latency = latency;
  const replay::ReplayResult result =
      replay::replay_trace(trace, *map, options);

  std::optional<analyze::CongestionCertificate> certificate;
  if (certify) certificate = replay::certify_trace(trace, *scheme);

  const char* effective_scheme = synth_mapping
                                     ? core::scheme_name(core::Scheme::kSynth)
                                     : core::scheme_name(*scheme);
  if (args.wants_json()) {
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("schema_version", 1);
    json.kv("trace", std::string_view(path));
    json.kv("scheme", effective_scheme);
    if (synth_mapping) json.kv("map", synth_mapping->spec());
    json.kv("width", static_cast<std::uint64_t>(width));
    json.kv("latency", static_cast<std::uint64_t>(latency));
    json.kv("seed", seed);
    json.kv("time", result.stats.time);
    json.kv("pipeline_slots", result.stats.total_stages);
    json.kv("dispatches", result.stats.dispatches);
    json.kv("max_congestion",
            static_cast<std::uint64_t>(result.stats.max_congestion));
    json.kv("avg_congestion", result.stats.avg_congestion);
    if (certificate) {
      json.key("certificate").raw_value(certificate->to_json());
    }
    json.end_object();
    std::cout << json.str() << '\n';
    return 0;
  }

  std::printf("trace      %s (hash %016llx)\n", path.c_str(),
              static_cast<unsigned long long>(replay::content_hash(trace)));
  std::printf("scheme     %s   width %u   latency %u   seed %llu\n",
              effective_scheme, width, latency,
              static_cast<unsigned long long>(seed));
  if (synth_mapping) {
    std::printf("map        %s\n", synth_mapping->spec().c_str());
  }
  std::printf("time       %llu\n",
              static_cast<unsigned long long>(result.stats.time));
  std::printf("slots      %llu\n",
              static_cast<unsigned long long>(result.stats.total_stages));
  std::printf("dispatches %llu\n",
              static_cast<unsigned long long>(result.stats.dispatches));
  std::printf("congestion max %u   avg %.3f\n", result.stats.max_congestion,
              result.stats.avg_congestion);
  if (certificate) {
    std::printf("certified  %s %.3f by %s (%s)\n",
                certificate->exact() ? "congestion ==" : "E[congestion] <=",
                certificate->bound, certificate->rule.c_str(),
                certificate->claim.c_str());
  }
  return 0;
}

int cmd_list_workloads(const util::CliArgs& args) {
  const auto width = static_cast<std::uint32_t>(args.get_uint("width", 32));
  std::vector<tools::WorkloadKernel> catalog = tools::workload_kernels(width);
  // Group by origin: the C++ builders first, then the VM programs.
  for (const char* origin : {"builtin", "program"}) {
    std::printf("%s:\n", origin);
    for (const tools::WorkloadKernel& entry : catalog) {
      if (entry.origin != origin) continue;
      std::printf("  %-22s %llu threads, %llu x %u words\n",
                  entry.name.c_str(),
                  static_cast<unsigned long long>(entry.kernel.num_threads),
                  static_cast<unsigned long long>(entry.rows), width);
    }
  }
  return 0;
}

int cmd_campaign(const util::CliArgs& args,
                 std::vector<std::string> trace_paths) {
  replay::CampaignConfig config;
  config.trace_paths = std::move(trace_paths);
  config.schemes = parse_schemes_csv(args.get_string("schemes", "raw,ras,rap,pad"));
  config.latency = static_cast<std::uint32_t>(args.get_uint("latency", 1));
  config.trials = static_cast<std::uint32_t>(args.get_uint("trials", 4));
  config.seed = args.get_uint("seed", 1);
  for (const std::uint64_t w : args.get_uint_list("widths", {})) {
    config.widths.push_back(static_cast<std::uint32_t>(w));
  }
  config.results_dir = args.get_string("results", "results/replay");

  const replay::CampaignReport report = replay::run_campaign(config);
  std::printf("campaign: %zu cells (%zu cached, %zu computed)\n",
              report.cells.size(), report.cells_cached,
              report.cells_computed);
  std::printf("congestion: mean %.3f  p99 %llu  max %llu over %zu dispatches\n",
              report.merged_congestion.mean(),
              static_cast<unsigned long long>(
                  report.merged_congestion.percentile(99.0)),
              static_cast<unsigned long long>(
                  report.merged_congestion.count()
                      ? report.merged_congestion.max()
                      : 0),
              report.merged_congestion.count());
  std::printf("manifest: %s\n", report.manifest_path.c_str());
  std::printf("summary:  %s\n", report.summary_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::vector<std::string>& positional = args.positional();
  try {
    if (args.get_bool("list-workloads", false)) {
      if (!positional.empty()) return usage(argv[0]);
      return cmd_list_workloads(args);
    }
    if (positional.empty()) return usage(argv[0]);
    const std::string& command = positional[0];
    if (command == "capture") {
      if (positional.size() != 1) return usage(argv[0]);
      return cmd_capture(args);
    }
    if (command == "replay") {
      if (positional.size() != 2) return usage(argv[0]);
      return cmd_replay(args, positional[1]);
    }
    if (command == "campaign") {
      if (positional.size() < 2) return usage(argv[0]);
      return cmd_campaign(
          args, {positional.begin() + 1, positional.end()});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapsim-replay: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
