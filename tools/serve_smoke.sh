#!/usr/bin/env bash
# End-to-end smoke of the rapsim-served daemon with real processes:
#
#   tools/serve_smoke.sh [path/to/rapsim-served] [path/to/rapsim-client]
#
# Two daemon incarnations on throwaway UNIX sockets, no python needed:
#
#   normal config    1. >= 8 concurrent clients across every method
#                       family all succeed;
#                    2. a repeated certify is served from the cache
#                       byte-identically, and the live stats snapshot
#                       reports the hit (hit_rate / occupancy /
#                       busy_workers / utilization);
#                    2b. the daemon ran with --trace-out: the drain
#                       writes a chrome://tracing document whose replay
#                       request renders as a nested flame (request,
#                       admission, cache_lookup, queue_wait,
#                       execute:replay, write spans);
#   1 worker/queue 1 3. saturating the pool sheds with a structured
#                       503 overloaded;
#                    4. SIGTERM drains gracefully: exit code 0, metrics
#                       flushed, and the document records the shed.
#
# Registered as the ctest entry `serve_smoke`; also run by run_all.sh.

set -euo pipefail

SERVED="${1:-build/tools/rapsim-served}"
CLIENT="${2:-build/tools/rapsim-client}"
for bin in "$SERVED" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "serve_smoke: binary not found: $bin" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SOCK="$WORK/served.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: $*" >&2; exit 1; }

start_daemon() {  # start_daemon <flags...>
  rm -f "$SOCK"
  "$SERVED" --socket="$SOCK" "$@" > "$WORK/served.log" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
  done
  fail "socket $SOCK never appeared"
}

rpc() { "$CLIENT" "$@" --socket="$SOCK"; }

# --- 1. concurrent mixed-method clients --------------------------------
TRACE_OUT="$WORK/spans.trace.json"
start_daemon --trace-out="$TRACE_OUT"
KERNEL="$(dirname "$0")/../examples/naive_transpose.kernel"
TRACE="$(dirname "$0")/../examples/contiguous_stride.trace"
PIDS=()
for i in 1 2 3 4; do
  rpc certify --addresses="0,$((i * 32)),$((i * 64))" --width=32 \
      > "$WORK/out_certify_$i" &
  PIDS+=($!)
  rpc advise --addresses="$i,$((i + 32))" --rows=4 --width=32 --draws=4 \
      > "$WORK/out_advise_$i" &
  PIDS+=($!)
done
rpc lint --file="$KERNEL" > "$WORK/out_lint" &
PIDS+=($!)
rpc replay --trace="$TRACE" --scheme=rap --seed=3 > "$WORK/out_replay" &
PIDS+=($!)
rpc ping > "$WORK/out_ping" &
PIDS+=($!)
rpc stats > "$WORK/out_stats" &
PIDS+=($!)
for pid in "${PIDS[@]}"; do
  wait "$pid" || fail "a concurrent client failed"
done
echo "serve_smoke: ${#PIDS[@]} concurrent clients OK"

# --- 2. cache hit is byte-identical ------------------------------------
rpc certify --addresses="0,16,32,48" --width=16 > "$WORK/cold"
rpc certify --addresses="0,16,32,48" --width=16 > "$WORK/warm"
cmp -s "$WORK/cold" "$WORK/warm" || fail "cached result body differs"
rpc certify --addresses="0,16,32,48" --width=16 --verbose \
  | grep -q '"cached":true' || fail "repeat request was not served cached"
echo "serve_smoke: cache replay byte-identical OK"

# The live stats snapshot must reflect that hit: a nonzero hit_rate plus
# the occupancy / worker-utilization gauges the dashboard consumers read.
rpc stats > "$WORK/stats_after_hit"
grep -q '"hits":' "$WORK/stats_after_hit" || fail "stats lost cache hits"
grep -q '"hit_rate":0\.' "$WORK/stats_after_hit" \
  || fail "stats hit_rate not a nonzero fraction after a cache hit"
grep -q '"occupancy":' "$WORK/stats_after_hit" || fail "stats lacks occupancy"
grep -q '"busy_workers":' "$WORK/stats_after_hit" \
  || fail "stats lacks busy_workers"
grep -q '"utilization":' "$WORK/stats_after_hit" \
  || fail "stats lacks utilization"
grep -q '"serve.phase_us"' "$WORK/stats_after_hit" \
  || fail "stats metrics lack the serve.phase_us distributions"
echo "serve_smoke: live stats snapshot OK"

rpc shutdown > /dev/null
wait "$DAEMON_PID" || fail "daemon did not drain after client shutdown"
DAEMON_PID=""

# --- 2b. the drain wrote the request-span flame ------------------------
[ -f "$TRACE_OUT" ] || fail "drain did not write $TRACE_OUT"
for span in '"request"' '"admission"' '"cache_lookup"' '"queue_wait"' \
            '"execute:replay"' '"write"'; do
  grep -q "$span" "$TRACE_OUT" \
    || fail "chrome trace lacks the $span span"
done
echo "serve_smoke: chrome trace spans OK (request flame captured)"

# --- 3. deliberate overload sheds with 503 -----------------------------
# Tiny incarnation: hold the single worker, fill the queue's one slot,
# then watch the next request bounce. Control-plane stats bypasses the
# queue, so polling it under saturation is itself part of the check.
METRICS="$WORK/metrics.json"
start_daemon --workers=1 --queue-depth=1 --metrics-out="$METRICS"

rpc raw '{"method":"certify","params":{"addresses":[1],"width":32},"debug_hold_ms":4000}' \
    > "$WORK/hold_a" &
HOLD_A=$!
for _ in $(seq 1 100); do
  rpc stats > "$WORK/stats_poll" || fail "stats unreachable while held"
  grep -q '"in_flight":1' "$WORK/stats_poll" && \
    grep -q '"queue_depth":0' "$WORK/stats_poll" && break
  sleep 0.05
done
grep -q '"in_flight":1' "$WORK/stats_poll" || fail "hold never started"

rpc raw '{"method":"certify","params":{"addresses":[2],"width":32},"debug_hold_ms":500}' \
    > "$WORK/hold_b" &
HOLD_B=$!
for _ in $(seq 1 100); do
  rpc stats > "$WORK/stats_poll"
  grep -q '"queue_depth":1' "$WORK/stats_poll" && break
  sleep 0.05
done
grep -q '"queue_depth":1' "$WORK/stats_poll" || fail "queue slot never filled"

rpc raw '{"id":"shed-me","method":"certify","params":{"addresses":[3],"width":32}}' \
    > "$WORK/shed"
grep -q '"code":503' "$WORK/shed" || fail "expected a 503 shed, got: $(cat "$WORK/shed")"
grep -q '"name":"overloaded"' "$WORK/shed" || fail "shed lacks the overloaded name"
wait "$HOLD_A" || fail "held request A failed"
wait "$HOLD_B" || fail "held request B failed"
echo "serve_smoke: overload shed with structured 503 OK"

# --- 4. graceful SIGTERM drain -----------------------------------------
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
DAEMON_PID=""
[ "$DRAIN_RC" -eq 0 ] || fail "daemon exited $DRAIN_RC on SIGTERM"
grep -q "drained cleanly" "$WORK/served.log" || fail "no drain banner logged"
[ -f "$METRICS" ] || fail "drain did not flush $METRICS"
grep -q '"experiment":"rapsim_served"' "$METRICS" || fail "metrics document malformed"
grep -q '"shed_total":1' "$METRICS" || fail "flushed metrics lost the shed count"
echo "serve_smoke: SIGTERM drain OK (exit 0, metrics flushed)"

echo "serve_smoke: PASS"
