#!/usr/bin/env bash
# Validate the machine-readable contracts of the hierarchy simulator:
#
#   tools/check_hier_schema.sh [path/to/rapsim-hier] [path/to/ext_hier_scaling]
#
# 1. rapsim-hier --format=json: the run document must parse, carry
#    schema_version 1, echo the configuration (including the full path
#    geometry), report consistent totals (total.dispatches = sum over
#    SMs, cycles = max over SMs), and embed a metrics registry dump with
#    the hier.* counters.
# 2. ext_hier_scaling --bench-json (the BENCH_hier.json producer): the
#    generic BENCH_*.json aggregate schema plus the hier-specific
#    contract — all nine cycles_sms<N>_<sched> config cells present, and
#    at >= 2 SMs the cycle counts must NOT be identical across the three
#    schedulers (the scheduler has to matter once SMs contend).
#
# Registered as the ctest entry `hier_schema` with SKIP_RETURN_CODE 77:
# a host without python3 skips rather than fails.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

HIER_BIN="${1:-build/tools/rapsim-hier}"
BENCH_BIN="${2:-build/bench/ext_hier_scaling}"
for bin in "$HIER_BIN" "$BENCH_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "check_hier_schema: binary not found: $bin" >&2
    exit 1
  fi
done

json_schema_require_python3 check_hier_schema 77

DOC="$(json_schema_tmpfile)"
BENCH_DOC="$DOC.bench"
trap 'rm -f "$DOC" "$BENCH_DOC"' EXIT

"$HIER_BIN" --workload=bitonic --width=16 --sms=2 --scheduler=gto \
    --scheme=rap --format=json > "$DOC"

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"hier run schema violation: {what}")

require(doc.get("schema_version") == 1, "schema_version must be 1")

config = doc.get("config")
require(isinstance(config, dict), "config must be an object")
require(config.get("workload") == "bitonic", "config.workload must echo")
require(config.get("width") == 16, "config.width must echo")
require(config.get("sms") == 2, "config.sms must echo")
require(config.get("scheduler") == "gto", "config.scheduler must echo")
require(isinstance(config.get("scheme"), str) and config["scheme"],
        "config.scheme must be a non-empty string")
path = config.get("path")
require(isinstance(path, dict), "config.path must be an object")
require(path.get("enabled") is True, "path must default to enabled")
for key in ("line_words", "l1_lines", "l1_latency", "l2_lines",
            "l2_latency", "l2_service", "dram_latency", "dram_service",
            "mshrs"):
    require(isinstance(path.get(key), int) and path[key] >= 0,
            f"path.{key} must be a non-negative int")

total = doc.get("total")
require(isinstance(total, dict), "total must be an object")
for key in ("cycles", "dispatches", "total_stages", "max_congestion",
            "l2_hits", "l2_misses", "l2_queue_cycles"):
    require(isinstance(total.get(key), int) and total[key] >= 0,
            f"total.{key} must be a non-negative int")
for key in ("avg_congestion", "est_ns"):
    require(isinstance(total.get(key), (int, float)),
            f"total.{key} must be a number")
require(total["cycles"] > 0, "total.cycles must be positive")

sms = doc.get("sms")
require(isinstance(sms, list) and len(sms) == 2,
        "sms must be an array of 2 entries")
for i, sm in enumerate(sms):
    require(isinstance(sm, dict), f"sms[{i}] must be an object")
    require(sm.get("sm") == i, f"sms[{i}].sm must be {i}")
    for key in ("cycles", "dispatches", "total_stages", "max_congestion",
                "l1_hits", "l1_misses", "l2_hits", "dram_fills",
                "mshr_stall_cycles", "mem_wait_cycles", "idle_slots",
                "warp_stall_slots"):
        require(isinstance(sm.get(key), int) and sm[key] >= 0,
                f"sms[{i}].{key} must be a non-negative int")
require(total["dispatches"] == sum(sm["dispatches"] for sm in sms),
        "total.dispatches must be the sum over SMs")
require(total["cycles"] == max(sm["cycles"] for sm in sms),
        "total.cycles must be the max over SMs")

metrics = doc.get("metrics")
require(isinstance(metrics, dict), "metrics must be a registry dump")
counters = {c["name"] for c in metrics.get("counters", [])}
for name in ("hier.cycles", "hier.dispatches", "hier.l2_hits",
             "hier.sm_cycles", "hier.l1_misses"):
    require(name in counters, f"missing registry counter {name}")

print(f"check_hier_schema: run document OK "
      f"({total['cycles']} cycles over {len(sms)} SMs)")
EOF

"$BENCH_BIN" --bench-json="$BENCH_DOC" --quick > /dev/null

json_schema_validate "$BENCH_DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"hier bench schema violation: {what}")

require(doc.get("schema_version") == 1, "schema_version must be 1")
require(doc.get("bench") == "ext_hier_scaling",
        "bench must be ext_hier_scaling")
require(isinstance(doc.get("unix_time"), int), "unix_time must be an int")

machine = doc.get("machine")
require(isinstance(machine, dict), "machine must be an object")
for key in ("hostname", "os", "compiler"):
    require(isinstance(machine.get(key), str) and machine[key],
            f"machine.{key} must be a non-empty string")

config = doc.get("config")
require(isinstance(config, dict), "config must be an object")
SCHEDULERS = ("roundrobin", "gto", "dwr")
for sms in (1, 2, 4):
    for sched in SCHEDULERS:
        key = f"cycles_sms{sms}_{sched}"
        require(isinstance(config.get(key), int) and config[key] > 0,
                f"config.{key} must be a positive int")

# The scheduler must matter once SMs contend for the shared ports.
for sms in (2, 4):
    cycles = {config[f"cycles_sms{sms}_{s}"] for s in SCHEDULERS}
    require(len(cycles) > 1,
            f"cycle counts at {sms} SMs are scheduler-independent")

metrics = doc.get("metrics")
require(isinstance(metrics, list) and len(metrics) == 9,
        "metrics must hold the nine sim_* series")
INT_FIELDS = ("samples", "items", "total_ns", "p50_ns", "p95_ns",
              "p99_ns", "min_ns", "max_ns")
NUM_FIELDS = ("ops_per_sec", "ns_per_op", "mean_ns", "stddev_ns")
for metric in metrics:
    require(isinstance(metric, dict), "each metric must be an object")
    name = metric.get("name")
    require(isinstance(name, str) and name.startswith("sim_sms"),
            "metric names must be sim_sms<N>_<sched>")
    for key in INT_FIELDS:
        require(isinstance(metric.get(key), int) and metric[key] >= 0,
                f"{name}.{key} must be a non-negative int")
    for key in NUM_FIELDS:
        require(isinstance(metric.get(key), (int, float)),
                f"{name}.{key} must be a number")
    require(metric["samples"] > 0, f"{name} recorded no samples")
    require(metric["ns_per_op"] > 0, f"{name}.ns_per_op must be positive")

print("check_hier_schema: bench document OK (9 cells, "
      "scheduler-dependent at >= 2 SMs)")
EOF
