// rapsim-lint — static bank-congestion lint driver.
//
// Lints kernels described in the loop-nest IR: the built-in catalog
// (builtin_kernels.hpp) and user kernels in the text format
// (analyze/kernelir.hpp; see DESIGN.md "rapsim-lint"). For every access
// site the symbolic passes certify the WORST loop binding and the driver
// reports diagnostics with fix-it suggestions.
//
//   rapsim-lint                          # lint every built-in at w=32, RAW
//   rapsim-lint --list-kernels           # catalog names (alias: --list)
//   rapsim-lint --list-workloads         # catalog grouped by origin
//   rapsim-lint --kernel=transpose-CRSW --scheme=rap
//   rapsim-lint --file=examples/naive_transpose.kernel --format=json
//   rapsim-lint --program=examples/shearsort.rvm   # lint a VM program
//   rapsim-lint --width=64 --fail-on=warning
//   rapsim-lint --kernel=transpose-CRSW --synthesize
//
// --synthesize runs the layout synthesizer (analyze/synth.hpp) on every
// linted kernel: warnings gain a SYNTHESIZE fix-it when the synthesized
// permute-shift mapping provably beats the site's bound, and the full
// SynthesisResult (mapping spec, certificate, optimality witness) is
// attached to each report ("synthesis" block in JSON). --synth-draws and
// --synth-seed tune the random corner of the search.
//
// Exit status: 0 when no diagnostic reaches --fail-on (error|warning|
// never; default error), 1 otherwise, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/kernelir.hpp"
#include "analyze/lint.hpp"
#include "builtin_kernels.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"
#include "vm/assembler.hpp"
#include "vm/extract.hpp"

namespace {

using namespace rapsim;

core::Scheme parse_scheme(const std::string& name) {
  if (name == "raw") return core::Scheme::kRaw;
  if (name == "pad") return core::Scheme::kPad;
  if (name == "ras") return core::Scheme::kRas;
  if (name == "rap") return core::Scheme::kRap;
  throw std::invalid_argument("unknown scheme '" + name +
                              "' (expected raw, pad, ras or rap)");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    const auto width =
        static_cast<std::uint32_t>(args.get_uint("width", 32));
    const core::Scheme scheme =
        parse_scheme(args.get_string("scheme", "raw"));
    const std::string fail_on = args.get_string("fail-on", "error");
    if (fail_on != "error" && fail_on != "warning" && fail_on != "never") {
      throw std::invalid_argument(
          "--fail-on must be error, warning or never");
    }

    if (args.get_bool("list", false) ||
        args.get_bool("list-kernels", false)) {
      for (const auto& kernel : tools::builtin_kernels(width)) {
        std::cout << kernel.name << "\n";
      }
      return 0;
    }
    if (args.get_bool("list-workloads", false)) {
      // Catalog grouped by origin: "bitonic" and the vm-* entries are
      // extracted from `.rvm` programs, everything else is hand-described.
      const auto is_program = [](const std::string& name) {
        return name == "bitonic" || name.rfind("vm-", 0) == 0;
      };
      const auto catalog = tools::builtin_kernels(width);
      for (const bool program : {false, true}) {
        std::cout << (program ? "program:\n" : "builtin:\n");
        for (const auto& kernel : catalog) {
          if (is_program(kernel.name) == program) {
            std::cout << "  " << kernel.name << "\n";
          }
        }
      }
      return 0;
    }

    analyze::LintOptions options;
    options.synthesize = args.get_bool("synthesize", false);
    options.synth.random_draws = args.get_uint("synth-draws", 48);
    options.synth.seed = args.get_uint("synth-seed", 1);
    options.races = args.get_bool("races", true);  // --races=false to skip

    std::vector<analyze::KernelDesc> kernels;
    if (const auto file = args.get("file")) {
      kernels.push_back(analyze::parse_kernel_text(read_file(*file), width));
    } else if (const auto program = args.get("program")) {
      // Assemble + extract loop-nest IR from a `.rvm` VM program. When the
      // extraction cannot name every executing warp the congestion passes
      // stay sound but race attribution would be unsound — skip it.
      vm::ExtractResult extracted =
          vm::extract_kernel(vm::assemble(read_file(*program), width));
      if (!extracted.complete) {
        for (const std::string& note : extracted.notes) {
          std::cerr << "rapsim-lint: note: " << note << "\n";
        }
        std::cerr << "rapsim-lint: extraction incomplete; race analysis "
                     "skipped\n";
        options.races = false;
      }
      kernels.push_back(std::move(extracted.kernel));
    } else if (const auto name = args.get("kernel")) {
      // builtin_kernel's unknown-name error enumerates the catalog.
      kernels.push_back(tools::builtin_kernel(*name, width));
    } else {
      kernels = tools::builtin_kernels(width);
    }

    std::vector<analyze::LintReport> reports;
    reports.reserve(kernels.size());
    for (const auto& kernel : kernels) {
      reports.push_back(analyze::lint_kernel(kernel, scheme, options));
    }

    std::ostringstream out;
    if (args.wants_json()) {
      telemetry::JsonWriter json;
      json.begin_object();
      json.kv("tool", "rapsim-lint");
      json.kv("version", 1);
      json.kv("width", static_cast<std::uint64_t>(width));
      json.kv("scheme", core::scheme_name(scheme));
      json.key("reports");
      json.begin_array();
      for (const auto& report : reports) {
        json.raw_value(analyze::lint_report_json(report));
      }
      json.end_array();
      json.end_object();
      out << json.str() << "\n";
    } else {
      for (const auto& report : reports) {
        out << analyze::lint_report_text(report);
      }
    }

    if (const auto path = args.get("out")) {
      std::ofstream file(*path);
      if (!file) throw std::invalid_argument("cannot write '" + *path + "'");
      file << out.str();
    } else {
      std::cout << out.str();
    }

    analyze::Severity worst = analyze::Severity::kInfo;
    for (const auto& report : reports) {
      if (static_cast<int>(report.severity()) > static_cast<int>(worst)) {
        worst = report.severity();
      }
    }
    if (fail_on == "error" && worst == analyze::Severity::kError) return 1;
    if (fail_on == "warning" && worst != analyze::Severity::kInfo) return 1;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rapsim-lint: " << error.what() << "\n";
    return 2;
  }
}
