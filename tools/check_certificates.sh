#!/usr/bin/env bash
# Validate the CongestionCertificate JSON contract.
#
#   tools/check_certificates.sh [path/to/prove_pattern]
#
# Runs prove_pattern --format=json on a couple of patterns and checks each
# emitted line parses as JSON and carries every key downstream consumers
# (results/ drops, the advisor rationale) rely on: scheme, kind, bound,
# rule, claim, pattern. Registered as the ctest entry `certificate_schema`.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/examples/prove_pattern}"
if [ ! -x "$BIN" ]; then
  echo "check_certificates: prove_pattern binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_certificates

DOC="$(json_schema_tmpfile)"
{
  "$BIN" --pattern=column --width=16 --format=json
  "$BIN" --pattern=flat --stride=6 --width=16 --format=json
  "$BIN" --addrs=0,3,1,4,1,5 --width=16 --format=json
} > "$DOC"

json_schema_validate "$DOC" <<'EOF'
import json
import sys

def require(cond, what):
    if not cond:
        sys.exit(f"certificate schema violation: {what}")

lines = [l for l in open(sys.argv[1], encoding="utf-8") if l.strip()]
require(len(lines) == 12, f"expected 12 certificates, got {len(lines)}")

schemes = set()
rules = set()
for line in lines:
    cert = json.loads(line)
    for key in ("scheme", "kind", "bound", "rule", "claim", "pattern"):
        require(key in cert, f"certificate has '{key}'")
    require(cert["kind"] in ("exact", "expected-upper"),
            "kind is exact or expected-upper")
    require(isinstance(cert["bound"], (int, float)) and cert["bound"] >= 0,
            "bound is a non-negative number")
    require(cert["rule"], "rule is non-empty")
    schemes.add(cert["scheme"])
    rules.add(cert["rule"])
require(schemes == {"RAW", "PAD", "RAS", "RAP"}, "all four schemes present")
require("rap-distinct-shifts" in rules and "direct-eval" in rules,
        "expected proof rules fired")

print(f"certificate schema OK: {len(lines)} certificates, "
      f"rules {sorted(rules)}")
EOF
