# Shared helpers for the python3-backed JSON schema checks
# (check_metrics_schema.sh, check_certificates.sh, check_lint_schema.sh).
# Source this file; do not execute it.
#
# The common shape of every check: require python3 (a real JSON parse is
# the point — a grep fallback would pass documents no consumer can load),
# capture the tool's output into a temp file cleaned up on exit, then run
# a validator program through python's stdin with the document path as
# argv[1] (the heredoc occupies stdin, so the document cannot ride a pipe).

# json_schema_require_python3 CALLER [EXIT_CODE]
#
# Exit with EXIT_CODE (default 1) unless python3 is on PATH. Pass 77 for
# checks registered with a ctest SKIP_RETURN_CODE so a python-less host
# skips rather than fails.
json_schema_require_python3() {
  local caller="$1" code="${2:-1}"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "$caller: python3 is required to validate the JSON schema" \
         "and was not found on PATH" >&2
    exit "$code"
  fi
}

# json_schema_tmpfile
#
# Print the path of a fresh temp file that is removed when the sourcing
# script exits. Registers an EXIT trap: call at most once per script (a
# second call would replace the first trap).
json_schema_tmpfile() {
  local doc
  doc="$(mktemp)"
  # shellcheck disable=SC2064  # expand $doc now, not at exit time
  trap "rm -f '$doc'" EXIT
  printf '%s' "$doc"
}

# json_schema_validate DOC
#
# Run the python validator program supplied on stdin (normally a heredoc)
# against DOC, which the program receives as sys.argv[1].
json_schema_validate() {
  python3 - "$@"
}
