// bench_compare — diff two BENCH_<name>.json perf-trajectory documents.
//
//   $ bench_compare BASELINE.json CURRENT.json [--threshold=0.30]
//
// Prints one line per metric (baseline ns/op, current ns/op, ratio) and
// a verdict. Exit codes, stable for CI:
//
//   0  no metric regressed (ratio < 1 + threshold everywhere)
//   1  at least one metric's ns_per_op degraded by >= threshold
//   2  usage / IO / malformed document (incl. mismatched bench names)
//
// Metrics present on only one side are listed but never fail the run —
// benches grow new metrics across PRs. A hostname mismatch is flagged
// (cross-machine numbers are not a trajectory) but is not a failure.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "perfbench/compare.hpp"
#include "util/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);
  const auto& files = args.positional();
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--threshold=0.30]\n");
    return 2;
  }
  const double threshold =
      args.get_double("threshold", perfbench::kDefaultRegressionThreshold);
  if (threshold <= 0.0) {
    std::fprintf(stderr, "bench_compare: --threshold must be > 0\n");
    return 2;
  }

  perfbench::CompareResult result;
  try {
    result = perfbench::compare_bench_json(read_file(files[0]),
                                           read_file(files[1]), threshold);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  std::printf("bench: %s (threshold %.0f%%)\n", result.bench.c_str(),
              threshold * 100.0);
  if (!result.same_machine) {
    std::printf(
        "WARNING: documents come from different machines — ratios are "
        "not a trajectory\n");
  }
  for (const perfbench::MetricDelta& delta : result.deltas) {
    std::printf("  %-32s %12.2f -> %12.2f ns/op  ratio %.3f%s\n",
                delta.name.c_str(), delta.baseline_ns_per_op,
                delta.current_ns_per_op, delta.ratio,
                delta.regressed ? "  REGRESSED" : "");
  }
  for (const std::string& name : result.only_baseline) {
    std::printf("  %-32s only in baseline\n", name.c_str());
  }
  for (const std::string& name : result.only_current) {
    std::printf("  %-32s only in current\n", name.c_str());
  }
  if (result.regression) {
    std::printf("verdict: REGRESSION\n");
    return 1;
  }
  std::printf("verdict: ok\n");
  return 0;
}
