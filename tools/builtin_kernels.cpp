#include "builtin_kernels.hpp"

#include <sstream>
#include <stdexcept>

#include "hmm/tiled_transpose.hpp"
#include "transpose/algorithms.hpp"
#include "vm/assembler.hpp"
#include "vm/extract.hpp"
#include "vm/suite.hpp"
#include "workloads/bitonic.hpp"
#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/reduction.hpp"

namespace rapsim::tools {

namespace {

/// Table IV access layouts on a w x w x w x w tensor flattened row-major:
/// addr = i*w^3 + j*w^2 + k*w + l. The warp varies one coordinate (the
/// lane) while the loop variables close over the other three.
analyze::KernelDesc tensor4d_kernel(std::uint32_t width, int axis) {
  const std::int64_t w = width;
  const std::int64_t strides[] = {w * w * w, w * w, w, 1};

  analyze::KernelDesc kernel;
  kernel.name = axis == 3 ? "tensor4d-contiguous"
                          : "tensor4d-stride" + std::to_string(3 - axis);
  kernel.width = width;
  kernel.rows = static_cast<std::uint64_t>(w) * w * w;  // size = w^4

  analyze::AccessSite site;
  site.name = "read A along axis " + std::to_string(axis);
  site.dir = analyze::AccessDir::kLoad;
  site.flat.lane_coeff = strides[axis];
  for (int c = 0; c < 4; ++c) {
    if (c == axis) continue;
    site.flat.coeffs.push_back(strides[c]);
    kernel.vars.push_back({std::string("x") + std::to_string(c), width});
  }
  kernel.sites = {std::move(site)};
  return kernel;
}

}  // namespace

std::vector<analyze::KernelDesc> builtin_kernels(std::uint32_t width) {
  const transpose::MatrixPair pair{width};
  const workloads::MatmulArrays arrays{width};
  const std::uint64_t n = 8ull * width;

  std::vector<analyze::KernelDesc> kernels;
  kernels.push_back(transpose::describe_kernel(transpose::Algorithm::kCrsw,
                                               pair));
  kernels.push_back(transpose::describe_kernel(transpose::Algorithm::kSrcw,
                                               pair));
  kernels.push_back(transpose::describe_kernel(transpose::Algorithm::kDrdw,
                                               pair));
  kernels.push_back(hmm::describe_tiled_transpose_shared(
      hmm::TransposeStrategy::kTiled, width));
  kernels.push_back(hmm::describe_tiled_transpose_shared(
      hmm::TransposeStrategy::kTiledDiagonal, width));
  kernels.push_back(workloads::describe_matmul_kernel(
      workloads::MatmulLayout::kRowMajorB, arrays));
  kernels.push_back(workloads::describe_matmul_kernel(
      workloads::MatmulLayout::kTransposedB, arrays));
  kernels.push_back(workloads::describe_reduction_kernel(
      workloads::ReductionVariant::kInterleaved, n, width));
  kernels.push_back(workloads::describe_reduction_kernel(
      workloads::ReductionVariant::kSequential, n, width));
  kernels.push_back(workloads::describe_bitonic_kernel(n, width));
  kernels.push_back(workloads::describe_histogram_kernel(
      workloads::HistogramConfig{width, 2 * width, 32}));
  for (int axis = 0; axis < 4; ++axis) {
    kernels.push_back(tensor4d_kernel(width, axis));
  }
  // VM-program suite members with affine extractions (vm/suite.hpp):
  // the raw-hostile sorting workloads the synthesizer certifies. The
  // suite needs width >= 8 (shearsort's 8-row grid).
  if (width >= 8) {
    for (const char* name : {"vm-mergesort-round", "vm-shearsort"}) {
      kernels.push_back(
          vm::extract_kernel(
              vm::assemble(vm::suite_program(name, width).text, width))
              .kernel);
    }
  }
  return kernels;
}

analyze::KernelDesc builtin_kernel(const std::string& name,
                                   std::uint32_t width) {
  auto kernels = builtin_kernels(width);
  for (auto& kernel : kernels) {
    if (kernel.name == name) return std::move(kernel);
  }
  std::ostringstream what;
  what << "unknown built-in kernel '" << name << "'; valid names:";
  for (const auto& kernel : kernels) what << " " << kernel.name;
  throw std::invalid_argument(what.str());
}

}  // namespace rapsim::tools
