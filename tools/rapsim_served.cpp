// rapsim-served — the resident analysis daemon.
//
// Speaks newline-delimited JSON over a UNIX domain socket (default) or
// TCP loopback (--tcp[-port]); see DESIGN.md §11 for the wire protocol.
// Methods: certify, lint, replay, advise (worker pool, cached), plus
// ping / stats / shutdown on the control plane.
//
//   $ rapsim-served --socket=/tmp/rapsim.sock
//   $ rapsim-served --tcp-port=7411
//   $ rapsim-served --tcp-port=0          # kernel picks; port printed
//
// Flags:
//   --socket=PATH        UNIX socket path (default rapsim-served.sock)
//   --tcp / --tcp-port=N serve TCP loopback instead (N=0: ephemeral)
//   --workers=N          pool size (default RAPSIM_THREADS/hardware)
//   --queue-depth=N      admission queue bound (default 64)
//   --cache-capacity=N   response cache entries (default 1024; 0 = off)
//   --cache-shards=N     cache shards (default 8)
//   --metrics-out=PATH   metrics flush target on drain
//                        (default results/serve/metrics.json; "" = none)
//   --trace-out=PATH     record request-scoped spans and write a
//                        chrome://tracing document here on drain
//                        (default "" = tracing off)
//   --max-connections=N  concurrent connection cap (default 256)
//
// Startup prints one machine-readable line on stdout:
//   rapsim-served listening on unix:/tmp/rapsim.sock
// SIGTERM/SIGINT (or a client shutdown request) drains gracefully:
// stop accepting, finish in-flight work, flush metrics, exit 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace rapsim;
  const util::CliArgs args(argc, argv);

  serve::ServerConfig config;
  if (args.get("tcp") || args.get("tcp-port")) {
    config.endpoint.port =
        static_cast<std::uint16_t>(args.get_uint("tcp-port", 0));
  } else {
    config.endpoint.path = args.get_string("socket", "rapsim-served.sock");
  }
  config.service.workers =
      static_cast<std::size_t>(args.get_uint("workers", 0));
  config.service.queue_depth =
      static_cast<std::size_t>(args.get_uint("queue-depth", 64));
  config.service.cache_capacity =
      static_cast<std::size_t>(args.get_uint("cache-capacity", 1024));
  config.service.cache_shards =
      static_cast<std::size_t>(args.get_uint("cache-shards", 8));
  config.metrics_path =
      args.get_string("metrics-out", "results/serve/metrics.json");
  config.trace_path = args.get_string("trace-out", "");
  config.max_connections =
      static_cast<std::size_t>(args.get_uint("max-connections", 256));

  try {
    serve::Server server(std::move(config));
    std::printf("rapsim-served listening on %s\n",
                server.endpoint().describe().c_str());
    std::fflush(stdout);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    // The signal handler can only flip a flag; a watcher thread turns
    // the flag into the drain request the accept loop polls.
    std::thread watcher([&server] {
      while (!g_stop && !server.service().shutdown_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      server.request_stop();
    });

    const int rc = server.run();
    watcher.join();
    std::printf("rapsim-served drained cleanly\n");
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapsim-served: %s\n", e.what());
    return 1;
  }
}
