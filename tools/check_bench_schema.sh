#!/usr/bin/env bash
# Validate the BENCH_<name>.json perf-trajectory schema.
#
#   tools/check_bench_schema.sh [path/to/a/bench/binary]
#
# Runs the given bench (default theorem2_bound_sweep) in --bench-json
# --quick mode and checks the emitted document parses and carries every
# field tools/bench_compare and the committed BENCH_*.json baselines
# rely on: schema_version 1, bench name, machine identity, config, and
# the full per-metric aggregate (samples/items/total_ns/ops_per_sec/
# ns_per_op/p50/p95/p99/min/max/mean/stddev). Registered as the ctest
# entry `bench_schema` with SKIP_RETURN_CODE 77: a host without python3
# skips rather than fails.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/bench/theorem2_bound_sweep}"
if [ ! -x "$BIN" ]; then
  echo "check_bench_schema: bench binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_bench_schema 77

DOC="$(json_schema_tmpfile)"
"$BIN" --bench-json="$DOC" --quick --widths=8,16 --trials=100 > /dev/null

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"bench schema violation: {what}")

require(doc.get("schema_version") == 1, "schema_version must be 1")
require(isinstance(doc.get("bench"), str) and doc["bench"],
        "bench must be a non-empty string")
require(isinstance(doc.get("unix_time"), int), "unix_time must be an int")

machine = doc.get("machine")
require(isinstance(machine, dict), "machine must be an object")
for key in ("hostname", "os", "compiler"):
    require(isinstance(machine.get(key), str) and machine[key],
            f"machine.{key} must be a non-empty string")
require(isinstance(machine.get("hardware_threads"), int),
        "machine.hardware_threads must be an int")

require(isinstance(doc.get("config"), dict), "config must be an object")

metrics = doc.get("metrics")
require(isinstance(metrics, list) and metrics,
        "metrics must be a non-empty array")
INT_FIELDS = ("samples", "items", "total_ns", "p50_ns", "p95_ns",
              "p99_ns", "min_ns", "max_ns")
NUM_FIELDS = ("ops_per_sec", "ns_per_op", "mean_ns", "stddev_ns")
for metric in metrics:
    require(isinstance(metric, dict), "each metric must be an object")
    require(isinstance(metric.get("name"), str) and metric["name"],
            "metric.name must be a non-empty string")
    name = metric["name"]
    for key in INT_FIELDS:
        require(isinstance(metric.get(key), int) and metric[key] >= 0,
                f"{name}.{key} must be a non-negative int")
    for key in NUM_FIELDS:
        require(isinstance(metric.get(key), (int, float)),
                f"{name}.{key} must be a number")
    require(metric["samples"] > 0, f"{name} recorded no samples")
    require(metric["ns_per_op"] > 0, f"{name}.ns_per_op must be positive")
    require(metric["min_ns"] <= metric["p50_ns"] <= metric["max_ns"],
            f"{name} percentiles out of order")

print(f"check_bench_schema: OK ({doc['bench']}: "
      f"{len(metrics)} metric(s) validated)")
EOF
