#!/usr/bin/env bash
# Validate the BENCH_vm.json perf-trajectory schema emitted by
# bench/ext_vm_workloads.
#
#   tools/check_vm_schema.sh [path/to/ext_vm_workloads]
#
# Runs the VM workload bench in --bench-json --quick mode and checks the
# emitted document parses, carries the generic BENCH_*.json aggregate
# schema (see tools/check_bench_schema.sh), and pins the VM-specific
# contract: the three phases assemble_lower / extract / replay are all
# present and the config records width, the suite's program count, and
# the replayed thread-access count. Registered as the ctest entry
# `vm_schema` with SKIP_RETURN_CODE 77: a host without python3 skips
# rather than fails.

set -euo pipefail

HERE="$(cd "$(dirname "$0")" && pwd)"
# shellcheck source=tools/json_schema_lib.sh
. "$HERE/json_schema_lib.sh"

BIN="${1:-build/bench/ext_vm_workloads}"
if [ ! -x "$BIN" ]; then
  echo "check_vm_schema: bench binary not found: $BIN" >&2
  exit 1
fi

json_schema_require_python3 check_vm_schema 77

DOC="$(json_schema_tmpfile)"
"$BIN" --bench-json="$DOC" --quick --width=16 > /dev/null

json_schema_validate "$DOC" <<'EOF'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)

def require(cond, what):
    if not cond:
        sys.exit(f"vm bench schema violation: {what}")

require(doc.get("schema_version") == 1, "schema_version must be 1")
require(doc.get("bench") == "ext_vm_workloads",
        "bench must be ext_vm_workloads")
require(isinstance(doc.get("unix_time"), int), "unix_time must be an int")

machine = doc.get("machine")
require(isinstance(machine, dict), "machine must be an object")
for key in ("hostname", "os", "compiler"):
    require(isinstance(machine.get(key), str) and machine[key],
            f"machine.{key} must be a non-empty string")

config = doc.get("config")
require(isinstance(config, dict), "config must be an object")
for key in ("width", "programs", "thread_accesses"):
    require(isinstance(config.get(key), int) and config[key] > 0,
            f"config.{key} must be a positive int")
require(config["programs"] >= 6,
        "config.programs must cover the six suite programs")

metrics = doc.get("metrics")
require(isinstance(metrics, list) and metrics,
        "metrics must be a non-empty array")
INT_FIELDS = ("samples", "items", "total_ns", "p50_ns", "p95_ns",
              "p99_ns", "min_ns", "max_ns")
NUM_FIELDS = ("ops_per_sec", "ns_per_op", "mean_ns", "stddev_ns")
names = set()
for metric in metrics:
    require(isinstance(metric, dict), "each metric must be an object")
    require(isinstance(metric.get("name"), str) and metric["name"],
            "metric.name must be a non-empty string")
    name = metric["name"]
    names.add(name)
    for key in INT_FIELDS:
        require(isinstance(metric.get(key), int) and metric[key] >= 0,
                f"{name}.{key} must be a non-negative int")
    for key in NUM_FIELDS:
        require(isinstance(metric.get(key), (int, float)),
                f"{name}.{key} must be a number")
    require(metric["samples"] > 0, f"{name} recorded no samples")
    require(metric["ns_per_op"] > 0, f"{name}.ns_per_op must be positive")
    require(metric["min_ns"] <= metric["p50_ns"] <= metric["max_ns"],
            f"{name} percentiles out of order")

for phase in ("assemble_lower", "extract", "replay"):
    require(phase in names, f"missing phase metric '{phase}'")

print(f"check_vm_schema: OK ({len(metrics)} metric(s), "
      f"{config['programs']} programs at width {config['width']})")
EOF
