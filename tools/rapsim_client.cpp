// rapsim-client — command-line client of the rapsim-served daemon.
//
// One subcommand per protocol method; params are assembled from flags,
// files are read CLIENT-side and shipped inline (the daemon never needs
// the client's filesystem):
//
//   rapsim-client ping
//   rapsim-client stats
//   rapsim-client certify --addresses="0,32,64" --scheme=rap --width=32
//   rapsim-client certify --addresses="0,1;0,32" --memory=2048
//   rapsim-client lint --file=examples/naive_transpose.kernel --scheme=raw
//   rapsim-client replay --trace=trace.rat --scheme=ras --seed=7
//   rapsim-client replay --trace=trace.rat --map="ps1:rot:w=32:..."
//   rapsim-client advise --file=k.kernel --draws=64
//   rapsim-client synthesize --file=k.kernel --draws=48 --digits=2
//   rapsim-client raw '{"method":"ping"}'
//   rapsim-client shutdown
//
// Shared flags: --socket=PATH (default rapsim-served.sock) or
// --tcp-port=N; --deadline-ms=N; --id=STRING; --verbose (print the full
// response envelope instead of just the result body).
//
// --addresses uses ';' between warps and ',' within one:  "0,1,2;32,33".
//
// Exit status: 0 on an ok response, 1 on a server error response or a
// transport failure, 2 on usage errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "telemetry/json.hpp"
#include "util/cli.hpp"

namespace {

using namespace rapsim;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// "0,1,2;32,33" -> [[0,1,2],[32,33]] written into `json` under the
/// "addresses" key (always the nested form; the server accepts both).
void write_addresses(telemetry::JsonWriter& json, const std::string& spec) {
  json.key("addresses").begin_array();
  std::istringstream warps(spec);
  std::string warp;
  while (std::getline(warps, warp, ';')) {
    json.begin_array();
    std::istringstream entries(warp);
    std::string entry;
    while (std::getline(entries, entry, ',')) {
      std::size_t used = 0;
      const std::uint64_t addr = std::stoull(entry, &used);
      if (used != entry.size()) {
        throw std::invalid_argument("bad address '" + entry + "'");
      }
      json.value(addr);
    }
    json.end_array();
  }
  json.end_array();
}

void common_scalars(telemetry::JsonWriter& json, const util::CliArgs& args) {
  if (const auto scheme = args.get("scheme")) {
    json.kv("scheme", std::string_view(*scheme));
  }
  if (const auto width = args.get("width")) {
    json.kv("width", args.get_uint("width", 32));
  }
  if (const auto seed = args.get("seed")) {
    json.kv("seed", args.get_uint("seed", 1));
  }
}

std::string build_params(const std::string& method,
                         const util::CliArgs& args) {
  telemetry::JsonWriter json;
  json.begin_object();
  common_scalars(json, args);
  if (method == "certify") {
    if (const auto memory = args.get("memory")) {
      json.kv("memory_size", args.get_uint("memory", 0));
    }
    const auto spec = args.get("addresses");
    if (!spec) throw std::invalid_argument("certify needs --addresses");
    write_addresses(json, *spec);
  } else if (method == "lint") {
    const auto file = args.get("file");
    if (!file) throw std::invalid_argument("lint needs --file=KERNEL");
    json.kv("kernel", std::string_view(read_file(*file)));
  } else if (method == "replay") {
    const auto trace = args.get("trace");
    if (!trace) throw std::invalid_argument("replay needs --trace=FILE");
    json.kv("trace", std::string_view(read_file(*trace)));
    if (const auto latency = args.get("latency")) {
      json.kv("latency", args.get_uint("latency", 1));
    }
    if (const auto map = args.get("map")) {
      json.kv("map", std::string_view(*map));
    }
    if (args.get_bool("certify", false)) json.kv("certify", true);
  } else if (method == "synthesize") {
    const auto file = args.get("file");
    if (!file) throw std::invalid_argument("synthesize needs --file=KERNEL");
    json.kv("kernel", std::string_view(read_file(*file)));
    if (const auto draws = args.get("draws")) {
      json.kv("draws", args.get_uint("draws", 48));
    }
    if (const auto digits = args.get("digits")) {
      json.kv("digits", args.get_uint("digits", 3));
    }
  } else if (method == "advise") {
    if (const auto draws = args.get("draws")) {
      json.kv("draws", args.get_uint("draws", 32));
    }
    const auto file = args.get("file");
    const auto spec = args.get("addresses");
    if (!!file == !!spec) {
      throw std::invalid_argument(
          "advise needs exactly one of --file=KERNEL and --addresses");
    }
    if (file) {
      json.kv("kernel", std::string_view(read_file(*file)));
    } else {
      if (const auto rows = args.get("rows")) {
        json.kv("rows", args.get_uint("rows", 0));
      }
      write_addresses(json, *spec);
    }
  }
  json.end_object();
  return json.str();
}

int usage() {
  std::cerr
      << "usage: rapsim-client SUBCOMMAND [flags]\n"
         "  subcommands: ping stats shutdown certify lint replay advise\n"
         "               synthesize (-> advise.synthesize)\n"
         "               raw '<request json>'\n"
         "  transport:   --socket=PATH | --tcp-port=N [--tcp-host=H]\n"
         "  envelope:    --deadline-ms=N --id=STRING --verbose\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string method = args.positional().front();

  serve::Endpoint endpoint;
  if (args.get("tcp-port")) {
    endpoint.host = args.get_string("tcp-host", "127.0.0.1");
    endpoint.port =
        static_cast<std::uint16_t>(args.get_uint("tcp-port", 0));
  } else {
    endpoint.path = args.get_string("socket", "rapsim-served.sock");
  }

  try {
    serve::Client client(endpoint);

    if (method == "raw") {
      if (args.positional().size() < 2) return usage();
      std::cout << client.roundtrip(args.positional()[1]) << "\n";
      return 0;
    }

    const bool known =
        method == "ping" || method == "stats" || method == "shutdown" ||
        method == "certify" || method == "lint" || method == "replay" ||
        method == "advise" || method == "synthesize";
    if (!known) return usage();

    serve::CallOptions options;
    options.deadline_ms = args.get_uint("deadline-ms", 0);
    options.id = args.get_string("id", "");

    // The CLI spells the method "synthesize"; on the wire it is the
    // advise.synthesize pool method.
    const std::string wire_method =
        method == "synthesize" ? "advise.synthesize" : method;
    const serve::ClientResponse response =
        client.call(wire_method, build_params(method, args), options);
    if (args.get_bool("verbose", false)) {
      std::cout << response.raw << "\n";
    } else if (response.ok) {
      std::cout << response.result_json << "\n";
    } else {
      std::cerr << "error " << response.error_code << " "
                << response.error_name << ": " << response.error_message
                << "\n";
      return 1;
    }
    return response.ok ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::cerr << "rapsim-client: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rapsim-client: " << e.what() << "\n";
    return 1;
  }
}
