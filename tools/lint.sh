#!/usr/bin/env bash
# clang-tidy lint pass over the whole tree, headers first.
#
#   tools/lint.sh [build-dir]
#
# Uses the compile database the build exports (CMAKE_EXPORT_COMPILE_COMMANDS)
# and the check set in .clang-tidy. Headers are linted first — via the
# translation units that include them and HeaderFilterRegex — then the
# remaining sources. Exits 77 (the ctest SKIP_RETURN_CODE of the `lint`
# entry) when clang-tidy is not installed, so environments without it skip
# rather than fail.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping" >&2
  exit 77
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "lint: $BUILD/compile_commands.json missing; configure with cmake first" >&2
  exit 1
fi

cd "$ROOT"

# Header-only modules have no entry in the compile database; lint them
# first through a synthetic include-all translation unit.
HEADERS="$(find src -name '*.hpp' | sort)"
TU="$(mktemp --suffix=.cpp)"
trap 'rm -f "$TU"' EXIT
for h in $HEADERS; do
  printf '#include "%s"\n' "${h#src/}" >> "$TU"
done
echo "lint: $(printf '%s\n' "$HEADERS" | wc -l) headers first, then sources"
clang-tidy --quiet "$TU" -- -std=c++20 -I "$ROOT/src"

# Then every translation unit the build knows about.
SOURCES="$(find src tests bench examples -name '*.cpp' | sort)"
# shellcheck disable=SC2086
clang-tidy --quiet -p "$BUILD" $SOURCES

echo "lint: clean"
