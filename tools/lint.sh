#!/usr/bin/env bash
# Static lint pass: shellcheck over the tools/ scripts, then clang-tidy
# over the whole C++ tree, headers first.
#
#   tools/lint.sh [build-dir]
#
# clang-tidy uses the compile database the build exports
# (CMAKE_EXPORT_COMPILE_COMMANDS) and the check set in .clang-tidy.
# Headers are linted first — via the translation units that include them
# and HeaderFilterRegex — then the remaining sources. Findings FAIL the
# run (--warnings-as-errors covers every enabled check), so the ctest
# `lint` entry goes red instead of silently logging. Each linter skips
# gracefully where it is not installed; the script exits 77 (the ctest
# SKIP_RETURN_CODE) only when NO linter could run.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

RAN_ANY=0

# Shell scripts first: cheap, and independent of the compile database.
if command -v shellcheck >/dev/null 2>&1; then
  echo "lint: shellcheck over tools/*.sh"
  shellcheck -x "$ROOT"/tools/*.sh
  RAN_ANY=1
else
  echo "lint: shellcheck not found on PATH; skipping shell scripts" >&2
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping C++ pass" >&2
  if [ "$RAN_ANY" -eq 0 ]; then
    exit 77
  fi
  echo "lint: clean (shell scripts only)"
  exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "lint: $BUILD/compile_commands.json missing; configure with cmake first" >&2
  exit 1
fi

cd "$ROOT"

# Header-only modules have no entry in the compile database; lint them
# first through a synthetic include-all translation unit.
HEADERS="$(find src -name '*.hpp' | sort)"
TU="$(mktemp --suffix=.cpp)"
trap 'rm -f "$TU"' EXIT
for h in $HEADERS; do
  printf '#include "%s"\n' "${h#src/}" >> "$TU"
done
echo "lint: $(printf '%s\n' "$HEADERS" | wc -l) headers first, then sources"
clang-tidy --quiet --warnings-as-errors='*' "$TU" \
  -- -std=c++20 -I "$ROOT/src"

# Then every translation unit the build knows about (tools/ hosts the
# rapsim-lint driver and the built-in kernel catalog).
SOURCES="$(find src tests bench examples tools -name '*.cpp' | sort)"
# shellcheck disable=SC2086
clang-tidy --quiet --warnings-as-errors='*' -p "$BUILD" $SOURCES

echo "lint: clean"
