// The Sitchinava–Weichert workload suite as `.rvm` programs
// (DESIGN.md §15): conflict-free sorting networks and permutation
// routing expressed for the VM front end, so capture / replay / lint /
// synthesis / race checking all reach them through the same program
// path with no per-workload glue.
//
// Each generator returns `.rvm` TEXT (not a Program): the text is the
// artifact — it round-trips through the assembler, ships in docs, and
// keeps the suite honest about being expressible in the ISA. Geometry
// constants are folded to literals for the requested width.
//
//   bitonic_text(n, w)        threads n/2, memory n. Full bitonic sort;
//                             lane-masked pair layout (2j-aligned
//                             blocks), warp-prefix masks once k > w.
//                             Affine: raw congestion 1 by construction.
//   shearsort_text(w)         threads 8w, memory w*w. 8 x w grid stored
//                             column-major with boustrophedon row
//                             coordinates; 3 x (row, column) phases + a
//                             final row phase. Affine; raw-hostile
//                             (stride-w rows), rotate-certifiable.
//   mergesort_round_text(w)   threads 4w, memory 8w^2. One multiway
//                             merge distribution round: each warp
//                             streams its w runs column-wise (raw
//                             congestion exactly w) and writes them
//                             row-contiguous. Affine; rotate -> 1.
//   permute_text(kind, w, s)  threads 8w, memory 16w. Arbitrary
//                             permutation routing x -> n + pi(x):
//                             identity (affine), bit-reversal (opaque),
//                             seeded derangement (a*i + c) mod n with
//                             a, c odd (opaque).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rapsim::vm {

enum class PermuteKind : std::uint8_t {
  kIdentity,
  kBitReversal,
  kDerangement,
};

[[nodiscard]] std::string bitonic_text(std::uint64_t n, std::uint32_t width);
[[nodiscard]] std::string shearsort_text(std::uint32_t width);
[[nodiscard]] std::string mergesort_round_text(std::uint32_t width);
[[nodiscard]] std::string permute_text(PermuteKind kind, std::uint32_t width,
                                       std::uint64_t seed = 0);

/// One suite entry: a program name and its `.rvm` source.
struct SuiteProgram {
  std::string name;
  std::string text;
};

/// The canonical suite at warp width `width` (a power of two >= 8):
/// vm-bitonic (n = 8w), vm-shearsort, vm-mergesort-round, and
/// vm-permute-{identity,bitrev,derange}. Every entry assembles, lowers,
/// and extracts at `width`.
[[nodiscard]] std::vector<SuiteProgram> suite_programs(std::uint32_t width);

/// The suite entry named `name`, or throws std::invalid_argument
/// listing the valid names.
[[nodiscard]] SuiteProgram suite_program(const std::string& name,
                                         std::uint32_t width);

}  // namespace rapsim::vm
