// The `.rvm` text assembler (DESIGN.md §15).
//
// Line-oriented format, one directive / label / instruction per line,
// comments from '#' to end of line:
//
//   .vm 1                  # format version (required first directive)
//   .name shearsort        # program name
//   .const N 8*w           # assembly-time constant (w = warp width)
//   .threads N             # thread count, a multiple of w
//   .memory  w*w           # shared-memory words, a multiple of w
//
//   li   r1, 2*w+1         # immediates are constant expressions
//   add  r2, r1, lane      # operands: rK, lane, warp, or an expression
//   loop r3, N/2           # counted loop, r3 = 0 .. N/2-1
//     ld   r4, r2          @row.ld    # optional site label for analysis
//     st   r2, r4
//   endl
//   mask r5                # predication (nonzero = lane stays active)
//   unmask
//   top:                   # labels; bz/bnz take uniform branches only
//   bnz  r6, top
//   bar                    # block-wide barrier
//
// Constant expressions support + - * / % << >> ( ) over decimal / 0x
// literals, `w`, and earlier `.const` names. Errors throw
// std::invalid_argument prefixed with the 1-based line number, mirroring
// parse_kernel_text.

#pragma once

#include <cstdint>
#include <string>

#include "vm/isa.hpp"

namespace rapsim::vm {

/// Assemble `.rvm` text at warp width `width` (the value of the `w`
/// symbol). Throws std::invalid_argument ("line N: ...") on malformed
/// input; never crashes on arbitrary text (fuzz-pinned by vm_test).
[[nodiscard]] Program assemble(const std::string& text, std::uint32_t width);

/// Render a program back to `.rvm` text. The output is normalized (all
/// expressions folded to literals, loops/branches by numeric pc labels)
/// and re-assembles to an identical program: assemble(disassemble(p),
/// p.width) == p up to source line numbers.
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace rapsim::vm
