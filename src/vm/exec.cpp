#include "vm/exec.hpp"

#include <array>
#include <stdexcept>
#include <vector>

namespace rapsim::vm {
namespace {

constexpr std::uint64_t kMaxSteps = 1u << 24;
constexpr std::uint64_t kMaxKernelInstructions = 1u << 20;
constexpr std::size_t kMaxMaskDepth = 16;
constexpr int kNoSlot = -1;

[[noreturn]] void fail(const Instr& instr, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(instr.line) + ": " +
                              message);
}

struct Interp {
  const Program& program;
  std::uint32_t threads;
  std::uint32_t width;

  // regs[r * threads + t]: per-lane register files, interpreter-valued.
  std::vector<std::uint64_t> regs;
  // Device binding: dev[r] is the DMM machine-register slot holding r's
  // loaded value, or kNoSlot when the interpreter owns the register.
  // Uniform across threads by SPMD construction.
  std::array<int, kNumRegs> dev;
  std::array<bool, dmm::kRegistersPerThread> slot_used{};

  // Cumulative lane-activity masks (innermost on top).
  std::vector<std::vector<char>> mask_stack;

  std::vector<std::pair<std::size_t, std::uint64_t>> loop_stack;  // (pc, i)

  LoweredProgram out;

  explicit Interp(const Program& p)
      : program(p), threads(p.num_threads), width(p.width) {
    regs.assign(static_cast<std::size_t>(threads) * kNumRegs, 0);
    dev.fill(kNoSlot);
    out.width = width;
    out.rows = p.rows();
    out.kernel.num_threads = threads;
  }

  bool active(std::uint32_t t) const {
    return mask_stack.empty() || mask_stack.back()[t] != 0;
  }

  std::uint64_t eval(const Instr& instr, const Operand& operand,
                     std::uint32_t t) const {
    switch (operand.kind) {
      case Operand::Kind::kReg: {
        const auto r = static_cast<std::size_t>(operand.value);
        if (dev[r] != kNoSlot) {
          fail(instr, "r" + std::to_string(r) +
                          " holds loaded data (device-valued); it may only "
                          "be stored, cmpx'd or amo'd");
        }
        return regs[r * threads + t];
      }
      case Operand::Kind::kImm: return operand.value;
      case Operand::Kind::kLane: return t % width;
      case Operand::Kind::kWarp: return t / width;
      case Operand::Kind::kNone: break;
    }
    fail(instr, "missing operand");
  }

  /// Overwrite rd with an interpreter value, releasing any device slot.
  /// Device-ness is uniform across lanes, so a device register cannot be
  /// partially overwritten under a mask.
  void release(const Instr& instr, std::uint8_t rd) {
    if (dev[rd] != kNoSlot) {
      if (!mask_stack.empty()) {
        fail(instr, "cannot overwrite device-valued r" + std::to_string(rd) +
                        " under a mask");
      }
      slot_used[static_cast<std::size_t>(dev[rd])] = false;
      dev[rd] = kNoSlot;
    }
  }

  /// Loop counters are control state: written in every lane (masked or
  /// not), keeping the counter warp-uniform by construction.
  void set_all(const Instr& instr, std::uint8_t rd, std::uint64_t value) {
    release(instr, rd);
    for (std::uint32_t t = 0; t < threads; ++t) {
      regs[static_cast<std::size_t>(rd) * threads + t] = value;
    }
  }

  std::uint8_t device_slot(const Instr& instr, std::uint8_t rd) {
    if (dev[rd] == kNoSlot) {
      fail(instr, "r" + std::to_string(rd) +
                      " does not hold loaded data (ld into it first)");
    }
    return static_cast<std::uint8_t>(dev[rd]);
  }

  std::uint64_t address(const Instr& instr, std::uint32_t t) const {
    const std::uint64_t addr = eval(instr, instr.a, t);
    if (addr >= program.memory_words) {
      fail(instr, "thread " + std::to_string(t) + " address " +
                      std::to_string(addr) + " out of bounds (memory " +
                      std::to_string(program.memory_words) + " words)");
    }
    return addr;
  }

  void emit(const Instr& instr, dmm::Instruction row, bool memory_op) {
    if (out.kernel.instructions.size() >= kMaxKernelInstructions) {
      fail(instr, "kernel exceeds " +
                      std::to_string(kMaxKernelInstructions) +
                      " SIMD instructions");
    }
    std::string label = instr.site;
    if (label.empty()) {
      label = std::string(op_name(instr.op)) + "@" +
              std::to_string(instr.line);
    }
    out.kernel.push(std::move(row), std::move(label));
    if (memory_op) ++out.memory_instructions;
  }

  void run() {
    std::size_t pc = 0;
    while (pc < program.instrs.size()) {
      if (++out.steps > kMaxSteps) {
        throw std::invalid_argument(
            "program exceeds the interpreter step budget (" +
            std::to_string(kMaxSteps) + ")");
      }
      const Instr& instr = program.instrs[pc];
      switch (instr.op) {
        case Op::kLi:
          release(instr, instr.rd);
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (active(t)) {
              regs[static_cast<std::size_t>(instr.rd) * threads + t] =
                  instr.imm;
            }
          }
          break;
        case Op::kMov: {
          std::vector<std::uint64_t> values(threads);
          for (std::uint32_t t = 0; t < threads; ++t) {
            values[t] = eval(instr, instr.a, t);
          }
          release(instr, instr.rd);
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (active(t)) {
              regs[static_cast<std::size_t>(instr.rd) * threads + t] =
                  values[t];
            }
          }
          break;
        }
        case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
        case Op::kMod: case Op::kAnd: case Op::kOr: case Op::kXor:
        case Op::kShl: case Op::kShr: case Op::kMin: case Op::kMax:
        case Op::kSlt: case Op::kSeq: {
          std::vector<std::uint64_t> values(threads);
          for (std::uint32_t t = 0; t < threads; ++t) {
            values[t] = alu(instr, eval(instr, instr.a, t),
                            eval(instr, instr.b, t));
          }
          release(instr, instr.rd);
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (active(t)) {
              regs[static_cast<std::size_t>(instr.rd) * threads + t] =
                  values[t];
            }
          }
          break;
        }
        case Op::kLd: {
          dmm::Instruction row(threads, dmm::ThreadOp::none());
          bool any = false;
          std::vector<std::uint64_t> addrs(threads, 0);
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (active(t)) addrs[t] = address(instr, t);
          }
          // Bind rd to a machine-register slot (reusing its current one
          // on reload).
          if (dev[instr.rd] == kNoSlot) {
            int slot = kNoSlot;
            for (std::size_t s = 0; s < slot_used.size(); ++s) {
              if (!slot_used[s]) { slot = static_cast<int>(s); break; }
            }
            if (slot == kNoSlot) {
              fail(instr, "more than " +
                              std::to_string(dmm::kRegistersPerThread) +
                              " loaded values live at once (the DMM has " +
                              std::to_string(dmm::kRegistersPerThread) +
                              " machine registers)");
            }
            slot_used[static_cast<std::size_t>(slot)] = true;
            dev[instr.rd] = slot;
          }
          const auto slot = static_cast<std::uint8_t>(dev[instr.rd]);
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (active(t)) {
              row[t] = dmm::ThreadOp::load(addrs[t], slot);
              any = true;
            }
          }
          if (any) emit(instr, std::move(row), true);
          break;
        }
        case Op::kSt: {
          dmm::Instruction row(threads, dmm::ThreadOp::none());
          bool any = false;
          const bool device_value =
              instr.b.kind == Operand::Kind::kReg &&
              dev[static_cast<std::size_t>(instr.b.value)] != kNoSlot;
          const std::uint8_t slot =
              device_value ? static_cast<std::uint8_t>(
                                 dev[static_cast<std::size_t>(instr.b.value)])
                           : 0;
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (!active(t)) continue;
            const std::uint64_t addr = address(instr, t);
            row[t] = device_value
                         ? dmm::ThreadOp::store(addr, slot)
                         : dmm::ThreadOp::store_imm(addr,
                                                    eval(instr, instr.b, t));
            any = true;
          }
          if (any) emit(instr, std::move(row), true);
          break;
        }
        case Op::kAmo: {
          if (instr.b.kind != Operand::Kind::kReg) {
            fail(instr, "amo value must be a device-valued register");
          }
          const std::uint8_t slot =
              device_slot(instr, static_cast<std::uint8_t>(instr.b.value));
          dmm::Instruction row(threads, dmm::ThreadOp::none());
          bool any = false;
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (!active(t)) continue;
            row[t] = dmm::ThreadOp::atomic_add(address(instr, t), slot);
            any = true;
          }
          if (any) emit(instr, std::move(row), true);
          break;
        }
        case Op::kCmpx: {
          const std::uint8_t lo = device_slot(instr, instr.rd);
          const std::uint8_t hi = device_slot(
              instr, static_cast<std::uint8_t>(instr.a.value));
          if (lo == hi) fail(instr, "cmpx needs two distinct registers");
          dmm::Instruction row(threads, dmm::ThreadOp::none());
          bool any = false;
          for (std::uint32_t t = 0; t < threads; ++t) {
            if (!active(t)) continue;
            row[t] = dmm::ThreadOp::min_max(lo, hi);
            any = true;
          }
          if (any) emit(instr, std::move(row), false);
          break;
        }
        case Op::kLoop: {
          const std::uint64_t trip = instr.imm;
          if (instr.b.kind != Operand::Kind::kImm) {
            fail(instr, "malformed loop (no endl link)");
          }
          if (trip == 0) {
            pc = static_cast<std::size_t>(instr.b.value);  // skip to endl
          } else {
            set_all(instr, instr.rd, 0);
            loop_stack.emplace_back(pc, 0);
          }
          break;
        }
        case Op::kEndl: {
          if (loop_stack.empty() ||
              loop_stack.back().first != static_cast<std::size_t>(instr.imm)) {
            fail(instr, "endl does not match an open loop");
          }
          const Instr& header = program.instrs[loop_stack.back().first];
          if (++loop_stack.back().second < header.imm) {
            set_all(header, header.rd, loop_stack.back().second);
            pc = loop_stack.back().first;  // ++pc below lands on the body
          } else {
            loop_stack.pop_back();
          }
          break;
        }
        case Op::kMask: {
          if (mask_stack.size() >= kMaxMaskDepth) {
            fail(instr, "mask nesting exceeds " +
                            std::to_string(kMaxMaskDepth));
          }
          std::vector<char> next(threads, 0);
          for (std::uint32_t t = 0; t < threads; ++t) {
            next[t] = active(t) && eval(instr, instr.a, t) != 0;
          }
          mask_stack.push_back(std::move(next));
          break;
        }
        case Op::kUnmask:
          if (mask_stack.empty()) fail(instr, "unmask without a mask");
          mask_stack.pop_back();
          break;
        case Op::kBz:
        case Op::kBnz: {
          const std::uint64_t first = eval(instr, instr.a, 0);
          for (std::uint32_t t = 1; t < threads; ++t) {
            if (eval(instr, instr.a, t) != first) {
              fail(instr, "divergent branch: the predicate must be uniform "
                          "across all threads");
            }
          }
          const bool taken =
              instr.op == Op::kBz ? first == 0 : first != 0;
          if (taken) {
            pc = static_cast<std::size_t>(instr.imm);
            continue;  // do not ++pc
          }
          break;
        }
        case Op::kBar:
          if (!mask_stack.empty()) {
            fail(instr, "bar under a mask (barriers are block-wide)");
          }
          out.kernel.push_barrier();
          ++out.barriers;
          break;
        case Op::kHalt:
          return;
      }
      ++pc;
    }
    if (!mask_stack.empty()) {
      throw std::invalid_argument(
          "program ended with an active mask (missing unmask)");
    }
  }

  static std::uint64_t alu(const Instr& instr, std::uint64_t a,
                           std::uint64_t b) {
    switch (instr.op) {
      case Op::kAdd: return a + b;
      case Op::kSub: return a - b;
      case Op::kMul: return a * b;
      case Op::kDiv:
        if (b == 0) fail(instr, "division by zero");
        return a / b;
      case Op::kMod:
        if (b == 0) fail(instr, "modulo by zero");
        return a % b;
      case Op::kAnd: return a & b;
      case Op::kOr: return a | b;
      case Op::kXor: return a ^ b;
      case Op::kShl: return b >= 64 ? 0 : a << b;
      case Op::kShr: return b >= 64 ? 0 : a >> b;
      case Op::kMin: return a < b ? a : b;
      case Op::kMax: return a > b ? a : b;
      case Op::kSlt: return a < b ? 1 : 0;
      case Op::kSeq: return a == b ? 1 : 0;
      default: fail(instr, "not an ALU op");
    }
  }
};

}  // namespace

LoweredProgram lower_program(const Program& program) {
  if (program.width == 0 || program.num_threads == 0 ||
      program.num_threads % program.width != 0) {
    throw std::invalid_argument(
        "program needs a positive thread count that is a multiple of the "
        "width");
  }
  if (program.memory_words == 0 || program.memory_words % program.width != 0) {
    throw std::invalid_argument(
        "program needs a positive memory size that is a multiple of the "
        "width");
  }
  Interp interp(program);
  interp.run();
  return std::move(interp.out);
}

}  // namespace rapsim::vm
