// Deterministic VM executor: lower a Program to an executable
// dmm::Kernel (and from there, via replay::capture_run, to a versioned
// AccessTrace).
//
// The interpreter runs all threads in SPMD lockstep: control flow (loop,
// bz/bnz, halt) must be uniform across threads — counted loops are by
// construction, branches are checked at run time. Per-lane state
// divergence enters only through `lane`/`warp` reads and `mask`
// predication.
//
// Each ld/st/amo/cmpx step emits exactly one SIMD instruction spanning
// every thread (inactive lanes idle as kNone); `bar` emits a block-wide
// barrier; ALU steps are free, matching the DMM's cost model where
// arithmetic never touches the MMU pipeline.
//
// DATA vs ADDRESS separation (the ISA's soundness rule): `ld` binds the
// destination register to one of the DMM's 4 per-thread machine
// registers, and from then on the register is device-valued — the
// interpreter does not know its contents, and using it in address
// arithmetic, predicates, or control flow is a lowering error. Device
// values flow only through st (kStore), amo (kAtomicAdd) and cmpx
// (kMinMax), so every address in the emitted kernel is a pure function
// of (lane, warp, loop counters): the lowered kernel, its captured
// trace, and the extracted IR (vm/extract.hpp) all describe the same
// deterministic address stream.

#pragma once

#include <cstdint>
#include <string>

#include "dmm/kernel.hpp"
#include "vm/isa.hpp"

namespace rapsim::vm {

struct LoweredProgram {
  dmm::Kernel kernel;              // one ThreadOp row per memory/cmpx step
  std::uint32_t width = 0;
  std::uint64_t rows = 0;          // backing MatrixMap rows (memory/width)
  std::uint64_t steps = 0;         // interpreter steps executed
  std::uint64_t memory_instructions = 0;  // ld/st/amo instructions emitted
  std::uint64_t barriers = 0;
};

/// Interpret `program` and build its SIMD kernel. Throws
/// std::invalid_argument ("line N: ...") on dynamic errors: out-of-bounds
/// addresses, device-valued registers in address/ALU positions, more
/// than 4 simultaneously live loaded values, non-uniform branches,
/// barriers under a mask, division by zero, or runaway execution.
[[nodiscard]] LoweredProgram lower_program(const Program& program);

}  // namespace rapsim::vm
