#include "vm/isa.hpp"

namespace rapsim::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kLi: return "li";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kSlt: return "slt";
    case Op::kSeq: return "seq";
    case Op::kLd: return "ld";
    case Op::kSt: return "st";
    case Op::kAmo: return "amo";
    case Op::kCmpx: return "cmpx";
    case Op::kLoop: return "loop";
    case Op::kEndl: return "endl";
    case Op::kMask: return "mask";
    case Op::kUnmask: return "unmask";
    case Op::kBz: return "bz";
    case Op::kBnz: return "bnz";
    case Op::kBar: return "bar";
    case Op::kHalt: return "halt";
  }
  return "?";
}

}  // namespace rapsim::vm
