#include "vm/extract.hpp"

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

namespace rapsim::vm {
namespace {

constexpr std::size_t kMaxSites = 2048;
constexpr std::size_t kMaxVars = 1024;
constexpr std::uint64_t kMaxSteps = 1u << 20;

[[noreturn]] void fail(const Instr& instr, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(instr.line) + ": " +
                              message);
}

// ------------------------------------------------------ expression trees

struct Node;
using NodeRef = std::shared_ptr<const Node>;

struct Node {
  enum class K { kConst, kLane, kWarp, kVar, kOp, kDevice };
  K k = K::kConst;
  std::uint64_t cval = 0;  // kConst
  std::size_t var = 0;     // kVar: kernel variable index
  Op op = Op::kAdd;        // kOp
  NodeRef a, b;
};

NodeRef make_const(std::uint64_t value) {
  auto node = std::make_shared<Node>();
  node->k = Node::K::kConst;
  node->cval = value;
  return node;
}

NodeRef make_leaf(Node::K kind) {
  auto node = std::make_shared<Node>();
  node->k = kind;
  return node;
}

NodeRef make_var(std::size_t index) {
  auto node = std::make_shared<Node>();
  node->k = Node::K::kVar;
  node->var = index;
  return node;
}

std::uint64_t eval_op(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return b == 0 ? 0 : a / b;
    case Op::kMod: return b == 0 ? 0 : a % b;
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kShl: return b >= 64 ? 0 : a << b;
    case Op::kShr: return b >= 64 ? 0 : a >> b;
    case Op::kMin: return a < b ? a : b;
    case Op::kMax: return a > b ? a : b;
    case Op::kSlt: return a < b ? 1 : 0;
    case Op::kSeq: return a == b ? 1 : 0;
    default: return 0;
  }
}

NodeRef make_op(Op op, NodeRef a, NodeRef b) {
  // Constant folding keeps trees (and opaque callbacks) small.
  if (a->k == Node::K::kConst && b->k == Node::K::kConst &&
      !((op == Op::kDiv || op == Op::kMod) && b->cval == 0)) {
    return make_const(eval_op(op, a->cval, b->cval));
  }
  auto node = std::make_shared<Node>();
  node->k = Node::K::kOp;
  node->op = op;
  node->a = std::move(a);
  node->b = std::move(b);
  return node;
}

bool contains(const NodeRef& node, Node::K kind) {
  if (node->k == kind) return true;
  if (node->k != Node::K::kOp) return false;
  return contains(node->a, kind) || contains(node->b, kind);
}

/// Replace every leaf of `kind` with `replacement` (memoized — trees are
/// DAGs through shared registers).
NodeRef substitute(const NodeRef& node, Node::K kind,
                   const NodeRef& replacement,
                   std::map<const Node*, NodeRef>& memo) {
  if (node->k == kind) return replacement;
  if (node->k != Node::K::kOp) return node;
  if (const auto found = memo.find(node.get()); found != memo.end()) {
    return found->second;
  }
  NodeRef result = make_op(node->op,
                           substitute(node->a, kind, replacement, memo),
                           substitute(node->b, kind, replacement, memo));
  memo.emplace(node.get(), result);
  return result;
}

NodeRef substitute(const NodeRef& node, Node::K kind,
                   const NodeRef& replacement) {
  std::map<const Node*, NodeRef> memo;
  return substitute(node, kind, replacement, memo);
}

/// Replace loop variable `var` with a constant (loop-exit values).
NodeRef substitute_var(const NodeRef& node, std::size_t var,
                       std::uint64_t value,
                       std::map<const Node*, NodeRef>& memo) {
  if (node->k == Node::K::kVar && node->var == var) {
    return make_const(value);
  }
  if (node->k != Node::K::kOp) return node;
  if (const auto found = memo.find(node.get()); found != memo.end()) {
    return found->second;
  }
  NodeRef result =
      make_op(node->op, substitute_var(node->a, var, value, memo),
              substitute_var(node->b, var, value, memo));
  memo.emplace(node.get(), result);
  return result;
}

std::uint64_t eval_node(const Node& node, std::uint32_t lane,
                        std::span<const std::uint64_t> binding) {
  switch (node.k) {
    case Node::K::kConst: return node.cval;
    case Node::K::kLane: return lane;
    case Node::K::kVar:
      return node.var < binding.size() ? binding[node.var] : 0;
    case Node::K::kOp:
      return eval_op(node.op, eval_node(*node.a, lane, binding),
                     eval_node(*node.b, lane, binding));
    case Node::K::kWarp:
    case Node::K::kDevice:
      return 0;  // substituted / rejected before a callback is built
  }
  return 0;
}

// ------------------------------------------------- affine normalization

struct Affine {
  std::int64_t base = 0;
  std::int64_t lane = 0;
  std::map<std::size_t, std::int64_t> coeffs;

  [[nodiscard]] bool is_const() const {
    return lane == 0 && coeffs.empty();
  }
};

std::optional<Affine> to_affine(const NodeRef& node) {
  switch (node->k) {
    case Node::K::kConst: {
      Affine result;
      result.base = static_cast<std::int64_t>(node->cval);
      return result;
    }
    case Node::K::kLane: {
      Affine result;
      result.lane = 1;
      return result;
    }
    case Node::K::kVar: {
      Affine result;
      result.coeffs[node->var] = 1;
      return result;
    }
    case Node::K::kWarp:
    case Node::K::kDevice:
      return std::nullopt;
    case Node::K::kOp: break;
  }
  const auto lhs = to_affine(node->a);
  if (!lhs) return std::nullopt;
  if (node->op == Op::kAdd || node->op == Op::kSub) {
    const auto rhs = to_affine(node->b);
    if (!rhs) return std::nullopt;
    Affine result = *lhs;
    const std::int64_t sign = node->op == Op::kAdd ? 1 : -1;
    result.base += sign * rhs->base;
    result.lane += sign * rhs->lane;
    for (const auto& [var, coeff] : rhs->coeffs) {
      if ((result.coeffs[var] += sign * coeff) == 0) {
        result.coeffs.erase(var);
      }
    }
    return result;
  }
  if (node->op == Op::kMul || node->op == Op::kShl) {
    const auto rhs = to_affine(node->b);
    if (!rhs) return std::nullopt;
    const auto scaled = [](const Affine& expr,
                           std::int64_t factor) -> Affine {
      Affine result;
      result.base = expr.base * factor;
      result.lane = expr.lane * factor;
      for (const auto& [var, coeff] : expr.coeffs) {
        if (coeff * factor != 0) result.coeffs[var] = coeff * factor;
      }
      return result;
    };
    if (node->op == Op::kShl) {
      if (!rhs->is_const() || rhs->base < 0 || rhs->base > 32) {
        return std::nullopt;
      }
      return scaled(*lhs, std::int64_t{1} << rhs->base);
    }
    if (rhs->is_const()) return scaled(*lhs, rhs->base);
    if (lhs->is_const()) return scaled(*rhs, lhs->base);
    return std::nullopt;
  }
  return std::nullopt;
}

// ------------------------------------------------------------ extractor

struct MaskEntry {
  enum class Kind {
    kNoop,       // constant-true predicate
    kAllOff,     // constant-false predicate: sites inside never execute
    kLanePrefix,  // lane < K
    kWarpPrefix,  // warp < K (fresh kernel variable `var` stands in)
    kWarpGuard,   // v == warp for a bare loop variable v
    kWarpExpr,    // expr == warp: sound but unattributable
  };
  Kind kind = Kind::kNoop;
  std::uint32_t lanes = 0;   // kLanePrefix
  std::size_t var = 0;       // kWarpPrefix / kWarpGuard
  NodeRef expr;              // kWarpExpr
  int id = 0;                // context identity for register reads
};

struct RegVal {
  NodeRef node;
  bool device = false;
  std::vector<int> ctx;  // mask ids at the time of the write
};

struct LoopFrame {
  std::set<int> written;
  std::set<int> read_before_write;
};

struct Extractor {
  const Program& program;
  analyze::KernelDesc kernel;
  bool complete = true;
  std::vector<std::string> notes;

  std::array<RegVal, kNumRegs> regs;
  std::vector<MaskEntry> masks;
  std::vector<LoopFrame> frames;
  std::map<std::string, int> site_names;
  std::size_t warp_var = SIZE_MAX;
  int var_seq = 0;
  int prefix_seq = 0;
  int mask_seq = 0;
  std::uint64_t steps = 0;
  bool halted = false;

  explicit Extractor(const Program& p) : program(p) {
    kernel.name = p.name;
    kernel.width = p.width;
    kernel.rows = p.rows();
    for (RegVal& reg : regs) reg.node = make_const(0);
  }

  std::vector<int> context() const {
    std::vector<int> ids;
    ids.reserve(masks.size());
    for (const MaskEntry& mask : masks) ids.push_back(mask.id);
    return ids;
  }

  bool context_is_prefix(const std::vector<int>& ctx) const {
    if (ctx.size() > masks.size()) return false;
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      if (masks[i].id != ctx[i]) return false;
    }
    return true;
  }

  std::size_t add_kernel_var(const Instr& instr, std::string name,
                             std::uint64_t count) {
    if (kernel.vars.size() >= kMaxVars) {
      fail(instr, "kernel exceeds " + std::to_string(kMaxVars) +
                      " loop variables");
    }
    kernel.vars.push_back({std::move(name), count});
    return kernel.vars.size() - 1;
  }

  std::size_t ensure_warp_var(const Instr& instr) {
    if (warp_var == SIZE_MAX) {
      warp_var = add_kernel_var(instr, "warp", program.num_warps());
    }
    return warp_var;
  }

  void note_read(int reg) {
    for (LoopFrame& frame : frames) {
      if (!frame.written.count(reg)) frame.read_before_write.insert(reg);
    }
  }

  void note_write(int reg) {
    for (LoopFrame& frame : frames) frame.written.insert(reg);
  }

  NodeRef value(const Instr& instr, const Operand& operand,
                bool allow_device = false) {
    switch (operand.kind) {
      case Operand::Kind::kReg: {
        const auto r = static_cast<std::size_t>(operand.value);
        note_read(static_cast<int>(r));
        const RegVal& reg = regs[r];
        if (reg.device) {
          if (!allow_device) {
            fail(instr, "r" + std::to_string(r) +
                            " holds loaded data (device-valued); it may "
                            "only be stored, cmpx'd or amo'd");
          }
          return reg.node;
        }
        if (!context_is_prefix(reg.ctx)) {
          fail(instr, "r" + std::to_string(r) +
                          " was written under a different mask; its value "
                          "is not defined for every active lane here");
        }
        return reg.node;
      }
      case Operand::Kind::kImm: return make_const(operand.value);
      case Operand::Kind::kLane: return make_leaf(Node::K::kLane);
      case Operand::Kind::kWarp: return make_leaf(Node::K::kWarp);
      case Operand::Kind::kNone: break;
    }
    fail(instr, "missing operand");
  }

  void write_reg(const Instr& instr, std::uint8_t rd, NodeRef node,
                 bool device = false) {
    // Mirrors exec: `ld` may re-bind a device register under a mask
    // (slot reuse); interpreter-valued overwrites may not.
    if (regs[rd].device && !device && !masks.empty()) {
      fail(instr, "cannot overwrite device-valued r" + std::to_string(rd) +
                      " under a mask");
    }
    regs[rd].node = std::move(node);
    regs[rd].device = device;
    regs[rd].ctx = context();
    note_write(rd);
  }

  // --------------------------------------------------------- mask logic

  MaskEntry classify_mask(const Instr& instr, const NodeRef& node) {
    MaskEntry entry;
    entry.id = ++mask_seq;
    if (node->k == Node::K::kConst) {
      entry.kind = node->cval ? MaskEntry::Kind::kNoop
                              : MaskEntry::Kind::kAllOff;
      return entry;
    }
    if (node->k != Node::K::kOp) {
      fail(instr, "mask predicate not recognized (use lane < K, warp < K, "
                  "or v == warp)");
    }
    if (node->op == Op::kSlt && node->b->k == Node::K::kConst) {
      const std::uint64_t bound = node->b->cval;
      if (node->a->k == Node::K::kLane) {
        if (bound == 0) {
          entry.kind = MaskEntry::Kind::kAllOff;
        } else {
          entry.kind = MaskEntry::Kind::kLanePrefix;
          entry.lanes = static_cast<std::uint32_t>(
              bound >= program.width ? program.width : bound);
        }
        return entry;
      }
      if (node->a->k == Node::K::kWarp) {
        if (bound == 0) {
          entry.kind = MaskEntry::Kind::kAllOff;
          return entry;
        }
        require_no_warp_mask(instr);
        const std::uint64_t warps = program.num_warps();
        entry.kind = MaskEntry::Kind::kWarpPrefix;
        entry.var = add_kernel_var(
            instr, "q" + std::to_string(prefix_seq++),
            bound >= warps ? warps : bound);
        return entry;
      }
    }
    if (node->op == Op::kSeq) {
      NodeRef other;
      if (node->a->k == Node::K::kWarp) other = node->b;
      if (node->b->k == Node::K::kWarp) other = node->a;
      if (other) {
        if (contains(other, Node::K::kWarp) ||
            contains(other, Node::K::kDevice)) {
          fail(instr, "mask predicate compares warp against an expression "
                      "that itself uses warp or loaded data");
        }
        require_no_warp_mask(instr);
        if (other->k == Node::K::kVar) {
          entry.kind = MaskEntry::Kind::kWarpGuard;
          entry.var = other->var;
        } else {
          entry.kind = MaskEntry::Kind::kWarpExpr;
          entry.expr = other;
        }
        return entry;
      }
    }
    fail(instr, "mask predicate not recognized (use lane < K, warp < K, "
                "or v == warp)");
  }

  void require_no_warp_mask(const Instr& instr) {
    for (const MaskEntry& mask : masks) {
      if (mask.kind == MaskEntry::Kind::kWarpPrefix ||
          mask.kind == MaskEntry::Kind::kWarpGuard ||
          mask.kind == MaskEntry::Kind::kWarpExpr) {
        fail(instr, "nested warp-selecting masks are not extractable");
      }
    }
  }

  bool all_off() const {
    for (const MaskEntry& mask : masks) {
      if (mask.kind == MaskEntry::Kind::kAllOff) return true;
    }
    return false;
  }

  std::uint32_t active_lanes() const {
    std::uint32_t lanes = program.width;
    for (const MaskEntry& mask : masks) {
      if (mask.kind == MaskEntry::Kind::kLanePrefix && mask.lanes < lanes) {
        lanes = mask.lanes;
      }
    }
    return lanes == program.width ? 0 : lanes;  // 0 = full width
  }

  const MaskEntry* warp_mask() const {
    for (const MaskEntry& mask : masks) {
      if (mask.kind == MaskEntry::Kind::kWarpPrefix ||
          mask.kind == MaskEntry::Kind::kWarpGuard ||
          mask.kind == MaskEntry::Kind::kWarpExpr) {
        return &mask;
      }
    }
    return nullptr;
  }

  // --------------------------------------------------------- site logic

  void emit_site(const Instr& instr, const NodeRef& raw_address,
                 analyze::AccessDir dir) {
    if (all_off()) return;
    if (kernel.sites.size() >= kMaxSites) {
      fail(instr, "kernel exceeds " + std::to_string(kMaxSites) +
                      " access sites");
    }
    if (contains(raw_address, Node::K::kDevice)) {
      fail(instr, "address depends on loaded data");
    }

    // Resolve which warps execute this site, and what the `warp` leaf
    // means inside the address.
    const MaskEntry* warp_entry = warp_mask();
    NodeRef warp_value;
    std::string warp_name;
    if (warp_entry == nullptr) {
      if (program.num_warps() > 1) {
        const std::size_t index = ensure_warp_var(instr);
        warp_value = make_var(index);
        warp_name = kernel.vars[index].name;
      } else {
        warp_value = make_const(0);
      }
    } else if (warp_entry->kind == MaskEntry::Kind::kWarpPrefix) {
      warp_value = make_var(warp_entry->var);
      warp_name = kernel.vars[warp_entry->var].name;
    } else if (warp_entry->kind == MaskEntry::Kind::kWarpGuard) {
      warp_value = make_var(warp_entry->var);
      warp_name = kernel.vars[warp_entry->var].name;
    } else {  // kWarpExpr: congestion-sound, executor unattributable
      warp_value = warp_entry->expr;
    }
    const NodeRef address =
        substitute(raw_address, Node::K::kWarp, warp_value);

    analyze::AccessSite site;
    site.dir = dir;
    site.lanes = active_lanes();
    site.warp = warp_name;
    {
      std::string base = instr.site.empty()
                             ? std::string(op_name(instr.op)) + "@" +
                                   std::to_string(instr.line)
                             : instr.site;
      const int occurrence = site_names[base]++;
      site.name = occurrence == 0
                      ? std::move(base)
                      : base + "#" + std::to_string(occurrence);
    }

    if (const auto affine = to_affine(address)) {
      site.form = analyze::IndexForm::kFlat;
      site.flat.base = affine->base;
      site.flat.lane_coeff = affine->lane;
      if (!affine->coeffs.empty()) {
        site.flat.coeffs.assign(affine->coeffs.rbegin()->first + 1, 0);
        for (const auto& [var, coeff] : affine->coeffs) {
          site.flat.coeffs[var] = coeff;
        }
      }
    } else {
      site.form = analyze::IndexForm::kOpaque;
      site.opaque = [address](std::uint32_t lane,
                              std::span<const std::uint64_t> binding) {
        return eval_node(*address, lane, binding);
      };
    }
    if (warp_entry != nullptr &&
        warp_entry->kind == MaskEntry::Kind::kWarpExpr && complete) {
      complete = false;
      notes.push_back("site '" + site.name +
                      "': executing warp is an expression; race analysis "
                      "is not applicable");
    }
    kernel.sites.push_back(std::move(site));
  }

  // ---------------------------------------------------------- execution

  bool range_has_barrier(std::size_t begin, std::size_t end) const {
    for (std::size_t pc = begin; pc < end; ++pc) {
      if (program.instrs[pc].op == Op::kBar) return true;
    }
    return false;
  }

  struct Snapshot {
    std::array<RegVal, kNumRegs> regs;
    std::vector<analyze::LoopVar> vars;
    std::size_t num_sites;
    bool complete;
    std::size_t num_notes;
    std::map<std::string, int> site_names;
    std::vector<LoopFrame> frames;
    std::size_t warp_var;
    int var_seq, prefix_seq;
  };

  Snapshot snapshot() const {
    return {regs,       kernel.vars, kernel.sites.size(), complete,
            notes.size(), site_names, frames,             warp_var,
            var_seq,    prefix_seq};
  }

  void restore(const Snapshot& snap) {
    regs = snap.regs;
    kernel.vars = snap.vars;
    kernel.sites.resize(snap.num_sites);
    complete = snap.complete;
    notes.resize(snap.num_notes);
    site_names = snap.site_names;
    frames = snap.frames;
    warp_var = snap.warp_var;
    var_seq = snap.var_seq;
    prefix_seq = snap.prefix_seq;
  }

  void run_loop(const Instr& header, std::size_t body_begin,
                std::size_t body_end) {
    const std::uint64_t trip = header.imm;
    if (trip == 0) return;
    const bool must_unroll = range_has_barrier(body_begin, body_end);

    if (!must_unroll) {
      // Symbolic attempt: one pass with the counter bound to a fresh
      // loop variable. Valid unless the body reads a register it also
      // writes (a recurrence) or halts.
      const Snapshot snap = snapshot();
      const std::size_t var =
          add_kernel_var(header, "i" + std::to_string(var_seq++), trip);
      write_reg(header, header.rd, make_var(var));
      frames.push_back({});
      frames.back().written.insert(header.rd);
      const std::size_t mask_depth = masks.size();
      exec_range(body_begin, body_end);
      if (masks.size() != mask_depth) {
        fail(header, "mask/unmask must balance within a loop body");
      }
      LoopFrame frame = std::move(frames.back());
      frames.pop_back();
      bool recurrence = halted;
      for (const int reg : frame.read_before_write) {
        if (reg != header.rd && frame.written.count(reg)) {
          recurrence = true;
          break;
        }
      }
      if (!recurrence) {
        // Loop-exit state: every register the body wrote holds its
        // last-iteration value.
        for (const int reg : frame.written) {
          std::map<const Node*, NodeRef> memo;
          regs[static_cast<std::size_t>(reg)].node = substitute_var(
              regs[static_cast<std::size_t>(reg)].node, var, trip - 1, memo);
        }
        // Propagate the body's footprint to enclosing frames.
        for (const int reg : frame.read_before_write) note_read(reg);
        for (const int reg : frame.written) note_write(reg);
        return;
      }
      restore(snap);
      halted = false;
    }

    // Unrolled execution: one pass per iteration with a constant counter.
    for (std::uint64_t i = 0; i < trip; ++i) {
      write_reg(header, header.rd, make_const(i));
      exec_range(body_begin, body_end);
      if (halted) return;
    }
  }

  void exec_range(std::size_t begin, std::size_t end) {
    std::size_t pc = begin;
    while (pc < end && !halted) {
      if (++steps > kMaxSteps) {
        throw std::invalid_argument(
            "program exceeds the extraction step budget (" +
            std::to_string(kMaxSteps) + ")");
      }
      const Instr& instr = program.instrs[pc];
      switch (instr.op) {
        case Op::kLi:
          write_reg(instr, instr.rd, make_const(instr.imm));
          break;
        case Op::kMov:
          write_reg(instr, instr.rd, value(instr, instr.a));
          break;
        case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
        case Op::kMod: case Op::kAnd: case Op::kOr: case Op::kXor:
        case Op::kShl: case Op::kShr: case Op::kMin: case Op::kMax:
        case Op::kSlt: case Op::kSeq:
          write_reg(instr, instr.rd,
                    make_op(instr.op, value(instr, instr.a),
                            value(instr, instr.b)));
          break;
        case Op::kLd:
          emit_site(instr, value(instr, instr.a), analyze::AccessDir::kLoad);
          write_reg(instr, instr.rd, make_leaf(Node::K::kDevice), true);
          break;
        case Op::kSt:
          (void)value(instr, instr.b, /*allow_device=*/true);
          emit_site(instr, value(instr, instr.a),
                    analyze::AccessDir::kStore);
          break;
        case Op::kAmo: {
          if (instr.b.kind != Operand::Kind::kReg ||
              !regs[static_cast<std::size_t>(instr.b.value)].device) {
            fail(instr, "amo value must be a device-valued register");
          }
          emit_site(instr, value(instr, instr.a),
                    analyze::AccessDir::kAtomic);
          break;
        }
        case Op::kCmpx: {
          if (!regs[instr.rd].device || instr.a.kind != Operand::Kind::kReg ||
              !regs[static_cast<std::size_t>(instr.a.value)].device) {
            fail(instr, "cmpx operands must both hold loaded data");
          }
          break;  // register-only: no memory site
        }
        case Op::kLoop: {
          if (instr.b.kind != Operand::Kind::kImm) {
            fail(instr, "malformed loop (no endl link)");
          }
          const auto endl_pc = static_cast<std::size_t>(instr.b.value);
          run_loop(instr, pc + 1, endl_pc);
          pc = endl_pc;  // ++pc below skips the endl
          break;
        }
        case Op::kEndl:
          fail(instr, "endl without an open loop");
        case Op::kMask:
          masks.push_back(classify_mask(instr, value(instr, instr.a)));
          break;
        case Op::kUnmask:
          if (masks.empty()) fail(instr, "unmask without a mask");
          masks.pop_back();
          break;
        case Op::kBz:
        case Op::kBnz:
          fail(instr, "branches are not extractable to kernel IR (use "
                      "loop/mask, or analyze the program trace-only)");
        case Op::kBar:
          if (!masks.empty()) {
            fail(instr, "bar under a mask (barriers are block-wide)");
          }
          kernel.add_barrier();
          break;
        case Op::kHalt:
          halted = true;
          break;
      }
      ++pc;
    }
  }
};

}  // namespace

ExtractResult extract_kernel(const Program& program) {
  if (program.width == 0 || program.num_threads == 0 ||
      program.num_threads % program.width != 0 ||
      program.memory_words == 0 ||
      program.memory_words % program.width != 0) {
    throw std::invalid_argument("program has invalid geometry");
  }
  Extractor extractor(program);
  extractor.exec_range(0, program.instrs.size());
  if (!extractor.masks.empty()) {
    throw std::invalid_argument(
        "program ended with an active mask (missing unmask)");
  }
  if (extractor.kernel.sites.empty()) {
    throw std::invalid_argument(
        "program has no memory access sites to describe");
  }
  // Drop trailing barriers after the last site (vacuous in the IR).
  while (!extractor.kernel.barriers.empty() &&
         extractor.kernel.barriers.back() >= extractor.kernel.sites.size()) {
    extractor.kernel.barriers.pop_back();
  }
  const std::vector<std::string> errors =
      analyze::validate_kernel(extractor.kernel);
  if (!errors.empty()) {
    throw std::invalid_argument("extracted kernel is invalid: " + errors[0]);
  }
  ExtractResult result;
  result.kernel = std::move(extractor.kernel);
  result.complete = extractor.complete;
  result.notes = std::move(extractor.notes);
  return result;
}

}  // namespace rapsim::vm
