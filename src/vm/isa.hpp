// Mini-kernel VM instruction set (workload front end, DESIGN.md §15).
//
// A compact SPMD register machine over shared memory: every thread runs
// the same straight-line instruction stream (structured loops, no
// divergent control flow), reads its identity from the read-only `lane`
// and `warp` operands, computes ADDRESSES in 16 per-lane u64 registers,
// and touches memory through ld / st / amo / cmpx. Programs are written
// in the line-numbered `.rvm` text format (vm/assembler.hpp), lowered to
// executable dmm::Kernels and versioned AccessTraces (vm/exec.hpp), and
// — when address expressions are affine in {lane, warp, loop counters} —
// re-described as loop-nest kernel IR (vm/extract.hpp) so the symbolic
// prover, linter, synthesizer and race verifier apply with no
// per-workload glue.
//
// The key soundness property is baked into the ISA: DATA loaded from
// memory is opaque to the interpreter (it lives in DMM machine
// registers), so addresses can never depend on loaded values. A
// program's address stream is therefore a pure function of (lane, warp,
// loop counters) — deterministic, replayable, and analyzable. Loaded
// values may only be stored back, compare-exchanged (cmpx -> the DMM's
// kMinMax) or atomically added, which is exactly the move set of the
// paper's workloads (transpose, sorting networks, permutation routing).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rapsim::vm {

/// General-purpose per-lane registers r0..r15.
inline constexpr std::uint32_t kNumRegs = 16;

enum class Op : std::uint8_t {
  kLi,    // li   rd, imm          rd <- constant expression
  kMov,   // mov  rd, a            rd <- a
  kAdd,   // add  rd, a, b         rd <- a + b      (wrapping u64)
  kSub,   // sub  rd, a, b
  kMul,   // mul  rd, a, b
  kDiv,   // div  rd, a, b         b == 0 is a lowering error
  kMod,   // mod  rd, a, b         b == 0 is a lowering error
  kAnd,   // and  rd, a, b
  kOr,    // or   rd, a, b
  kXor,   // xor  rd, a, b
  kShl,   // shl  rd, a, b         shift counts >= 64 yield 0
  kShr,   // shr  rd, a, b
  kMin,   // min  rd, a, b
  kMax,   // max  rd, a, b
  kSlt,   // slt  rd, a, b         rd <- (a < b) ? 1 : 0
  kSeq,   // seq  rd, a, b         rd <- (a == b) ? 1 : 0
  kLd,    // ld   rd, a            rd <- mem[a]; rd becomes device-valued
  kSt,    // st   a, b             mem[a] <- b (register or immediate)
  kAmo,   // amo  a, b             mem[a] += b; b must be device-valued
  kCmpx,  // cmpx ra, rb           (ra, rb) <- (min, max); both device
  kLoop,  // loop rd, imm          counted loop; rd = 0 .. imm-1
  kEndl,  // endl                  close the innermost loop
  kMask,  // mask a                push lane predicate (a != 0 is active)
  kUnmask,  // unmask              pop the innermost predicate
  kBz,    // bz   a, label         branch if a == 0 (must be uniform)
  kBnz,   // bnz  a, label         branch if a != 0 (must be uniform)
  kBar,   // bar                   block-wide barrier (__syncthreads())
  kHalt,  // halt                  stop all threads
};

[[nodiscard]] const char* op_name(Op op) noexcept;

/// One instruction operand: a register, an immediate, or one of the two
/// read-only identity registers.
struct Operand {
  enum class Kind : std::uint8_t { kNone, kReg, kImm, kLane, kWarp };
  Kind kind = Kind::kNone;
  std::uint64_t value = 0;  // register index (kReg) or immediate (kImm)

  static Operand none() { return {}; }
  static Operand reg(std::uint32_t r) { return {Kind::kReg, r}; }
  static Operand imm(std::uint64_t v) { return {Kind::kImm, v}; }
  static Operand lane() { return {Kind::kLane, 0}; }
  static Operand warp() { return {Kind::kWarp, 0}; }

  friend bool operator==(const Operand&, const Operand&) = default;
};

struct Instr {
  Op op = Op::kHalt;
  std::uint8_t rd = 0;  // destination / first register
  Operand a;            // first source (address for ld/st/amo)
  Operand b;            // second source (value for st/amo; loop end pc)
  std::uint64_t imm = 0;  // kLi value, kLoop trip count, branch/endl pc
  std::uint32_t line = 0;  // 1-based source line (diagnostics)
  std::string site;        // optional @label naming the access site

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// An assembled program, bound to a concrete warp width: the `.rvm`
/// symbol `w` is substituted at assembly time, so geometry expressions
/// like `.threads 8*w` are already concrete here.
struct Program {
  std::string name;
  std::uint32_t width = 32;        // lanes per warp (the paper's w)
  std::uint32_t num_threads = 0;   // multiple of width
  std::uint64_t memory_words = 0;  // shared memory size; multiple of width
  std::vector<Instr> instrs;

  [[nodiscard]] std::uint32_t num_warps() const noexcept {
    return width == 0 ? 0 : num_threads / width;
  }
  [[nodiscard]] std::uint64_t rows() const noexcept {
    return width == 0 ? 0 : memory_words / width;
  }
};

}  // namespace rapsim::vm
