#include "vm/suite.hpp"

#include <stdexcept>
#include <utility>

namespace rapsim::vm {
namespace {

std::string u(std::uint64_t value) { return std::to_string(value); }

bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

std::uint64_t log2u(std::uint64_t value) {
  std::uint64_t result = 0;
  while ((std::uint64_t{1} << result) < value) ++result;
  return result;
}

/// One bitonic round (k, j): compare-exchange every pair {i, i+j} with
/// bit j of i clear, min to i + d*j, max to i + j - d*j, where d = bit k
/// of i (the merge direction). The pair layout keeps the index affine:
/// active lanes form 2j-aligned blocks, the direction bit is an explicit
/// 2-trip loop, and once k exceeds the warp width a warp-prefix mask
/// picks the n/2k warps that own k pairs each.
void emit_bitonic_round(std::string& out, std::uint64_t n, std::uint64_t w,
                        std::uint64_t k, std::uint64_t j) {
  out += "# round k=" + u(k) + " j=" + u(j) + "\n";
  if (k <= w) {
    // i = 2w*warp + 2k*e + k*d + 2j*f + lane, lane < j.
    out += "  slt r1, lane, " + u(j) + "\n";
    out += "  mask r1\n";
    out += "  loop r2, " + u(w / k) + "\n";
    out += "  loop r3, 2\n";
    out += "  loop r4, " + u(k / (2 * j)) + "\n";
    out += "    mul r5, warp, " + u(2 * w) + "\n";
    out += "    mul r6, r2, " + u(2 * k) + "\n";
    out += "    add r5, r5, r6\n";
    out += "    mul r6, r3, " + u(k) + "\n";
    out += "    add r5, r5, r6\n";
    out += "    mul r6, r4, " + u(2 * j) + "\n";
    out += "    add r5, r5, r6\n";
    out += "    add r5, r5, lane\n";
    out += "    add r6, r5, " + u(j) + "\n";
    out += "    ld r10, r5 @bit.lo\n";
    out += "    ld r11, r6 @bit.hi\n";
    out += "    cmpx r10, r11\n";
    out += "    mul r7, r3, " + u(j) + "\n";
    out += "    add r8, r5, r7\n";
    out += "    sub r9, r6, r7\n";
    out += "    st r8, r10 @bit.min\n";
    out += "    st r9, r11 @bit.max\n";
    out += "  endl\n";
    out += "  endl\n";
    out += "  endl\n";
    out += "  unmask\n";
    return;
  }
  // i = 2k*warp + k*d + 2j*f [+ w*g] + lane, warp < max(n/2k, 1).
  // For k == n bit k of i is always clear, so d has a single trip.
  const std::uint64_t warps = n / (2 * k) > 0 ? n / (2 * k) : 1;
  const std::uint64_t d_trips = k == n ? 1 : 2;
  const bool wide = j >= w;  // lanes cover only part of the 2j block
  out += "  slt r1, warp, " + u(warps) + "\n";
  out += "  mask r1\n";
  if (!wide) {
    out += "  slt r2, lane, " + u(j) + "\n";
    out += "  mask r2\n";
  }
  out += "  loop r3, " + u(d_trips) + "\n";
  out += "  loop r4, " + u(k / (2 * j)) + "\n";
  if (wide) out += "  loop r5, " + u(j / w) + "\n";
  out += "    mul r6, warp, " + u(2 * k) + "\n";
  out += "    mul r7, r3, " + u(k) + "\n";
  out += "    add r6, r6, r7\n";
  out += "    mul r7, r4, " + u(2 * j) + "\n";
  out += "    add r6, r6, r7\n";
  if (wide) {
    out += "    mul r7, r5, " + u(w) + "\n";
    out += "    add r6, r6, r7\n";
  }
  out += "    add r6, r6, lane\n";
  out += "    add r7, r6, " + u(j) + "\n";
  out += "    ld r10, r6 @bit.lo\n";
  out += "    ld r11, r7 @bit.hi\n";
  out += "    cmpx r10, r11\n";
  out += "    mul r8, r3, " + u(j) + "\n";
  out += "    add r9, r6, r8\n";
  out += "    sub r7, r7, r8\n";
  out += "    st r9, r10 @bit.min\n";
  out += "    st r7, r11 @bit.max\n";
  if (wide) out += "  endl\n";
  out += "  endl\n";
  out += "  endl\n";
  if (!wide) out += "  unmask\n";
  out += "  unmask\n";
}

/// One odd-even transposition pass over every grid row. Warp u owns grid
/// row u (element x of row u lives at address x*w + u), so passes touch
/// disjoint addresses across warps and need no barrier. The body never
/// reads the pass counter: extraction collapses it to a zero-coefficient
/// loop variable.
void emit_shear_row_phase(std::string& out, std::uint64_t w) {
  out += "# row phase: odd-even transposition, warp u sorts grid row u\n";
  out += "  loop r1, " + u(w / 2) + "\n";
  for (int odd = 0; odd < 2; ++odd) {
    out += "    slt r2, lane, " + u(w / 2 - (odd ? 1 : 0)) + "\n";
    out += "    mask r2\n";
    out += "      mul r3, lane, " + u(2 * w) + "\n";
    if (odd) out += "      add r3, r3, " + u(w) + "\n";
    out += "      add r3, r3, warp\n";
    out += "      add r4, r3, " + u(w) + "\n";
    out += "      ld r10, r3 @row.lo\n";
    out += "      ld r11, r4 @row.hi\n";
    out += "      cmpx r10, r11\n";
    out += "      st r3, r10 @row.min\n";
    out += "      st r4, r11 @row.max\n";
    out += "    unmask\n";
  }
  out += "  endl\n";
}

/// One odd-even transposition sweep over the 8 grid columns (8
/// subrounds). Warp q compares grid rows (2q+pp, 2q+pp+1) across all w
/// columns; the boustrophedon storage reverses the column coordinate
/// between adjacent rows, so the partner of (i, x) is (i+1, w-1-x).
void emit_shear_col_phase(std::string& out, std::uint64_t w) {
  out += "# column phase: odd-even transposition over the 8 grid rows\n";
  for (std::uint64_t p = 0; p < 8; ++p) {
    const std::uint64_t pp = p & 1;
    out += "  slt r2, warp, " + u(4 - pp) + "\n";
    out += "  mask r2\n";
    out += "    mul r3, lane, " + u(w) + "\n";
    out += "    add r3, r3, warp\n";
    out += "    add r3, r3, warp\n";
    if (pp) out += "    add r3, r3, 1\n";
    out += "    sub r4, " + u(w - 1) + ", lane\n";
    out += "    mul r4, r4, " + u(w) + "\n";
    out += "    add r4, r4, warp\n";
    out += "    add r4, r4, warp\n";
    out += "    add r4, r4, " + u(pp + 1) + "\n";
    out += "    ld r10, r3 @col.top\n";
    out += "    ld r11, r4 @col.bot\n";
    out += "    cmpx r10, r11\n";
    out += "    st r3, r10 @col.min\n";
    out += "    st r4, r11 @col.max\n";
    out += "  unmask\n";
    out += "  bar\n";
  }
}

}  // namespace

std::string bitonic_text(std::uint64_t n, std::uint32_t width) {
  if (n < 2 || !is_pow2(n)) {
    throw std::invalid_argument("bitonic: n must be a power of two >= 2");
  }
  if (width == 0 || n % (2ull * width) != 0) {
    throw std::invalid_argument(
        "bitonic: n must be a multiple of twice the width");
  }
  const std::uint64_t w = width;
  std::string out;
  out += "# Bitonic sorting network over n = " + u(n) + " elements,\n";
  out += "# one thread per pair. Conflict-free by construction: every\n";
  out += "# round touches contiguous 2j-aligned blocks (raw bound 1).\n";
  out += ".vm 1\n";
  out += ".name vm-bitonic\n";
  out += ".threads " + u(n / 2) + "\n";
  out += ".memory " + u(n) + "\n";
  bool first = true;
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k / 2; j >= 1; j >>= 1) {
      if (!first) out += "bar\n";
      first = false;
      emit_bitonic_round(out, n, w, k, j);
    }
  }
  out += "halt\n";
  return out;
}

std::string shearsort_text(std::uint32_t width) {
  if (width < 8 || !is_pow2(width)) {
    throw std::invalid_argument(
        "shearsort: width must be a power of two >= 8");
  }
  const std::uint64_t w = width;
  std::string out;
  out += "# Shearsort on an 8 x " + u(w) + " grid stored column-major\n";
  out += "# (element x of grid row i lives at x*w + i) with boustrophedon\n";
  out += "# row coordinates, so every row sort is ascending in storage\n";
  out += "# and the result is snake-ordered. Row phases are stride-w\n";
  out += "# (raw-hostile); the rotate mapping certifies congestion 1.\n";
  out += ".vm 1\n";
  out += ".name vm-shearsort\n";
  out += ".threads " + u(8 * w) + "\n";
  out += ".memory " + u(w * w) + "\n";
  for (int phase = 0; phase < 3; ++phase) {
    emit_shear_row_phase(out, w);
    out += "bar\n";
    emit_shear_col_phase(out, w);  // each subround ends with its own bar
  }
  emit_shear_row_phase(out, w);
  out += "halt\n";
  return out;
}

std::string mergesort_round_text(std::uint32_t width) {
  if (width == 0 || !is_pow2(width)) {
    throw std::invalid_argument(
        "mergesort-round: width must be a power of two");
  }
  const std::uint64_t w = width;
  const std::uint64_t n = 4 * w * w;
  std::string out;
  out += "# One multiway-merge distribution round: each warp streams its\n";
  out += "# w runs of w keys column-wise (read stride w: raw congestion\n";
  out += "# exactly w) and writes them row-contiguous into [n, 2n). The\n";
  out += "# rotate mapping makes both sides conflict-free.\n";
  out += ".vm 1\n";
  out += ".name vm-mergesort-round\n";
  out += ".threads " + u(4 * w) + "\n";
  out += ".memory " + u(2 * n) + "\n";
  out += "mul r1, warp, " + u(w * w) + "\n";
  out += "add r2, r1, " + u(n) + "\n";
  out += "loop r3, " + u(w) + "\n";
  out += "  mul r4, lane, " + u(w) + "\n";
  out += "  add r4, r4, r1\n";
  out += "  add r4, r4, r3\n";
  out += "  ld r5, r4 @merge.read\n";
  out += "  mul r6, r3, " + u(w) + "\n";
  out += "  add r6, r6, r2\n";
  out += "  add r6, r6, lane\n";
  out += "  st r6, r5 @merge.write\n";
  out += "endl\n";
  out += "halt\n";
  return out;
}

std::string permute_text(PermuteKind kind, std::uint32_t width,
                         std::uint64_t seed) {
  if (width == 0 || !is_pow2(width)) {
    throw std::invalid_argument("permute: width must be a power of two");
  }
  const std::uint64_t w = width;
  const std::uint64_t n = 8 * w;
  const char* tag = kind == PermuteKind::kIdentity     ? "identity"
                    : kind == PermuteKind::kBitReversal ? "bitrev"
                                                        : "derange";
  std::string out;
  out += "# Permutation routing: thread i moves mem[i] to n + pi(i).\n";
  out += ".vm 1\n";
  out += ".name vm-permute-" + std::string(tag) + "\n";
  out += ".threads " + u(n) + "\n";
  out += ".memory " + u(2 * n) + "\n";
  out += "mul r1, warp, " + u(w) + "\n";
  out += "add r1, r1, lane\n";
  out += "ld r2, r1 @perm.read\n";
  switch (kind) {
    case PermuteKind::kIdentity:
      out += "add r3, r1, " + u(n) + "\n";
      break;
    case PermuteKind::kBitReversal: {
      // pi(i) = reverse of i's low log2(n) bits: a register recurrence,
      // so extraction unrolls the loop and the site goes opaque.
      out += "li r3, 0\n";
      out += "mov r4, r1\n";
      out += "loop r5, " + u(log2u(n)) + "\n";
      out += "  shl r3, r3, 1\n";
      out += "  and r6, r4, 1\n";
      out += "  or r3, r3, r6\n";
      out += "  shr r4, r4, 1\n";
      out += "endl\n";
      out += "add r3, r3, " + u(n) + "\n";
      break;
    }
    case PermuteKind::kDerangement: {
      // pi(i) = (a*i + c) mod n with a, c odd: an odd multiplier is a
      // unit mod 2^k, and (a-1)*i + c is odd, so pi has no fixed point.
      std::uint64_t mix =
          seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
      mix ^= mix >> 31;
      const std::uint64_t a = 2 * (mix % (n / 2)) + 1;
      const std::uint64_t c = 2 * ((mix >> 17) % (n / 2)) + 1;
      out += "mul r3, r1, " + u(a) + "\n";
      out += "add r3, r3, " + u(c) + "\n";
      out += "mod r3, r3, " + u(n) + "\n";
      out += "add r3, r3, " + u(n) + "\n";
      break;
    }
  }
  out += "st r3, r2 @perm.write\n";
  out += "halt\n";
  return out;
}

std::vector<SuiteProgram> suite_programs(std::uint32_t width) {
  if (width < 8 || !is_pow2(width)) {
    throw std::invalid_argument(
        "suite: width must be a power of two >= 8");
  }
  std::vector<SuiteProgram> suite;
  suite.push_back({"vm-bitonic", bitonic_text(8ull * width, width)});
  suite.push_back({"vm-shearsort", shearsort_text(width)});
  suite.push_back({"vm-mergesort-round", mergesort_round_text(width)});
  suite.push_back(
      {"vm-permute-identity", permute_text(PermuteKind::kIdentity, width)});
  suite.push_back(
      {"vm-permute-bitrev", permute_text(PermuteKind::kBitReversal, width)});
  suite.push_back(
      {"vm-permute-derange", permute_text(PermuteKind::kDerangement, width)});
  return suite;
}

SuiteProgram suite_program(const std::string& name, std::uint32_t width) {
  std::vector<SuiteProgram> suite = suite_programs(width);
  std::string known;
  for (SuiteProgram& entry : suite) {
    if (entry.name == name) return std::move(entry);
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("unknown suite program '" + name +
                              "' (known: " + known + ")");
}

}  // namespace rapsim::vm
