#include "vm/assembler.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rapsim::vm {
namespace {

constexpr std::uint64_t kMaxThreads = 1u << 20;
constexpr std::uint64_t kMaxMemoryWords = 1u << 26;
constexpr std::size_t kMaxInstrs = 1u << 16;

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

// ---------------------------------------------------------------- tokens

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ------------------------------------------------- constant expressions
//
// expr  := sum (('<<' | '>>') sum)*
// sum   := term (('+' | '-') term)*
// term  := unary (('*' | '/' | '%') unary)*
// unary := '-' unary | number | ident | '(' expr ')'

struct ExprParser {
  const std::string& text;
  std::size_t pos = 0;
  std::size_t line;
  const std::map<std::string, std::uint64_t>& symbols;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool eat(const std::string& token) {
    skip_ws();
    if (text.compare(pos, token.size(), token) == 0) {
      // Don't let '<' match the first half of '<<' etc.
      pos += token.size();
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::uint64_t parse_expr() {
    std::uint64_t value = parse_sum();
    for (;;) {
      if (eat("<<")) {
        const std::uint64_t shift = parse_sum();
        value = shift >= 64 ? 0 : value << shift;
      } else if (eat(">>")) {
        const std::uint64_t shift = parse_sum();
        value = shift >= 64 ? 0 : value >> shift;
      } else {
        return value;
      }
    }
  }

  std::uint64_t parse_sum() {
    std::uint64_t value = parse_term();
    for (;;) {
      // '<<' handled a level up; a lone '<' is an error caught by the
      // caller's trailing-character check.
      if (peek() == '+' ) {
        ++pos;
        value += parse_term();
      } else if (peek() == '-') {
        ++pos;
        value -= parse_term();
      } else {
        return value;
      }
    }
  }

  std::uint64_t parse_term() {
    std::uint64_t value = parse_unary();
    for (;;) {
      const char c = peek();
      if (c == '*') {
        ++pos;
        value *= parse_unary();
      } else if (c == '/' || c == '%') {
        ++pos;
        const std::uint64_t rhs = parse_unary();
        if (rhs == 0) fail(line, "division by zero in constant expression");
        value = c == '/' ? value / rhs : value % rhs;
      } else {
        return value;
      }
    }
  }

  std::uint64_t parse_unary() {
    const char c = peek();
    if (c == '-') {
      ++pos;
      return ~parse_unary() + 1;  // wrapping negate
    }
    if (c == '(') {
      ++pos;
      const std::uint64_t value = parse_expr();
      if (peek() != ')') fail(line, "missing ')' in constant expression");
      ++pos;
      return value;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    if (ident_char(c)) {
      std::string name;
      while (pos < text.size() && ident_char(text[pos])) name += text[pos++];
      const auto found = symbols.find(name);
      if (found == symbols.end()) {
        fail(line, "unknown symbol '" + name + "' in constant expression");
      }
      return found->second;
    }
    fail(line, "malformed constant expression '" + text + "'");
  }

  std::uint64_t parse_number() {
    skip_ws();
    std::uint64_t value = 0;
    if (text.compare(pos, 2, "0x") == 0 || text.compare(pos, 2, "0X") == 0) {
      pos += 2;
      std::size_t digits = 0;
      while (pos < text.size() &&
             std::isxdigit(static_cast<unsigned char>(text[pos]))) {
        const char d = text[pos++];
        const std::uint64_t nibble =
            std::isdigit(static_cast<unsigned char>(d))
                ? static_cast<std::uint64_t>(d - '0')
                : static_cast<std::uint64_t>(std::tolower(d) - 'a') + 10;
        if (value > (~0ull >> 4)) fail(line, "integer literal overflows u64");
        value = (value << 4) | nibble;
        ++digits;
      }
      if (digits == 0) fail(line, "malformed hex literal");
      return value;
    }
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      const auto digit = static_cast<std::uint64_t>(text[pos++] - '0');
      if (value > (~0ull - digit) / 10) {
        fail(line, "integer literal overflows u64");
      }
      value = value * 10 + digit;
    }
    return value;
  }
};

std::uint64_t eval_expr(const std::string& text, std::size_t line,
                        const std::map<std::string, std::uint64_t>& symbols) {
  ExprParser parser{text, 0, line, symbols};
  const std::uint64_t value = parser.parse_expr();
  parser.skip_ws();
  if (parser.pos != text.size()) {
    fail(line, "trailing characters in constant expression '" + text + "'");
  }
  return value;
}

// ---------------------------------------------------------------- lines

/// Split an operand list on top-level commas (commas inside parentheses
/// belong to no one — the expression grammar has none, so any comma
/// splits).
std::vector<std::string> split_operands(const std::string& text,
                                        std::size_t line) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      parts.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = trim(current);
  if (!last.empty()) parts.push_back(last);
  for (const std::string& part : parts) {
    if (part.empty()) fail(line, "empty operand");
  }
  return parts;
}

std::optional<std::uint32_t> parse_reg(const std::string& token) {
  if (token.size() < 2 || token.size() > 3 || token[0] != 'r') {
    return std::nullopt;
  }
  std::uint32_t index = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return std::nullopt;
    }
    index = index * 10 + static_cast<std::uint32_t>(token[i] - '0');
  }
  return index;
}

const std::map<std::string, Op>& mnemonics() {
  static const std::map<std::string, Op> table = {
      {"li", Op::kLi},     {"mov", Op::kMov},   {"add", Op::kAdd},
      {"sub", Op::kSub},   {"mul", Op::kMul},   {"div", Op::kDiv},
      {"mod", Op::kMod},   {"and", Op::kAnd},   {"or", Op::kOr},
      {"xor", Op::kXor},   {"shl", Op::kShl},   {"shr", Op::kShr},
      {"min", Op::kMin},   {"max", Op::kMax},   {"slt", Op::kSlt},
      {"seq", Op::kSeq},   {"ld", Op::kLd},     {"st", Op::kSt},
      {"amo", Op::kAmo},   {"cmpx", Op::kCmpx}, {"loop", Op::kLoop},
      {"endl", Op::kEndl}, {"mask", Op::kMask}, {"unmask", Op::kUnmask},
      {"bz", Op::kBz},     {"bnz", Op::kBnz},   {"bar", Op::kBar},
      {"halt", Op::kHalt},
  };
  return table;
}

}  // namespace

Program assemble(const std::string& text, std::uint32_t width) {
  if (width == 0 || (width & (width - 1)) != 0) {
    throw std::invalid_argument("width must be a positive power of two");
  }
  Program program;
  program.width = width;
  program.name = "vm-program";

  std::map<std::string, std::uint64_t> symbols;
  symbols["w"] = width;

  bool saw_version = false;
  bool saw_threads = false;
  bool saw_memory = false;

  struct LoopOpen {
    std::size_t pc;
    std::size_t line;
  };
  std::vector<LoopOpen> loop_stack;
  std::map<std::string, std::size_t> labels;  // name -> target pc
  std::map<std::string, std::size_t> label_depth;
  struct Fixup {
    std::size_t pc;
    std::string label;
    std::size_t line;
    std::size_t depth;
  };
  std::vector<Fixup> fixups;

  const auto reg_operand = [](const std::string& token, std::size_t line,
                              const std::map<std::string, std::uint64_t>& syms)
      -> Operand {
    if (const auto reg = parse_reg(token)) {
      if (*reg >= kNumRegs) {
        fail(line, "register r" + std::to_string(*reg) + " out of range (r0-r" +
                       std::to_string(kNumRegs - 1) + ")");
      }
      return Operand::reg(*reg);
    }
    if (token == "lane") return Operand::lane();
    if (token == "warp") return Operand::warp();
    return Operand::imm(eval_expr(token, line, syms));
  };

  std::istringstream input(text);
  std::string raw_line;
  std::size_t line = 0;
  while (std::getline(input, raw_line)) {
    ++line;
    // Comments run from '#' to end of line.
    if (const std::size_t hash = raw_line.find('#');
        hash != std::string::npos) {
      raw_line.erase(hash);
    }
    // Optional trailing "@site" names the access site.
    std::string site;
    if (const std::size_t at = raw_line.rfind('@'); at != std::string::npos) {
      site = trim(raw_line.substr(at + 1));
      raw_line.erase(at);
      if (site.empty()) fail(line, "empty @site label");
    }
    const std::string stripped = trim(raw_line);
    if (stripped.empty()) {
      if (!site.empty()) fail(line, "@site label without an instruction");
      continue;
    }

    // Directives.
    if (stripped[0] == '.') {
      if (!site.empty()) fail(line, "@site label on a directive");
      std::istringstream words(stripped);
      std::string directive, rest;
      words >> directive;
      std::getline(words, rest);
      rest = trim(rest);
      if (directive == ".vm") {
        if (eval_expr(rest, line, symbols) != 1) {
          fail(line, "unsupported .vm version (expected 1)");
        }
        saw_version = true;
      } else if (directive == ".name") {
        if (rest.empty()) fail(line, ".name needs a value");
        for (const char c : rest) {
          if (!ident_char(c) && c != '-') {
            fail(line, "invalid character in program name");
          }
        }
        program.name = rest;
      } else if (directive == ".threads") {
        const std::uint64_t value = eval_expr(rest, line, symbols);
        if (value == 0 || value % width != 0 || value > kMaxThreads) {
          fail(line, ".threads must be a positive multiple of w (and <= " +
                         std::to_string(kMaxThreads) + ")");
        }
        program.num_threads = static_cast<std::uint32_t>(value);
        saw_threads = true;
      } else if (directive == ".memory") {
        const std::uint64_t value = eval_expr(rest, line, symbols);
        if (value == 0 || value % width != 0 || value > kMaxMemoryWords) {
          fail(line, ".memory must be a positive multiple of w (and <= " +
                         std::to_string(kMaxMemoryWords) + ")");
        }
        program.memory_words = value;
        saw_memory = true;
      } else if (directive == ".const") {
        std::istringstream decl(rest);
        std::string name, expr;
        decl >> name;
        std::getline(decl, expr);
        expr = trim(expr);
        if (name.empty() || expr.empty()) {
          fail(line, ".const needs a name and an expression");
        }
        for (const char c : name) {
          if (!ident_char(c)) fail(line, "invalid .const name '" + name + "'");
        }
        if (std::isdigit(static_cast<unsigned char>(name[0])) ||
            name == "w" || name == "lane" || name == "warp") {
          fail(line, "reserved or numeric .const name '" + name + "'");
        }
        symbols[name] = eval_expr(expr, line, symbols);
      } else {
        fail(line, "unknown directive '" + directive + "'");
      }
      continue;
    }

    // Labels: "name:" alone on a line.
    if (stripped.back() == ':') {
      if (!site.empty()) fail(line, "@site label on a label");
      const std::string name = trim(stripped.substr(0, stripped.size() - 1));
      if (name.empty()) fail(line, "empty label");
      for (const char c : name) {
        if (!ident_char(c)) fail(line, "invalid label '" + name + "'");
      }
      if (labels.count(name)) fail(line, "duplicate label '" + name + "'");
      labels[name] = program.instrs.size();
      label_depth[name] = loop_stack.size();
      continue;
    }

    // Instructions.
    std::istringstream words(stripped);
    std::string mnemonic, rest;
    words >> mnemonic;
    std::getline(words, rest);
    const auto found = mnemonics().find(mnemonic);
    if (found == mnemonics().end()) {
      fail(line, "unknown instruction '" + mnemonic + "'");
    }
    if (!saw_version) fail(line, "missing .vm directive before code");
    if (program.instrs.size() >= kMaxInstrs) {
      fail(line, "program exceeds " + std::to_string(kMaxInstrs) +
                     " instructions");
    }
    const Op op = found->second;
    std::vector<std::string> operands = split_operands(rest, line);
    const auto expect = [&](std::size_t count) {
      if (operands.size() != count) {
        fail(line, std::string(op_name(op)) + " expects " +
                       std::to_string(count) + " operand(s), got " +
                       std::to_string(operands.size()));
      }
    };
    const auto dest_reg = [&](const std::string& token) -> std::uint8_t {
      const auto reg = parse_reg(token);
      if (!reg || *reg >= kNumRegs) {
        fail(line, std::string(op_name(op)) +
                       " destination must be a register r0-r" +
                       std::to_string(kNumRegs - 1) + ", got '" + token + "'");
      }
      return static_cast<std::uint8_t>(*reg);
    };

    Instr instr;
    instr.op = op;
    instr.line = static_cast<std::uint32_t>(line);
    if (!site.empty()) {
      if (op != Op::kLd && op != Op::kSt && op != Op::kAmo) {
        fail(line, "@site labels only apply to ld/st/amo");
      }
      instr.site = site;
    }

    switch (op) {
      case Op::kLi:
        expect(2);
        instr.rd = dest_reg(operands[0]);
        instr.imm = eval_expr(operands[1], line, symbols);
        break;
      case Op::kMov:
        expect(2);
        instr.rd = dest_reg(operands[0]);
        instr.a = reg_operand(operands[1], line, symbols);
        break;
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
      case Op::kMod: case Op::kAnd: case Op::kOr: case Op::kXor:
      case Op::kShl: case Op::kShr: case Op::kMin: case Op::kMax:
      case Op::kSlt: case Op::kSeq:
        expect(3);
        instr.rd = dest_reg(operands[0]);
        instr.a = reg_operand(operands[1], line, symbols);
        instr.b = reg_operand(operands[2], line, symbols);
        break;
      case Op::kLd:
        expect(2);
        instr.rd = dest_reg(operands[0]);
        instr.a = reg_operand(operands[1], line, symbols);
        break;
      case Op::kSt:
      case Op::kAmo:
        expect(2);
        instr.a = reg_operand(operands[0], line, symbols);
        instr.b = reg_operand(operands[1], line, symbols);
        break;
      case Op::kCmpx:
        expect(2);
        instr.rd = dest_reg(operands[0]);
        instr.a = reg_operand(operands[1], line, symbols);
        if (instr.a.kind != Operand::Kind::kReg) {
          fail(line, "cmpx operands must both be registers");
        }
        break;
      case Op::kLoop:
        expect(2);
        instr.rd = dest_reg(operands[0]);
        instr.imm = eval_expr(operands[1], line, symbols);
        loop_stack.push_back({program.instrs.size(), line});
        break;
      case Op::kEndl:
        expect(0);
        if (loop_stack.empty()) fail(line, "endl without an open loop");
        instr.imm = loop_stack.back().pc;  // back-link to the loop header
        program.instrs[loop_stack.back().pc].b =
            Operand::imm(program.instrs.size());  // forward-link to endl
        loop_stack.pop_back();
        break;
      case Op::kMask:
        expect(1);
        instr.a = reg_operand(operands[0], line, symbols);
        break;
      case Op::kUnmask:
      case Op::kBar:
      case Op::kHalt:
        expect(0);
        break;
      case Op::kBz:
      case Op::kBnz: {
        expect(2);
        instr.a = reg_operand(operands[0], line, symbols);
        const std::string& target = operands[1];
        for (const char c : target) {
          if (!ident_char(c)) fail(line, "invalid branch label '" + target + "'");
        }
        fixups.push_back(
            {program.instrs.size(), target, line, loop_stack.size()});
        break;
      }
    }
    program.instrs.push_back(std::move(instr));
  }

  if (!saw_version) throw std::invalid_argument("missing .vm directive");
  if (!saw_threads) throw std::invalid_argument("missing .threads directive");
  if (!saw_memory) throw std::invalid_argument("missing .memory directive");
  if (!loop_stack.empty()) {
    fail(loop_stack.back().line, "loop is never closed (missing endl)");
  }
  for (const auto& fixup : fixups) {
    const auto found = labels.find(fixup.label);
    if (found == labels.end()) {
      fail(fixup.line, "undefined label '" + fixup.label + "'");
    }
    // Branching across a loop boundary would desynchronize the loop
    // stack; require source and target at the same nesting depth.
    if (label_depth[fixup.label] != fixup.depth) {
      fail(fixup.line, "branch to '" + fixup.label +
                           "' crosses a loop boundary");
    }
    program.instrs[fixup.pc].imm = found->second;
  }
  return program;
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  out << ".vm 1\n.name " << program.name << "\n.threads "
      << program.num_threads << "\n.memory " << program.memory_words << "\n";

  // Branch targets need labels in the output.
  std::map<std::uint64_t, std::string> target_labels;
  for (const Instr& instr : program.instrs) {
    if (instr.op == Op::kBz || instr.op == Op::kBnz) {
      target_labels.emplace(instr.imm, "L" + std::to_string(instr.imm));
    }
  }
  const auto operand = [](const Operand& value) -> std::string {
    switch (value.kind) {
      case Operand::Kind::kReg: return "r" + std::to_string(value.value);
      case Operand::Kind::kImm: return std::to_string(value.value);
      case Operand::Kind::kLane: return "lane";
      case Operand::Kind::kWarp: return "warp";
      case Operand::Kind::kNone: return "?";
    }
    return "?";
  };

  for (std::size_t pc = 0; pc < program.instrs.size(); ++pc) {
    if (const auto label = target_labels.find(pc);
        label != target_labels.end()) {
      out << label->second << ":\n";
    }
    const Instr& instr = program.instrs[pc];
    out << op_name(instr.op);
    switch (instr.op) {
      case Op::kLi:
      case Op::kLoop:
        out << " r" << static_cast<int>(instr.rd) << ", " << instr.imm;
        break;
      case Op::kMov:
      case Op::kLd:
        out << " r" << static_cast<int>(instr.rd) << ", " << operand(instr.a);
        break;
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
      case Op::kMod: case Op::kAnd: case Op::kOr: case Op::kXor:
      case Op::kShl: case Op::kShr: case Op::kMin: case Op::kMax:
      case Op::kSlt: case Op::kSeq:
        out << " r" << static_cast<int>(instr.rd) << ", " << operand(instr.a)
            << ", " << operand(instr.b);
        break;
      case Op::kSt:
      case Op::kAmo:
        out << " " << operand(instr.a) << ", " << operand(instr.b);
        break;
      case Op::kCmpx:
        out << " r" << static_cast<int>(instr.rd) << ", " << operand(instr.a);
        break;
      case Op::kMask:
        out << " " << operand(instr.a);
        break;
      case Op::kBz:
      case Op::kBnz:
        out << " " << operand(instr.a) << ", L" << instr.imm;
        break;
      case Op::kEndl:
      case Op::kUnmask:
      case Op::kBar:
      case Op::kHalt:
        break;
    }
    if (!instr.site.empty()) out << " @" << instr.site;
    out << "\n";
  }
  // A label may point one past the last instruction (branch to end).
  if (const auto label = target_labels.find(program.instrs.size());
      label != target_labels.end()) {
    out << label->second << ":\n";
  }
  return out.str();
}

}  // namespace rapsim::vm
