// Kernel-IR extraction: re-describe a VM program as loop-nest IR
// (analyze/kernelir.hpp) so the symbolic prover, linter, synthesizer and
// race verifier apply to it with no per-workload glue.
//
// The extractor interprets the program SYMBOLICALLY: registers hold
// expression trees over {constants, lane, warp, loop counters}, counted
// loops whose bodies contain no barrier become kernel loop variables
// (bodies with barriers, or with register recurrences, are unrolled),
// and each ld/st/amo becomes an AccessSite — affine (kFlat) when the
// address tree normalizes to c0 + c_lane*lane + sum c_v*v, an opaque
// tree-evaluator callback otherwise.
//
// Executing-warp attribution (the race verifier's input) is recovered
// from the mask discipline:
//   * no warp mask       -> every warp runs the site: site.warp = "warp",
//                           a loop variable whose value is the warp id
//   * mask (warp < K)    -> a fresh K-valued variable replaces `warp`
//   * mask (v == warp)   -> site.warp = v (v a bare loop variable)
//   * mask (expr == warp)-> congestion-sound (warp is substituted by
//                           expr), but the executor cannot be NAMED, so
//                           ExtractResult::complete turns false and race
//                           verdicts must not be claimed for the kernel.
// Lane activity from mask (lane < K) becomes the site's `lanes` prefix.
//
// Soundness caveats (DESIGN.md §15): extraction refuses programs it
// cannot model exactly — bz/bnz branches, unrecognized mask predicates,
// device-valued data in addresses — by throwing std::invalid_argument,
// so an ExtractResult that exists describes the SAME address set per
// barrier phase as the executor's lowering (pinned differentially by
// tests/vm_test.cpp). Multiplicity can differ — a loop whose body does
// not read its counter collapses to a zero-coefficient variable — but
// congestion and race verdicts are insensitive to repeats of an
// identical SIMD access.

#pragma once

#include <string>
#include <vector>

#include "analyze/kernelir.hpp"
#include "vm/isa.hpp"

namespace rapsim::vm {

struct ExtractResult {
  analyze::KernelDesc kernel;
  /// True when every site's executing warps are named in the IR; when
  /// false the congestion passes remain sound but race analysis must be
  /// skipped (the notes say which site lost attribution).
  bool complete = true;
  std::vector<std::string> notes;
};

/// Extract loop-nest IR from `program`. Throws std::invalid_argument
/// ("line N: ..." where a source position exists) when the program is
/// not extractable.
[[nodiscard]] ExtractResult extract_kernel(const Program& program);

}  // namespace rapsim::vm
