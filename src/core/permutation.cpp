#include "core/permutation.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace rapsim::core {

Permutation Permutation::identity(std::size_t n) {
  std::vector<std::uint32_t> image(n);
  std::iota(image.begin(), image.end(), 0u);
  return Permutation(std::move(image));
}

Permutation Permutation::random(std::size_t n, util::Pcg32& rng) {
  std::vector<std::uint32_t> image(n);
  std::iota(image.begin(), image.end(), 0u);
  // Fisher-Yates: each prefix [0..i] holds a uniform permutation of the
  // elements it has consumed. bounded() is rejection-sampled, so the swap
  // index is exactly uniform and the final draw is uniform over all n!.
  for (std::size_t i = n; i > 1; --i) {
    const std::uint32_t j = rng.bounded(static_cast<std::uint32_t>(i));
    std::swap(image[i - 1], image[j]);
  }
  return Permutation(std::move(image));
}

Permutation::Permutation(std::vector<std::uint32_t> image)
    : image_(std::move(image)) {
  if (!is_valid_image(image_)) {
    throw std::invalid_argument(
        "Permutation: image vector is not a permutation of {0..n-1}");
  }
}

Permutation::Permutation(std::initializer_list<std::uint32_t> image)
    : Permutation(std::vector<std::uint32_t>(image)) {}

Permutation Permutation::inverse() const {
  std::vector<std::uint32_t> inv(image_.size());
  for (std::size_t i = 0; i < image_.size(); ++i) {
    inv[image_[i]] = static_cast<std::uint32_t>(i);
  }
  return Permutation(std::move(inv));
}

Permutation Permutation::compose(const Permutation& other) const {
  if (size() != other.size()) {
    throw std::invalid_argument("Permutation::compose: size mismatch");
  }
  std::vector<std::uint32_t> out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = image_[other[i]];
  return Permutation(std::move(out));
}

bool Permutation::is_valid_image(std::span<const std::uint32_t> image) {
  std::vector<bool> seen(image.size(), false);
  for (const std::uint32_t v : image) {
    if (v >= image.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

std::string Permutation::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < image_.size(); ++i) {
    if (i) out << ' ';
    out << image_[i];
  }
  out << ')';
  return out.str();
}

}  // namespace rapsim::core
