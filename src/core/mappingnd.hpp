// Generic d-dimensional RAP — the natural closure of Section VII.
//
// For an array of shape w^d (d >= 2), address
// a = i_0 * w^(d-1) + ... + i_{d-2} * w + i_{d-1}, the innermost
// coordinate rotates by a shift function of the outer coordinates:
//
//   (d-1)P  (MultiPermNdMap):  f = sum_k p_k[i_k]  over the d-1 outer
//           coordinates, with independent permutations p_0..p_{d-2} —
//           the d-dimensional generalization of 3P (d = 4 reproduces it
//           exactly; d = 2 reproduces the original RAP).
//
// Guarantee (tested): a warp varying ANY single coordinate is
// conflict-free — varying the innermost shifts a full row through all
// banks, and varying outer coordinate k walks p_k through w distinct
// values while everything else is fixed. Random/adversarial access keeps
// the generic O(log w / log log w) expectation. Random words: (d-1) * w.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/mapping.hpp"
#include "core/permutation.hpp"
#include "util/rng.hpp"

namespace rapsim::core {

/// Shared geometry for shape-w^d arrays with an innermost-coordinate
/// rotation.
class NdMap : public AddressMap {
 public:
  NdMap(std::uint32_t width, std::uint32_t dims);

  [[nodiscard]] std::uint32_t dims() const noexcept { return dims_; }

  /// Shift applied to the innermost coordinate given the d-1 outer ones.
  [[nodiscard]] virtual std::uint32_t shift(
      std::span<const std::uint32_t> outer) const noexcept = 0;

  /// Logical address of a full index vector (size dims()).
  [[nodiscard]] std::uint64_t index(
      std::span<const std::uint32_t> coords) const;

  /// Outer coordinates (size dims()-1) of a logical address.
  [[nodiscard]] std::vector<std::uint32_t> outer_of(
      std::uint64_t logical) const;

  [[nodiscard]] std::uint64_t translate(std::uint64_t logical) const final;

 private:
  std::uint32_t dims_;
};

/// RAW for w^d arrays.
class RawNdMap final : public NdMap {
 public:
  RawNdMap(std::uint32_t width, std::uint32_t dims) : NdMap(width, dims) {}
  [[nodiscard]] std::uint32_t shift(
      std::span<const std::uint32_t>) const noexcept override {
    return 0;
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRaw; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return 0;
  }
};

/// (d-1)P: one independent permutation per outer dimension.
class MultiPermNdMap final : public NdMap {
 public:
  MultiPermNdMap(std::uint32_t width, std::uint32_t dims, util::Pcg32& rng);
  MultiPermNdMap(std::uint32_t width, std::vector<Permutation> perms);

  [[nodiscard]] std::uint32_t shift(
      std::span<const std::uint32_t> outer) const noexcept override {
    std::uint32_t sum = 0;
    for (std::size_t k = 0; k < perms_.size(); ++k) sum += perms_[k][outer[k]];
    return sum % width();
  }
  [[nodiscard]] const Permutation& permutation(std::size_t k) const {
    return perms_.at(k);
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRap;  // the d-dimensional member of the RAP family
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return perms_.size() * static_cast<std::uint64_t>(width());
  }

 private:
  std::vector<Permutation> perms_;
};

}  // namespace rapsim::core
