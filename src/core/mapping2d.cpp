#include "core/mapping2d.hpp"

#include <stdexcept>

namespace rapsim::core {

RasMap::RasMap(std::uint32_t width, std::uint64_t rows, util::Pcg32& rng)
    : MatrixMap(width, rows) {
  offsets_.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) offsets_.push_back(rng.bounded(width));
}

RasMap::RasMap(std::uint32_t width, std::vector<std::uint32_t> offsets)
    : MatrixMap(width, offsets.size()), offsets_(std::move(offsets)) {
  for (const auto off : offsets_) {
    if (off >= width) {
      throw std::invalid_argument("RasMap: offset out of range [0, width)");
    }
  }
}

RapMap::RapMap(std::uint32_t width, std::uint64_t rows, Permutation perm)
    : MatrixMap(width, rows), perm_(std::move(perm)) {
  if (perm_.size() != width) {
    throw std::invalid_argument("RapMap: permutation size must equal width");
  }
}

}  // namespace rapsim::core
