#include "core/theory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rapsim::core {

double chernoff_upper_tail(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  // Work in logs to avoid overflow for large delta:
  // ln bound = mu * (delta - (1+delta) ln(1+delta)).
  const double log_bound =
      mu * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(log_bound);
}

double lemma4_threshold(std::uint32_t width) {
  if (width < 3) {
    throw std::invalid_argument("lemma4_threshold: width must be >= 3");
  }
  const double lw = std::log(static_cast<double>(width));
  return 3.0 * lw / std::log(lw);
}

double lemma4_tail_bound(std::uint32_t width) {
  // Lemma 4 proof: mu <= 1, 1 + delta = T(w); bound = e^delta/(1+delta)^(1+delta).
  const double t = lemma4_threshold(width);
  return chernoff_upper_tail(1.0, t - 1.0);
}

double theorem2_expectation_bound(std::uint32_t width) {
  // E[C_half] <= T(w) + P[exceed] * (w/2) <= T(w) + (1/w)(w/2) = T(w) + 1/2;
  // full warp <= sum of both half-warps.
  return 2.0 * (lemma4_threshold(width) + 0.5);
}

double balls_in_bins_expectation_bound(std::uint32_t width) {
  // E[max] <= T(w) + P[any bin exceeds] * (max possible) <= T(w) + (1/w)*w.
  return lemma4_threshold(width) + 1.0;
}

double expected_max_load_mc(std::uint32_t balls, std::uint32_t bins,
                            std::uint32_t trials, std::uint64_t seed) {
  if (bins == 0 || trials == 0) return 0.0;
  util::Pcg32 rng(seed, /*stream=*/0x6d61786c6f6164ull);
  std::vector<std::uint32_t> load(bins);
  double sum = 0.0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    std::fill(load.begin(), load.end(), 0u);
    std::uint32_t max_load = 0;
    for (std::uint32_t b = 0; b < balls; ++b) {
      max_load = std::max(max_load, ++load[rng.bounded(bins)]);
    }
    sum += max_load;
  }
  return sum / trials;
}

double gonnet_expected_max_load(std::uint32_t n) {
  if (n < 2) return n;
  // Invert the gamma function: find x with lgamma(x) = ln(n) by bisection
  // (lgamma is strictly increasing for x >= 2).
  const double target = std::log(static_cast<double>(n));
  double lo = 2.0, hi = 2.0;
  while (std::lgamma(hi) < target) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    (std::lgamma(mid) < target ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi) - 1.5;
}

double expected_max_load_exact(std::uint32_t balls, std::uint32_t bins) {
  if (balls == 0 || bins == 0) return 0.0;
  if (balls > 16 || bins > 16) {
    throw std::invalid_argument(
        "expected_max_load_exact: supported only for balls, bins <= 16");
  }
  // Binomial coefficients C(n, k) for n <= 16.
  double binom[17][17] = {};
  for (int n = 0; n <= 16; ++n) {
    binom[n][0] = 1.0;
    for (int k = 1; k <= n; ++k) {
      binom[n][k] = binom[n - 1][k - 1] + (k <= n - 1 ? binom[n - 1][k] : 0.0);
    }
  }

  // ways_capped(m): number of ball->bin assignments with every bin load
  // <= m, by DP over bins: f[n] after processing t bins = #ways to place
  // the first (balls - n) balls... we track remaining balls n.
  const auto ways_capped = [&](std::uint32_t m) -> double {
    std::vector<double> f(balls + 1, 0.0);
    f[balls] = 1.0;  // all balls still unplaced, 0 bins processed
    for (std::uint32_t bin = 0; bin < bins; ++bin) {
      std::vector<double> g(balls + 1, 0.0);
      for (std::uint32_t rem = 0; rem <= balls; ++rem) {
        if (f[rem] == 0.0) continue;
        const std::uint32_t top = std::min(m, rem);
        for (std::uint32_t c = 0; c <= top; ++c) {
          g[rem - c] += f[rem] * binom[rem][c];
        }
      }
      f = std::move(g);
    }
    return f[0];
  };

  const double total = std::pow(static_cast<double>(bins), balls);
  // E[max] = sum_{m >= 1} P[max >= m] = sum_m (1 - P[max <= m-1]).
  double expectation = 0.0;
  for (std::uint32_t m = 1; m <= balls; ++m) {
    const double p_le = ways_capped(m - 1) / total;
    expectation += 1.0 - p_le;
  }
  return expectation;
}

}  // namespace rapsim::core
