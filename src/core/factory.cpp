#include "core/factory.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace rapsim::core {

std::unique_ptr<MatrixMap> make_matrix_map(Scheme scheme, std::uint32_t width,
                                           std::uint64_t rows,
                                           std::uint64_t seed) {
  util::Pcg32 rng(seed, /*stream=*/0x2d6d6170ull);
  switch (scheme) {
    case Scheme::kRaw:
      return std::make_unique<RawMap>(width, rows);
    case Scheme::kRas:
      return std::make_unique<RasMap>(width, rows, rng);
    case Scheme::kRap:
      return std::make_unique<RapMap>(width, rows, rng);
    case Scheme::kPad:
      return std::make_unique<PadMap>(width, rows);
    default:
      throw std::invalid_argument(
          "make_matrix_map: scheme is not a 2-D scheme");
  }
}

std::unique_ptr<Tensor4dMap> make_tensor4d_map(Scheme scheme,
                                               std::uint32_t width,
                                               std::uint64_t seed) {
  util::Pcg32 rng(seed, /*stream=*/0x34646d6170ull);
  switch (scheme) {
    case Scheme::kRaw:
      return std::make_unique<Raw4dMap>(width);
    case Scheme::kRas:
      return std::make_unique<Ras4dMap>(width, rng);
    case Scheme::kRap1P:
      return std::make_unique<OnePermMap>(width, rng);
    case Scheme::kRapR1P:
      return std::make_unique<RepeatedOnePermMap>(width, rng);
    case Scheme::kRap3P:
      return std::make_unique<ThreePermMap>(width, rng);
    case Scheme::kRapW2P:
      return std::make_unique<WSquaredPermMap>(width, rng);
    case Scheme::kRap1PW2R:
      return std::make_unique<OnePermW2RandMap>(width, rng);
    case Scheme::kRap:
    case Scheme::kPad:
    case Scheme::kSynth:
      break;
  }
  throw std::invalid_argument(
      "make_tensor4d_map: scheme is not a 4-D scheme");
}

const std::vector<Scheme>& table2_schemes() {
  static const std::vector<Scheme> kSchemes = {Scheme::kRaw, Scheme::kRas,
                                               Scheme::kRap};
  return kSchemes;
}

const std::vector<Scheme>& table4_schemes() {
  static const std::vector<Scheme> kSchemes = {
      Scheme::kRaw,    Scheme::kRas,    Scheme::kRap1P,   Scheme::kRapR1P,
      Scheme::kRap3P,  Scheme::kRapW2P, Scheme::kRap1PW2R};
  return kSchemes;
}

}  // namespace rapsim::core
