// 4-D address mappings — Section VII of the paper.
//
// A 4-D array A of size w x w x w x w stores element (i, j, k, l) at
// logical address i*w^3 + j*w^2 + k*w + l; under RAW it sits in bank
// l mod w. Every extension of RAP rotates the innermost coordinate by a
// shift function f(i, j, k):
//
//   (i, j, k, l)  ->  (i, j, k, (l + f(i, j, k)) mod w)
//
// with the variants (p, q, s uniform random permutations of {0..w-1};
// r_* independent uniform words):
//
//   RAS       f = r_{i*w^2 + j*w + k}      (w^3 random words)
//   1P        f = p[k]                     (w words)
//   R1P       f = p[i] + p[j] + p[k]       (w words)
//   3P        f = p[i] + q[j] + s[k]       (3w words)
//   w^2 P     f = sigma_{i*w + j}[k]       (w^3 words: w^2 permutations)
//   1P+w^2 R  f = r_{i*w + j} + p[k]       (w + w^2 words)
//
// Table IV of the paper compares the congestion of these variants under
// contiguous, three stride directions, random, and malicious access; the
// R1P variant admits a structured adversary (index-permutation groups with
// equal f) that the paper uses to argue for 3P as the best extension.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "core/permutation.hpp"
#include "util/rng.hpp"

namespace rapsim::core {

/// 4-D index (i, j, k, l), each coordinate in [0, w).
struct Index4d {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::uint32_t k = 0;
  std::uint32_t l = 0;

  [[nodiscard]] bool operator==(const Index4d&) const = default;
};

/// Base for all 4-D mappings: fixes the geometry and expresses
/// translate() through the shift function, so every subclass is a
/// bijection by construction (the row i*w^3 + j*w^2 + k*w is preserved;
/// only l rotates).
class Tensor4dMap : public AddressMap {
 public:
  explicit Tensor4dMap(std::uint32_t width)
      : AddressMap(width, static_cast<std::uint64_t>(width) * width * width *
                              width) {}

  /// Shift applied to the innermost coordinate of cell (i, j, k, *).
  [[nodiscard]] virtual std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                            std::uint32_t k) const noexcept = 0;

  [[nodiscard]] std::uint64_t index(const Index4d& c) const noexcept {
    const std::uint64_t w = width();
    return ((static_cast<std::uint64_t>(c.i) * w + c.j) * w + c.k) * w + c.l;
  }

  [[nodiscard]] Index4d decompose(std::uint64_t logical) const noexcept {
    const std::uint64_t w = width();
    Index4d c;
    c.l = static_cast<std::uint32_t>(logical % w);
    logical /= w;
    c.k = static_cast<std::uint32_t>(logical % w);
    logical /= w;
    c.j = static_cast<std::uint32_t>(logical % w);
    c.i = static_cast<std::uint32_t>(logical / w);
    return c;
  }

  [[nodiscard]] std::uint64_t translate(std::uint64_t logical) const final {
    const Index4d c = decompose(logical);
    const std::uint64_t base = logical - c.l;
    return base + (c.l + shift(c.i, c.j, c.k)) % width();
  }
};

/// RAW for 4-D arrays: no rotation.
class Raw4dMap final : public Tensor4dMap {
 public:
  explicit Raw4dMap(std::uint32_t width) : Tensor4dMap(width) {}
  [[nodiscard]] std::uint32_t shift(std::uint32_t, std::uint32_t,
                                    std::uint32_t) const noexcept override {
    return 0;
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRaw; }
  [[nodiscard]] std::string name() const override { return "RAW"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return 0;
  }
};

/// RAS for 4-D arrays: an independent random offset for each of the w^3
/// rows (i, j, k).
class Ras4dMap final : public Tensor4dMap {
 public:
  Ras4dMap(std::uint32_t width, util::Pcg32& rng);
  [[nodiscard]] std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept override {
    const std::uint64_t w = width();
    return offsets_[(static_cast<std::uint64_t>(i) * w + j) * w + k];
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRas; }
  [[nodiscard]] std::string name() const override { return "RAS"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return offsets_.size();
  }

 private:
  std::vector<std::uint32_t> offsets_;
};

/// 1P: one permutation, shift depends on k only. Stride over k is
/// conflict-free, but strides over i or j keep the whole warp in one bank.
class OnePermMap final : public Tensor4dMap {
 public:
  OnePermMap(std::uint32_t width, util::Pcg32& rng)
      : Tensor4dMap(width), p_(Permutation::random(width, rng)) {}
  OnePermMap(std::uint32_t width, Permutation p);

  [[nodiscard]] std::uint32_t shift(std::uint32_t, std::uint32_t,
                                    std::uint32_t k) const noexcept override {
    return p_[k];
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRap1P;
  }
  [[nodiscard]] std::string name() const override { return "1P"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return width();
  }

 private:
  Permutation p_;
};

/// R1P: repeated one permutation, f = p[i] + p[j] + p[k]. All three stride
/// directions are conflict-free, but index-permutation groups (i,j,k) vs
/// (j,i,k) etc. share f deterministically — the paper's malicious input.
class RepeatedOnePermMap final : public Tensor4dMap {
 public:
  RepeatedOnePermMap(std::uint32_t width, util::Pcg32& rng)
      : Tensor4dMap(width), p_(Permutation::random(width, rng)) {}
  RepeatedOnePermMap(std::uint32_t width, Permutation p);

  [[nodiscard]] std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept override {
    return (p_[i] + p_[j] + p_[k]) % width();
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRapR1P;
  }
  [[nodiscard]] std::string name() const override { return "R1P"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return width();
  }

 private:
  Permutation p_;
};

/// 3P: three independent permutations, f = p[i] + q[j] + s[k]. The paper's
/// recommended extension: all strides conflict-free and no structured
/// adversary beyond the generic O(log w / log log w) bound.
class ThreePermMap final : public Tensor4dMap {
 public:
  ThreePermMap(std::uint32_t width, util::Pcg32& rng)
      : Tensor4dMap(width),
        p_(Permutation::random(width, rng)),
        q_(Permutation::random(width, rng)),
        s_(Permutation::random(width, rng)) {}
  ThreePermMap(std::uint32_t width, Permutation p, Permutation q,
               Permutation s);

  [[nodiscard]] std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept override {
    return (p_[i] + q_[j] + s_[k]) % width();
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRap3P;
  }
  [[nodiscard]] std::string name() const override { return "3P"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return 3ull * width();
  }

 private:
  Permutation p_, q_, s_;
};

/// w^2 P: an independent permutation sigma_{i*w+j} per (i, j) plane,
/// f = sigma_{i*w+j}[k]. Stride over k conflict-free; strides over i/j
/// behave like balls-in-bins; costs w^3 random words.
class WSquaredPermMap final : public Tensor4dMap {
 public:
  WSquaredPermMap(std::uint32_t width, util::Pcg32& rng);

  [[nodiscard]] std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept override {
    return perms_[static_cast<std::size_t>(i) * width() + j][k];
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRapW2P;
  }
  [[nodiscard]] std::string name() const override { return "w2P"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return static_cast<std::uint64_t>(width()) * width() * width();
  }

 private:
  std::vector<Permutation> perms_;
};

/// 1P + w^2 R: one permutation over k plus an independent random offset per
/// (i, j) plane: f = r_{i*w+j} + p[k]. Stride over k conflict-free; i/j
/// strides balls-in-bins; costs w + w^2 random words.
class OnePermW2RandMap final : public Tensor4dMap {
 public:
  OnePermW2RandMap(std::uint32_t width, util::Pcg32& rng);

  [[nodiscard]] std::uint32_t shift(std::uint32_t i, std::uint32_t j,
                                    std::uint32_t k) const noexcept override {
    return (offsets_[static_cast<std::size_t>(i) * width() + j] + p_[k]) %
           width();
  }
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kRap1PW2R;
  }
  [[nodiscard]] std::string name() const override { return "1P+w2R"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return static_cast<std::uint64_t>(width()) +
           static_cast<std::uint64_t>(width()) * width();
  }

 private:
  Permutation p_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace rapsim::core
