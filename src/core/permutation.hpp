// Random permutations — the randomness source of the RAP technique.
//
// The paper draws a permutation p of {0..w-1} uniformly from all w!
// permutations; element (i, j) of a w x w matrix is then stored at column
// (j + p_i) mod w. This file provides the Permutation value type with
// uniform sampling (Fisher-Yates), inversion, composition, and validation.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rapsim::core {

/// A permutation of {0, 1, ..., n-1}, stored as the image vector:
/// value `perm[i]` is where i maps to. Immutable after construction.
class Permutation {
 public:
  /// The identity permutation of size n.
  static Permutation identity(std::size_t n);

  /// Uniformly random permutation of size n (Fisher-Yates with an unbiased
  /// bounded sampler, so all n! outcomes are equally likely).
  static Permutation random(std::size_t n, util::Pcg32& rng);

  /// Build from an explicit image vector; throws std::invalid_argument if
  /// the vector is not a permutation of {0..n-1}.
  explicit Permutation(std::vector<std::uint32_t> image);
  Permutation(std::initializer_list<std::uint32_t> image);

  [[nodiscard]] std::size_t size() const noexcept { return image_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const noexcept {
    return image_[i];
  }
  [[nodiscard]] std::span<const std::uint32_t> image() const noexcept {
    return image_;
  }

  /// The inverse permutation q with q[p[i]] == i.
  [[nodiscard]] Permutation inverse() const;

  /// Composition (*this ∘ other): result[i] = (*this)[other[i]].
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  /// True if `image` is a valid permutation of {0..image.size()-1}.
  [[nodiscard]] static bool is_valid_image(
      std::span<const std::uint32_t> image);

  [[nodiscard]] bool operator==(const Permutation& other) const = default;

  /// "(2 0 3 1)"-style rendering for traces and figure demos.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint32_t> image_;
};

}  // namespace rapsim::core
