// Seeded factories for address mappings.
//
// Monte-Carlo experiments draw thousands of fresh mappings; these helpers
// centralize "scheme + width + seed -> mapping" so every bench and test
// constructs them identically (and reproducibly).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mapping2d.hpp"
#include "core/mapping4d.hpp"

namespace rapsim::core {

/// 2-D matrix mapping of `rows` x width for scheme kRaw / kRas / kRap.
[[nodiscard]] std::unique_ptr<MatrixMap> make_matrix_map(Scheme scheme,
                                                         std::uint32_t width,
                                                         std::uint64_t rows,
                                                         std::uint64_t seed);

/// 4-D w^4 tensor mapping for any Scheme (kRaw, kRas and the five RAP
/// extensions).
[[nodiscard]] std::unique_ptr<Tensor4dMap> make_tensor4d_map(
    Scheme scheme, std::uint32_t width, std::uint64_t seed);

/// The 2-D schemes in the order of the paper's Tables I-III.
[[nodiscard]] const std::vector<Scheme>& table2_schemes();

/// The 4-D schemes in the order of the paper's Table IV columns.
[[nodiscard]] const std::vector<Scheme>& table4_schemes();

}  // namespace rapsim::core
