#include "core/mappingnd.hpp"

#include <stdexcept>

namespace rapsim::core {

namespace {

std::uint64_t pow_u64(std::uint32_t base, std::uint32_t exp) {
  std::uint64_t result = 1;
  for (std::uint32_t e = 0; e < exp; ++e) {
    if (result > UINT64_MAX / base) {
      throw std::invalid_argument("NdMap: w^d overflows 64 bits");
    }
    result *= base;
  }
  return result;
}

}  // namespace

NdMap::NdMap(std::uint32_t width, std::uint32_t dims)
    : AddressMap(width, pow_u64(width, dims)), dims_(dims) {
  if (dims < 2) throw std::invalid_argument("NdMap: dims must be >= 2");
}

std::uint64_t NdMap::index(std::span<const std::uint32_t> coords) const {
  if (coords.size() != dims_) {
    throw std::invalid_argument("NdMap::index: wrong coordinate count");
  }
  std::uint64_t addr = 0;
  for (const std::uint32_t c : coords) {
    if (c >= width()) throw std::out_of_range("NdMap::index: coordinate");
    addr = addr * width() + c;
  }
  return addr;
}

std::vector<std::uint32_t> NdMap::outer_of(std::uint64_t logical) const {
  std::vector<std::uint32_t> outer(dims_ - 1);
  logical /= width();  // drop the innermost coordinate
  for (std::uint32_t k = dims_ - 1; k-- > 0;) {
    outer[k] = static_cast<std::uint32_t>(logical % width());
    logical /= width();
  }
  return outer;
}

std::uint64_t NdMap::translate(std::uint64_t logical) const {
  const std::uint64_t inner = logical % width();
  const std::uint64_t base = logical - inner;
  const auto outer = outer_of(logical);
  return base + (inner + shift(outer)) % width();
}

std::string RawNdMap::name() const {
  return "RAW-" + std::to_string(dims()) + "d";
}

MultiPermNdMap::MultiPermNdMap(std::uint32_t width, std::uint32_t dims,
                               util::Pcg32& rng)
    : NdMap(width, dims) {
  perms_.reserve(dims - 1);
  for (std::uint32_t k = 0; k + 1 < dims; ++k) {
    perms_.push_back(Permutation::random(width, rng));
  }
}

MultiPermNdMap::MultiPermNdMap(std::uint32_t width,
                               std::vector<Permutation> perms)
    : NdMap(width, static_cast<std::uint32_t>(perms.size() + 1)),
      perms_(std::move(perms)) {
  for (const auto& p : perms_) {
    if (p.size() != width) {
      throw std::invalid_argument("MultiPermNdMap: permutation size != width");
    }
  }
}

std::string MultiPermNdMap::name() const {
  return std::to_string(dims() - 1) + "P-" + std::to_string(dims()) + "d";
}

}  // namespace rapsim::core
