// Analytical companions to Theorem 2 and Lemma 4.
//
// The paper bounds the expected congestion of any warp access under RAP by
// O(log w / log log w), via:
//   * Lemma 4:   a half-warp's load on one fixed bank exceeds
//                3 ln w / ln ln w with probability at most 1/w^2
//                (Chernoff bound with mu <= 1, delta+1 = 3 ln w / ln ln w);
//   * union bound over w banks: P[half-warp congestion > T] <= 1/w;
//   * E[C_half] <= T + (1/w) * (w/2)  and a warp is at most the sum of its
//     two half-warps.
//
// This file evaluates those quantities so tests and benches can check the
// measured congestion against the proof's actual envelope rather than an
// eyeballed constant. It also provides the balls-in-bins expected maximum
// load (the distribution governing random access and RAS stride access in
// Table II) both by Monte Carlo and by the exact O(n * m)-state dynamic
// program for small sizes.

#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace rapsim::core {

/// Chernoff upper tail for a sum of independent Poisson trials with mean
/// mu: P[X >= (1+delta) mu] <= (e^delta / (1+delta)^(1+delta))^mu.
[[nodiscard]] double chernoff_upper_tail(double mu, double delta);

/// Lemma 4's threshold T(w) = 3 ln w / ln ln w (the proof's exceedance
/// point for a half-warp on one bank). Defined for w >= 3; monotone in w.
[[nodiscard]] double lemma4_threshold(std::uint32_t width);

/// Lemma 4's tail guarantee: P[half-warp load on a fixed bank >= T(w)]
/// <= 1/w^2, evaluated from the Chernoff bound with mu = 1. Returns the
/// Chernoff value (which the lemma proves is <= 1/w^2 for large w).
[[nodiscard]] double lemma4_tail_bound(std::uint32_t width);

/// Theorem 2's expectation envelope for a full warp:
/// E[C] <= 2 * (T(w) + 1/2) = 6 ln w / ln ln w + 1 — two half-warps, each
/// with E <= T(w) + (1/w)(w/2).
[[nodiscard]] double theorem2_expectation_bound(std::uint32_t width);

/// Expectation envelope for at most `width` balls thrown i.i.d. uniformly
/// into `width` bins (the RAS stride case: distinct rows draw independent
/// offsets): per-bin mean <= 1, so Lemma 4's Chernoff tail gives
/// P[bin >= T(w)] <= 1/w^2, the union bound over w bins gives 1/w, and
/// E[max] <= T(w) + (1/w) * w = 3 ln w / ln ln w + 1. Tighter than the
/// Theorem 2 envelope (one half-warp argument instead of two); the static
/// analyzer's `ras-balls-in-bins` certificates cite this bound.
[[nodiscard]] double balls_in_bins_expectation_bound(std::uint32_t width);

/// Expected maximum bank load when `balls` unique requests land uniformly
/// and independently in `bins` banks (Monte Carlo over `trials` draws).
/// This governs: random access (all three schemes), RAS stride access and
/// RAS/RAP diagonal access in Table II.
[[nodiscard]] double expected_max_load_mc(std::uint32_t balls,
                                          std::uint32_t bins,
                                          std::uint32_t trials,
                                          std::uint64_t seed);

/// Exact expected maximum load for small cases (balls, bins <= 16) by
/// enumerating the multinomial distribution over bin loads. Used to
/// validate the Monte Carlo estimator in tests.
[[nodiscard]] double expected_max_load_exact(std::uint32_t balls,
                                             std::uint32_t bins);

/// Gonnet's asymptotic for the expected maximum load of n balls in n
/// bins: Gamma^{-1}(n) - 3/2 ~ ln n / ln ln n * (1 + o(1)) (Gonnet 1981).
/// A closed-form companion to the Monte-Carlo estimate — accurate to a
/// few percent already at n = 16; used by the theory bench to show the
/// Table II Random row follows the known law.
[[nodiscard]] double gonnet_expected_max_load(std::uint32_t n);

}  // namespace rapsim::core
