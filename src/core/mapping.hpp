// Address-mapping interface.
//
// A mapping ("implementation" in the paper's wording: RAW, RAS, RAP, ...)
// is a bijection from logical addresses 0..size-1 to physical addresses
// 0..size-1 of a banked memory of width w; the physical address determines
// the bank (addr mod w). Everything downstream — the congestion simulator,
// the DMM machine, the transpose algorithms — speaks to this interface, so
// a new scheme plugs in by implementing translate().

#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace rapsim::core {

/// Which implementation family a mapping belongs to. The GPU timing model
/// uses this to charge the per-access address-computation overhead, and the
/// adversary generators use it to pick the matching structured attack.
enum class Scheme {
  kRaw,          // direct (identity) addressing
  kRas,          // random address shift: independent offset per row
  kRap,          // random address permute-shift: one permutation
  kRap1P,        // 4-D: one permutation, f = p[k]
  kRapR1P,       // 4-D: repeated one permutation, f = p[i]+p[j]+p[k]
  kRap3P,        // 4-D: three permutations, f = p[i]+q[j]+s[k]
  kRapW2P,       // 4-D: w^2 permutations, f = sigma_{i*w+j}[k]
  kRap1PW2R,     // 4-D: one permutation + w^2 random offsets
  kPad,          // deterministic +1 padding (the CUDA folklore baseline)
  kSynth,        // synthesized permute-shift tables (analyze/synth.hpp)
};

[[nodiscard]] const char* scheme_name(Scheme scheme) noexcept;

/// Bijective logical->physical address translation over a banked memory.
class AddressMap {
 public:
  AddressMap(std::uint32_t width, std::uint64_t size)
      : width_(width), size_(size) {}
  virtual ~AddressMap() = default;

  AddressMap(const AddressMap&) = delete;
  AddressMap& operator=(const AddressMap&) = delete;

  /// Physical address of a logical address; must be a bijection on
  /// [0, size()).
  [[nodiscard]] virtual std::uint64_t translate(
      std::uint64_t logical) const = 0;

  /// Bank holding the logical address (physical address mod width).
  [[nodiscard]] std::uint32_t bank_of(std::uint64_t logical) const {
    return static_cast<std::uint32_t>(translate(logical) % width_);
  }

  /// Number of memory banks / threads per warp (the paper's w).
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

  /// Number of addressable words.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] virtual Scheme scheme() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// How many random words (the paper's "used random numbers") the scheme
  /// consumes; the RAW implementation uses none.
  [[nodiscard]] virtual std::uint64_t random_words() const noexcept = 0;

 private:
  std::uint32_t width_;
  std::uint64_t size_;
};

}  // namespace rapsim::core
