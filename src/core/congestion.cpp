#include "core/congestion.hpp"

#include <algorithm>

namespace rapsim::core {

namespace {

/// Sorted, deduplicated copy of `addresses` (CRCW merge).
std::vector<std::uint64_t> merged(std::span<const std::uint64_t> addresses) {
  std::vector<std::uint64_t> unique(addresses.begin(), addresses.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return unique;
}

}  // namespace

CongestionResult congestion_of_physical(
    std::span<const std::uint64_t> physical, std::uint32_t width) {
  CongestionResult result;
  result.per_bank.assign(width, 0);
  const auto unique = merged(physical);
  result.unique_requests = static_cast<std::uint32_t>(unique.size());
  for (const std::uint64_t addr : unique) {
    const auto bank = static_cast<std::size_t>(addr % width);
    result.congestion = std::max(result.congestion, ++result.per_bank[bank]);
  }
  return result;
}

CongestionResult congestion_of_logical(std::span<const std::uint64_t> logical,
                                       const AddressMap& map) {
  std::vector<std::uint64_t> physical;
  physical.reserve(logical.size());
  for (const std::uint64_t addr : logical) {
    physical.push_back(map.translate(addr));
  }
  return congestion_of_physical(physical, map.width());
}

std::uint32_t congestion_value(std::span<const std::uint64_t> logical,
                               const AddressMap& map) {
  return congestion_of_logical(logical, map).congestion;
}

}  // namespace rapsim::core
