// Memory-access congestion (the paper's central metric).
//
// The congestion of one warp access is the maximum, over banks, of the
// number of *unique* addresses the warp sends to that bank. Duplicate
// addresses merge into one request (the DMM is CRCW with arbitrary write
// resolution), so w threads reading the same cell have congestion 1
// (Figure 2(3)), while w threads reading w distinct cells of one bank have
// congestion w (Figure 2(2)).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/mapping.hpp"

namespace rapsim::core {

/// Per-bank unique-request counts plus the maximum (the congestion).
struct CongestionResult {
  std::uint32_t congestion = 0;          // max over banks
  std::vector<std::uint32_t> per_bank;   // unique requests per bank
  std::uint32_t unique_requests = 0;     // after CRCW merging
};

/// Congestion of a warp issuing `physical` addresses to a memory of
/// `width` banks. Duplicate addresses are merged first.
[[nodiscard]] CongestionResult congestion_of_physical(
    std::span<const std::uint64_t> physical, std::uint32_t width);

/// Congestion of a warp issuing `logical` addresses through `map`.
[[nodiscard]] CongestionResult congestion_of_logical(
    std::span<const std::uint64_t> logical, const AddressMap& map);

/// Just the max value (cheaper call for Monte-Carlo inner loops).
[[nodiscard]] std::uint32_t congestion_value(
    std::span<const std::uint64_t> logical, const AddressMap& map);

}  // namespace rapsim::core
