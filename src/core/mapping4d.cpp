#include "core/mapping4d.hpp"

#include <stdexcept>

namespace rapsim::core {

Ras4dMap::Ras4dMap(std::uint32_t width, util::Pcg32& rng)
    : Tensor4dMap(width) {
  const std::uint64_t rows =
      static_cast<std::uint64_t>(width) * width * width;
  offsets_.reserve(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    offsets_.push_back(rng.bounded(width));
  }
}

OnePermMap::OnePermMap(std::uint32_t width, Permutation p)
    : Tensor4dMap(width), p_(std::move(p)) {
  if (p_.size() != width) {
    throw std::invalid_argument("OnePermMap: permutation size != width");
  }
}

RepeatedOnePermMap::RepeatedOnePermMap(std::uint32_t width, Permutation p)
    : Tensor4dMap(width), p_(std::move(p)) {
  if (p_.size() != width) {
    throw std::invalid_argument("RepeatedOnePermMap: permutation size != width");
  }
}

ThreePermMap::ThreePermMap(std::uint32_t width, Permutation p, Permutation q,
                           Permutation s)
    : Tensor4dMap(width), p_(std::move(p)), q_(std::move(q)), s_(std::move(s)) {
  if (p_.size() != width || q_.size() != width || s_.size() != width) {
    throw std::invalid_argument("ThreePermMap: permutation size != width");
  }
}

WSquaredPermMap::WSquaredPermMap(std::uint32_t width, util::Pcg32& rng)
    : Tensor4dMap(width) {
  const std::size_t planes = static_cast<std::size_t>(width) * width;
  perms_.reserve(planes);
  for (std::size_t p = 0; p < planes; ++p) {
    perms_.push_back(Permutation::random(width, rng));
  }
}

OnePermW2RandMap::OnePermW2RandMap(std::uint32_t width, util::Pcg32& rng)
    : Tensor4dMap(width), p_(Permutation::random(width, rng)) {
  const std::size_t planes = static_cast<std::size_t>(width) * width;
  offsets_.reserve(planes);
  for (std::size_t r = 0; r < planes; ++r) {
    offsets_.push_back(rng.bounded(width));
  }
}

}  // namespace rapsim::core
