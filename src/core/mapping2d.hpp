// 2-D (matrix) address mappings: RAW, RAS, RAP.
//
// A matrix of `rows` rows and w columns is stored row-major: element (i, j)
// has logical address i*w + j, so in the RAW implementation it sits in bank
// (i*w + j) mod w = j mod w. The randomized schemes rotate each row:
//
//   RAW:  (i, j) -> i*w + j                      (0 random words)
//   RAS:  (i, j) -> i*w + (j + r_i) mod w        (rows independent words)
//   RAP:  (i, j) -> i*w + (j + p_{i mod w}) mod w   (w words, one permutation)
//
// RAS draws each r_i independently and uniformly from [0, w); stride
// (column) access then behaves like balls-in-bins. RAP instead uses a
// single uniformly random permutation p — the rotations of any w
// consecutive rows are *distinct*, which is exactly why stride access has
// congestion 1 (Theorem 2's deterministic part). For matrices taller than
// w rows, RAP reuses p cyclically (row i shifts by p[i mod w]); every
// aligned group of w consecutive rows keeps the distinct-shift property.

#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "core/permutation.hpp"
#include "util/rng.hpp"

namespace rapsim::core {

/// Row-major matrix geometry shared by the 2-D mappings.
class MatrixMap : public AddressMap {
 public:
  MatrixMap(std::uint32_t width, std::uint64_t rows)
      : AddressMap(width, rows * width), rows_(rows) {}

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

  /// Logical address of element (i, j).
  [[nodiscard]] std::uint64_t index(std::uint64_t i,
                                    std::uint64_t j) const noexcept {
    return i * width() + j;
  }

  /// Column rotation applied to row i (0 for RAW).
  [[nodiscard]] virtual std::uint32_t shift_of_row(
      std::uint64_t i) const noexcept = 0;

  // Physical address: the row is preserved; only the column rotates. This
  // single definition makes every subclass a bijection by construction.
  [[nodiscard]] std::uint64_t translate(std::uint64_t logical) const final {
    const std::uint64_t i = logical / width();
    const std::uint64_t j = logical % width();
    return i * width() + (j + shift_of_row(i)) % width();
  }

 private:
  std::uint64_t rows_;
};

/// RAW: direct addressing (the conventional CUDA layout).
class RawMap final : public MatrixMap {
 public:
  RawMap(std::uint32_t width, std::uint64_t rows) : MatrixMap(width, rows) {}

  [[nodiscard]] std::uint32_t shift_of_row(std::uint64_t) const noexcept override {
    return 0;
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRaw; }
  [[nodiscard]] std::string name() const override { return "RAW"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return 0;
  }
};

/// RAS: random address shift — one independent uniform offset per row
/// (Nakano/Matsumae/Ito, CANDAR 2013). Contiguous access stays
/// conflict-free; stride access collides like balls-in-bins.
class RasMap final : public MatrixMap {
 public:
  RasMap(std::uint32_t width, std::uint64_t rows, util::Pcg32& rng);

  /// Construct from explicit offsets (tests / worked examples).
  RasMap(std::uint32_t width, std::vector<std::uint32_t> offsets);

  [[nodiscard]] std::uint32_t shift_of_row(std::uint64_t i) const noexcept override {
    return offsets_[i];
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRas; }
  [[nodiscard]] std::string name() const override { return "RAS"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return offsets_.size();
  }

 private:
  std::vector<std::uint32_t> offsets_;
};

/// PAD: the deterministic "+1 padding" folklore baseline (declaring
/// `__shared__ double a[w][w+1]`), modeled bank-exactly as the skewed
/// layout bank(i, j) = (i + j) mod w — i.e. a row rotation by i mod w.
/// Contiguous and stride are conflict-free like RAP, with zero random
/// words, but the skew is PUBLIC and FIXED: an adversary (or an unlucky
/// access pattern, e.g. anti-diagonals) can put a whole warp in one bank,
/// and the real layout also burns `rows` words of shared memory. The
/// ablation bench quantifies this trade against RAP.
class PadMap final : public MatrixMap {
 public:
  PadMap(std::uint32_t width, std::uint64_t rows) : MatrixMap(width, rows) {}

  [[nodiscard]] std::uint32_t shift_of_row(std::uint64_t i) const noexcept override {
    return static_cast<std::uint32_t>(i % width());
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kPad; }
  [[nodiscard]] std::string name() const override { return "PAD"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return 0;
  }
};

/// RAP: random address permute-shift — this paper's contribution. One
/// permutation p of {0..w-1}; row i rotates by p[i mod w]. Stride and
/// contiguous accesses are both conflict-free; arbitrary accesses have
/// expected congestion O(log w / log log w) (Theorem 2).
class RapMap final : public MatrixMap {
 public:
  RapMap(std::uint32_t width, std::uint64_t rows, util::Pcg32& rng)
      : MatrixMap(width, rows), perm_(Permutation::random(width, rng)) {}

  /// Construct from an explicit permutation (tests / Figure 6 demo).
  RapMap(std::uint32_t width, std::uint64_t rows, Permutation perm);

  [[nodiscard]] std::uint32_t shift_of_row(std::uint64_t i) const noexcept override {
    return perm_[static_cast<std::size_t>(i % width())];
  }
  [[nodiscard]] const Permutation& permutation() const noexcept {
    return perm_;
  }
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kRap; }
  [[nodiscard]] std::string name() const override { return "RAP"; }
  [[nodiscard]] std::uint64_t random_words() const noexcept override {
    return width();
  }

 private:
  Permutation perm_;
};

}  // namespace rapsim::core
