#include "core/mapping.hpp"

namespace rapsim::core {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kRaw: return "RAW";
    case Scheme::kRas: return "RAS";
    case Scheme::kRap: return "RAP";
    case Scheme::kRap1P: return "1P";
    case Scheme::kRapR1P: return "R1P";
    case Scheme::kRap3P: return "3P";
    case Scheme::kRapW2P: return "w2P";
    case Scheme::kRap1PW2R: return "1P+w2R";
    case Scheme::kPad: return "PAD";
    case Scheme::kSynth: return "SYNTH";
  }
  return "?";
}

}  // namespace rapsim::core
