#include "dmm/machine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "analyze/sanitizer.hpp"
#include "hier/scheduler.hpp"
#include "telemetry/run_telemetry.hpp"

namespace rapsim::dmm {

void Kernel::push(Instruction instr, std::string label) {
  if (instr.size() != num_threads) {
    throw std::invalid_argument(
        "Kernel::push: instruction must have one ThreadOp per thread");
  }
  instructions.push_back(std::move(instr));
  labels.push_back(std::move(label));
}

void Kernel::push_barrier() {
  instructions.emplace_back(num_threads, ThreadOp::barrier());
  labels.emplace_back();
}

Dmm::Dmm(DmmConfig config, const core::AddressMap& map)
    : config_(config), map_(map), memory_(map.size(), 0) {
  config_.validate();
  if (config_.width != map.width()) {
    throw std::invalid_argument("Dmm: config width must match map width");
  }
}

std::uint64_t Dmm::load(std::uint64_t logical) const {
  return memory_.at(map_.translate(logical));
}

void Dmm::store(std::uint64_t logical, std::uint64_t value) {
  const std::uint64_t phys = map_.translate(logical);
  memory_.at(phys) = value;
  if (sanitizer_) sanitizer_->note_host_write(phys);
}

void Dmm::fill_identity() {
  for (std::uint64_t a = 0; a < memory_.size(); ++a) {
    const std::uint64_t phys = map_.translate(a);
    memory_[phys] = a;
    if (sanitizer_) sanitizer_->note_host_write(phys);
  }
}

void Dmm::set_sanitizer(analyze::ShmemSanitizer* sanitizer) {
  sanitizer_ = sanitizer;
  if (sanitizer_) sanitizer_->attach(config_.width, memory_.size());
}

namespace {

bool is_write(OpKind kind) {
  return kind == OpKind::kStore || kind == OpKind::kStoreImm;
}

bool is_read(OpKind kind) {
  return kind == OpKind::kLoad || kind == OpKind::kLoadAdd ||
         kind == OpKind::kLoadMulAdd;
}

}  // namespace

Dmm::WarpAccess Dmm::perform_warp_access(const Instruction& instr,
                                         std::uint32_t instr_idx,
                                         std::uint32_t warp_begin,
                                         std::uint32_t warp_end) {
  WarpAccess result;
  const std::uint32_t warp_id = warp_begin / config_.width;

  // SIMD check: a warp executes one instruction, so active ops must be of
  // one class — all reads, all writes, or all register ops (Section II:
  // "if one of them sends a memory read request, none of the others can
  // send memory write request").
  bool saw_read = false;
  bool saw_write = false;
  bool saw_atomic = false;
  bool saw_register = false;
  for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
    const ThreadOp& op = instr[t];
    if (op.kind == OpKind::kNone) continue;
    if (op.kind == OpKind::kBarrier) {
      throw std::logic_error(
          "Dmm: barrier instruction reached the access path (scheduler bug)");
    }
    if (op.kind == OpKind::kAtomicAdd) {
      saw_atomic = true;
    } else if (is_write(op.kind)) {
      saw_write = true;
    } else if (is_read(op.kind)) {
      saw_read = true;
    } else {
      saw_register = true;
    }
    if (op.reg >= kRegistersPerThread || op.reg2 >= kRegistersPerThread) {
      throw std::out_of_range("Dmm: register index out of range");
    }
    ++result.active_threads;
  }
  if (saw_read + saw_write + saw_atomic + saw_register > 1) {
    throw std::invalid_argument(
        "Dmm: a warp cannot mix reads, writes, atomics and register ops in "
        "one SIMD instruction");
  }
  if (result.active_threads == 0) return result;

  if (capture_) {
    // Report the logical (pre-mapping) stream: active-lane mask plus the
    // memory ops' addresses in ascending lane order.
    std::uint64_t lane_mask = 0;
    std::vector<std::uint64_t> logical;
    if (!saw_register) logical.reserve(result.active_threads);
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind == OpKind::kNone) continue;
      lane_mask |= std::uint64_t{1} << (t - warp_begin);
      if (!saw_register) logical.push_back(op.logical);
    }
    const CapturedOpClass cls = saw_atomic    ? CapturedOpClass::kAtomic
                                : saw_write   ? CapturedOpClass::kWrite
                                : saw_read    ? CapturedOpClass::kRead
                                              : CapturedOpClass::kRegister;
    capture_->on_warp_access(instr_idx, warp_id, cls, lane_mask, logical);
  }

  if (saw_atomic) {
    // Atomics: every request needs its own bank cycle — same-address
    // requests serialize instead of merging. The adds themselves commute,
    // so the data effect is order-independent.
    std::vector<std::uint32_t> per_bank(config_.width, 0);
    std::uint64_t rows_touched = 0;
    std::uint64_t prev_row = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind == OpKind::kNone) continue;
      const std::uint64_t phys = map_.translate(op.logical);
      if (phys >= memory_.size()) {
        if (sanitizer_) {
          // Record and skip the faulting lane so one run collects every
          // finding instead of dying on the first.
          sanitizer_->record_out_of_bounds(warp_id, t, instr_idx, op.logical,
                                           phys);
          continue;
        }
        throw std::out_of_range("Dmm: access beyond memory size");
      }
      if (sanitizer_) {
        // An atomic add reads the cell before writing it back.
        sanitizer_->check_read(warp_id, t, instr_idx, op.logical, phys,
                               /*atomic=*/true);
        sanitizer_->note_write(warp_id, t, instr_idx, op.logical, phys,
                               /*atomic=*/true);
      }
      memory_[phys] += registers_[static_cast<std::size_t>(t) *
                                      kRegistersPerThread +
                                  op.reg];
      ++result.unique_requests;
      if (telemetry_) {
        ++telemetry_->bank_requests[static_cast<std::size_t>(phys %
                                                             config_.width)];
      }
      if (config_.kind == MachineKind::kDmm) {
        const auto bank = static_cast<std::size_t>(phys % config_.width);
        result.congestion = std::max(result.congestion, ++per_bank[bank]);
      } else {
        const std::uint64_t row = phys / config_.width;
        if (row != prev_row) {
          ++rows_touched;
          prev_row = row;
        }
      }
    }
    if (config_.kind == MachineKind::kUmm) {
      // Conservative UMM accounting: serial atomics over the rows in
      // issue order (no row sorting — atomics are not broadcastable).
      result.congestion = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(rows_touched, result.active_threads));
    } else if (telemetry_) {
      for (std::size_t b = 0; b < per_bank.size(); ++b) {
        telemetry_->bank_peak[b] =
            std::max<std::uint64_t>(telemetry_->bank_peak[b], per_bank[b]);
      }
    }
    return result;
  }

  if (saw_register) {
    // Register-only instruction: executes without touching the memory
    // pipeline (congestion stays 0; arithmetic is free in this model).
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind != OpKind::kMinMax) continue;
      auto& lo = registers_[static_cast<std::size_t>(t) *
                                kRegistersPerThread + op.reg];
      auto& hi = registers_[static_cast<std::size_t>(t) *
                                kRegistersPerThread + op.reg2];
      if (lo > hi) std::swap(lo, hi);
    }
    return result;
  }

  // Translate, merge duplicates (CRCW), count per-bank unique requests.
  // The map preserves bank counts only through translate(); we group by
  // physical address.
  std::unordered_map<std::uint64_t, std::uint32_t> first_writer;
  std::vector<std::uint64_t> unique_addrs;
  unique_addrs.reserve(warp_end - warp_begin);
  for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
    const ThreadOp& op = instr[t];
    if (op.kind == OpKind::kNone) continue;
    const std::uint64_t phys = map_.translate(op.logical);
    if (phys >= memory_.size()) {
      if (sanitizer_) {
        sanitizer_->record_out_of_bounds(warp_id, t, instr_idx, op.logical,
                                         phys);
        continue;
      }
      throw std::out_of_range("Dmm: access beyond memory size");
    }
    const auto [it, inserted] = first_writer.emplace(phys, t);
    if (inserted) unique_addrs.push_back(phys);
    if (sanitizer_ && is_read(op.kind)) {
      sanitizer_->check_read(warp_id, t, instr_idx, op.logical, phys);
    }

    auto& reg =
        registers_[static_cast<std::size_t>(t) * kRegistersPerThread + op.reg];
    switch (op.kind) {
      case OpKind::kLoad:
        reg = memory_[phys];
        break;
      case OpKind::kLoadAdd:
        reg += memory_[phys];
        break;
      case OpKind::kLoadMulAdd:
        reg += registers_[static_cast<std::size_t>(t) * kRegistersPerThread +
                          op.reg2] *
               memory_[phys];
        break;
      case OpKind::kStore:
      case OpKind::kStoreImm:
        if (inserted) {
          // CRCW arbitrary write: the first (lowest-id) thread wins;
          // later writes to the same merged address are ignored.
          memory_[phys] =
              op.kind == OpKind::kStoreImm ? op.immediate : reg;
          if (sanitizer_) {
            sanitizer_->note_write(warp_id, t, instr_idx, op.logical, phys);
          }
        } else if (sanitizer_) {
          // The winner already stored; a losing lane carrying a DIFFERENT
          // value is a genuine CRCW write-write race.
          sanitizer_->check_write_conflict(
              warp_id, it->second, t, instr_idx, op.logical, phys,
              memory_[phys], op.kind == OpKind::kStoreImm ? op.immediate : reg);
        }
        break;
      case OpKind::kNone:
      case OpKind::kMinMax:
      case OpKind::kBarrier:
      case OpKind::kAtomicAdd:
        break;  // unreachable: filtered above / handled by the scheduler
    }
  }

  result.unique_requests = static_cast<std::uint32_t>(unique_addrs.size());
  if (telemetry_) {
    for (const std::uint64_t addr : unique_addrs) {
      ++telemetry_->bank_requests[static_cast<std::size_t>(addr %
                                                           config_.width)];
    }
  }
  if (config_.kind == MachineKind::kDmm) {
    // DMM: one pipeline slot carries at most one request per bank.
    std::vector<std::uint32_t> per_bank(config_.width, 0);
    for (const std::uint64_t addr : unique_addrs) {
      const auto bank = static_cast<std::size_t>(addr % config_.width);
      result.congestion = std::max(result.congestion, ++per_bank[bank]);
    }
    if (telemetry_) {
      for (std::size_t b = 0; b < per_bank.size(); ++b) {
        telemetry_->bank_peak[b] =
            std::max<std::uint64_t>(telemetry_->bank_peak[b], per_bank[b]);
      }
    }
  } else {
    // UMM: one pipeline slot broadcasts one memory row to all banks.
    std::sort(unique_addrs.begin(), unique_addrs.end());
    std::uint64_t prev_row = std::numeric_limits<std::uint64_t>::max();
    for (const std::uint64_t addr : unique_addrs) {
      const std::uint64_t row = addr / config_.width;
      if (row != prev_row) {
        ++result.congestion;
        prev_row = row;
      }
    }
  }
  return result;
}

void Dmm::begin_run(const Kernel& kernel) {
  registers_.assign(
      static_cast<std::size_t>(kernel.num_threads) * kRegistersPerThread, 0);
  if (telemetry_) telemetry_->reset(config_.width);
  if (sanitizer_) sanitizer_->begin_run(kernel.labels);
  if (capture_) {
    if (config_.width > 64) {
      // The capture lane mask is one 64-bit word; wider machines have no
      // real-hardware counterpart and no portable trace encoding.
      throw std::invalid_argument(
          "Dmm: access capture supports width <= 64 only");
    }
    capture_->begin_kernel(kernel.num_threads, config_.width, memory_.size());
  }
}

Dmm::WarpAccess Dmm::warp_access(const Kernel& kernel,
                                 std::uint32_t instr_idx,
                                 std::uint32_t warp) {
  const std::uint32_t begin = warp * config_.width;
  const std::uint32_t end =
      std::min(begin + config_.width, kernel.num_threads);
  return perform_warp_access(kernel.instructions[instr_idx], instr_idx, begin,
                             end);
}

void Dmm::finish_barrier(std::uint32_t instr_idx) {
  if (capture_) capture_->on_barrier(instr_idx);
  // The barrier orders all earlier accesses before all later ones:
  // advance the race-detection epoch.
  if (sanitizer_) sanitizer_->note_barrier();
}

// --- KernelWarpSource ------------------------------------------------------

KernelWarpSource::KernelWarpSource(Dmm& machine, const Kernel& kernel)
    : machine_(&machine),
      kernel_(&kernel),
      width_(machine.config().width),
      num_warps_((kernel.num_threads + machine.config().width - 1) /
                 machine.config().width),
      next_instr_(num_warps_, 0) {
  // Skip leading instructions in which a warp has nothing to do (no cost:
  // warps with no pending memory request are not dispatched).
  for (std::uint32_t warp = 0; warp < num_warps_; ++warp) advance_idle(warp);
}

bool KernelWarpSource::warp_has_active(std::uint32_t warp,
                                       std::size_t instr_idx) const {
  const Instruction& instr = kernel_->instructions[instr_idx];
  const std::uint32_t begin = warp * width_;
  const std::uint32_t end = std::min(begin + width_, kernel_->num_threads);
  for (std::uint32_t t = begin; t < end; ++t) {
    if (instr[t].kind != OpKind::kNone) return true;
  }
  return false;
}

void KernelWarpSource::advance_idle(std::uint32_t warp) {
  while (next_instr_[warp] < kernel_->instructions.size() &&
         !warp_has_active(warp, next_instr_[warp])) {
    ++next_instr_[warp];
  }
}

bool KernelWarpSource::done(std::uint32_t warp) const {
  return next_instr_[warp] >= kernel_->instructions.size();
}

bool KernelWarpSource::at_barrier(std::uint32_t warp) const {
  return next_instr_[warp] < kernel_->instructions.size() &&
         kernel_->instructions[next_instr_[warp]][warp * width_].kind ==
             OpKind::kBarrier;
}

std::size_t KernelWarpSource::pc(std::uint32_t warp) const {
  return next_instr_[warp];
}

hier::IssueResult KernelWarpSource::issue(std::uint32_t warp) {
  const Dmm::WarpAccess access = machine_->warp_access(
      *kernel_, static_cast<std::uint32_t>(next_instr_[warp]), warp);
  return {access.congestion, access.active_threads, access.unique_requests,
          0};
}

void KernelWarpSource::advance(std::uint32_t warp) {
  ++next_instr_[warp];
  advance_idle(warp);
}

// --- Dmm::run on the event core --------------------------------------------

namespace {

/// Trace + telemetry + barrier side effects of one Dmm::run.
class DmmRunHooks final : public hier::CoreHooks {
 public:
  DmmRunHooks(Dmm& machine, telemetry::RunTelemetry* telemetry, Trace* trace)
      : machine_(machine), telemetry_(telemetry), trace_(trace) {}

  void on_idle(std::uint64_t slots) override {
    if (telemetry_) telemetry_->pipeline_idle_slots += slots;
  }

  void on_dispatch(const hier::DispatchEvent& event) override {
    if (trace_) {
      trace_->dispatches.push_back({event.warp,
                                    static_cast<std::uint32_t>(event.pc),
                                    event.start, event.stages,
                                    event.completion, event.active_threads,
                                    event.unique_requests});
    }
    if (telemetry_) {
      telemetry_->congestion.add(event.stages);
      ++telemetry_->dispatches;
      telemetry_->total_slots += event.stages;
      // The warp was eligible from its ready slot; any gap to the
      // dispatch slot is scheduler queueing delay.
      telemetry_->warp_stall_slots += event.stall_slots;
    }
  }

  void on_barrier_release(std::size_t pc) override {
    machine_.finish_barrier(static_cast<std::uint32_t>(pc));
  }

 private:
  Dmm& machine_;
  telemetry::RunTelemetry* telemetry_;
  Trace* trace_;
};

}  // namespace

RunStats Dmm::run(const Kernel& kernel, Trace* trace) {
  if (kernel.num_threads == 0) return {};
  if (trace) trace->clear();
  begin_run(kernel);

  KernelWarpSource source(*this, kernel);
  hier::RoundRobinScheduler scheduler;
  scheduler.reset(source.num_warps());
  hier::EventCore core(source.num_warps(), config_.latency);
  DmmRunHooks hooks(*this, telemetry_, trace);
  const hier::DispatchTotals& totals = core.run(source, scheduler, &hooks);

  RunStats stats;
  stats.time = totals.last_completion;
  stats.total_stages = totals.total_stages;
  stats.dispatches = totals.dispatches;
  stats.max_congestion = totals.max_congestion;
  stats.avg_congestion = totals.avg_congestion();
  return stats;
}

}  // namespace rapsim::dmm
