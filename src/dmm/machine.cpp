#include "dmm/machine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "analyze/sanitizer.hpp"
#include "telemetry/run_telemetry.hpp"

namespace rapsim::dmm {

void Kernel::push(Instruction instr, std::string label) {
  if (instr.size() != num_threads) {
    throw std::invalid_argument(
        "Kernel::push: instruction must have one ThreadOp per thread");
  }
  instructions.push_back(std::move(instr));
  labels.push_back(std::move(label));
}

void Kernel::push_barrier() {
  instructions.emplace_back(num_threads, ThreadOp::barrier());
  labels.emplace_back();
}

Dmm::Dmm(DmmConfig config, const core::AddressMap& map)
    : config_(config), map_(map), memory_(map.size(), 0) {
  config_.validate();
  if (config_.width != map.width()) {
    throw std::invalid_argument("Dmm: config width must match map width");
  }
}

std::uint64_t Dmm::load(std::uint64_t logical) const {
  return memory_.at(map_.translate(logical));
}

void Dmm::store(std::uint64_t logical, std::uint64_t value) {
  const std::uint64_t phys = map_.translate(logical);
  memory_.at(phys) = value;
  if (sanitizer_) sanitizer_->note_host_write(phys);
}

void Dmm::fill_identity() {
  for (std::uint64_t a = 0; a < memory_.size(); ++a) {
    const std::uint64_t phys = map_.translate(a);
    memory_[phys] = a;
    if (sanitizer_) sanitizer_->note_host_write(phys);
  }
}

void Dmm::set_sanitizer(analyze::ShmemSanitizer* sanitizer) {
  sanitizer_ = sanitizer;
  if (sanitizer_) sanitizer_->attach(config_.width, memory_.size());
}

namespace {

bool is_write(OpKind kind) {
  return kind == OpKind::kStore || kind == OpKind::kStoreImm;
}

bool is_read(OpKind kind) {
  return kind == OpKind::kLoad || kind == OpKind::kLoadAdd ||
         kind == OpKind::kLoadMulAdd;
}

}  // namespace

Dmm::WarpAccess Dmm::perform_warp_access(const Instruction& instr,
                                         std::uint32_t instr_idx,
                                         std::uint32_t warp_begin,
                                         std::uint32_t warp_end) {
  WarpAccess result;
  const std::uint32_t warp_id = warp_begin / config_.width;

  // SIMD check: a warp executes one instruction, so active ops must be of
  // one class — all reads, all writes, or all register ops (Section II:
  // "if one of them sends a memory read request, none of the others can
  // send memory write request").
  bool saw_read = false;
  bool saw_write = false;
  bool saw_atomic = false;
  bool saw_register = false;
  for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
    const ThreadOp& op = instr[t];
    if (op.kind == OpKind::kNone) continue;
    if (op.kind == OpKind::kBarrier) {
      throw std::logic_error(
          "Dmm: barrier instruction reached the access path (scheduler bug)");
    }
    if (op.kind == OpKind::kAtomicAdd) {
      saw_atomic = true;
    } else if (is_write(op.kind)) {
      saw_write = true;
    } else if (is_read(op.kind)) {
      saw_read = true;
    } else {
      saw_register = true;
    }
    if (op.reg >= kRegistersPerThread || op.reg2 >= kRegistersPerThread) {
      throw std::out_of_range("Dmm: register index out of range");
    }
    ++result.active_threads;
  }
  if (saw_read + saw_write + saw_atomic + saw_register > 1) {
    throw std::invalid_argument(
        "Dmm: a warp cannot mix reads, writes, atomics and register ops in "
        "one SIMD instruction");
  }
  if (result.active_threads == 0) return result;

  if (capture_) {
    // Report the logical (pre-mapping) stream: active-lane mask plus the
    // memory ops' addresses in ascending lane order.
    std::uint64_t lane_mask = 0;
    std::vector<std::uint64_t> logical;
    if (!saw_register) logical.reserve(result.active_threads);
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind == OpKind::kNone) continue;
      lane_mask |= std::uint64_t{1} << (t - warp_begin);
      if (!saw_register) logical.push_back(op.logical);
    }
    const CapturedOpClass cls = saw_atomic    ? CapturedOpClass::kAtomic
                                : saw_write   ? CapturedOpClass::kWrite
                                : saw_read    ? CapturedOpClass::kRead
                                              : CapturedOpClass::kRegister;
    capture_->on_warp_access(instr_idx, warp_id, cls, lane_mask, logical);
  }

  if (saw_atomic) {
    // Atomics: every request needs its own bank cycle — same-address
    // requests serialize instead of merging. The adds themselves commute,
    // so the data effect is order-independent.
    std::vector<std::uint32_t> per_bank(config_.width, 0);
    std::uint64_t rows_touched = 0;
    std::uint64_t prev_row = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind == OpKind::kNone) continue;
      const std::uint64_t phys = map_.translate(op.logical);
      if (phys >= memory_.size()) {
        if (sanitizer_) {
          // Record and skip the faulting lane so one run collects every
          // finding instead of dying on the first.
          sanitizer_->record_out_of_bounds(warp_id, t, instr_idx, op.logical,
                                           phys);
          continue;
        }
        throw std::out_of_range("Dmm: access beyond memory size");
      }
      if (sanitizer_) {
        // An atomic add reads the cell before writing it back.
        sanitizer_->check_read(warp_id, t, instr_idx, op.logical, phys,
                               /*atomic=*/true);
        sanitizer_->note_write(warp_id, t, instr_idx, op.logical, phys,
                               /*atomic=*/true);
      }
      memory_[phys] += registers_[static_cast<std::size_t>(t) *
                                      kRegistersPerThread +
                                  op.reg];
      ++result.unique_requests;
      if (telemetry_) {
        ++telemetry_->bank_requests[static_cast<std::size_t>(phys %
                                                             config_.width)];
      }
      if (config_.kind == MachineKind::kDmm) {
        const auto bank = static_cast<std::size_t>(phys % config_.width);
        result.congestion = std::max(result.congestion, ++per_bank[bank]);
      } else {
        const std::uint64_t row = phys / config_.width;
        if (row != prev_row) {
          ++rows_touched;
          prev_row = row;
        }
      }
    }
    if (config_.kind == MachineKind::kUmm) {
      // Conservative UMM accounting: serial atomics over the rows in
      // issue order (no row sorting — atomics are not broadcastable).
      result.congestion = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(rows_touched, result.active_threads));
    } else if (telemetry_) {
      for (std::size_t b = 0; b < per_bank.size(); ++b) {
        telemetry_->bank_peak[b] =
            std::max<std::uint64_t>(telemetry_->bank_peak[b], per_bank[b]);
      }
    }
    return result;
  }

  if (saw_register) {
    // Register-only instruction: executes without touching the memory
    // pipeline (congestion stays 0; arithmetic is free in this model).
    for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
      const ThreadOp& op = instr[t];
      if (op.kind != OpKind::kMinMax) continue;
      auto& lo = registers_[static_cast<std::size_t>(t) *
                                kRegistersPerThread + op.reg];
      auto& hi = registers_[static_cast<std::size_t>(t) *
                                kRegistersPerThread + op.reg2];
      if (lo > hi) std::swap(lo, hi);
    }
    return result;
  }

  // Translate, merge duplicates (CRCW), count per-bank unique requests.
  // The map preserves bank counts only through translate(); we group by
  // physical address.
  std::unordered_map<std::uint64_t, std::uint32_t> first_writer;
  std::vector<std::uint64_t> unique_addrs;
  unique_addrs.reserve(warp_end - warp_begin);
  for (std::uint32_t t = warp_begin; t < warp_end; ++t) {
    const ThreadOp& op = instr[t];
    if (op.kind == OpKind::kNone) continue;
    const std::uint64_t phys = map_.translate(op.logical);
    if (phys >= memory_.size()) {
      if (sanitizer_) {
        sanitizer_->record_out_of_bounds(warp_id, t, instr_idx, op.logical,
                                         phys);
        continue;
      }
      throw std::out_of_range("Dmm: access beyond memory size");
    }
    const auto [it, inserted] = first_writer.emplace(phys, t);
    if (inserted) unique_addrs.push_back(phys);
    if (sanitizer_ && is_read(op.kind)) {
      sanitizer_->check_read(warp_id, t, instr_idx, op.logical, phys);
    }

    auto& reg =
        registers_[static_cast<std::size_t>(t) * kRegistersPerThread + op.reg];
    switch (op.kind) {
      case OpKind::kLoad:
        reg = memory_[phys];
        break;
      case OpKind::kLoadAdd:
        reg += memory_[phys];
        break;
      case OpKind::kLoadMulAdd:
        reg += registers_[static_cast<std::size_t>(t) * kRegistersPerThread +
                          op.reg2] *
               memory_[phys];
        break;
      case OpKind::kStore:
      case OpKind::kStoreImm:
        if (inserted) {
          // CRCW arbitrary write: the first (lowest-id) thread wins;
          // later writes to the same merged address are ignored.
          memory_[phys] =
              op.kind == OpKind::kStoreImm ? op.immediate : reg;
          if (sanitizer_) {
            sanitizer_->note_write(warp_id, t, instr_idx, op.logical, phys);
          }
        } else if (sanitizer_) {
          // The winner already stored; a losing lane carrying a DIFFERENT
          // value is a genuine CRCW write-write race.
          sanitizer_->check_write_conflict(
              warp_id, it->second, t, instr_idx, op.logical, phys,
              memory_[phys], op.kind == OpKind::kStoreImm ? op.immediate : reg);
        }
        break;
      case OpKind::kNone:
      case OpKind::kMinMax:
      case OpKind::kBarrier:
      case OpKind::kAtomicAdd:
        break;  // unreachable: filtered above / handled by the scheduler
    }
  }

  result.unique_requests = static_cast<std::uint32_t>(unique_addrs.size());
  if (telemetry_) {
    for (const std::uint64_t addr : unique_addrs) {
      ++telemetry_->bank_requests[static_cast<std::size_t>(addr %
                                                           config_.width)];
    }
  }
  if (config_.kind == MachineKind::kDmm) {
    // DMM: one pipeline slot carries at most one request per bank.
    std::vector<std::uint32_t> per_bank(config_.width, 0);
    for (const std::uint64_t addr : unique_addrs) {
      const auto bank = static_cast<std::size_t>(addr % config_.width);
      result.congestion = std::max(result.congestion, ++per_bank[bank]);
    }
    if (telemetry_) {
      for (std::size_t b = 0; b < per_bank.size(); ++b) {
        telemetry_->bank_peak[b] =
            std::max<std::uint64_t>(telemetry_->bank_peak[b], per_bank[b]);
      }
    }
  } else {
    // UMM: one pipeline slot broadcasts one memory row to all banks.
    std::sort(unique_addrs.begin(), unique_addrs.end());
    std::uint64_t prev_row = std::numeric_limits<std::uint64_t>::max();
    for (const std::uint64_t addr : unique_addrs) {
      const std::uint64_t row = addr / config_.width;
      if (row != prev_row) {
        ++result.congestion;
        prev_row = row;
      }
    }
  }
  return result;
}

RunStats Dmm::run(const Kernel& kernel, Trace* trace) {
  if (kernel.num_threads == 0) return {};
  registers_.assign(
      static_cast<std::size_t>(kernel.num_threads) * kRegistersPerThread, 0);
  if (trace) trace->clear();
  if (telemetry_) telemetry_->reset(config_.width);
  if (sanitizer_) sanitizer_->begin_run(kernel.labels);
  if (capture_) {
    if (config_.width > 64) {
      // The capture lane mask is one 64-bit word; wider machines have no
      // real-hardware counterpart and no portable trace encoding.
      throw std::invalid_argument(
          "Dmm: access capture supports width <= 64 only");
    }
    capture_->begin_kernel(kernel.num_threads, config_.width, memory_.size());
  }

  const std::uint32_t w = config_.width;
  const std::uint32_t num_warps = (kernel.num_threads + w - 1) / w;
  const std::size_t num_instr = kernel.instructions.size();

  const auto warp_has_active = [&](std::uint32_t warp, std::size_t instr_idx) {
    const Instruction& instr = kernel.instructions[instr_idx];
    const std::uint32_t begin = warp * w;
    const std::uint32_t end = std::min(begin + w, kernel.num_threads);
    for (std::uint32_t t = begin; t < end; ++t) {
      if (instr[t].kind != OpKind::kNone) return true;
    }
    return false;
  };

  std::vector<std::size_t> next_instr(num_warps, 0);
  std::vector<std::uint64_t> ready(num_warps, 0);  // earliest issue slot

  // Skip leading instructions in which a warp has nothing to do (no cost:
  // warps with no pending memory request are not dispatched).
  const auto advance_idle = [&](std::uint32_t warp) {
    while (next_instr[warp] < num_instr &&
           !warp_has_active(warp, next_instr[warp])) {
      ++next_instr[warp];
    }
  };
  for (std::uint32_t warp = 0; warp < num_warps; ++warp) advance_idle(warp);

  RunStats stats;
  std::uint64_t pipeline_next = 0;  // next free MMU pipeline slot
  std::uint64_t last_completion = 0;
  double congestion_sum = 0.0;
  std::uint32_t rr = 0;  // round-robin pointer

  const auto at_barrier = [&](std::uint32_t warp) {
    return next_instr[warp] < num_instr &&
           kernel.instructions[next_instr[warp]][warp * w].kind ==
               OpKind::kBarrier;
  };

  for (;;) {
    // Find the next dispatchable warp in round-robin order. Warps parked
    // at a barrier are not dispatchable; they release together once every
    // other warp has arrived (i.e. no pending warp is before the barrier).
    std::uint32_t chosen = num_warps;
    std::uint64_t min_ready = std::numeric_limits<std::uint64_t>::max();
    bool any_pending = false;
    bool any_non_barrier = false;
    for (std::uint32_t k = 0; k < num_warps; ++k) {
      const std::uint32_t warp = (rr + k) % num_warps;
      if (next_instr[warp] >= num_instr) continue;
      any_pending = true;
      if (at_barrier(warp)) continue;
      any_non_barrier = true;
      min_ready = std::min(min_ready, ready[warp]);
      if (ready[warp] <= pipeline_next && chosen == num_warps) {
        chosen = warp;
      }
    }
    if (!any_pending) break;
    if (chosen == num_warps) {
      if (any_non_barrier) {
        // All runnable warps are still waiting on outstanding requests;
        // the pipeline idles until the first becomes ready.
        if (telemetry_) {
          telemetry_->pipeline_idle_slots += min_ready - pipeline_next;
        }
        pipeline_next = min_ready;
        continue;
      }
      // Every pending warp is parked at a barrier: release the earliest
      // barrier group once all outstanding requests have drained.
      std::size_t barrier_instr = num_instr;
      for (std::uint32_t warp = 0; warp < num_warps; ++warp) {
        if (next_instr[warp] < num_instr) {
          barrier_instr = std::min(barrier_instr, next_instr[warp]);
        }
      }
      std::uint64_t release = 0;
      for (std::uint32_t warp = 0; warp < num_warps; ++warp) {
        release = std::max(release, ready[warp]);
      }
      if (capture_) {
        // Exactly one release group fires per barrier instruction (no
        // warp can pass a barrier other warps still approach), so this
        // reports each barrier once.
        capture_->on_barrier(static_cast<std::uint32_t>(barrier_instr));
      }
      // The barrier orders all earlier accesses before all later ones:
      // advance the race-detection epoch.
      if (sanitizer_) sanitizer_->note_barrier();
      for (std::uint32_t warp = 0; warp < num_warps; ++warp) {
        if (next_instr[warp] == barrier_instr) {
          ready[warp] = release;
          ++next_instr[warp];
          advance_idle(warp);
        }
      }
      continue;
    }

    const std::uint32_t begin = chosen * w;
    const std::uint32_t end = std::min(begin + w, kernel.num_threads);
    const WarpAccess access = perform_warp_access(
        kernel.instructions[next_instr[chosen]],
        static_cast<std::uint32_t>(next_instr[chosen]), begin, end);

    if (access.congestion == 0) {
      // Register-only instruction: executed above, no pipeline traffic and
      // no completion to wait for.
      ++next_instr[chosen];
      advance_idle(chosen);
      rr = (chosen + 1) % num_warps;
      continue;
    }

    const std::uint64_t start = pipeline_next;
    const std::uint32_t stages = access.congestion;  // >= 1 when active
    const std::uint64_t completion = start + stages + config_.latency - 1;

    if (trace) {
      trace->dispatches.push_back(
          {chosen, static_cast<std::uint32_t>(next_instr[chosen]), start,
           stages, completion, access.active_threads, access.unique_requests});
    }
    stats.total_stages += stages;
    stats.max_congestion = std::max(stats.max_congestion, stages);
    congestion_sum += stages;
    ++stats.dispatches;
    last_completion = std::max(last_completion, completion);

    if (telemetry_) {
      telemetry_->congestion.add(stages);
      ++telemetry_->dispatches;
      telemetry_->total_slots += stages;
      // The warp was eligible from ready[chosen]; any gap to the dispatch
      // slot is round-robin queueing delay.
      telemetry_->warp_stall_slots += start - ready[chosen];
    }

    pipeline_next = start + stages;
    ready[chosen] = completion + 1;
    ++next_instr[chosen];
    advance_idle(chosen);
    rr = (chosen + 1) % num_warps;
  }

  stats.time = last_completion;
  stats.avg_congestion =
      stats.dispatches ? congestion_sum / static_cast<double>(stats.dispatches)
                       : 0.0;
  return stats;
}

}  // namespace rapsim::dmm
