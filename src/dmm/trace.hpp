// Execution trace of a DMM/UMM run.
//
// Records one entry per dispatched warp-instruction: when it entered the
// MMU pipeline, how many stages it occupied (its congestion), and when it
// completed. The Figure 3 bench replays the paper's worked example from
// such a trace, and the transpose runner derives per-phase congestion
// statistics from it.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rapsim::dmm {

struct DispatchRecord {
  std::uint32_t warp = 0;         // warp id
  std::uint32_t instruction = 0;  // index into Kernel::instructions
  std::uint64_t start = 0;        // first pipeline slot occupied
  std::uint32_t stages = 0;       // slots occupied == congestion
  std::uint64_t completion = 0;   // time unit at which all requests finish
  std::uint32_t active_threads = 0;
  std::uint32_t unique_requests = 0;  // after CRCW merging
};

struct Trace {
  std::vector<DispatchRecord> dispatches;

  void clear() { dispatches.clear(); }

  /// Multi-line human-readable rendering (one dispatch per line).
  [[nodiscard]] std::string to_string() const;

  /// CSV rendering with a header row (warp, instruction, start, stages,
  /// completion, active_threads, unique_requests) — for offline analysis
  /// of a kernel's bank-conflict timeline.
  [[nodiscard]] std::string to_csv() const;

  /// Parse a to_csv() document back into a trace (lossless round-trip).
  /// Requires the exact header row; throws std::invalid_argument with a
  /// line number for a missing/wrong header, a row with the wrong number
  /// of fields, or a non-numeric field.
  [[nodiscard]] static Trace from_csv(const std::string& csv);
};

}  // namespace rapsim::dmm
