// Machine parameters of the Discrete Memory Machine.
//
// The DMM (and UMM) have three parameters: the number p of threads, the
// width w (memory banks = threads per warp), and the memory access latency
// l. Width and latency are machine properties (this struct); the thread
// count belongs to the kernel being run.

#pragma once

#include <cstdint>
#include <stdexcept>

namespace rapsim::dmm {

/// Which memory machine to simulate. The two models differ only in how
/// many pipeline slots a warp-instruction occupies:
///   * DMM — separate address lines per bank: one slot carries at most one
///     request per bank, so slots = max per-bank unique requests (the
///     congestion).
///   * UMM — a single broadcast address line: one slot carries one memory
///     *row* (the w words {r*w .. r*w+w-1}), so slots = number of distinct
///     rows touched.
enum class MachineKind { kDmm, kUmm };

struct DmmConfig {
  std::uint32_t width = 32;   // banks per memory, threads per warp (w)
  std::uint32_t latency = 1;  // pipeline latency in time units (l)
  MachineKind kind = MachineKind::kDmm;

  void validate() const {
    if (width == 0) throw std::invalid_argument("DmmConfig: width must be > 0");
    if (latency == 0) {
      throw std::invalid_argument("DmmConfig: latency must be > 0");
    }
  }
};

}  // namespace rapsim::dmm
