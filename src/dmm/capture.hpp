// Access-capture hook for the DMM/UMM machine.
//
// A capture sink observes the LOGICAL address stream of a run — the
// pre-AddressMap addresses, which is what makes a captured stream
// replayable under a different scheme. The machine reports one event per
// dispatched warp-instruction (op class, active-lane mask, per-lane
// logical addresses in lane order) and one event per barrier instruction
// at the moment its release group fires. Events arrive in dispatch
// order, which is deterministic, so equal runs produce equal captures.
//
// The interface lives here (not in src/replay/) so the dependency points
// outward: the machine knows only this vtable, and replay::AccessTrace
// adapts it (replay/replay.hpp's TraceCaptureSink). Like the telemetry
// sink, a null capture costs one predictable branch per dispatch.

#pragma once

#include <cstdint>
#include <span>

namespace rapsim::dmm {

/// Op class of a captured warp-instruction. Congestion depends only on
/// this class and the addresses, so the finer OpKind distinctions (kLoad
/// vs kLoadAdd, kStore vs kStoreImm) are deliberately collapsed.
enum class CapturedOpClass : std::uint8_t {
  kRead,      // kLoad / kLoadAdd / kLoadMulAdd
  kWrite,     // kStore / kStoreImm
  kAtomic,    // kAtomicAdd
  kRegister,  // register-only (kMinMax): no memory traffic
};

/// Receiver of one run's access stream; install with Dmm::set_capture.
class AccessCapture {
 public:
  virtual ~AccessCapture() = default;

  /// Called once at the start of every run() while installed.
  virtual void begin_kernel(std::uint32_t num_threads, std::uint32_t width,
                            std::uint64_t memory_size) = 0;

  /// One dispatched warp-instruction. `lane_mask` bit t corresponds to
  /// lane t (thread warp*width + t); `addrs` holds the active lanes'
  /// logical addresses in ascending lane order (empty for kRegister).
  virtual void on_warp_access(std::uint32_t instr, std::uint32_t warp,
                              CapturedOpClass op, std::uint64_t lane_mask,
                              std::span<const std::uint64_t> addrs) = 0;

  /// One barrier instruction, reported when its release group fires.
  virtual void on_barrier(std::uint32_t instr) = 0;
};

}  // namespace rapsim::dmm
