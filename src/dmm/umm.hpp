// Convenience constructors for the Unified Memory Machine.
//
// The UMM shares the DMM's warp scheduler and pipeline; only the slot
// accounting differs (see MachineKind in config.hpp). These helpers exist
// so call sites read `make_umm(...)` instead of fiddling with the kind
// field — the comparison benches run the same kernel on both machines.

#pragma once

#include "dmm/machine.hpp"

namespace rapsim::dmm {

[[nodiscard]] inline DmmConfig umm_config(std::uint32_t width,
                                          std::uint32_t latency) {
  return DmmConfig{width, latency, MachineKind::kUmm};
}

[[nodiscard]] inline DmmConfig dmm_config(std::uint32_t width,
                                          std::uint32_t latency) {
  return DmmConfig{width, latency, MachineKind::kDmm};
}

/// A UMM is the same machine with broadcast-row slot accounting.
using Umm = Dmm;

}  // namespace rapsim::dmm
