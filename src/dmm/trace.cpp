#include "dmm/trace.hpp"

#include <sstream>

namespace rapsim::dmm {

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "warp,instruction,start,stages,completion,active_threads,"
         "unique_requests\n";
  for (const auto& d : dispatches) {
    out << d.warp << ',' << d.instruction << ',' << d.start << ','
        << d.stages << ',' << d.completion << ',' << d.active_threads << ','
        << d.unique_requests << '\n';
  }
  return out.str();
}

std::string Trace::to_string() const {
  std::ostringstream out;
  for (const auto& d : dispatches) {
    out << "warp " << d.warp << " instr " << d.instruction << ": stages ["
        << d.start << ", " << d.start + d.stages - 1 << "] congestion "
        << d.stages << " completes at t=" << d.completion << " ("
        << d.unique_requests << " unique requests, " << d.active_threads
        << " active threads)\n";
  }
  return out.str();
}

}  // namespace rapsim::dmm
