#include "dmm/trace.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace rapsim::dmm {

namespace {

constexpr const char* kCsvHeader =
    "warp,instruction,start,stages,completion,active_threads,"
    "unique_requests";

[[noreturn]] void fail_csv(std::size_t line, const std::string& what) {
  throw std::invalid_argument("trace csv: line " + std::to_string(line) +
                              ": " + what);
}

std::uint64_t parse_field(const std::string& field, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(field, &used, 10);
    if (used != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    fail_csv(line, "malformed number '" + field + "'");
  }
}

}  // namespace

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "warp,instruction,start,stages,completion,active_threads,"
         "unique_requests\n";
  for (const auto& d : dispatches) {
    out << d.warp << ',' << d.instruction << ',' << d.start << ','
        << d.stages << ',' << d.completion << ',' << d.active_threads << ','
        << d.unique_requests << '\n';
  }
  return out.str();
}

Trace Trace::from_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) fail_csv(1, "empty input");
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kCsvHeader) {
    fail_csv(line_no, std::string("expected header '") + kCsvHeader + "'");
  }

  Trace trace;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    std::array<std::uint64_t, 7> fields{};
    std::size_t field = 0, begin = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i < line.size() && line[i] != ',') continue;
      if (field == fields.size()) fail_csv(line_no, "too many fields");
      fields[field++] = parse_field(line.substr(begin, i - begin), line_no);
      begin = i + 1;
    }
    if (field != fields.size()) {
      fail_csv(line_no, "expected " + std::to_string(fields.size()) +
                            " fields, got " + std::to_string(field));
    }
    DispatchRecord record;
    record.warp = static_cast<std::uint32_t>(fields[0]);
    record.instruction = static_cast<std::uint32_t>(fields[1]);
    record.start = fields[2];
    record.stages = static_cast<std::uint32_t>(fields[3]);
    record.completion = fields[4];
    record.active_threads = static_cast<std::uint32_t>(fields[5]);
    record.unique_requests = static_cast<std::uint32_t>(fields[6]);
    trace.dispatches.push_back(record);
  }
  return trace;
}

std::string Trace::to_string() const {
  std::ostringstream out;
  for (const auto& d : dispatches) {
    out << "warp " << d.warp << " instr " << d.instruction << ": stages ["
        << d.start << ", " << d.start + d.stages - 1 << "] congestion "
        << d.stages << " completes at t=" << d.completion << " ("
        << d.unique_requests << " unique requests, " << d.active_threads
        << " active threads)\n";
  }
  return out.str();
}

}  // namespace rapsim::dmm
