// The Discrete Memory Machine simulator.
//
// Faithful executable model of Section II of the paper:
//
//   * The memory is a single address space interleaved over w banks
//     (word a lives in bank a mod w of the *physical* layout; logical
//     addresses pass through an AddressMap first — RAW/RAS/RAP/...).
//   * p threads are partitioned into p/w warps of w consecutive ids.
//   * Warps are dispatched for memory access in round-robin order; a warp
//     with no pending request is skipped.
//   * A dispatched warp-instruction occupies `congestion` consecutive
//     pipeline slots — one slot can carry at most one request per bank, so
//     the per-bank unique-request maximum is exactly the number of slots
//     needed (requests to the same address merge: CRCW, arbitrary write).
//   * A request entering the pipeline at slot t completes at time unit
//     t + l; a warp-instruction whose slots are [s, s+c-1] therefore
//     completes at s + c + l - 1, and its threads may issue their next
//     request from time s + c + l on.
//
// Data semantics: a warp-instruction's data movement executes atomically
// at dispatch time, in dispatch order. Within one warp, duplicate
// addresses merge and the lowest thread id wins a write race (CRCW
// arbitrary, made deterministic). Across warps, ordering between
// instructions is scheduler-defined unless separated by a barrier —
// matching real hardware, where inter-warp races without __syncthreads()
// are undefined. tests/differential_test.cpp pins these semantics against
// an in-order reference interpreter.
//
// With these semantics the paper's closed forms fall out exactly:
// contiguous access by p threads finishes at p/w + l - 1 and stride access
// at p + l - 1 (Section III), and Figure 3's example (two warps, 3 slots,
// l = 5) finishes at 3 + 5 - 1 = 7.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/mapping.hpp"
#include "dmm/capture.hpp"
#include "dmm/config.hpp"
#include "dmm/kernel.hpp"
#include "dmm/trace.hpp"
#include "hier/event.hpp"

namespace rapsim::analyze {
class ShmemSanitizer;
}

namespace rapsim::telemetry {
struct RunTelemetry;
}

namespace rapsim::dmm {

/// Aggregate results of one kernel execution.
struct RunStats {
  std::uint64_t time = 0;              // completion time of the last request
  std::uint64_t total_stages = 0;      // pipeline slots consumed
  std::uint64_t dispatches = 0;        // warp-instructions dispatched
  std::uint32_t max_congestion = 0;    // worst warp-instruction
  double avg_congestion = 0.0;         // mean over dispatches
};

/// The DMM: banked memory + MMU pipeline + warp scheduler. The machine
/// owns the physical memory contents; logical addresses are translated by
/// the AddressMap given at construction (which also fixes memory size and
/// width).
class Dmm {
 public:
  /// The map must outlive the machine. config.width must equal map.width().
  Dmm(DmmConfig config, const core::AddressMap& map);

  // --- Host-side (untimed) memory access, used to set up inputs and
  // --- verify outputs. Addresses are logical.
  [[nodiscard]] std::uint64_t load(std::uint64_t logical) const;
  void store(std::uint64_t logical, std::uint64_t value);
  /// Fill address a with value a for a in [0, size) — the standard test
  /// pattern used by the transpose verifiers.
  void fill_identity();

  /// Execute a kernel to completion. If `trace` is non-null it receives
  /// one DispatchRecord per dispatched warp-instruction. Implemented on
  /// the shared event core (hier/event.hpp) with the round-robin policy;
  /// the stepping API below lets external clocks (the hierarchy
  /// simulator) drive the same machine one decision at a time.
  RunStats run(const Kernel& kernel, Trace* trace = nullptr);

  // --- Stepping interface for external clocks (src/hier/) -------------
  // Dmm::run is itself begin_run + KernelWarpSource + EventCore; a
  // wrapper that wants its own clock/scheduler/memory-path performs the
  // same sequence with its own core.

  /// Result of one warp-instruction's data movement.
  struct WarpAccess {
    std::uint32_t congestion = 0;       // pipeline slots occupied
    std::uint32_t unique_requests = 0;  // after CRCW merging
    std::uint32_t active_threads = 0;
  };

  /// Reset per-run state (thread registers, telemetry sink, sanitizer
  /// epoch, capture preamble) for `kernel`. Must be called before the
  /// first warp_access of a run.
  void begin_run(const Kernel& kernel);

  /// Execute the data movement of warp `warp`'s instruction `instr_idx`
  /// and report its cost. Untimed: the caller's clock decides when the
  /// effects "happen" — within one warp the semantics are fixed, across
  /// warps they follow the caller's dispatch order (scheduler-defined,
  /// as on real hardware).
  WarpAccess warp_access(const Kernel& kernel, std::uint32_t instr_idx,
                         std::uint32_t warp);

  /// Report a released barrier at instruction `instr_idx` (capture
  /// record + sanitizer race-epoch advance). Call once per barrier.
  void finish_barrier(std::uint32_t instr_idx);

  /// Install (or clear, with nullptr) a telemetry sink. While installed,
  /// every run() resets it and then feeds per-bank unique-request counts,
  /// the congestion histogram, warp stall slots, and pipeline idle slots.
  /// The null default costs one predictable branch per event — run() with
  /// no sink stays within noise of the pre-telemetry machine.
  void set_telemetry(telemetry::RunTelemetry* sink) noexcept {
    telemetry_ = sink;
  }
  [[nodiscard]] telemetry::RunTelemetry* telemetry() const noexcept {
    return telemetry_;
  }

  /// Install (or clear, with nullptr) an access-capture sink. While
  /// installed, every run() first reports the kernel's shape
  /// (begin_kernel) and then the logical address stream of each
  /// dispatched warp-instruction plus every barrier release — enough to
  /// reconstruct an exactly re-runnable kernel (see replay/replay.hpp).
  /// Like telemetry, a null capture costs one branch per dispatch.
  void set_capture(AccessCapture* capture) noexcept { capture_ = capture; }
  [[nodiscard]] AccessCapture* capture() const noexcept { return capture_; }

  /// Install (or clear, with nullptr) the shared-memory sanitizer. On
  /// install the sanitizer's shadow write-bitmap is reset to all-unwritten
  /// and sized for this memory, so install BEFORE storing kernel inputs.
  /// While installed, out-of-bounds accesses are recorded and the faulting
  /// lane skipped (instead of the machine throwing on the first one), and
  /// uninitialized reads / divergent CRCW write-write races are recorded.
  void set_sanitizer(analyze::ShmemSanitizer* sanitizer);
  [[nodiscard]] analyze::ShmemSanitizer* sanitizer() const noexcept {
    return sanitizer_;
  }

  [[nodiscard]] const DmmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const core::AddressMap& map() const noexcept { return map_; }
  [[nodiscard]] std::uint64_t memory_size() const noexcept {
    return memory_.size();
  }

 private:
  DmmConfig config_;
  const core::AddressMap& map_;
  std::vector<std::uint64_t> memory_;     // physical layout
  std::vector<std::uint64_t> registers_;  // one accumulator per thread
  telemetry::RunTelemetry* telemetry_ = nullptr;  // optional, not owned
  analyze::ShmemSanitizer* sanitizer_ = nullptr;  // optional, not owned
  AccessCapture* capture_ = nullptr;              // optional, not owned

  /// Execute the data movement of one warp-instruction and return its
  /// congestion (pipeline slots) and unique-request count. `instr_idx` is
  /// the kernel instruction index (sanitizer findings cite it).
  WarpAccess perform_warp_access(const Instruction& instr,
                                 std::uint32_t instr_idx,
                                 std::uint32_t warp_begin,
                                 std::uint32_t warp_end);
};

/// hier::WarpSource adapter over a straight-line dmm::Kernel: per-warp
/// program counters with idle-instruction skipping (a warp with nothing
/// to do in an instruction is never dispatched for it). Dmm::run drives
/// one internally; the hierarchy simulator wraps one per SM and adds the
/// memory-path penalty to each issue.
class KernelWarpSource final : public hier::WarpSource {
 public:
  /// Machine and kernel must outlive the source; the machine must have
  /// begin_run(kernel) called before the first issue().
  KernelWarpSource(Dmm& machine, const Kernel& kernel);

  [[nodiscard]] std::uint32_t num_warps() const noexcept {
    return num_warps_;
  }

  [[nodiscard]] bool done(std::uint32_t warp) const override;
  [[nodiscard]] bool at_barrier(std::uint32_t warp) const override;
  [[nodiscard]] std::size_t pc(std::uint32_t warp) const override;
  [[nodiscard]] hier::IssueResult issue(std::uint32_t warp) override;
  void advance(std::uint32_t warp) override;

 private:
  [[nodiscard]] bool warp_has_active(std::uint32_t warp,
                                     std::size_t instr_idx) const;
  void advance_idle(std::uint32_t warp);

  Dmm* machine_;
  const Kernel* kernel_;
  std::uint32_t width_;
  std::uint32_t num_warps_;
  std::vector<std::size_t> next_instr_;
};

}  // namespace rapsim::dmm
