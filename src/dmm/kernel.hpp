// SIMD kernel representation executed by the DMM / UMM machines.
//
// A kernel is a straight-line sequence of SIMD instructions over p
// threads. Threads are partitioned into p/w warps of w consecutive thread
// ids (the paper's W(0), W(1), ...); all threads of a warp execute the
// same instruction in lockstep. Each thread has a small register file
// (kRegistersPerThread accumulators), enough to express the paper's
// workloads (transpose = load + dependent store) and the example
// applications (reduction, bitonic sort, tiled matrix multiply):
//
//   memory ops (occupy MMU pipeline slots, subject to bank conflicts):
//     kLoad       — reg[r] <- mem[logical]
//     kLoadAdd    — reg[r] += mem[logical]           (reduction)
//     kLoadMulAdd — reg[r] += reg[r2] * mem[logical] (matmul accumulate)
//     kStore      — mem[logical] <- reg[r]
//     kStoreImm   — mem[logical] <- immediate        (initialization)
//     kAtomicAdd  — mem[logical] += reg[r], read-modify-write. Unlike
//                   plain loads/stores, atomics to the SAME address do
//                   NOT merge: each one needs its own bank cycle, so a
//                   warp of w atomics on one address has congestion w
//                   (the shared-memory atomic serialization of real GPUs)
//
//   register ops (free: no memory traffic, no pipeline slots — arithmetic
//   is orders of magnitude cheaper than a shared-memory access):
//     kMinMax     — (reg[r], reg[r2]) <- (min, max) of the pair
//                   (bitonic compare-exchange)
//
//   kNone         — thread idles for this instruction
//
//   kBarrier      — block-wide synchronization (__syncthreads()): no warp
//                   proceeds past it until every warp has completed all
//                   earlier instructions. Required whenever one warp reads
//                   data another warp wrote (reduction trees, sorting
//                   networks). Emit with Kernel::push_barrier().
//
// SIMD restriction (Section II of the paper): within one warp-instruction
// all active ops must be of one class — all reads, all writes, or all
// register ops.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rapsim::dmm {

inline constexpr std::uint32_t kRegistersPerThread = 4;

enum class OpKind : std::uint8_t {
  kNone,
  kLoad,
  kLoadAdd,
  kLoadMulAdd,
  kStore,
  kStoreImm,
  kAtomicAdd,
  kMinMax,
  kBarrier,
};

/// One thread's slot of one SIMD instruction.
struct ThreadOp {
  OpKind kind = OpKind::kNone;
  std::uint64_t logical = 0;    // logical address (pre-mapping)
  std::uint64_t immediate = 0;  // used by kStoreImm
  std::uint8_t reg = 0;         // primary register
  std::uint8_t reg2 = 1;        // secondary register (kLoadMulAdd, kMinMax)

  static ThreadOp none() { return {}; }
  static ThreadOp load(std::uint64_t logical, std::uint8_t reg = 0) {
    return {OpKind::kLoad, logical, 0, reg, 1};
  }
  static ThreadOp load_add(std::uint64_t logical, std::uint8_t reg = 0) {
    return {OpKind::kLoadAdd, logical, 0, reg, 1};
  }
  static ThreadOp load_mul_add(std::uint64_t logical, std::uint8_t acc,
                               std::uint8_t factor) {
    return {OpKind::kLoadMulAdd, logical, 0, acc, factor};
  }
  static ThreadOp store(std::uint64_t logical, std::uint8_t reg = 0) {
    return {OpKind::kStore, logical, 0, reg, 1};
  }
  static ThreadOp store_imm(std::uint64_t logical, std::uint64_t value) {
    return {OpKind::kStoreImm, logical, value, 0, 1};
  }
  static ThreadOp atomic_add(std::uint64_t logical, std::uint8_t reg = 0) {
    return {OpKind::kAtomicAdd, logical, 0, reg, 1};
  }
  static ThreadOp min_max(std::uint8_t reg_min, std::uint8_t reg_max) {
    return {OpKind::kMinMax, 0, 0, reg_min, reg_max};
  }
  static ThreadOp barrier() { return {OpKind::kBarrier, 0, 0, 0, 1}; }
};

/// One SIMD instruction: a ThreadOp per thread (indexed by thread id).
using Instruction = std::vector<ThreadOp>;

/// A straight-line SIMD program.
struct Kernel {
  std::uint32_t num_threads = 0;
  std::vector<Instruction> instructions;
  /// Optional per-instruction labels (access-site names), parallel to
  /// `instructions`; empty entries (or an empty vector) mean unlabeled.
  /// The sanitizer reports findings by label so they cross-reference
  /// lint's static findings.
  std::vector<std::string> labels;

  /// Append an instruction; it must have exactly num_threads slots.
  /// The optional label names the instruction in sanitizer findings.
  void push(Instruction instr, std::string label = {});

  /// Append a block-wide barrier (__syncthreads()).
  void push_barrier();
};

}  // namespace rapsim::dmm
