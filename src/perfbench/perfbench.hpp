// perfbench: the BENCH_*.json performance-trajectory harness.
//
// Every "made it faster" claim in this repository is checked against a
// committed baseline, so the measurement protocol has to be boring and
// reproducible:
//
//   * one steady clock (clock.hpp — wall-clock jumps cannot corrupt a
//     sample);
//   * a warmup/repeat protocol (run_timed): `warmup` untimed runs to
//     fill caches and branch predictors, then `repeats` timed samples;
//   * outlier-robust aggregation reusing util::Tally / util::OnlineStats:
//     throughput (ops_per_sec, ns_per_op) derives from the MEDIAN
//     sample, not the mean, so one preempted repeat cannot shift the
//     trajectory; p50/p95/p99 expose the spread;
//   * machine metadata (hostname, OS, compiler, hardware threads) so a
//     cross-machine diff is recognizable as one;
//   * a schema-stable emitter (BenchReport::to_json / write_bench_json)
//     producing the BENCH_<name>.json documents tools/bench_compare
//     diffs and tools/check_bench_schema.sh validates.
//
// Two aggregation shapes cover every bench:
//
//   aggregate_repeats    N whole-run samples of `items` operations each
//                        (table sweeps, replay runs) — percentiles are
//                        over per-repeat wall time;
//   aggregate_latencies  per-operation samples plus one wall-clock
//                        window (the serve bench) — ops_per_sec is true
//                        throughput, percentiles are per-op latency.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "perfbench/clock.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace rapsim::perfbench {

/// Warmup/repeat measurement protocol. quick() is the ctest smoke
/// configuration; protocol_from_args reads the shared bench flags.
struct Protocol {
  std::size_t warmup = 1;
  std::size_t repeats = 7;

  [[nodiscard]] static Protocol quick() noexcept { return {1, 3}; }
};

/// The shared bench flags every BENCH-emitting binary accepts:
/// --quick (smoke protocol), --bench-warmup=N, --bench-repeats=N
/// (repeats clamped to >= 1).
[[nodiscard]] Protocol protocol_from_args(const util::CliArgs& args);

/// Outlier-robust aggregate of timed samples. All ns percentiles refer
/// to the sample population the aggregate was built from (per-repeat
/// wall time or per-operation latency; see header comment).
struct Aggregate {
  std::uint64_t samples = 0;
  std::uint64_t items = 0;          // operations represented per sample
  std::uint64_t total_ns = 0;       // sum over samples (repeats) or the
                                    // wall window (latencies)
  double ops_per_sec = 0.0;
  double ns_per_op = 0.0;           // the trajectory number ("ns/access")
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
};

/// Aggregate `repeats` whole-run samples, each timing `items_per_sample`
/// operations. ops_per_sec and ns_per_op derive from the median sample.
/// Returns a zeroed Aggregate for empty input or zero items.
[[nodiscard]] Aggregate aggregate_repeats(
    const std::vector<std::uint64_t>& sample_ns,
    std::uint64_t items_per_sample);

/// Aggregate per-operation latency samples observed inside one wall
/// window of `wall_ns`: ops_per_sec = samples / wall, ns_per_op = median
/// latency. Returns a zeroed Aggregate for an empty tally.
[[nodiscard]] Aggregate aggregate_latencies(const util::Tally& latency_ns,
                                            std::uint64_t wall_ns);

/// Run `fn` under the warmup/repeat protocol and aggregate the samples.
/// `items` is the operation count one invocation of `fn` represents.
template <typename Fn>
[[nodiscard]] Aggregate run_timed(const Protocol& protocol,
                                  std::uint64_t items, Fn&& fn) {
  for (std::size_t i = 0; i < protocol.warmup; ++i) fn();
  std::vector<std::uint64_t> samples;
  samples.reserve(protocol.repeats);
  for (std::size_t i = 0; i < protocol.repeats; ++i) {
    const TimePoint start = now();
    fn();
    samples.push_back(elapsed_ns(start));
  }
  return aggregate_repeats(samples, items);
}

/// Host identity captured into every BENCH document, so a diff across
/// machines is visibly not a trajectory point.
struct MachineInfo {
  std::string hostname;
  std::string os;        // uname sysname + release
  std::string compiler;  // __VERSION__ of the compiler that built this
  std::uint32_t hardware_threads = 0;
};

[[nodiscard]] MachineInfo capture_machine();

/// One BENCH_<name>.json document under construction. Config entries
/// and metrics serialize in insertion order; the field set per metric is
/// the stable schema tools/check_bench_schema.sh pins.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_(std::move(bench_name)), machine_(capture_machine()) {}

  void set_config(const std::string& key, std::uint64_t value);
  void set_config(const std::string& key, const std::string& value);
  void add(const std::string& metric_name, const Aggregate& aggregate);

  [[nodiscard]] const std::string& bench() const noexcept { return bench_; }
  [[nodiscard]] std::size_t metric_count() const noexcept {
    return metrics_.size();
  }

  /// The full document: schema_version, bench, unix_time, machine,
  /// config, metrics[].
  [[nodiscard]] std::string to_json() const;

 private:
  std::string bench_;
  MachineInfo machine_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-serialized
  std::vector<std::pair<std::string, Aggregate>> metrics_;
};

/// Atomic write (tmp + rename, parent dirs created) of report.to_json()
/// + '\n' to `path`. Throws std::runtime_error on IO failure.
void write_bench_json(const std::string& path, const BenchReport& report);

}  // namespace rapsim::perfbench
