#include "perfbench/compare.hpp"

#include <map>
#include <stdexcept>

#include "serve/jsonvalue.hpp"

namespace rapsim::perfbench {

namespace {

struct ParsedMetric {
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

struct ParsedDoc {
  std::string bench;
  std::string hostname;
  std::map<std::string, ParsedMetric> metrics;  // ordered for stable output
};

double number_field(const serve::JsonValue& object, const char* key,
                    const std::string& where) {
  const serve::JsonValue* value = object.find(key);
  if (!value || !value->is_number()) {
    throw std::invalid_argument("bench document " + where +
                                ": missing numeric '" + key + "'");
  }
  return value->as_number();
}

ParsedDoc parse_doc(const std::string& text, const std::string& where) {
  serve::JsonValue doc;
  try {
    doc = serve::parse_json(text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("bench document " + where +
                                ": " + e.what());
  }
  if (!doc.is_object()) {
    throw std::invalid_argument("bench document " + where +
                                ": not a JSON object");
  }
  const serve::JsonValue* version = doc.find("schema_version");
  if (!version || !version->is_integer() || version->as_integer() != 1) {
    throw std::invalid_argument("bench document " + where +
                                ": schema_version must be 1");
  }
  ParsedDoc parsed;
  const serve::JsonValue* bench = doc.find("bench");
  if (!bench || !bench->is_string()) {
    throw std::invalid_argument("bench document " + where +
                                ": missing 'bench' name");
  }
  parsed.bench = bench->as_string();
  if (const serve::JsonValue* machine = doc.find("machine")) {
    if (const serve::JsonValue* host = machine->find("hostname");
        host && host->is_string()) {
      parsed.hostname = host->as_string();
    }
  }
  const serve::JsonValue* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_array()) {
    throw std::invalid_argument("bench document " + where +
                                ": missing 'metrics' array");
  }
  for (const serve::JsonValue& entry : metrics->as_array()) {
    const serve::JsonValue* name = entry.find("name");
    if (!name || !name->is_string()) {
      throw std::invalid_argument("bench document " + where +
                                  ": metric without a name");
    }
    ParsedMetric metric;
    metric.ns_per_op = number_field(entry, "ns_per_op", where);
    metric.ops_per_sec = number_field(entry, "ops_per_sec", where);
    parsed.metrics[name->as_string()] = metric;
  }
  return parsed;
}

}  // namespace

CompareResult compare_bench_json(const std::string& baseline_json,
                                 const std::string& current_json,
                                 double threshold) {
  const ParsedDoc baseline = parse_doc(baseline_json, "(baseline)");
  const ParsedDoc current = parse_doc(current_json, "(current)");
  if (baseline.bench != current.bench) {
    throw std::invalid_argument("bench documents disagree on the bench: '" +
                                baseline.bench + "' vs '" + current.bench +
                                "'");
  }

  CompareResult result;
  result.bench = baseline.bench;
  result.same_machine = baseline.hostname == current.hostname;

  for (const auto& [name, base] : baseline.metrics) {
    const auto it = current.metrics.find(name);
    if (it == current.metrics.end()) {
      result.only_baseline.push_back(name);
      continue;
    }
    MetricDelta delta;
    delta.name = name;
    delta.baseline_ns_per_op = base.ns_per_op;
    delta.current_ns_per_op = it->second.ns_per_op;
    delta.baseline_ops_per_sec = base.ops_per_sec;
    delta.current_ops_per_sec = it->second.ops_per_sec;
    if (base.ns_per_op > 0.0) {
      delta.ratio = it->second.ns_per_op / base.ns_per_op;
      delta.regressed = delta.ratio >= 1.0 + threshold;
    }
    result.regression = result.regression || delta.regressed;
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, metric] : current.metrics) {
    (void)metric;
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      result.only_current.push_back(name);
    }
  }
  return result;
}

}  // namespace rapsim::perfbench
