// The one monotonic clock every benchmark times with.
//
// Benches used to inline their own std::chrono calls; hoisting the
// steady-clock read here (header-only, so even layers below the
// perfbench library — telemetry's SpanTracer — can share it without a
// link dependency) guarantees no experiment ever times with a
// wall-clock that NTP or a suspend/resume can move backwards.

#pragma once

#include <chrono>
#include <cstdint>

namespace rapsim::perfbench {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

/// Monotonic timestamp; the only clock benchmark code should read.
[[nodiscard]] inline TimePoint now() noexcept { return Clock::now(); }

/// Nanoseconds from `start` to `end` (0 when end precedes start, which
/// a steady clock never produces but saturating beats wrapping).
[[nodiscard]] inline std::uint64_t elapsed_ns(TimePoint start,
                                              TimePoint end) noexcept {
  if (end <= start) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

/// Nanoseconds from `start` to now().
[[nodiscard]] inline std::uint64_t elapsed_ns(TimePoint start) noexcept {
  return elapsed_ns(start, now());
}

}  // namespace rapsim::perfbench
