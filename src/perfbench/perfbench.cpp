#include "perfbench/perfbench.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "telemetry/json.hpp"

namespace rapsim::perfbench {

namespace {

Aggregate from_tally(const util::Tally& tally, const util::OnlineStats& stats,
                     std::uint64_t items, std::uint64_t total_ns,
                     double ops_per_sec, double ns_per_op) {
  Aggregate agg;
  agg.samples = tally.count();
  agg.items = items;
  agg.total_ns = total_ns;
  agg.ops_per_sec = ops_per_sec;
  agg.ns_per_op = ns_per_op;
  agg.p50_ns = tally.percentile(50.0);
  agg.p95_ns = tally.percentile(95.0);
  agg.p99_ns = tally.percentile(99.0);
  agg.min_ns = tally.min();
  agg.max_ns = tally.max();
  agg.mean_ns = stats.mean();
  agg.stddev_ns = stats.stddev();
  return agg;
}

}  // namespace

Protocol protocol_from_args(const util::CliArgs& args) {
  Protocol protocol;
  if (args.get("quick")) protocol = Protocol::quick();
  protocol.warmup = static_cast<std::size_t>(
      args.get_uint("bench-warmup", protocol.warmup));
  protocol.repeats = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             args.get_uint("bench-repeats", protocol.repeats)));
  return protocol;
}

Aggregate aggregate_repeats(const std::vector<std::uint64_t>& sample_ns,
                            std::uint64_t items_per_sample) {
  if (sample_ns.empty() || items_per_sample == 0) return {};
  util::Tally tally;
  util::OnlineStats stats;
  std::uint64_t total = 0;
  for (const std::uint64_t ns : sample_ns) {
    tally.add(ns);
    stats.add(static_cast<double>(ns));
    total += ns;
  }
  // Median sample, not mean: one preempted repeat must not move the
  // trajectory number later PRs are compared against.
  const auto median_ns = static_cast<double>(tally.percentile(50.0));
  const auto items = static_cast<double>(items_per_sample);
  const double ops = median_ns > 0 ? items / (median_ns / 1e9) : 0.0;
  const double per_op = median_ns > 0 ? median_ns / items : 0.0;
  return from_tally(tally, stats, items_per_sample, total, ops, per_op);
}

Aggregate aggregate_latencies(const util::Tally& latency_ns,
                              std::uint64_t wall_ns) {
  if (latency_ns.count() == 0) return {};
  util::OnlineStats stats;
  for (const auto& [value, count] : latency_ns.histogram()) {
    stats.add_repeated(static_cast<double>(value), count);
  }
  const auto samples = static_cast<double>(latency_ns.count());
  const double ops =
      wall_ns > 0 ? samples / (static_cast<double>(wall_ns) / 1e9) : 0.0;
  const auto per_op = static_cast<double>(latency_ns.percentile(50.0));
  return from_tally(latency_ns, stats, 1, wall_ns, ops, per_op);
}

MachineInfo capture_machine() {
  MachineInfo info;
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) == 0 && host[0] != '\0') {
    info.hostname = host;
  } else {
    info.hostname = "unknown";
  }
  struct utsname uts = {};
  if (::uname(&uts) == 0) {
    info.os = std::string(uts.sysname) + " " + uts.release;
  } else {
    info.os = "unknown";
  }
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

void BenchReport::set_config(const std::string& key, std::uint64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void BenchReport::set_config(const std::string& key,
                             const std::string& value) {
  config_.emplace_back(key, "\"" + telemetry::json_escape(value) + "\"");
}

void BenchReport::add(const std::string& metric_name,
                      const Aggregate& aggregate) {
  metrics_.emplace_back(metric_name, aggregate);
}

std::string BenchReport::to_json() const {
  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("schema_version", 1);
  json.kv("bench", std::string_view(bench_));
  json.kv("unix_time", static_cast<std::int64_t>(std::time(nullptr)));

  json.key("machine").begin_object();
  json.kv("hostname", std::string_view(machine_.hostname));
  json.kv("os", std::string_view(machine_.os));
  json.kv("compiler", std::string_view(machine_.compiler));
  json.kv("hardware_threads", machine_.hardware_threads);
  json.end_object();

  json.key("config").begin_object();
  for (const auto& [key, serialized] : config_) {
    json.key(key).raw_value(serialized);
  }
  json.end_object();

  json.key("metrics").begin_array();
  for (const auto& [name, agg] : metrics_) {
    json.begin_object();
    json.kv("name", std::string_view(name));
    json.kv("samples", agg.samples);
    json.kv("items", agg.items);
    json.kv("total_ns", agg.total_ns);
    json.kv("ops_per_sec", agg.ops_per_sec);
    json.kv("ns_per_op", agg.ns_per_op);
    json.kv("p50_ns", agg.p50_ns);
    json.kv("p95_ns", agg.p95_ns);
    json.kv("p99_ns", agg.p99_ns);
    json.kv("min_ns", agg.min_ns);
    json.kv("max_ns", agg.max_ns);
    json.kv("mean_ns", agg.mean_ns);
    json.kv("stddev_ns", agg.stddev_ns);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void write_bench_json(const std::string& path, const BenchReport& report) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("perfbench: cannot write " + tmp);
    out << report.to_json() << '\n';
    if (!out) throw std::runtime_error("perfbench: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("perfbench: cannot rename " + tmp + " to " +
                             path);
  }
}

}  // namespace rapsim::perfbench
