// Regression comparison of two BENCH_<name>.json documents.
//
// The trajectory contract: a PR claiming a speedup commits a fresh
// BENCH_*.json, and tools/bench_compare (which wraps this) diffs it
// against the previous one. A metric regresses when its ns_per_op
// degrades by at least `threshold` (a fraction: 0.30 = 30% slower).
// Comparison is by metric name; metrics present on only one side are
// reported but are NOT regressions (benches grow new metrics across
// PRs). Cross-machine documents still compare — the caller sees
// same_machine=false and judges the numbers accordingly.

#pragma once

#include <string>
#include <vector>

namespace rapsim::perfbench {

inline constexpr double kDefaultRegressionThreshold = 0.30;

struct MetricDelta {
  std::string name;
  double baseline_ns_per_op = 0.0;
  double current_ns_per_op = 0.0;
  double baseline_ops_per_sec = 0.0;
  double current_ops_per_sec = 0.0;
  /// current / baseline ns_per_op; > 1 is slower. 0 when the baseline
  /// metric recorded no time (then nothing can regress).
  double ratio = 0.0;
  bool regressed = false;
};

struct CompareResult {
  std::string bench;             // from the baseline document
  bool same_machine = true;      // hostnames match
  std::vector<MetricDelta> deltas;          // metrics on both sides
  std::vector<std::string> only_baseline;   // names missing from current
  std::vector<std::string> only_current;    // names missing from baseline
  bool regression = false;       // any delta regressed
};

/// Compare two serialized BENCH documents. Throws std::invalid_argument
/// on malformed JSON, a schema_version other than 1, or mismatched
/// bench names.
[[nodiscard]] CompareResult compare_bench_json(
    const std::string& baseline_json, const std::string& current_json,
    double threshold = kDefaultRegressionThreshold);

}  // namespace rapsim::perfbench
