// Offline permutation on the DMM — the workload the paper positions RAP
// against (Section I; refs [8], [13] of the paper).
//
// Task: move a[i] -> b[pi(i)] for a fixed permutation pi of n = rows * w
// elements, both arrays in the banked shared memory. Two strategies:
//
//   * DIRECT: thread i reads a[i] (contiguous, congestion 1) and writes
//     b[pi(i)]. Under RAW the write congestion is whatever pi induces (up
//     to w); under RAP it drops to the generic O(log w / log log w) with
//     no analysis — the paper's pitch.
//
//   * CONFLICT-FREE (the "complicated graph coloring technique" of the
//     paper's ref [6][8]): model the movement as a bipartite multigraph
//     with the w source banks on the left, the w destination banks on the
//     right, and one edge per element. Every bank holds exactly n/w
//     elements, so the graph is (n/w)-regular; by König's theorem it has
//     a proper edge coloring with n/w colors, and each color class is a
//     perfect matching — a set of w elements touching every source bank
//     once and every destination bank once. Executing one color class per
//     warp-instruction makes BOTH the read and the write congestion
//     exactly 1 under RAW.
//
// The coloring is computed with the classical alternating-path algorithm
// (Kempe-chain flips), O(E * V): for each edge pick a color free at both
// endpoints, else flip an alternating path to make one.

#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.hpp"
#include "core/permutation.hpp"
#include "dmm/kernel.hpp"

namespace rapsim::permute {

/// Where the source and destination arrays live inside the DMM memory:
/// a occupies logical addresses [0, n), b occupies [n, 2n).
struct PermutationLayout {
  std::uint32_t width = 32;
  std::uint64_t rows = 32;  // per array; n = rows * width

  [[nodiscard]] std::uint64_t elements() const noexcept {
    return rows * width;
  }
  [[nodiscard]] std::uint64_t a_addr(std::uint64_t i) const noexcept {
    return i;
  }
  [[nodiscard]] std::uint64_t b_addr(std::uint64_t i) const noexcept {
    return elements() + i;
  }
  /// Rows the backing MatrixMap must have (a and b stacked).
  [[nodiscard]] std::uint64_t total_rows() const noexcept { return 2 * rows; }
};

/// Direct kernel: element i is handled by thread i (read a[i], write
/// b[pi(i)]), n/w warps, two instructions.
[[nodiscard]] dmm::Kernel build_direct_kernel(const core::Permutation& pi,
                                              const PermutationLayout& layout);

/// Proper edge coloring of the permutation's bank-transfer multigraph.
/// color[i] in [0, n/w) for element i; within one color, source banks
/// (i mod w under RAW) and destination banks (pi(i) mod w) are all
/// distinct.
[[nodiscard]] std::vector<std::uint32_t> color_conflict_free(
    const core::Permutation& pi, const PermutationLayout& layout);

/// Scheduled kernel: elements are reassigned to threads so that each warp
/// executes one color class; under RAW both phases are conflict-free.
[[nodiscard]] dmm::Kernel build_scheduled_kernel(
    const core::Permutation& pi, const PermutationLayout& layout);

/// Well-known hard permutations for the benches. All are permutations of
/// n = rows * width elements.
[[nodiscard]] core::Permutation transpose_permutation(std::uint32_t width);
[[nodiscard]] core::Permutation bit_reversal_permutation(std::uint32_t n);
/// pi(i) = (i * stride) mod n, gcd(stride, n) = 1 — the strided gather
/// that maximizes RAW bank conflicts when stride is a multiple of w + ...
[[nodiscard]] core::Permutation stride_permutation(std::uint32_t n,
                                                   std::uint32_t stride);

}  // namespace rapsim::permute
