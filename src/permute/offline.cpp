#include "permute/offline.hpp"

#include <numeric>
#include <stdexcept>

namespace rapsim::permute {

namespace {

constexpr std::uint32_t kNoEdge = 0xffffffffu;

}  // namespace

dmm::Kernel build_direct_kernel(const core::Permutation& pi,
                                const PermutationLayout& layout) {
  const std::uint64_t n = layout.elements();
  if (pi.size() != n) {
    throw std::invalid_argument(
        "build_direct_kernel: permutation size must equal element count");
  }
  dmm::Kernel kernel;
  kernel.num_threads = static_cast<std::uint32_t>(n);
  dmm::Instruction reads(kernel.num_threads);
  dmm::Instruction writes(kernel.num_threads);
  for (std::uint64_t i = 0; i < n; ++i) {
    reads[i] = dmm::ThreadOp::load(layout.a_addr(i));
    writes[i] = dmm::ThreadOp::store(layout.b_addr(pi[i]));
  }
  kernel.push(std::move(reads));
  kernel.push(std::move(writes));
  return kernel;
}

std::vector<std::uint32_t> color_conflict_free(
    const core::Permutation& pi, const PermutationLayout& layout) {
  const std::uint32_t w = layout.width;
  const std::uint64_t n = layout.elements();
  if (pi.size() != n) {
    throw std::invalid_argument(
        "color_conflict_free: permutation size must equal element count");
  }
  const auto degree = static_cast<std::uint32_t>(layout.rows);

  // colorAtL[u * degree + c] = edge currently colored c at left node u.
  std::vector<std::uint32_t> color_at_left(
      static_cast<std::size_t>(w) * degree, kNoEdge);
  std::vector<std::uint32_t> color_at_right(
      static_cast<std::size_t>(w) * degree, kNoEdge);
  std::vector<std::uint32_t> color(n, kNoEdge);
  std::vector<std::uint32_t> edge_left(n), edge_right(n);

  const auto first_free = [&](const std::vector<std::uint32_t>& table,
                              std::uint32_t node) {
    for (std::uint32_t c = 0; c < degree; ++c) {
      if (table[static_cast<std::size_t>(node) * degree + c] == kNoEdge) {
        return c;
      }
    }
    throw std::logic_error("color_conflict_free: no free color (not regular?)");
  };

  for (std::uint64_t e = 0; e < n; ++e) {
    const auto u = static_cast<std::uint32_t>(e % w);          // source bank
    const auto v = static_cast<std::uint32_t>(pi[e] % w);      // dest bank
    edge_left[e] = u;
    edge_right[e] = v;

    const std::uint32_t cu = first_free(color_at_left, u);
    const std::uint32_t cv = first_free(color_at_right, v);
    if (cu != cv) {
      // Free color cu at v by flipping the (cu, cv)-alternating path that
      // starts at v. The path alternates right -> left -> right ...; it
      // can never arrive back at u with color cu (u has cu free), so the
      // flip terminates and stays proper (Kempe chain argument).
      bool at_right = true;        // side of `node`
      std::uint32_t take = cu;     // color the current path edge carries
      std::uint32_t give = cv;     // color it will be flipped to
      std::uint32_t edge =
          color_at_right[static_cast<std::size_t>(v) * degree + cu];
      std::uint32_t node = v;
      while (edge != kNoEdge) {
        auto& table = at_right ? color_at_right : color_at_left;
        auto& other_table = at_right ? color_at_left : color_at_right;
        const std::uint32_t other =
            at_right ? edge_left[edge] : edge_right[edge];
        // The next path edge is the one carrying `give` at `other` — read
        // it BEFORE the recoloring overwrites that slot.
        const std::uint32_t next_edge =
            other_table[static_cast<std::size_t>(other) * degree + give];
        // Recolor `edge` from `take` to `give` at both endpoints. The
        // `take` slot at `node` may already have been overwritten by the
        // previous flip step (the path hands the slot over), so only clear
        // slots that still point at this edge.
        auto& node_take = table[static_cast<std::size_t>(node) * degree + take];
        if (node_take == edge) node_take = kNoEdge;
        auto& other_take =
            other_table[static_cast<std::size_t>(other) * degree + take];
        if (other_take == edge) other_take = kNoEdge;
        table[static_cast<std::size_t>(node) * degree + give] = edge;
        other_table[static_cast<std::size_t>(other) * degree + give] = edge;
        color[edge] = give;
        node = other;
        at_right = !at_right;
        std::swap(take, give);
        edge = next_edge;
      }
    }
    const auto edge_id = static_cast<std::uint32_t>(e);
    color[e] = cu;
    color_at_left[static_cast<std::size_t>(u) * degree + cu] = edge_id;
    color_at_right[static_cast<std::size_t>(v) * degree + cu] = edge_id;
  }
  return color;
}

dmm::Kernel build_scheduled_kernel(const core::Permutation& pi,
                                   const PermutationLayout& layout) {
  const std::uint32_t w = layout.width;
  const std::uint64_t n = layout.elements();
  const auto color = color_conflict_free(pi, layout);

  // Thread assignment: element i goes to thread color(i) * w + src_bank(i);
  // within a color class every source bank appears exactly once, so this
  // is a bijection elements -> threads and warp c executes color class c.
  dmm::Kernel kernel;
  kernel.num_threads = static_cast<std::uint32_t>(n);
  dmm::Instruction reads(kernel.num_threads);
  dmm::Instruction writes(kernel.num_threads);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t thread =
        static_cast<std::uint64_t>(color[i]) * w + (i % w);
    reads[thread] = dmm::ThreadOp::load(layout.a_addr(i));
    writes[thread] = dmm::ThreadOp::store(layout.b_addr(pi[i]));
  }
  kernel.push(std::move(reads));
  kernel.push(std::move(writes));
  return kernel;
}

core::Permutation transpose_permutation(std::uint32_t width) {
  const std::uint64_t n = static_cast<std::uint64_t>(width) * width;
  std::vector<std::uint32_t> image(n);
  for (std::uint32_t i = 0; i < width; ++i) {
    for (std::uint32_t j = 0; j < width; ++j) {
      image[static_cast<std::size_t>(i) * width + j] = j * width + i;
    }
  }
  return core::Permutation(std::move(image));
}

core::Permutation bit_reversal_permutation(std::uint32_t n) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument(
        "bit_reversal_permutation: n must be a power of two");
  }
  std::uint32_t bits = 0;
  while ((1u << bits) < n) ++bits;
  std::vector<std::uint32_t> image(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t rev = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      rev |= ((i >> b) & 1u) << (bits - 1 - b);
    }
    image[i] = rev;
  }
  return core::Permutation(std::move(image));
}

core::Permutation stride_permutation(std::uint32_t n, std::uint32_t stride) {
  if (std::gcd(n, stride) != 1) {
    throw std::invalid_argument(
        "stride_permutation: stride must be coprime with n");
  }
  std::vector<std::uint32_t> image(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    image[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(i) * stride) % n);
  }
  return core::Permutation(std::move(image));
}

}  // namespace rapsim::permute
