// Multi-SM grid execution model.
//
// CUDA launches a grid of independent thread blocks; a GPU with S
// streaming multiprocessors executes them S at a time, each SM picking
// the next queued block as soon as it finishes its current one (FIFO
// list scheduling). The paper's experiments are single-SM (one 32x32
// tile), but its motivating workloads (Section I) tile a large problem
// into many such blocks — this model turns per-block costs measured on
// the DMM/HMM into a whole-GPU makespan, so the tiled benches can report
// grid-level scaling. GeForce GTX TITAN, the paper's card, has 14 SMXs.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rapsim::gpu {

struct GridConfig {
  std::uint32_t num_sms = 14;          // GTX TITAN: 14 SMX units
  std::uint64_t block_overhead = 0;    // fixed cost added to every block
};

struct GridSchedule {
  std::uint64_t makespan = 0;           // completion time of the last block
  std::vector<std::uint64_t> sm_busy;   // total busy time per SM
  std::vector<std::uint32_t> block_sm;  // SM each block ran on
};

/// FIFO list scheduling of `block_costs` over config.num_sms identical
/// SMs: block i is assigned, in index order, to the SM that becomes free
/// earliest (ties to the lowest SM id). This is the classic Graham list
/// schedule: makespan <= (1 + 1/S) * optimum, and is how hardware block
/// dispatchers behave to first order.
[[nodiscard]] GridSchedule schedule_blocks(
    std::span<const std::uint64_t> block_costs, const GridConfig& config);

}  // namespace rapsim::gpu
