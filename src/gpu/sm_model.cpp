#include "gpu/sm_model.hpp"

#include <stdexcept>

namespace rapsim::gpu {

SmTimingParams SmTimingParams::calibrate(std::uint64_t stages_a, double ns_a,
                                         std::uint64_t stages_b,
                                         double ns_b) {
  if (stages_a == stages_b) {
    throw std::invalid_argument(
        "SmTimingParams::calibrate: anchors need distinct stage counts");
  }
  SmTimingParams params;
  params.stage_ns = (ns_a - ns_b) / (static_cast<double>(stages_a) -
                                     static_cast<double>(stages_b));
  params.launch_ns = ns_a - static_cast<double>(stages_a) * params.stage_ns;
  if (params.stage_ns <= 0.0 || params.launch_ns < 0.0) {
    throw std::invalid_argument(
        "SmTimingParams::calibrate: anchors imply non-physical constants");
  }
  return params;
}

double SmTimingParams::addr_overhead_ns(core::Scheme scheme) const noexcept {
  switch (scheme) {
    case core::Scheme::kRaw:
      return addr_raw_ns;
    case core::Scheme::kRas:
      return addr_ras_ns;
    default:
      // All RAP variants share the register-packed shift computation.
      return addr_rap_ns;
  }
}

double estimate_kernel_time_ns(const dmm::Trace& trace, core::Scheme scheme,
                               const SmTimingParams& params) {
  hier::DispatchTotals totals;
  for (const auto& d : trace.dispatches) totals.add(d.stages, d.completion);
  return estimate_time_ns(totals, scheme, params);
}

double estimate_time_ns(const hier::DispatchTotals& totals,
                        core::Scheme scheme, const SmTimingParams& params) {
  return estimate_time_ns(totals.total_stages, totals.dispatches, scheme,
                          params);
}

double estimate_time_ns(std::uint64_t total_stages, std::uint64_t dispatches,
                        core::Scheme scheme, const SmTimingParams& params) {
  return params.launch_ns +
         static_cast<double>(total_stages) * params.stage_ns +
         static_cast<double>(dispatches) * params.addr_overhead_ns(scheme);
}

}  // namespace rapsim::gpu
