// Packed storage of the RAP random numbers in local registers (Figure 7).
//
// On the GPU, the RAP implementation keeps the w random shift values
// (5 bits each for w = 32) packed in ceil(w / floor(32/5)) = 6 local
// 32-bit registers; shift i is recovered as
//
//     (r[i / 6] >> (5 * (i % 6))) & 0x1f
//
// matching the paper's CUDA snippet. This module implements the packing
// generically (any width that is a power of two up to 2^16) so the RAP
// address computation the timing model charges for is the real one, and
// the micro benchmark can measure its cost on the host.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rapsim::gpu {

/// Bits needed to store values in [0, width): ceil(log2(width)).
[[nodiscard]] std::uint32_t bits_for_width(std::uint32_t width) noexcept;

/// Pack `values` (each < width) into 32-bit words, floor(32/bits) values
/// per word, little-end first — the layout of Figure 7.
class PackedShifts {
 public:
  PackedShifts(std::span<const std::uint32_t> values, std::uint32_t width);

  /// Recover value i: (words[i / vpw] >> (bits * (i % vpw))) & mask.
  [[nodiscard]] std::uint32_t get(std::uint32_t i) const noexcept {
    return (words_[i / values_per_word_] >>
            (bits_ * (i % values_per_word_))) &
           mask_;
  }

  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t values_per_word() const noexcept {
    return values_per_word_;
  }
  [[nodiscard]] std::span<const std::uint32_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }

 private:
  std::uint32_t bits_;
  std::uint32_t mask_;
  std::uint32_t values_per_word_;
  std::uint32_t count_;
  std::vector<std::uint32_t> words_;
};

}  // namespace rapsim::gpu
