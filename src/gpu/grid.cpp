#include "gpu/grid.hpp"

#include <queue>
#include <stdexcept>
#include <utility>

namespace rapsim::gpu {

GridSchedule schedule_blocks(std::span<const std::uint64_t> block_costs,
                             const GridConfig& config) {
  if (config.num_sms == 0) {
    throw std::invalid_argument("schedule_blocks: need at least one SM");
  }
  GridSchedule schedule;
  schedule.sm_busy.assign(config.num_sms, 0);
  schedule.block_sm.reserve(block_costs.size());

  // Min-heap of (free_time, sm); lowest id wins ties via the pair order.
  using Slot = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::uint32_t sm = 0; sm < config.num_sms; ++sm) {
    free_at.emplace(0, sm);
  }

  for (const std::uint64_t cost : block_costs) {
    auto [when, sm] = free_at.top();
    free_at.pop();
    const std::uint64_t finish = when + cost + config.block_overhead;
    schedule.sm_busy[sm] += cost + config.block_overhead;
    schedule.block_sm.push_back(sm);
    schedule.makespan = std::max(schedule.makespan, finish);
    free_at.emplace(finish, sm);
  }
  return schedule;
}

}  // namespace rapsim::gpu
