#include "gpu/register_pack.hpp"

#include <stdexcept>

namespace rapsim::gpu {

std::uint32_t bits_for_width(std::uint32_t width) noexcept {
  std::uint32_t bits = 0;
  while ((1u << bits) < width) ++bits;
  return bits == 0 ? 1 : bits;
}

PackedShifts::PackedShifts(std::span<const std::uint32_t> values,
                           std::uint32_t width)
    : bits_(bits_for_width(width)),
      mask_((bits_ >= 32) ? 0xffffffffu : ((1u << bits_) - 1)),
      values_per_word_(32 / bits_),
      count_(static_cast<std::uint32_t>(values.size())) {
  if (bits_ > 16) {
    throw std::invalid_argument("PackedShifts: width too large (bits > 16)");
  }
  const std::uint32_t num_words =
      (count_ + values_per_word_ - 1) / values_per_word_;
  words_.assign(num_words, 0);
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (values[i] >= width) {
      throw std::invalid_argument("PackedShifts: value out of range");
    }
    words_[i / values_per_word_] |=
        values[i] << (bits_ * (i % values_per_word_));
  }
}

}  // namespace rapsim::gpu
