// Streaming-multiprocessor timing model — the substitute for the paper's
// GeForce GTX TITAN measurements (Table III).
//
// No GPU is available in this reproduction, so kernel times are estimated
// from the DMM execution trace with a three-term linear model:
//
//   t = t_launch + sum over dispatched warp-instructions of
//         (congestion * t_stage  +  t_addr(scheme))
//
//   * t_launch — fixed kernel overhead (launch, staging the matrix through
//     registers/global memory); one constant for all kernels.
//   * t_stage  — shared-memory bank service time per pipeline slot; on real
//     hardware a warp's shared-memory instruction is replayed once per
//     extra conflicting request, which is exactly "congestion slots".
//   * t_addr   — extra address-computation time per warp-instruction:
//     0 for RAW; small for RAP (the shift is two register ops: a 5-bit
//     extract from a packed register, an add and a mask — see
//     register_pack.hpp / Figure 7); larger for RAS (its w per-row offsets
//     exceed the register budget and spill to shared memory, adding a load
//     to every access).
//
// The two hardware constants (t_launch, t_stage) are calibrated once
// against the paper's RAW row of Table III; every other cell is then a
// prediction. EXPERIMENTS.md reports paper-vs-model for all nine cells.

#pragma once

#include <cstdint>

#include "core/mapping.hpp"
#include "dmm/trace.hpp"
#include "hier/event.hpp"

namespace rapsim::gpu {

struct SmTimingParams {
  double launch_ns = 60.0;   // t_launch
  double stage_ns = 1.45;    // t_stage (per congestion slot)
  double addr_raw_ns = 0.0;  // t_addr per warp-instruction, RAW
  double addr_ras_ns = 0.55; // t_addr per warp-instruction, RAS
  double addr_rap_ns = 0.10; // t_addr per warp-instruction, RAP

  /// Constants calibrated against Table III's RAW column (see header
  /// comment): solves t_launch + 1056 * t_stage = 1595 ns (CRSW) and
  /// t_launch + 64 * t_stage = 158.4 ns (DRDW) approximately.
  [[nodiscard]] static SmTimingParams titan_calibrated() {
    return SmTimingParams{};
  }

  /// Fit t_launch and t_stage from two anchor kernels of the scheme with
  /// zero address overhead (RAW): measured times ns_a/ns_b for kernels
  /// occupying stages_a/stages_b pipeline slots. Throws if the anchors
  /// are degenerate (equal stage counts) or yield negative constants.
  [[nodiscard]] static SmTimingParams calibrate(std::uint64_t stages_a,
                                                double ns_a,
                                                std::uint64_t stages_b,
                                                double ns_b);

  [[nodiscard]] double addr_overhead_ns(core::Scheme scheme) const noexcept;
};

/// Estimated kernel time (ns) from a DMM trace under `scheme`. Re-sums
/// the trace into hier::DispatchTotals — the same accumulator the live
/// event core maintains — and defers to the totals overload.
[[nodiscard]] double estimate_kernel_time_ns(const dmm::Trace& trace,
                                             core::Scheme scheme,
                                             const SmTimingParams& params);

/// Estimate straight from the event core's dispatch accumulator (what
/// the hierarchy simulator holds per SM after a run).
[[nodiscard]] double estimate_time_ns(const hier::DispatchTotals& totals,
                                      core::Scheme scheme,
                                      const SmTimingParams& params);

/// Closed-form estimate when only aggregate stage counts are known.
[[nodiscard]] double estimate_time_ns(std::uint64_t total_stages,
                                      std::uint64_t dispatches,
                                      core::Scheme scheme,
                                      const SmTimingParams& params);

}  // namespace rapsim::gpu
