// Hierarchical Memory Machine: global memory + shared memory.
//
// Real CUDA kernels stage data between a large, slow, coalescing-sensitive
// global memory and the banked shared memory the paper studies; the
// paper's own motivation (Section I) is that algorithms for big inputs
// "repeat offline permutation / multiplication of 32x32 matrices in the
// shared memory". Following the Hierarchical Memory Machine of the
// paper's ref [14], we compose the two machines already in this library:
//
//   * global memory — a UMM (one broadcast address line: a warp access
//     costs one pipeline slot per distinct 32-word row it touches, which
//     is exactly CUDA's coalescing rule) with a large latency, always
//     direct-mapped (bank swizzling is a shared-memory concern);
//   * shared memory — a DMM over any AddressMap (RAW / RAS / RAP).
//
// A kernel alternates copy phases between the two; the Hmm runs each
// phase on the machine that owns the addresses and accumulates both
// clocks. Phases are modeled as non-overlapping (a conservative
// simplification: a real SM overlaps global loads with shared stores;
// the *ordering* between layouts is unaffected because every variant
// pays the same global cost).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/mapping2d.hpp"
#include "dmm/machine.hpp"
#include "dmm/umm.hpp"
#include "telemetry/metrics.hpp"

namespace rapsim::hmm {

struct HmmConfig {
  std::uint32_t width = 32;           // warp size / banks / coalesce unit
  std::uint32_t shared_latency = 1;   // DMM pipeline latency
  std::uint32_t global_latency = 32;  // UMM pipeline latency (DRAM-ish)
};

/// One thread's slot in a copy phase.
struct CopyOp {
  std::uint64_t global = 0;  // logical address in global memory
  std::uint64_t shared = 0;  // logical address in shared memory
};
using CopyPhase = std::vector<std::optional<CopyOp>>;  // per thread

/// Accumulated cost of an Hmm run.
struct HmmStats {
  std::uint64_t global_time = 0;   // UMM time units
  std::uint64_t shared_time = 0;   // DMM time units
  std::uint64_t global_slots = 0;  // coalescing metric (rows touched)
  std::uint64_t shared_slots = 0;  // bank-conflict metric (congestion sum)

  /// Register the four accumulators under the given labels as counters
  /// hmm.global_time_units, hmm.shared_time_units, hmm.global_slots and
  /// hmm.shared_slots — the same registry document every other
  /// subsystem's telemetry flows into (results/metrics/ consumers).
  void flush_into(telemetry::MetricsRegistry& registry,
                  const telemetry::Labels& labels) const;
};

/// Global + shared machine pair. `shared_map` governs the shared memory
/// layout; global memory is always direct-mapped.
class Hmm {
 public:
  Hmm(HmmConfig config, const core::AddressMap& shared_map,
      std::uint64_t global_words);

  // Host-side access for setup / verification.
  [[nodiscard]] std::uint64_t global_load(std::uint64_t addr) const;
  void global_store(std::uint64_t addr, std::uint64_t value);
  [[nodiscard]] std::uint64_t shared_load(std::uint64_t addr) const;
  void shared_store(std::uint64_t addr, std::uint64_t value);

  /// Copy global -> shared with `num_threads` threads (one op per thread,
  /// nullopt = inactive). Moves the data and charges the UMM for the
  /// reads and the DMM for the writes.
  void copy_in(const CopyPhase& phase, std::uint32_t num_threads);

  /// Copy shared -> global: DMM reads, UMM writes.
  void copy_out(const CopyPhase& phase, std::uint32_t num_threads);

  /// Copy global -> global without staging through shared memory (the
  /// "naive" pattern); both instructions are charged to the UMM. Here the
  /// CopyOp's `global` field is the source and `shared` the destination
  /// (also a global address).
  void copy_global(const CopyPhase& phase, std::uint32_t num_threads);

  /// Run a compute kernel entirely in shared memory (charged to the DMM).
  void run_shared(const dmm::Kernel& kernel);

  [[nodiscard]] const HmmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const HmmConfig& config() const noexcept { return config_; }

 private:
  void charge_global(const dmm::RunStats& run);
  void charge_shared(const dmm::RunStats& run);

  HmmConfig config_;
  core::RawMap global_map_;
  dmm::Dmm global_;  // UMM accounting
  dmm::Dmm shared_;  // DMM accounting
  HmmStats stats_;
};

}  // namespace rapsim::hmm
