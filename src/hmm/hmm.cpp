#include "hmm/hmm.hpp"

#include <stdexcept>

namespace rapsim::hmm {

Hmm::Hmm(HmmConfig config, const core::AddressMap& shared_map,
         std::uint64_t global_words)
    : config_(config),
      global_map_(config.width, (global_words + config.width - 1) /
                                    config.width),
      global_(dmm::umm_config(config.width, config.global_latency),
              global_map_),
      shared_(dmm::dmm_config(config.width, config.shared_latency),
              shared_map) {
  if (shared_map.width() != config.width) {
    throw std::invalid_argument("Hmm: shared map width must match config");
  }
}

std::uint64_t Hmm::global_load(std::uint64_t addr) const {
  return global_.load(addr);
}

void Hmm::global_store(std::uint64_t addr, std::uint64_t value) {
  global_.store(addr, value);
}

std::uint64_t Hmm::shared_load(std::uint64_t addr) const {
  return shared_.load(addr);
}

void Hmm::shared_store(std::uint64_t addr, std::uint64_t value) {
  shared_.store(addr, value);
}

void Hmm::charge_global(const dmm::RunStats& run) {
  stats_.global_time += run.time;
  stats_.global_slots += run.total_stages;
}

void Hmm::charge_shared(const dmm::RunStats& run) {
  stats_.shared_time += run.time;
  stats_.shared_slots += run.total_stages;
}

void Hmm::copy_in(const CopyPhase& phase, std::uint32_t num_threads) {
  if (phase.size() != num_threads) {
    throw std::invalid_argument("Hmm::copy_in: one op per thread required");
  }
  // Timing: the global machine executes the loads, the shared machine the
  // stores. Data: moved host-side between the two memories.
  dmm::Kernel global_kernel{num_threads, {}, {}};
  dmm::Kernel shared_kernel{num_threads, {}, {}};
  dmm::Instruction loads(num_threads), stores(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    if (!phase[t]) continue;
    loads[t] = dmm::ThreadOp::load(phase[t]->global);
    stores[t] = dmm::ThreadOp::store_imm(phase[t]->shared,
                                         global_.load(phase[t]->global));
  }
  global_kernel.push(std::move(loads));
  shared_kernel.push(std::move(stores));
  charge_global(global_.run(global_kernel));
  charge_shared(shared_.run(shared_kernel));
}

void Hmm::copy_out(const CopyPhase& phase, std::uint32_t num_threads) {
  if (phase.size() != num_threads) {
    throw std::invalid_argument("Hmm::copy_out: one op per thread required");
  }
  dmm::Kernel shared_kernel{num_threads, {}, {}};
  dmm::Kernel global_kernel{num_threads, {}, {}};
  dmm::Instruction loads(num_threads), stores(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    if (!phase[t]) continue;
    loads[t] = dmm::ThreadOp::load(phase[t]->shared);
    stores[t] = dmm::ThreadOp::store_imm(phase[t]->global,
                                         shared_.load(phase[t]->shared));
  }
  shared_kernel.push(std::move(loads));
  global_kernel.push(std::move(stores));
  charge_shared(shared_.run(shared_kernel));
  charge_global(global_.run(global_kernel));
}

void Hmm::copy_global(const CopyPhase& phase, std::uint32_t num_threads) {
  if (phase.size() != num_threads) {
    throw std::invalid_argument(
        "Hmm::copy_global: one op per thread required");
  }
  dmm::Kernel kernel{num_threads, {}, {}};
  dmm::Instruction loads(num_threads), stores(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    if (!phase[t]) continue;
    loads[t] = dmm::ThreadOp::load(phase[t]->global);
    stores[t] = dmm::ThreadOp::store(phase[t]->shared);
  }
  kernel.push(std::move(loads));
  kernel.push(std::move(stores));
  charge_global(global_.run(kernel));
}

void Hmm::run_shared(const dmm::Kernel& kernel) {
  charge_shared(shared_.run(kernel));
}

void HmmStats::flush_into(telemetry::MetricsRegistry& registry,
                          const telemetry::Labels& labels) const {
  registry.counter("hmm.global_time_units", labels).set(global_time);
  registry.counter("hmm.shared_time_units", labels).set(shared_time);
  registry.counter("hmm.global_slots", labels).set(global_slots);
  registry.counter("hmm.shared_slots", labels).set(shared_slots);
}

}  // namespace rapsim::hmm
