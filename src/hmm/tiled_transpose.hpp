// Tiled transpose of a large N x N matrix through shared-memory tiles —
// the workload the paper's Section I motivates ("many algorithms ...
// repeat [work on] 32x32 matrices in the shared memory").
//
// Three strategies, all using p = w^2 threads per tile step:
//
//   * NAIVE      — each warp reads a row segment of A (coalesced) and
//                  writes it as a column segment of B: w distinct global
//                  rows per warp write — fully uncoalesced, the global
//                  memory eats w slots per warp.
//   * TILED      — the classic CUDA pattern: stage a w x w tile through
//                  shared memory. Global reads AND writes are coalesced;
//                  the transpose happens in shared memory, where the
//                  column-order access has congestion w under RAW (the
//                  classic shared-memory bank conflict), ~3.5 under RAS,
//                  and exactly 1 under RAP.
//   * TILED_DIAG — tiled plus the hand-tuned diagonal shared access
//                  (DRDW-style), the expert fix RAP makes unnecessary.
//
// The report separates global and shared time so the crossover structure
// is visible: naive loses on global coalescing; tiled+RAW loses on shared
// banks; tiled+RAP matches tiled+diagonal without any hand-tuning.

#pragma once

#include <cstdint>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "hmm/hmm.hpp"

namespace rapsim::hmm {

enum class TransposeStrategy { kNaive, kTiled, kTiledDiagonal };

[[nodiscard]] const char* strategy_name(TransposeStrategy strategy) noexcept;

struct TiledTransposeConfig {
  std::uint32_t width = 32;           // w: warp size, tile edge
  std::uint32_t tiles = 4;            // N = tiles * width
  std::uint32_t shared_latency = 1;
  std::uint32_t global_latency = 32;
  // Cost of one global time unit relative to one shared time unit. An
  // extra uncoalesced global transaction is a full DRAM burst; an extra
  // shared-memory replay is one SM cycle — about an order of magnitude
  // apart on real hardware.
  std::uint32_t global_cost_weight = 8;

  [[nodiscard]] std::uint64_t n() const noexcept {
    return static_cast<std::uint64_t>(tiles) * width;
  }
};

struct TiledTransposeReport {
  bool correct = false;
  HmmStats stats;
  std::uint32_t global_cost_weight = 8;

  /// Unweighted sum of both clocks (time units).
  [[nodiscard]] std::uint64_t total_time() const noexcept {
    return stats.global_time + stats.shared_time;
  }
  /// Weighted cost: global time units are global_cost_weight times more
  /// expensive than shared ones (see TiledTransposeConfig).
  [[nodiscard]] std::uint64_t total_cost() const noexcept {
    return stats.global_time * global_cost_weight + stats.shared_time;
  }
};

/// Loop-nest IR of the SHARED-memory side of one tile step (the part the
/// banked-memory passes can certify; the global side is a coalescing
/// question, not a bank question). Only kTiled and kTiledDiagonal touch
/// shared memory; kNaive throws std::invalid_argument.
[[nodiscard]] analyze::KernelDesc describe_tiled_transpose_shared(
    TransposeStrategy strategy, std::uint32_t width);

/// Transpose an N x N matrix (A at global [0, N^2), B at [N^2, 2 N^2))
/// with `strategy`; `scheme` selects the shared-memory layout (ignored by
/// kNaive, which never touches shared memory). The mapping's random draw
/// comes from `seed`.
[[nodiscard]] TiledTransposeReport run_tiled_transpose(
    TransposeStrategy strategy, core::Scheme scheme,
    const TiledTransposeConfig& config, std::uint64_t seed);

}  // namespace rapsim::hmm
