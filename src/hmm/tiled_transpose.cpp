#include "hmm/tiled_transpose.hpp"

#include <memory>

#include "core/factory.hpp"

namespace rapsim::hmm {

const char* strategy_name(TransposeStrategy strategy) noexcept {
  switch (strategy) {
    case TransposeStrategy::kNaive: return "naive";
    case TransposeStrategy::kTiled: return "tiled";
    case TransposeStrategy::kTiledDiagonal: return "tiled+diag";
  }
  return "?";
}

namespace {

struct GlobalLayout {
  std::uint64_t n;  // matrix edge
  [[nodiscard]] std::uint64_t a(std::uint64_t i, std::uint64_t j) const {
    return i * n + j;
  }
  [[nodiscard]] std::uint64_t b(std::uint64_t i, std::uint64_t j) const {
    return n * n + i * n + j;
  }
};

}  // namespace

TiledTransposeReport run_tiled_transpose(TransposeStrategy strategy,
                                         core::Scheme scheme,
                                         const TiledTransposeConfig& config,
                                         std::uint64_t seed) {
  const std::uint32_t w = config.width;
  const GlobalLayout g{config.n()};
  const std::uint32_t threads = w * w;

  // One w x w shared tile, reused for every tile step.
  const auto shared_map = core::make_matrix_map(scheme, w, w, seed);
  Hmm machine(HmmConfig{w, config.shared_latency, config.global_latency},
              *shared_map, 2 * g.n * g.n);

  // Distinguishable input: A[i][j] = i * N + j + 1.
  for (std::uint64_t i = 0; i < g.n; ++i) {
    for (std::uint64_t j = 0; j < g.n; ++j) {
      machine.global_store(g.a(i, j), i * g.n + j + 1);
    }
  }

  for (std::uint32_t ti = 0; ti < config.tiles; ++ti) {
    for (std::uint32_t tj = 0; tj < config.tiles; ++tj) {
      const std::uint64_t row0 = static_cast<std::uint64_t>(ti) * w;
      const std::uint64_t col0 = static_cast<std::uint64_t>(tj) * w;

      switch (strategy) {
        case TransposeStrategy::kNaive: {
          // B[col0+j][row0+i] <- A[row0+i][col0+j]: coalesced read, fully
          // uncoalesced write.
          CopyPhase phase(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              phase[i * w + j] =
                  CopyOp{g.a(row0 + i, col0 + j), g.b(col0 + j, row0 + i)};
            }
          }
          machine.copy_global(phase, threads);
          break;
        }
        case TransposeStrategy::kTiled: {
          // Stage through shared: load rows, store columns (the shared
          // column read is where RAW pays w-way bank conflicts).
          CopyPhase in(threads), out(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              in[i * w + j] = CopyOp{g.a(row0 + i, col0 + j),
                                     shared_map->index(i, j)};
              out[i * w + j] = CopyOp{g.b(col0 + i, row0 + j),
                                      shared_map->index(j, i)};
            }
          }
          machine.copy_in(in, threads);
          machine.copy_out(out, threads);
          break;
        }
        case TransposeStrategy::kTiledDiagonal: {
          // The expert fix: skew the shared column so both phases are
          // conflict-free under RAW (DRDW's trick applied to tiling).
          CopyPhase in(threads), out(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              const std::uint32_t c = (i + j) % w;
              in[i * w + j] = CopyOp{g.a(row0 + i, col0 + j),
                                     shared_map->index(i, c)};
              out[i * w + j] = CopyOp{g.b(col0 + i, row0 + j),
                                      shared_map->index(j, c)};
            }
          }
          machine.copy_in(in, threads);
          machine.copy_out(out, threads);
          break;
        }
      }
    }
  }

  TiledTransposeReport report;
  report.stats = machine.stats();
  report.global_cost_weight = config.global_cost_weight;
  report.correct = true;
  for (std::uint64_t i = 0; i < g.n && report.correct; ++i) {
    for (std::uint64_t j = 0; j < g.n; ++j) {
      if (machine.global_load(g.b(i, j)) != j * g.n + i + 1) {
        report.correct = false;
        break;
      }
    }
  }
  return report;
}

}  // namespace rapsim::hmm
