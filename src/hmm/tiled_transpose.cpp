#include "hmm/tiled_transpose.hpp"

#include <memory>
#include <stdexcept>

#include "core/factory.hpp"

namespace rapsim::hmm {

const char* strategy_name(TransposeStrategy strategy) noexcept {
  switch (strategy) {
    case TransposeStrategy::kNaive: return "naive";
    case TransposeStrategy::kTiled: return "tiled";
    case TransposeStrategy::kTiledDiagonal: return "tiled+diag";
  }
  return "?";
}

namespace {

struct GlobalLayout {
  std::uint64_t n;  // matrix edge
  [[nodiscard]] std::uint64_t a(std::uint64_t i, std::uint64_t j) const {
    return i * n + j;
  }
  [[nodiscard]] std::uint64_t b(std::uint64_t i, std::uint64_t j) const {
    return n * n + i * n + j;
  }
};

}  // namespace

TiledTransposeReport run_tiled_transpose(TransposeStrategy strategy,
                                         core::Scheme scheme,
                                         const TiledTransposeConfig& config,
                                         std::uint64_t seed) {
  const std::uint32_t w = config.width;
  const GlobalLayout g{config.n()};
  const std::uint32_t threads = w * w;

  // One w x w shared tile, reused for every tile step.
  const auto shared_map = core::make_matrix_map(scheme, w, w, seed);
  Hmm machine(HmmConfig{w, config.shared_latency, config.global_latency},
              *shared_map, 2 * g.n * g.n);

  // Distinguishable input: A[i][j] = i * N + j + 1.
  for (std::uint64_t i = 0; i < g.n; ++i) {
    for (std::uint64_t j = 0; j < g.n; ++j) {
      machine.global_store(g.a(i, j), i * g.n + j + 1);
    }
  }

  for (std::uint32_t ti = 0; ti < config.tiles; ++ti) {
    for (std::uint32_t tj = 0; tj < config.tiles; ++tj) {
      const std::uint64_t row0 = static_cast<std::uint64_t>(ti) * w;
      const std::uint64_t col0 = static_cast<std::uint64_t>(tj) * w;

      switch (strategy) {
        case TransposeStrategy::kNaive: {
          // B[col0+j][row0+i] <- A[row0+i][col0+j]: coalesced read, fully
          // uncoalesced write.
          CopyPhase phase(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              phase[i * w + j] =
                  CopyOp{g.a(row0 + i, col0 + j), g.b(col0 + j, row0 + i)};
            }
          }
          machine.copy_global(phase, threads);
          break;
        }
        case TransposeStrategy::kTiled: {
          // Stage through shared: load rows, store columns (the shared
          // column read is where RAW pays w-way bank conflicts).
          CopyPhase in(threads), out(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              in[i * w + j] = CopyOp{g.a(row0 + i, col0 + j),
                                     shared_map->index(i, j)};
              out[i * w + j] = CopyOp{g.b(col0 + i, row0 + j),
                                      shared_map->index(j, i)};
            }
          }
          machine.copy_in(in, threads);
          machine.copy_out(out, threads);
          break;
        }
        case TransposeStrategy::kTiledDiagonal: {
          // The expert fix: skew the shared column so both phases are
          // conflict-free under RAW (DRDW's trick applied to tiling).
          CopyPhase in(threads), out(threads);
          for (std::uint32_t i = 0; i < w; ++i) {
            for (std::uint32_t j = 0; j < w; ++j) {
              const std::uint32_t c = (i + j) % w;
              in[i * w + j] = CopyOp{g.a(row0 + i, col0 + j),
                                     shared_map->index(i, c)};
              out[i * w + j] = CopyOp{g.b(col0 + i, row0 + j),
                                      shared_map->index(j, c)};
            }
          }
          machine.copy_in(in, threads);
          machine.copy_out(out, threads);
          break;
        }
      }
    }
  }

  TiledTransposeReport report;
  report.stats = machine.stats();
  report.global_cost_weight = config.global_cost_weight;
  report.correct = true;
  for (std::uint64_t i = 0; i < g.n && report.correct; ++i) {
    for (std::uint64_t j = 0; j < g.n; ++j) {
      if (machine.global_load(g.b(i, j)) != j * g.n + i + 1) {
        report.correct = false;
        break;
      }
    }
  }
  return report;
}

analyze::KernelDesc describe_tiled_transpose_shared(
    TransposeStrategy strategy, std::uint32_t width) {
  if (strategy == TransposeStrategy::kNaive) {
    throw std::invalid_argument(
        "describe_tiled_transpose_shared: the naive strategy never touches "
        "shared memory");
  }
  using analyze::AccessDir;
  using analyze::AccessSite;
  using analyze::IndexForm;
  const std::int64_t w = width;

  analyze::KernelDesc kernel;
  kernel.name = std::string("tiled-transpose-") + strategy_name(strategy);
  kernel.width = width;
  kernel.rows = width;  // one w x w tile
  kernel.vars = {{"u", width}};  // warp index = tile row i

  AccessSite stage;
  stage.name = "stage tile[i][*]";
  stage.dir = AccessDir::kStore;
  stage.warp = "u";
  AccessSite drain;
  drain.name = "drain tile[*][i]";
  drain.dir = AccessDir::kLoad;
  drain.warp = "u";
  if (strategy == TransposeStrategy::kTiled) {
    // In: tile[i][j] = u*w + lane (rows). Out: tile[j][i] = lane*w + u
    // (columns — the classic stride-w bank conflict under RAW).
    stage.flat = {0, 1, {w}};
    drain.flat = {0, w, {1}};
  } else {
    // Diagonal skew c = (i + j) % w on the column of both phases.
    stage.form = IndexForm::kRowCol;
    stage.row = {0, 0, {1}};
    stage.col = {0, 1, {1}};
    drain.form = IndexForm::kRowCol;
    drain.row = {0, 1, {0}};
    drain.col = {0, 1, {1}};
  }
  // The __syncthreads() between staging and draining: warp u's drain
  // reads every warp's staged row, so without it the RAW race the
  // happens-before pass reports is real.
  kernel.sites.push_back(std::move(stage));
  kernel.add_barrier();
  kernel.sites.push_back(std::move(drain));
  return kernel;
}

}  // namespace rapsim::hmm
