#include "replay/racecheck.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/factory.hpp"
#include "dmm/machine.hpp"

namespace rapsim::replay {

namespace {

constexpr std::size_t kNoVar = static_cast<std::size_t>(-1);

std::size_t warp_var_of(const analyze::KernelDesc& kernel,
                        const analyze::AccessSite& site) {
  if (site.warp.empty()) return kNoVar;
  return kernel.var_index(site.warp);
}

/// Variables whose value changes the site's addresses, excluding the
/// warp variable (enumerated inside each instruction, not across them).
/// Opaque indices may read any binding entry, so every variable counts.
std::vector<std::size_t> enumerated_vars(const analyze::KernelDesc& kernel,
                                         const analyze::AccessSite& site,
                                         std::size_t warp_var) {
  std::vector<std::size_t> vars;
  for (std::size_t v = 0; v < kernel.vars.size(); ++v) {
    if (v == warp_var) continue;
    bool relevant = true;
    switch (site.form) {
      case analyze::IndexForm::kFlat:
        relevant = site.flat.coeff(v) != 0;
        break;
      case analyze::IndexForm::kRowCol:
        relevant = site.row.coeff(v) != 0 || site.col.coeff(v) != 0;
        break;
      case analyze::IndexForm::kOpaque:
        relevant = true;
        break;
    }
    if (relevant) vars.push_back(v);
  }
  return vars;
}

dmm::ThreadOp make_op(analyze::AccessDir dir, std::uint64_t addr) {
  switch (dir) {
    case analyze::AccessDir::kLoad: return dmm::ThreadOp::load(addr);
    case analyze::AccessDir::kStore:
      // Race detection is value-independent; stores write immediate
      // zeros so lowering needs no register state.
      return dmm::ThreadOp::store_imm(addr, 0);
    case analyze::AccessDir::kAtomic: return dmm::ThreadOp::atomic_add(addr);
  }
  return dmm::ThreadOp::none();
}

}  // namespace

LoweredKernel lower_kernel_desc(const analyze::KernelDesc& kernel,
                                std::uint64_t max_instructions) {
  const auto errors = analyze::validate_kernel(kernel);
  if (!errors.empty()) {
    throw std::invalid_argument("lower_kernel_desc: kernel '" + kernel.name +
                                "' is invalid: " + errors.front());
  }
  const std::uint32_t w = kernel.width;

  // One warp per value of any site's warp variable; warp-less sites run
  // in warp 0 alone.
  std::uint64_t num_warps = 1;
  for (const analyze::AccessSite& site : kernel.sites) {
    const std::size_t wv = warp_var_of(kernel, site);
    if (wv != kNoVar) {
      num_warps = std::max(num_warps, kernel.vars[wv].count);
    }
  }

  LoweredKernel out;
  out.kernel.num_threads = static_cast<std::uint32_t>(num_warps) * w;

  std::size_t next_barrier = 0;
  for (std::size_t s = 0; s <= kernel.sites.size(); ++s) {
    while (next_barrier < kernel.barriers.size() &&
           kernel.barriers[next_barrier] == s) {
      out.kernel.push_barrier();
      ++next_barrier;
    }
    if (s == kernel.sites.size() || out.truncated) continue;

    const analyze::AccessSite& site = kernel.sites[s];
    const std::size_t wv = warp_var_of(kernel, site);
    const std::uint64_t warps = wv == kNoVar ? 1 : kernel.vars[wv].count;
    const std::uint32_t lanes = site.lanes == 0 ? w : site.lanes;
    const std::vector<std::size_t> loop_vars =
        enumerated_vars(kernel, site, wv);

    // Odometer over the non-warp variables; each binding is one
    // instruction in which EVERY warp value executes concurrently.
    std::vector<std::uint64_t> binding(kernel.vars.size(), 0);
    while (true) {
      if (out.kernel.instructions.size() >= max_instructions) {
        out.truncated = true;
        break;
      }
      dmm::Instruction instr(out.kernel.num_threads, dmm::ThreadOp::none());
      for (std::uint64_t g = 0; g < warps; ++g) {
        if (wv != kNoVar) binding[wv] = g;
        const std::vector<std::int64_t> addrs =
            analyze::materialize_site(kernel, site, binding);
        for (std::uint32_t lane = 0; lane < lanes; ++lane) {
          const std::uint32_t thread = static_cast<std::uint32_t>(g) * w + lane;
          instr[thread] =
              make_op(site.dir, static_cast<std::uint64_t>(addrs[lane]));
        }
      }
      if (wv != kNoVar) binding[wv] = 0;
      out.kernel.push(std::move(instr), site.name);

      std::size_t v = 0;
      for (; v < loop_vars.size(); ++v) {
        if (++binding[loop_vars[v]] < kernel.vars[loop_vars[v]].count) break;
        binding[loop_vars[v]] = 0;
      }
      if (v == loop_vars.size()) break;
    }
  }
  return out;
}

RaceCheckReport run_race_check(const analyze::KernelDesc& kernel,
                               const RaceCheckOptions& options) {
  LoweredKernel lowered = lower_kernel_desc(kernel, options.max_instructions);

  const auto map = core::make_matrix_map(options.scheme, kernel.width,
                                         kernel.rows, options.seed);
  dmm::Dmm machine(dmm::DmmConfig{kernel.width, /*latency=*/1}, *map);
  analyze::ShmemSanitizer sanitizer;
  machine.set_sanitizer(&sanitizer);
  // Pre-initialize every word so uninitialized-read findings cannot
  // crowd race findings out of the bounded record buffer.
  machine.fill_identity();
  (void)machine.run(lowered.kernel);

  RaceCheckReport report;
  report.truncated = lowered.truncated;
  report.raw_races = sanitizer.count(analyze::FindingKind::kRawRace);
  report.waw_races = sanitizer.count(analyze::FindingKind::kWawRace);
  report.war_races = sanitizer.count(analyze::FindingKind::kWarRace);
  for (const analyze::Finding& finding : sanitizer.findings()) {
    if (analyze::is_race_kind(finding.kind)) report.findings.push_back(finding);
  }
  return report;
}

WitnessReplay replay_race_witness(const analyze::KernelDesc& kernel,
                                  const analyze::RaceFinding& finding,
                                  core::Scheme scheme, std::uint64_t seed) {
  if (finding.first.address != finding.second.address) {
    throw std::invalid_argument(
        "replay_race_witness: witness addresses disagree (" +
        std::to_string(finding.first.address) + " vs " +
        std::to_string(finding.second.address) + ")");
  }
  const std::uint32_t w = kernel.width;
  const std::uint64_t addr = finding.first.address;

  // Two warps, two instructions: the program-order-first access in warp
  // 0, the second in warp 1. Round-robin dispatch starts at warp 0, so
  // the dynamic order matches program order and the sanitizer's
  // RAW/WAW/WAR classification must equal the static finding's kind.
  dmm::Kernel micro;
  micro.num_threads = 2 * w;
  dmm::Instruction first(micro.num_threads, dmm::ThreadOp::none());
  first[finding.first.lane] = make_op(finding.first.dir, addr);
  micro.push(std::move(first), finding.first.site);
  dmm::Instruction second(micro.num_threads, dmm::ThreadOp::none());
  second[w + finding.second.lane] = make_op(finding.second.dir, addr);
  micro.push(std::move(second), finding.second.site);

  const auto map = core::make_matrix_map(scheme, w, kernel.rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{w, /*latency=*/1}, *map);
  analyze::ShmemSanitizer sanitizer;
  machine.set_sanitizer(&sanitizer);
  machine.fill_identity();
  (void)machine.run(micro);

  analyze::FindingKind expected = analyze::FindingKind::kRawRace;
  switch (finding.kind) {
    case analyze::RaceKind::kRaw:
      expected = analyze::FindingKind::kRawRace;
      break;
    case analyze::RaceKind::kWaw:
      expected = analyze::FindingKind::kWawRace;
      break;
    case analyze::RaceKind::kWar:
      expected = analyze::FindingKind::kWarRace;
      break;
  }

  WitnessReplay replay;
  replay.findings.assign(sanitizer.findings().begin(),
                         sanitizer.findings().end());
  for (const analyze::Finding& f : replay.findings) {
    if (f.kind == expected && f.logical == addr) {
      replay.triggered = true;
      break;
    }
  }
  return replay;
}

}  // namespace rapsim::replay
