// Portable shared-memory access traces (trace replay, pillar 1).
//
// An AccessTrace is a machine-independent recording of the *logical*
// address stream a kernel sends to shared memory: one record per
// dispatched warp-instruction (which warp, which lanes were active, the
// per-lane logical addresses, and the op class — read / write / atomic /
// register-only) plus explicit barrier markers. Addresses are logical —
// pre-AddressMap — so one trace replays under ANY scheme (RAW, RAS, RAP,
// PAD): that is the whole point. Width, thread count and the logical
// memory size travel in the header, so a trace is self-describing.
//
// Two encodings round-trip losslessly through the same record model:
//
//   * text    — line-based and human-writable (examples/*.trace), '#'
//               comments, validated with line-numbered errors exactly
//               like the kernelir parser;
//   * binary  — a compact little-endian stream ("RAPT" magic, version,
//               header, tagged records, 0xFF end sentinel) for captured
//               traces too large to ship as text.
//
// Both are streaming: TraceWriter emits records as they arrive (capture
// never buffers the whole stream), TraceReader sniffs the encoding from
// the first byte and validates every record on the fly — lane masks
// inside the warp width, address counts matching the mask popcount,
// addresses inside the declared memory, no duplicate (instruction, warp)
// pairs, no instruction that is both a barrier and an access, and
// instruction indices / thread counts inside the replay resource caps
// (kMaxTraceInstructions, kMaxTraceThreads).
//
// content_hash() hashes the canonical binary encoding (FNV-1a 64) and is
// the identity the campaign engine (campaign.hpp) keys its result cache
// on: same stream, same hash, regardless of which encoding carried it.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rapsim::replay {

/// Op class of one warp-instruction record. Congestion (and therefore
/// RunStats) depends only on this class and the addresses: loads of any
/// flavor cost the same, as do stores, so the trace does not distinguish
/// kLoad from kLoadAdd or kStore from kStoreImm.
enum class RecordKind : std::uint8_t {
  kRead = 1,      // per-lane addresses, CRCW merging applies
  kWrite = 2,     // per-lane addresses, CRCW merging applies
  kAtomic = 3,    // per-lane addresses, same-address requests serialize
  kRegister = 4,  // active lanes but no memory traffic (no addresses)
  kBarrier = 5,   // block-wide barrier marker (warp/mask/addresses unused)
};

[[nodiscard]] const char* record_kind_name(RecordKind kind) noexcept;

struct TraceRecord {
  RecordKind kind = RecordKind::kRead;
  std::uint32_t instr = 0;      // kernel instruction index
  std::uint32_t warp = 0;       // warp id (0 for barriers)
  std::uint64_t lane_mask = 0;  // bit t set = lane t active (0 for barriers)
  // Logical addresses of the active lanes, in ascending lane order;
  // size() == popcount(lane_mask) for read/write/atomic, empty otherwise.
  std::vector<std::uint64_t> addrs;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint32_t kMaxTraceWidth = 64;  // lane mask is 64-bit
// Resource bounds: replay materializes a dense num_instr × num_threads
// dmm::Kernel, so both dimensions are capped. A tiny crafted file must
// not be able to demand a multi-GB allocation (or overflow the
// instruction-count arithmetic) before anything notices; the validator
// rejects records past these limits with the usual line/offset errors.
inline constexpr std::uint32_t kMaxTraceInstructions = 1u << 20;
inline constexpr std::uint32_t kMaxTraceThreads = 1u << 20;

struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t width = 32;        // banks / threads per warp (w)
  std::uint32_t num_threads = 0;   // p; partial last warp allowed
  std::uint64_t memory_size = 0;   // logical words; every address < this

  [[nodiscard]] std::uint32_t num_warps() const noexcept {
    return width ? (num_threads + width - 1) / width : 0;
  }
  /// Throws std::invalid_argument when the header is unusable (zero
  /// width/threads/size, width > 64, unsupported version).
  void validate() const;

  friend bool operator==(const TraceHeader&, const TraceHeader&) = default;
};

/// Incremental record validator shared by the readers and by
/// AccessTrace::validate(): call check() for every record in stream
/// order; throws std::invalid_argument naming the offending field. The
/// header is taken as given — validate it first with
/// TraceHeader::validate().
class TraceValidator {
 public:
  explicit TraceValidator(const TraceHeader& header) : header_(header) {}
  void check(const TraceRecord& record);

 private:
  TraceHeader header_;
  std::unordered_set<std::uint64_t> seen_;          // (instr << 32) | warp
  std::unordered_map<std::uint32_t, bool> instrs_;  // instr -> is_barrier
};

struct AccessTrace {
  TraceHeader header;
  std::vector<TraceRecord> records;

  /// Full-trace validation (header + every record through TraceValidator).
  void validate() const;

  friend bool operator==(const AccessTrace&, const AccessTrace&) = default;
};

enum class TraceEncoding { kText, kBinary };

/// Streaming writer: header on construction, one record per write(),
/// finish() emits the terminator (binary end sentinel / text "end" line)
/// and flushes. Records are validated on the way out, so a writer cannot
/// produce a stream its reader would reject.
class TraceWriter {
 public:
  TraceWriter(std::ostream& out, const TraceHeader& header,
              TraceEncoding encoding);
  void write(const TraceRecord& record);
  void finish();

 private:
  std::ostream& out_;
  TraceHeader header_;
  TraceEncoding encoding_;
  TraceValidator validator_;
  bool finished_ = false;
};

/// Streaming reader: sniffs the encoding from the first byte ('R' of the
/// binary magic vs. anything textual), parses and validates the header,
/// then yields one validated record per next() until the terminator.
/// Errors carry the 1-based line number (text) or byte offset (binary).
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);
  [[nodiscard]] const TraceHeader& header() const noexcept { return header_; }
  [[nodiscard]] TraceEncoding encoding() const noexcept { return encoding_; }
  /// The next record, or nullopt after the stream terminator (at which
  /// point trailing garbage has already been rejected).
  std::optional<TraceRecord> next();

 private:
  std::istream& in_;
  TraceHeader header_;
  TraceEncoding encoding_ = TraceEncoding::kText;
  TraceValidator validator_;
  std::size_t line_ = 0;    // text: lines consumed so far
  std::size_t offset_ = 0;  // binary: bytes consumed so far
  bool done_ = false;

  void parse_text_header();
  void parse_binary_header();
  std::optional<TraceRecord> next_text();
  std::optional<TraceRecord> next_binary();
};

// Whole-trace conveniences over the streaming classes.
[[nodiscard]] std::string to_text(const AccessTrace& trace);
[[nodiscard]] std::string to_binary(const AccessTrace& trace);
[[nodiscard]] AccessTrace parse_trace(std::istream& in);
[[nodiscard]] AccessTrace parse_trace(const std::string& bytes);

/// Read a trace file (either encoding, sniffed). Throws
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] AccessTrace load_trace(const std::string& path);
/// Write a trace file in the requested encoding (atomically: tmp +
/// rename, so a killed writer never leaves a torn file behind).
void save_trace(const AccessTrace& trace, const std::string& path,
                TraceEncoding encoding);

/// FNV-1a 64 over the canonical binary encoding — the cache identity of
/// the stream, independent of the encoding it was loaded from.
[[nodiscard]] std::uint64_t content_hash(const AccessTrace& trace);

}  // namespace rapsim::replay
