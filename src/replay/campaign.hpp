// Sharded, resumable replay campaigns (trace replay, pillar 3).
//
// A campaign is a grid of cells — (trace x scheme) at the trace's width,
// each cell averaging `trials` independent replays — fanned across
// util::parallel_for_chunks worker shards. Campaigns are built to be
// killed: every finished cell is persisted immediately (atomic tmp +
// rename) under <results_dir>/cells/<key>.cell, keyed by a content hash
// of everything that determines its result (trace bytes, scheme, width,
// latency, trials, base seed). Re-invoking the same grid loads finished
// cells from the cache and computes only the rest, and the final
// summary.json is byte-identical to an uninterrupted run's: all
// aggregates are derived from the cells' exact integers (per-trial
// RunStats and the merged congestion Tally), never from accumulation
// order.
//
// Artifacts, all machine-readable and schema-checked by
// tools/check_replay_schema.sh:
//
//   <results_dir>/manifest.json   the grid: config + every cell's key and
//                                 cached/pending status at launch time
//   <results_dir>/cells/<key>.cell  one finished cell (text, versioned)
//   <results_dir>/summary.json    per-cell aggregates + the campaign-wide
//                                 congestion tally (Tally::merge over all
//                                 cells in key order)
//
// Trial seeds are a pure function of (cell key, trial index), so a cell's
// result does not depend on which other cells share the grid or on the
// number of worker threads.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "replay/trace.hpp"
#include "telemetry/span_tracer.hpp"
#include "util/stats.hpp"

namespace rapsim::replay {

/// The 2-D schemes a campaign can replay under (campaigns run on matrix
/// maps). Accepts "raw"/"RAW"/"Rap"... — case-insensitive; nullopt for
/// anything else.
[[nodiscard]] std::optional<core::Scheme> parse_scheme_name(
    const std::string& name);

struct CampaignConfig {
  std::vector<std::string> trace_paths;
  std::vector<core::Scheme> schemes;
  std::uint32_t latency = 1;
  std::uint32_t trials = 4;
  std::uint64_t seed = 1;
  /// Keep only traces whose header width is listed; empty = keep all.
  std::vector<std::uint32_t> widths;
  std::string results_dir = "results/replay";
  /// Optional span tracer: each freshly computed cell records a
  /// "cell:<key>" root span (cached cells record nothing — they do no
  /// replay work). Never owned; must outlive run_campaign.
  telemetry::SpanTracer* tracer = nullptr;
};

/// One (trace, scheme) grid cell. `width` duplicates the trace header's
/// width so the key — and the manifest — are self-contained.
struct CampaignCell {
  std::string trace_name;       // file stem, for humans
  std::uint64_t trace_hash = 0; // content_hash of the stream
  core::Scheme scheme = core::Scheme::kRaw;
  std::uint32_t width = 0;
  std::uint32_t latency = 1;
  std::uint32_t trials = 0;
  std::uint64_t seed = 0;

  /// 16-hex-digit cache key over every result-determining field (NOT the
  /// trace name: renaming a trace file keeps its cached cells valid).
  [[nodiscard]] std::string key() const;
  /// Seed for the trial'th replay map: mixes the key hash and the trial
  /// index, so cells never share RNG streams.
  [[nodiscard]] std::uint64_t trial_seed(std::uint32_t trial) const;
};

/// Exact per-trial machine results; all summary statistics derive from
/// these integers, which is what makes resumed summaries byte-identical.
struct TrialStats {
  std::uint64_t time = 0;
  std::uint64_t total_stages = 0;
  std::uint64_t dispatches = 0;
  std::uint32_t max_congestion = 0;

  friend bool operator==(const TrialStats&, const TrialStats&) = default;
};

struct CellResult {
  CampaignCell cell;
  std::vector<TrialStats> trials;  // one entry per trial, in trial order
  util::Tally congestion;          // per-dispatch congestion, all trials

  /// Versioned text serialization (the .cell file format).
  [[nodiscard]] std::string to_cell_text() const;
  /// Parse + validate a .cell file body; throws std::invalid_argument
  /// with a line number on malformed input.
  [[nodiscard]] static CellResult from_cell_text(const std::string& text);
};

/// Replay one cell: `trials` fresh maps over the trace, exact stats per
/// trial. The trace must match cell.width.
[[nodiscard]] CellResult run_cell(const CampaignCell& cell,
                                  const AccessTrace& trace);

struct CampaignReport {
  std::vector<CellResult> cells;   // sorted by key
  std::size_t cells_cached = 0;    // loaded from <results_dir>/cells/
  std::size_t cells_computed = 0;
  util::Tally merged_congestion;   // Tally::merge over all cells
  std::string manifest_path;
  std::string summary_path;
};

/// Execute (or resume) a campaign: build the grid, load cached cells,
/// fan the rest across parallel_for_chunks, persist each finished cell,
/// and write manifest.json + summary.json. Throws on unreadable traces
/// or an unwritable results directory.
[[nodiscard]] CampaignReport run_campaign(const CampaignConfig& config);

}  // namespace rapsim::replay
