#include "replay/trace.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace rapsim::replay {

namespace {

constexpr char kBinaryMagic[4] = {'R', 'A', 'P', 'T'};
constexpr std::uint8_t kBinaryEnd = 0xFF;
constexpr const char* kTextMagic = "rapsim-trace";

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("trace: " + what);
}

[[noreturn]] void fail_line(std::size_t line, const std::string& what) {
  fail("line " + std::to_string(line) + ": " + what);
}

[[noreturn]] void fail_offset(std::size_t offset, const std::string& what) {
  fail("byte " + std::to_string(offset) + ": " + what);
}

bool has_addrs(RecordKind kind) {
  return kind == RecordKind::kRead || kind == RecordKind::kWrite ||
         kind == RecordKind::kAtomic;
}

std::optional<RecordKind> kind_from_name(const std::string& name) {
  if (name == "read") return RecordKind::kRead;
  if (name == "write") return RecordKind::kWrite;
  if (name == "atomic") return RecordKind::kAtomic;
  if (name == "reg") return RecordKind::kRegister;
  return std::nullopt;
}

// --- little-endian binary primitives -----------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

const char* record_kind_name(RecordKind kind) noexcept {
  switch (kind) {
    case RecordKind::kRead: return "read";
    case RecordKind::kWrite: return "write";
    case RecordKind::kAtomic: return "atomic";
    case RecordKind::kRegister: return "reg";
    case RecordKind::kBarrier: return "barrier";
  }
  return "?";
}

void TraceHeader::validate() const {
  if (version != kTraceVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kTraceVersion) + ")");
  }
  if (width == 0 || width > kMaxTraceWidth) {
    fail("width must be in [1, " + std::to_string(kMaxTraceWidth) + "], got " +
         std::to_string(width));
  }
  if (num_threads == 0) fail("num_threads must be > 0");
  if (num_threads > kMaxTraceThreads) {
    fail("num_threads " + std::to_string(num_threads) + " exceeds the cap of " +
         std::to_string(kMaxTraceThreads));
  }
  if (memory_size == 0) fail("memory_size must be > 0");
}

void TraceValidator::check(const TraceRecord& record) {
  const std::string where = "record (instr " + std::to_string(record.instr) +
                            ", warp " + std::to_string(record.warp) + "): ";
  if (record.instr >= kMaxTraceInstructions) {
    fail(where + "instruction index exceeds the cap of " +
         std::to_string(kMaxTraceInstructions));
  }
  if (record.kind == RecordKind::kBarrier) {
    if (record.warp != 0 || record.lane_mask != 0 || !record.addrs.empty()) {
      fail(where + "barrier records carry no warp/mask/addresses");
    }
    const auto [it, inserted] = instrs_.emplace(record.instr, true);
    if (!inserted) {
      fail(where + (it->second ? "duplicate barrier marker"
                               : "instruction already has access records"));
    }
    return;
  }

  if (record.warp >= header_.num_warps()) {
    fail(where + "warp id out of range (trace has " +
         std::to_string(header_.num_warps()) + " warps)");
  }
  if (record.lane_mask == 0) fail(where + "lane mask must be non-zero");
  // Lanes must exist: inside the warp width, and inside the (possibly
  // partial) last warp.
  const std::uint32_t first_thread = record.warp * header_.width;
  const std::uint32_t lanes_in_warp =
      std::min(header_.width, header_.num_threads - first_thread);
  if (lanes_in_warp < 64 && (record.lane_mask >> lanes_in_warp) != 0) {
    fail(where + "lane mask has bits beyond lane " +
         std::to_string(lanes_in_warp - 1));
  }
  const auto active =
      static_cast<std::size_t>(std::popcount(record.lane_mask));
  if (has_addrs(record.kind)) {
    if (record.addrs.size() != active) {
      fail(where + "expected " + std::to_string(active) + " addresses (mask " +
           "popcount), got " + std::to_string(record.addrs.size()));
    }
    for (const std::uint64_t addr : record.addrs) {
      if (addr >= header_.memory_size) {
        fail(where + "address " + std::to_string(addr) +
             " outside memory of size " + std::to_string(header_.memory_size));
      }
    }
  } else if (!record.addrs.empty()) {
    fail(where + "register records carry no addresses");
  }

  const std::uint64_t key =
      (static_cast<std::uint64_t>(record.instr) << 32) | record.warp;
  if (!seen_.insert(key).second) {
    fail(where + "duplicate (instruction, warp) record");
  }
  const auto [it, inserted] = instrs_.emplace(record.instr, false);
  if (!inserted && it->second) {
    fail(where + "instruction already marked as a barrier");
  }
}

void AccessTrace::validate() const {
  header.validate();
  TraceValidator validator(header);
  for (const TraceRecord& record : records) validator.check(record);
}

// --- writer ------------------------------------------------------------

TraceWriter::TraceWriter(std::ostream& out, const TraceHeader& header,
                         TraceEncoding encoding)
    : out_(out), header_(header), encoding_(encoding), validator_(header) {
  header_.validate();
  if (encoding_ == TraceEncoding::kText) {
    out_ << kTextMagic << " v" << header_.version << '\n'
         << "width " << header_.width << '\n'
         << "threads " << header_.num_threads << '\n'
         << "size " << header_.memory_size << '\n';
  } else {
    std::string buf;
    buf.append(kBinaryMagic, sizeof(kBinaryMagic));
    put_u32(buf, header_.version);
    put_u32(buf, header_.width);
    put_u32(buf, header_.num_threads);
    put_u64(buf, header_.memory_size);
    out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

void TraceWriter::write(const TraceRecord& record) {
  if (finished_) throw std::logic_error("TraceWriter: write after finish");
  validator_.check(record);
  if (encoding_ == TraceEncoding::kText) {
    if (record.kind == RecordKind::kBarrier) {
      out_ << "barrier " << record.instr << '\n';
      return;
    }
    char mask[32];
    std::snprintf(mask, sizeof(mask), "%llx",
                  static_cast<unsigned long long>(record.lane_mask));
    out_ << record_kind_name(record.kind) << ' ' << record.instr << ' '
         << record.warp << ' ' << mask;
    for (const std::uint64_t addr : record.addrs) out_ << ' ' << addr;
    out_ << '\n';
    return;
  }
  std::string buf;
  buf.push_back(static_cast<char>(record.kind));
  put_u32(buf, record.instr);
  if (record.kind != RecordKind::kBarrier) {
    put_u32(buf, record.warp);
    put_u64(buf, record.lane_mask);
    for (const std::uint64_t addr : record.addrs) put_u64(buf, addr);
  }
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (encoding_ == TraceEncoding::kText) {
    out_ << "end\n";
  } else {
    const char end = static_cast<char>(kBinaryEnd);
    out_.write(&end, 1);
  }
  out_.flush();
}

// --- reader ------------------------------------------------------------

TraceReader::TraceReader(std::istream& in)
    : in_(in), validator_(TraceHeader{}) {
  const int first = in_.peek();
  if (first == std::char_traits<char>::eof()) fail("empty input");
  encoding_ = first == kBinaryMagic[0] ? TraceEncoding::kBinary
                                       : TraceEncoding::kText;
  if (encoding_ == TraceEncoding::kText) {
    parse_text_header();
  } else {
    parse_binary_header();
  }
  validator_ = TraceValidator(header_);
}

void TraceReader::parse_text_header() {
  // Expected prologue (comments / blank lines allowed between fields):
  //   rapsim-trace v<version>
  //   width <w> / threads <p> / size <m>   in any order, each exactly once
  bool saw_magic = false;
  bool saw_width = false, saw_threads = false, saw_size = false;
  std::string line;
  while (!(saw_magic && saw_width && saw_threads && saw_size)) {
    if (!std::getline(in_, line)) {
      fail_line(line_ + 1, "unexpected end of input inside the header");
    }
    ++line_;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;  // blank / comment-only line
    if (!saw_magic) {
      std::string version;
      if (word != kTextMagic || !(fields >> version) ||
          version.size() < 2 || version[0] != 'v') {
        fail_line(line_, std::string("expected '") + kTextMagic +
                             " v<version>' first");
      }
      try {
        header_.version =
            static_cast<std::uint32_t>(std::stoul(version.substr(1)));
      } catch (const std::exception&) {
        fail_line(line_, "malformed version '" + version + "'");
      }
      if (header_.version != kTraceVersion) {
        fail_line(line_, "unsupported version " +
                             std::to_string(header_.version) + " (expected " +
                             std::to_string(kTraceVersion) + ")");
      }
      saw_magic = true;
    } else if (word == "width" || word == "threads" || word == "size") {
      std::uint64_t value = 0;
      if (!(fields >> value)) {
        fail_line(line_, "expected a number after '" + word + "'");
      }
      bool& seen = word == "width" ? saw_width
                   : word == "threads" ? saw_threads
                                       : saw_size;
      if (seen) fail_line(line_, "duplicate header field '" + word + "'");
      seen = true;
      if (word != "size" && value > std::numeric_limits<std::uint32_t>::max()) {
        fail_line(line_, "'" + word + "' value " + std::to_string(value) +
                             " out of range");
      }
      if (word == "width") {
        header_.width = static_cast<std::uint32_t>(value);
      } else if (word == "threads") {
        header_.num_threads = static_cast<std::uint32_t>(value);
      } else {
        header_.memory_size = value;
      }
    } else {
      fail_line(line_, "expected a header field (width/threads/size), got '" +
                           word + "'");
    }
    std::string extra;
    if (fields >> extra) {
      fail_line(line_, "trailing tokens after '" + word + "'");
    }
  }
  try {
    header_.validate();
  } catch (const std::invalid_argument& e) {
    fail_line(line_, e.what());
  }
}

void TraceReader::parse_binary_header() {
  char magic[4];
  if (!in_.read(magic, 4) || std::string_view(magic, 4) !=
                                 std::string_view(kBinaryMagic, 4)) {
    fail_offset(0, "bad magic (expected RAPT)");
  }
  const auto read_u32 = [&](const char* what) {
    unsigned char bytes[4];
    if (!in_.read(reinterpret_cast<char*>(bytes), 4)) {
      fail_offset(offset_ + 4, std::string("truncated header (") + what + ")");
    }
    offset_ += 4;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[i]} << (8 * i);
    return v;
  };
  const auto read_u64 = [&](const char* what) {
    unsigned char bytes[8];
    if (!in_.read(reinterpret_cast<char*>(bytes), 8)) {
      fail_offset(offset_ + 4, std::string("truncated header (") + what + ")");
    }
    offset_ += 8;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    return v;
  };
  offset_ = 4;
  header_.version = read_u32("version");
  if (header_.version != kTraceVersion) {
    fail_offset(4, "unsupported version " + std::to_string(header_.version) +
                       " (expected " + std::to_string(kTraceVersion) + ")");
  }
  header_.width = read_u32("width");
  header_.num_threads = read_u32("threads");
  header_.memory_size = read_u64("size");
  try {
    header_.validate();
  } catch (const std::invalid_argument& e) {
    fail_offset(offset_, e.what());
  }
}

std::optional<TraceRecord> TraceReader::next() {
  if (done_) return std::nullopt;
  auto record = encoding_ == TraceEncoding::kText ? next_text() : next_binary();
  if (record) {
    try {
      validator_.check(*record);
    } catch (const std::invalid_argument& e) {
      if (encoding_ == TraceEncoding::kText) {
        fail_line(line_, e.what());
      } else {
        fail_offset(offset_, e.what());
      }
    }
  }
  return record;
}

std::optional<TraceRecord> TraceReader::next_text() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;

    if (word == "end") {
      std::string extra;
      if (fields >> extra) fail_line(line_, "trailing tokens after 'end'");
      while (std::getline(in_, line)) {
        ++line_;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
          line.resize(hash);
        }
        std::istringstream rest(line);
        if (rest >> word) fail_line(line_, "content after 'end'");
      }
      done_ = true;
      return std::nullopt;
    }

    TraceRecord record;
    if (word == "barrier") {
      record.kind = RecordKind::kBarrier;
      if (!(fields >> record.instr)) {
        fail_line(line_, "expected 'barrier <instr>'");
      }
      std::string extra;
      if (fields >> extra) fail_line(line_, "trailing tokens after barrier");
      return record;
    }

    const auto kind = kind_from_name(word);
    if (!kind) {
      fail_line(line_, "unknown record kind '" + word +
                           "' (read/write/atomic/reg/barrier/end)");
    }
    record.kind = *kind;
    std::string mask;
    if (!(fields >> record.instr >> record.warp >> mask)) {
      fail_line(line_, "expected '" + word + " <instr> <warp> <mask-hex> "
                       "[addr ...]'");
    }
    try {
      std::size_t used = 0;
      record.lane_mask = std::stoull(mask, &used, 16);
      if (used != mask.size()) throw std::invalid_argument(mask);
    } catch (const std::exception&) {
      fail_line(line_, "malformed hex lane mask '" + mask + "'");
    }
    std::uint64_t addr = 0;
    while (fields >> addr) record.addrs.push_back(addr);
    if (!fields.eof()) fail_line(line_, "malformed address list");
    return record;
  }
  fail_line(line_ + 1, "unexpected end of input (missing 'end' line)");
}

std::optional<TraceRecord> TraceReader::next_binary() {
  char tag_char = 0;
  if (!in_.read(&tag_char, 1)) {
    fail_offset(offset_, "truncated stream (missing end sentinel)");
  }
  ++offset_;
  const auto tag = static_cast<std::uint8_t>(tag_char);
  if (tag == kBinaryEnd) {
    if (in_.peek() != std::char_traits<char>::eof()) {
      fail_offset(offset_, "trailing bytes after end sentinel");
    }
    done_ = true;
    return std::nullopt;
  }
  if (tag < static_cast<std::uint8_t>(RecordKind::kRead) ||
      tag > static_cast<std::uint8_t>(RecordKind::kBarrier)) {
    fail_offset(offset_, "unknown record tag " + std::to_string(tag));
  }

  const auto read_u32 = [&] {
    unsigned char bytes[4];
    if (!in_.read(reinterpret_cast<char*>(bytes), 4)) {
      fail_offset(offset_, "truncated record");
    }
    offset_ += 4;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[i]} << (8 * i);
    return v;
  };
  const auto read_u64 = [&] {
    unsigned char bytes[8];
    if (!in_.read(reinterpret_cast<char*>(bytes), 8)) {
      fail_offset(offset_, "truncated record");
    }
    offset_ += 8;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
    return v;
  };

  TraceRecord record;
  record.kind = static_cast<RecordKind>(tag);
  record.instr = read_u32();
  if (record.kind == RecordKind::kBarrier) return record;
  record.warp = read_u32();
  record.lane_mask = read_u64();
  if (has_addrs(record.kind)) {
    const int active = std::popcount(record.lane_mask);
    record.addrs.reserve(static_cast<std::size_t>(active));
    for (int i = 0; i < active; ++i) record.addrs.push_back(read_u64());
  }
  return record;
}

// --- whole-trace conveniences ------------------------------------------

std::string to_text(const AccessTrace& trace) {
  std::ostringstream out;
  TraceWriter writer(out, trace.header, TraceEncoding::kText);
  for (const TraceRecord& record : trace.records) writer.write(record);
  writer.finish();
  return out.str();
}

std::string to_binary(const AccessTrace& trace) {
  std::ostringstream out;
  TraceWriter writer(out, trace.header, TraceEncoding::kBinary);
  for (const TraceRecord& record : trace.records) writer.write(record);
  writer.finish();
  return out.str();
}

AccessTrace parse_trace(std::istream& in) {
  TraceReader reader(in);
  AccessTrace trace;
  trace.header = reader.header();
  while (auto record = reader.next()) trace.records.push_back(*record);
  return trace;
}

AccessTrace parse_trace(const std::string& bytes) {
  std::istringstream in(bytes);
  return parse_trace(in);
}

AccessTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  try {
    return parse_trace(in);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void save_trace(const AccessTrace& trace, const std::string& path,
                TraceEncoding encoding) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("trace: cannot write " + tmp);
    TraceWriter writer(out, trace.header, encoding);
    for (const TraceRecord& record : trace.records) writer.write(record);
    writer.finish();
    if (!out) throw std::runtime_error("trace: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("trace: cannot rename " + tmp + " to " + path);
  }
}

std::uint64_t content_hash(const AccessTrace& trace) {
  return util::fnv1a(to_binary(trace));
}

}  // namespace rapsim::replay
