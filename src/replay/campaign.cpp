#include "replay/campaign.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/factory.hpp"
#include "replay/replay.hpp"
#include "telemetry/json.hpp"
#include "telemetry/run_telemetry.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rapsim::replay {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCellMagic = "rapsim-cell";
constexpr std::uint32_t kCellVersion = 1;

using util::fnv1a;
using util::hex64;

[[noreturn]] void fail_cell(std::size_t line, const std::string& what) {
  throw std::invalid_argument("cell: line " + std::to_string(line) + ": " +
                              what);
}

void write_file_atomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("campaign: cannot write " + tmp);
    out << contents;
    if (!out) throw std::runtime_error("campaign: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("campaign: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

std::optional<core::Scheme> parse_scheme_name(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  if (lower == "raw") return core::Scheme::kRaw;
  if (lower == "ras") return core::Scheme::kRas;
  if (lower == "rap") return core::Scheme::kRap;
  if (lower == "pad") return core::Scheme::kPad;
  return std::nullopt;
}

std::string CampaignCell::key() const {
  // Canonical field string; the trace name is deliberately absent.
  std::ostringstream canon;
  canon << hex64(trace_hash) << '|' << core::scheme_name(scheme) << '|'
        << width << '|' << latency << '|' << trials << '|' << seed;
  return hex64(fnv1a(canon.str()));
}

std::uint64_t CampaignCell::trial_seed(std::uint32_t trial) const {
  const std::uint64_t key_hash = fnv1a(key());
  util::SplitMix64 mix(key_hash ^
                       (0x9e3779b97f4a7c15ull * (std::uint64_t{trial} + 1)));
  return mix();
}

CellResult run_cell(const CampaignCell& cell, const AccessTrace& trace) {
  if (trace.header.width != cell.width) {
    throw std::invalid_argument("run_cell: trace width " +
                                std::to_string(trace.header.width) +
                                " does not match cell width " +
                                std::to_string(cell.width));
  }
  const dmm::Kernel kernel = lower_to_kernel(trace);
  const std::uint64_t rows =
      (trace.header.memory_size + cell.width - 1) / cell.width;

  CellResult result;
  result.cell = cell;
  result.trials.reserve(cell.trials);
  for (std::uint32_t trial = 0; trial < cell.trials; ++trial) {
    const auto map = core::make_matrix_map(cell.scheme, cell.width, rows,
                                           cell.trial_seed(trial));
    telemetry::RunTelemetry telemetry;
    dmm::Dmm machine(dmm::DmmConfig{cell.width, cell.latency}, *map);
    machine.set_telemetry(&telemetry);
    const dmm::RunStats stats = machine.run(kernel);
    result.trials.push_back({stats.time, stats.total_stages, stats.dispatches,
                             stats.max_congestion});
    result.congestion.merge(telemetry.congestion);
  }
  return result;
}

std::string CellResult::to_cell_text() const {
  std::ostringstream out;
  out << kCellMagic << " v" << kCellVersion << '\n'
      << "key " << cell.key() << '\n'
      << "trace " << cell.trace_name << '\n'
      << "trace-hash " << hex64(cell.trace_hash) << '\n'
      << "scheme " << core::scheme_name(cell.scheme) << '\n'
      << "width " << cell.width << '\n'
      << "latency " << cell.latency << '\n'
      << "seed " << cell.seed << '\n'
      << "trials " << cell.trials << '\n';
  for (const TrialStats& t : trials) {
    out << "trial " << t.time << ' ' << t.total_stages << ' ' << t.dispatches
        << ' ' << t.max_congestion << '\n';
  }
  for (const auto& [value, count] : congestion.histogram()) {
    out << "hist " << value << ' ' << count << '\n';
  }
  out << "end\n";
  return out.str();
}

CellResult CellResult::from_cell_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  CellResult result;
  std::string recorded_key;
  bool saw_magic = false, saw_end = false;
  std::size_t trial_lines = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;
    if (saw_end) fail_cell(line_no, "content after 'end'");

    if (!saw_magic) {
      std::string version;
      if (word != kCellMagic || !(fields >> version) ||
          version != "v" + std::to_string(kCellVersion)) {
        fail_cell(line_no, std::string("expected '") + kCellMagic + " v" +
                               std::to_string(kCellVersion) + "' first");
      }
      saw_magic = true;
      continue;
    }

    const auto want_u64 = [&](std::uint64_t& slot) {
      if (!(fields >> slot)) {
        fail_cell(line_no, "expected a number after '" + word + "'");
      }
    };
    if (word == "key") {
      if (!(fields >> recorded_key)) fail_cell(line_no, "missing key value");
    } else if (word == "trace") {
      if (!(fields >> result.cell.trace_name)) {
        fail_cell(line_no, "missing trace name");
      }
    } else if (word == "trace-hash") {
      std::string hex;
      if (!(fields >> hex)) fail_cell(line_no, "missing trace hash");
      try {
        std::size_t used = 0;
        result.cell.trace_hash = std::stoull(hex, &used, 16);
        if (used != hex.size()) throw std::invalid_argument(hex);
      } catch (const std::exception&) {
        fail_cell(line_no, "malformed trace hash '" + hex + "'");
      }
    } else if (word == "scheme") {
      std::string name;
      if (!(fields >> name)) fail_cell(line_no, "missing scheme name");
      const auto scheme = parse_scheme_name(name);
      if (!scheme) fail_cell(line_no, "unknown scheme '" + name + "'");
      result.cell.scheme = *scheme;
    } else if (word == "width") {
      std::uint64_t v = 0;
      want_u64(v);
      result.cell.width = static_cast<std::uint32_t>(v);
    } else if (word == "latency") {
      std::uint64_t v = 0;
      want_u64(v);
      result.cell.latency = static_cast<std::uint32_t>(v);
    } else if (word == "seed") {
      want_u64(result.cell.seed);
    } else if (word == "trials") {
      std::uint64_t v = 0;
      want_u64(v);
      result.cell.trials = static_cast<std::uint32_t>(v);
    } else if (word == "trial") {
      TrialStats t;
      std::uint64_t max_cong = 0;
      if (!(fields >> t.time >> t.total_stages >> t.dispatches >> max_cong)) {
        fail_cell(line_no,
                  "expected 'trial <time> <stages> <dispatches> <max>'");
      }
      t.max_congestion = static_cast<std::uint32_t>(max_cong);
      result.trials.push_back(t);
      ++trial_lines;
    } else if (word == "hist") {
      std::uint64_t value = 0, count = 0;
      if (!(fields >> value >> count) || count == 0) {
        fail_cell(line_no, "expected 'hist <value> <positive count>'");
      }
      if (result.congestion.occurrences(value) != 0) {
        fail_cell(line_no, "duplicate histogram value " +
                               std::to_string(value));
      }
      result.congestion.add_count(value, count);
    } else if (word == "end") {
      saw_end = true;
    } else {
      fail_cell(line_no, "unknown field '" + word + "'");
    }
    std::string extra;
    if (word != "end" && fields >> extra) {
      fail_cell(line_no, "trailing tokens after '" + word + "'");
    }
  }
  if (!saw_magic) fail_cell(1, "missing cell magic");
  if (!saw_end) fail_cell(line_no + 1, "missing 'end' line");
  if (trial_lines != result.cell.trials) {
    fail_cell(line_no, "expected " + std::to_string(result.cell.trials) +
                           " trial lines, got " + std::to_string(trial_lines));
  }
  std::uint64_t dispatches = 0;
  for (const TrialStats& t : result.trials) dispatches += t.dispatches;
  if (result.congestion.count() != dispatches) {
    fail_cell(line_no, "histogram count " +
                           std::to_string(result.congestion.count()) +
                           " does not match total dispatches " +
                           std::to_string(dispatches));
  }
  if (recorded_key != result.cell.key()) {
    fail_cell(line_no, "recorded key " + recorded_key +
                           " does not match recomputed key " +
                           result.cell.key());
  }
  return result;
}

namespace {

struct GridTrace {
  std::string path;
  std::string name;
  AccessTrace trace;
  std::uint64_t hash = 0;
};

void emit_config(telemetry::JsonWriter& json, const CampaignConfig& config,
                 const std::vector<GridTrace>& traces) {
  json.key("config").begin_object();
  json.kv("latency", static_cast<std::uint64_t>(config.latency));
  json.kv("trials", static_cast<std::uint64_t>(config.trials));
  json.kv("seed", config.seed);
  json.key("schemes").begin_array();
  for (const core::Scheme scheme : config.schemes) {
    json.value(core::scheme_name(scheme));
  }
  json.end_array();
  json.key("traces").begin_array();
  for (const GridTrace& t : traces) {
    json.begin_object();
    json.kv("name", std::string_view(t.name));
    json.kv("hash", std::string_view(hex64(t.hash)));
    json.kv("width", static_cast<std::uint64_t>(t.trace.header.width));
    json.kv("threads", static_cast<std::uint64_t>(t.trace.header.num_threads));
    json.kv("memory_size", t.trace.header.memory_size);
    json.kv("records", static_cast<std::uint64_t>(t.trace.records.size()));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void emit_tally(telemetry::JsonWriter& json, const util::Tally& tally) {
  json.begin_object();
  json.kv("count", static_cast<std::uint64_t>(tally.count()));
  json.kv("mean", tally.mean());
  json.kv("min", tally.count() ? tally.min() : 0);
  json.kv("max", tally.count() ? tally.max() : 0);
  json.kv("p50", tally.percentile(50.0));
  json.kv("p95", tally.percentile(95.0));
  json.kv("p99", tally.percentile(99.0));
  json.end_object();
}

void emit_cell(telemetry::JsonWriter& json, const CellResult& cell) {
  json.begin_object();
  json.kv("key", std::string_view(cell.cell.key()));
  json.kv("trace", std::string_view(cell.cell.trace_name));
  json.kv("trace_hash", std::string_view(hex64(cell.cell.trace_hash)));
  json.kv("scheme", core::scheme_name(cell.cell.scheme));
  json.kv("width", static_cast<std::uint64_t>(cell.cell.width));
  json.kv("latency", static_cast<std::uint64_t>(cell.cell.latency));
  json.kv("trials", static_cast<std::uint64_t>(cell.cell.trials));
  json.kv("seed", cell.cell.seed);

  std::uint64_t time_min = 0, time_max = 0, time_sum = 0;
  std::uint64_t stages = 0, dispatches = 0;
  for (std::size_t i = 0; i < cell.trials.size(); ++i) {
    const TrialStats& t = cell.trials[i];
    time_min = i == 0 ? t.time : std::min(time_min, t.time);
    time_max = std::max(time_max, t.time);
    time_sum += t.time;
    stages += t.total_stages;
    dispatches += t.dispatches;
  }
  json.key("time").begin_object();
  json.kv("mean", cell.trials.empty()
                      ? 0.0
                      : static_cast<double>(time_sum) /
                            static_cast<double>(cell.trials.size()));
  json.kv("min", time_min);
  json.kv("max", time_max);
  json.end_object();
  json.kv("pipeline_slots", stages);
  json.kv("dispatches", dispatches);
  json.key("congestion");
  emit_tally(json, cell.congestion);
  json.key("trial_times").begin_array();
  for (const TrialStats& t : cell.trials) json.value(t.time);
  json.end_array();
  json.end_object();
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config) {
  if (config.trace_paths.empty()) {
    throw std::invalid_argument("run_campaign: no traces given");
  }
  if (config.schemes.empty()) {
    throw std::invalid_argument("run_campaign: no schemes given");
  }
  if (config.trials == 0) {
    throw std::invalid_argument("run_campaign: trials must be > 0");
  }

  // Load every trace once; apply the width filter.
  std::vector<GridTrace> traces;
  for (const std::string& path : config.trace_paths) {
    GridTrace t;
    t.path = path;
    t.name = fs::path(path).stem().string();
    t.trace = load_trace(path);
    t.trace.validate();
    t.hash = content_hash(t.trace);
    if (!config.widths.empty() &&
        std::find(config.widths.begin(), config.widths.end(),
                  t.trace.header.width) == config.widths.end()) {
      continue;
    }
    traces.push_back(std::move(t));
  }
  if (traces.empty()) {
    throw std::invalid_argument(
        "run_campaign: no traces left after the width filter");
  }

  // The grid, sorted by key so every artifact has one canonical order.
  struct GridCell {
    CampaignCell cell;
    std::string key;
    const GridTrace* trace = nullptr;
  };
  std::vector<GridCell> grid;
  for (const GridTrace& t : traces) {
    for (const core::Scheme scheme : config.schemes) {
      GridCell g;
      g.cell = CampaignCell{t.name,          t.hash,
                            scheme,          t.trace.header.width,
                            config.latency,  config.trials,
                            config.seed};
      g.key = g.cell.key();
      g.trace = &t;
      grid.push_back(std::move(g));
    }
  }
  std::sort(grid.begin(), grid.end(),
            [](const GridCell& a, const GridCell& b) { return a.key < b.key; });

  const fs::path results_dir(config.results_dir);
  const fs::path cells_dir = results_dir / "cells";
  fs::create_directories(cells_dir);

  // Resume: adopt any cached cell whose file parses and whose recomputed
  // key matches its name; anything torn or stale is recomputed.
  CampaignReport report;
  report.cells.resize(grid.size());
  std::vector<bool> cached(grid.size(), false);
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const fs::path cell_path = cells_dir / (grid[i].key + ".cell");
    bool ok = false;
    if (fs::exists(cell_path)) {
      std::ifstream in(cell_path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        CellResult cell = CellResult::from_cell_text(buf.str());
        ok = cell.cell.key() == grid[i].key;
        if (ok) report.cells[i] = std::move(cell);
      } catch (const std::invalid_argument&) {
        ok = false;
      }
    }
    cached[i] = ok;
    if (!ok) work.push_back(i);
  }
  report.cells_cached = grid.size() - work.size();
  report.cells_computed = work.size();

  // Manifest first: the grid and its launch-time status, so an observer
  // (or a post-mortem) can see what a killed campaign still owed.
  {
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("schema_version", 1);
    json.kv("experiment", "rapsim_replay_campaign");
    json.kv("results_dir", std::string_view(config.results_dir));
    emit_config(json, config, traces);
    json.key("cells").begin_array();
    for (std::size_t i = 0; i < grid.size(); ++i) {
      json.begin_object();
      json.kv("key", std::string_view(grid[i].key));
      json.kv("trace", std::string_view(grid[i].cell.trace_name));
      json.kv("scheme", core::scheme_name(grid[i].cell.scheme));
      json.kv("width", static_cast<std::uint64_t>(grid[i].cell.width));
      json.kv("status", cached[i] ? "cached" : "pending");
      json.end_object();
    }
    json.end_array();
    json.end_object();
    report.manifest_path = (results_dir / "manifest.json").string();
    write_file_atomic(report.manifest_path, json.str() + "\n");
  }

  // Fan the remaining cells across worker shards. Chunk granularity is
  // one cell (parallel_for_chunks hands chunks out dynamically), each
  // persisted the moment it finishes so a kill loses at most in-flight
  // cells. Errors propagate after the pool joins.
  if (!work.empty()) {
    util::parallel_for_chunks(
        work.size(), work.size(),
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          (void)chunk;
          for (std::size_t j = begin; j < end; ++j) {
            const GridCell& g = grid[work[j]];
            const std::uint64_t cell_span =
                config.tracer ? config.tracer->begin("cell:" + g.key)
                              : telemetry::kNoSpan;
            CellResult cell = run_cell(g.cell, g.trace->trace);
            if (config.tracer) config.tracer->end(cell_span);
            write_file_atomic((cells_dir / (g.key + ".cell")).string(),
                              cell.to_cell_text());
            report.cells[work[j]] = std::move(cell);
          }
        });
  }

  // Campaign-wide congestion: Tally::merge over the cells in key order.
  // Histogram addition commutes, so cached and fresh cells merge to the
  // same tally an uninterrupted run produces.
  for (const CellResult& cell : report.cells) {
    report.merged_congestion.merge(cell.congestion);
  }

  {
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("schema_version", 1);
    json.kv("experiment", "rapsim_replay_campaign");
    emit_config(json, config, traces);
    json.key("cells").begin_array();
    for (const CellResult& cell : report.cells) emit_cell(json, cell);
    json.end_array();
    json.key("congestion_merged");
    emit_tally(json, report.merged_congestion);
    json.end_object();
    report.summary_path = (results_dir / "summary.json").string();
    write_file_atomic(report.summary_path, json.str() + "\n");
  }
  return report;
}

}  // namespace rapsim::replay
