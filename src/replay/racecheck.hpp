// Dynamic race checking of kernel IR (the differential half of the
// static race verifier, DESIGN.md §14).
//
// analyze::analyze_races() decides cross-warp races symbolically; this
// module pins those verdicts to the executable machine:
//
//   lower_kernel_desc()   — materialize a KernelDesc into a MULTI-WARP
//                           dmm::Kernel: every warp value of a site's
//                           warp variable runs concurrently in one
//                           instruction, non-warp bindings enumerate as
//                           separate instructions, and the IR's barrier
//                           positions lower to kBarrier instructions.
//                           (trace_from_kernel in replay.hpp flattens
//                           everything onto warp 0 — right for
//                           congestion, useless for races.)
//   run_race_check()      — execute the lowered kernel under the
//                           cross-warp ShmemSanitizer and report the
//                           dynamic race counts. A RaceFreedomCertificate
//                           kernel must come back race-clean.
//   replay_race_witness() — drive ONE static finding's concrete witness
//                           (two bindings, one address) through a
//                           two-warp micro-kernel and confirm the
//                           sanitizer fires the same race kind. The
//                           micro-kernel puts the program-order-first
//                           access in warp 0: the DMM's round-robin
//                           scheduler starts at warp 0, so the dynamic
//                           order matches program order and RAW/WAW/WAR
//                           classification agrees by construction.
//
// tests/race_differential_test.cpp sweeps the full builtin catalog with
// these three entry points.

#pragma once

#include <cstdint>
#include <vector>

#include "analyze/kernelir.hpp"
#include "analyze/race.hpp"
#include "analyze/sanitizer.hpp"
#include "core/mapping.hpp"
#include "dmm/kernel.hpp"

namespace rapsim::replay {

struct LoweredKernel {
  dmm::Kernel kernel;
  /// True when the instruction cap cut enumeration short. Truncation is
  /// sound for the clean direction (no false races appear) but means a
  /// static finding outside the emitted prefix may go unreproduced —
  /// use replay_race_witness() for that direction.
  bool truncated = false;
};

/// Lower `kernel` into an executable multi-warp dmm::Kernel (labels carry
/// the site names so sanitizer findings cross-reference lint findings).
/// Emits at most `max_instructions` instructions. Throws
/// std::invalid_argument on an invalid kernel.
[[nodiscard]] LoweredKernel lower_kernel_desc(
    const analyze::KernelDesc& kernel,
    std::uint64_t max_instructions = 1u << 16);

struct RaceCheckOptions {
  core::Scheme scheme = core::Scheme::kRaw;
  std::uint64_t seed = 0;
  std::uint64_t max_instructions = 1u << 16;
};

struct RaceCheckReport {
  bool truncated = false;
  std::uint64_t raw_races = 0;
  std::uint64_t waw_races = 0;
  std::uint64_t war_races = 0;
  /// Recorded race findings (bounded by the sanitizer's max_findings;
  /// the counters above stay exact).
  std::vector<analyze::Finding> findings;

  [[nodiscard]] std::uint64_t races() const noexcept {
    return raw_races + waw_races + war_races;
  }
  [[nodiscard]] bool race_clean() const noexcept { return races() == 0; }
};

/// Lower and run `kernel` on a DMM with the cross-warp sanitizer
/// installed; memory is pre-initialized so uninitialized-read noise
/// cannot evict race findings.
[[nodiscard]] RaceCheckReport run_race_check(
    const analyze::KernelDesc& kernel, const RaceCheckOptions& options = {});

struct WitnessReplay {
  /// True when the sanitizer reported a race of the finding's kind at
  /// the finding's witness address.
  bool triggered = false;
  /// All sanitizer findings of the micro-run (diagnostic).
  std::vector<analyze::Finding> findings;
};

/// Execute `finding`'s two-binding witness as a two-warp micro-kernel
/// (first access in warp 0, second in warp 1, no barrier between) and
/// check that the dynamic sanitizer reproduces the race. Throws
/// std::invalid_argument when the finding's witness addresses disagree
/// (a malformed finding).
[[nodiscard]] WitnessReplay replay_race_witness(
    const analyze::KernelDesc& kernel, const analyze::RaceFinding& finding,
    core::Scheme scheme = core::Scheme::kRaw, std::uint64_t seed = 0);

}  // namespace rapsim::replay
