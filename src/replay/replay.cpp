#include "replay/replay.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace rapsim::replay {

namespace {

RecordKind to_record_kind(dmm::CapturedOpClass op) {
  switch (op) {
    case dmm::CapturedOpClass::kRead: return RecordKind::kRead;
    case dmm::CapturedOpClass::kWrite: return RecordKind::kWrite;
    case dmm::CapturedOpClass::kAtomic: return RecordKind::kAtomic;
    case dmm::CapturedOpClass::kRegister: return RecordKind::kRegister;
  }
  throw std::logic_error("replay: unknown captured op class");
}

}  // namespace

void TraceCaptureSink::begin_kernel(std::uint32_t num_threads,
                                    std::uint32_t width,
                                    std::uint64_t memory_size) {
  trace_ = AccessTrace{};
  trace_.header.width = width;
  trace_.header.num_threads = num_threads;
  trace_.header.memory_size = memory_size;
}

void TraceCaptureSink::on_warp_access(std::uint32_t instr, std::uint32_t warp,
                                      dmm::CapturedOpClass op,
                                      std::uint64_t lane_mask,
                                      std::span<const std::uint64_t> addrs) {
  TraceRecord record;
  record.kind = to_record_kind(op);
  record.instr = instr;
  record.warp = warp;
  record.lane_mask = lane_mask;
  if (record.kind != RecordKind::kRegister) {
    record.addrs.assign(addrs.begin(), addrs.end());
  }
  trace_.records.push_back(std::move(record));
}

void TraceCaptureSink::on_barrier(std::uint32_t instr) {
  TraceRecord record;
  record.kind = RecordKind::kBarrier;
  record.instr = instr;
  trace_.records.push_back(std::move(record));
}

AccessTrace TraceCaptureSink::take() {
  AccessTrace out = std::move(trace_);
  trace_ = AccessTrace{};
  return out;
}

AccessTrace capture_run(dmm::Dmm& machine, const dmm::Kernel& kernel,
                        dmm::RunStats* stats) {
  TraceCaptureSink sink;
  dmm::AccessCapture* previous = machine.capture();
  machine.set_capture(&sink);
  try {
    const dmm::RunStats run_stats = machine.run(kernel);
    if (stats) *stats = run_stats;
  } catch (...) {
    machine.set_capture(previous);
    throw;
  }
  machine.set_capture(previous);
  return sink.take();
}

dmm::Kernel lower_to_kernel(const AccessTrace& trace) {
  trace.validate();

  // validate() bounds every instr below kMaxTraceInstructions, but keep
  // the sizing arithmetic 64-bit so a future relaxation cannot wrap it.
  std::uint64_t num_instr = 0;
  for (const TraceRecord& record : trace.records) {
    num_instr = std::max(num_instr, std::uint64_t{record.instr} + 1);
  }
  if (num_instr > kMaxTraceInstructions) {
    throw std::invalid_argument(
        "replay: trace needs " + std::to_string(num_instr) +
        " instructions, above the cap of " +
        std::to_string(kMaxTraceInstructions));
  }

  dmm::Kernel kernel;
  kernel.num_threads = trace.header.num_threads;
  kernel.instructions.assign(
      static_cast<std::size_t>(num_instr),
      dmm::Instruction(kernel.num_threads, dmm::ThreadOp::none()));

  const std::uint32_t w = trace.header.width;
  for (const TraceRecord& record : trace.records) {
    dmm::Instruction& instr = kernel.instructions[record.instr];
    if (record.kind == RecordKind::kBarrier) {
      for (auto& op : instr) op = dmm::ThreadOp::barrier();
      continue;
    }
    std::size_t next_addr = 0;
    for (std::uint32_t lane = 0; lane < w; ++lane) {
      if ((record.lane_mask >> lane & 1) == 0) continue;
      const std::uint32_t thread = record.warp * w + lane;
      switch (record.kind) {
        case RecordKind::kRead:
          instr[thread] = dmm::ThreadOp::load(record.addrs[next_addr++]);
          break;
        case RecordKind::kWrite:
          // Congestion is value-independent; stores replay as immediate
          // zeros so replay needs no register state reconstruction.
          instr[thread] =
              dmm::ThreadOp::store_imm(record.addrs[next_addr++], 0);
          break;
        case RecordKind::kAtomic:
          instr[thread] = dmm::ThreadOp::atomic_add(record.addrs[next_addr++]);
          break;
        case RecordKind::kRegister:
          instr[thread] = dmm::ThreadOp::min_max(0, 1);
          break;
        case RecordKind::kBarrier:
          break;  // unreachable: handled above
      }
    }
  }
  return kernel;
}

ReplayResult replay_trace(const AccessTrace& trace,
                          const core::AddressMap& map,
                          const ReplayOptions& options) {
  if (map.width() != trace.header.width) {
    throw std::invalid_argument(
        "replay_trace: map width " + std::to_string(map.width()) +
        " does not match trace width " + std::to_string(trace.header.width));
  }
  if (map.size() < trace.header.memory_size) {
    throw std::invalid_argument(
        "replay_trace: map size " + std::to_string(map.size()) +
        " smaller than trace memory " +
        std::to_string(trace.header.memory_size));
  }

  telemetry::SpanTracer* const tracer = options.tracer;
  const std::uint64_t lower_span =
      tracer ? tracer->begin("replay:lower", options.trace_parent)
             : telemetry::kNoSpan;
  const dmm::Kernel kernel = lower_to_kernel(trace);
  if (tracer) tracer->end(lower_span);

  dmm::DmmConfig config{trace.header.width, options.latency, options.kind};
  ReplayResult result;
  dmm::Dmm machine(config, map);
  machine.set_telemetry(&result.telemetry);
  if (options.sanitizer) {
    machine.set_sanitizer(options.sanitizer);
    // A trace carries addresses, not data: mark every word initialized
    // so the sanitizer screens races without uninitialized-read noise.
    machine.fill_identity();
  }
  const std::uint64_t execute_span =
      tracer ? tracer->begin("replay:execute", options.trace_parent)
             : telemetry::kNoSpan;
  result.stats = machine.run(kernel, &result.dispatches);
  if (tracer) tracer->end(execute_span);
  return result;
}

AccessTrace trace_from_kernel(const analyze::KernelDesc& kernel,
                              std::uint64_t max_records) {
  const auto errors = analyze::validate_kernel(kernel);
  if (!errors.empty()) {
    throw std::invalid_argument("trace_from_kernel: kernel '" + kernel.name +
                                "' is invalid: " + errors.front());
  }
  if (kernel.width > kMaxTraceWidth) {
    throw std::invalid_argument(
        "trace_from_kernel: width exceeds the trace format cap");
  }
  const std::uint64_t cap =
      std::min<std::uint64_t>(std::max<std::uint64_t>(max_records, 1),
                              kMaxTraceInstructions);

  AccessTrace trace;
  trace.header.width = kernel.width;
  trace.header.num_threads = kernel.width;
  trace.header.memory_size = kernel.size();

  std::vector<std::uint64_t> binding(kernel.vars.size(), 0);
  bool done = false;
  while (!done && trace.records.size() < cap) {
    for (const analyze::AccessSite& site : kernel.sites) {
      if (trace.records.size() >= cap) break;
      const std::vector<std::int64_t> addrs =
          analyze::materialize_site(kernel, site, binding);
      TraceRecord record;
      switch (site.dir) {
        case analyze::AccessDir::kLoad:
          record.kind = RecordKind::kRead;
          break;
        case analyze::AccessDir::kStore:
          record.kind = RecordKind::kWrite;
          break;
        case analyze::AccessDir::kAtomic:
          record.kind = RecordKind::kAtomic;
          break;
      }
      record.instr = static_cast<std::uint32_t>(trace.records.size());
      record.warp = 0;
      const std::size_t n = addrs.size();
      record.lane_mask =
          n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
      record.addrs.reserve(n);
      for (const std::int64_t addr : addrs) {
        record.addrs.push_back(static_cast<std::uint64_t>(addr));
      }
      trace.records.push_back(std::move(record));
    }
    // Advance the binding odometer (innermost variable fastest).
    std::size_t v = 0;
    for (; v < binding.size(); ++v) {
      if (++binding[v] < kernel.vars[v].count) break;
      binding[v] = 0;
    }
    done = v == binding.size();
  }
  trace.validate();
  return trace;
}

analyze::CongestionCertificate certify_trace(const AccessTrace& trace,
                                             core::Scheme scheme) {
  trace.validate();
  std::vector<std::vector<std::uint64_t>> streams;
  streams.reserve(trace.records.size());
  for (const TraceRecord& record : trace.records) {
    if (record.addrs.empty()) continue;  // register / barrier records
    streams.push_back(record.addrs);
  }
  if (streams.empty()) {
    throw std::invalid_argument(
        "certify_trace: trace has no memory records");
  }
  return analyze::prove_worst_warp(streams, trace.header.width,
                                   trace.header.memory_size, scheme);
}

}  // namespace rapsim::replay
