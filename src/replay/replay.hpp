// Trace-driven DMM replay (trace replay, pillar 2).
//
// The bridge between portable access traces (replay/trace.hpp) and the
// executable machine: TraceCaptureSink records any Dmm run into an
// AccessTrace, lower_to_kernel() lowers a trace back into a straight-line
// dmm::Kernel, and replay_trace() executes that kernel under an arbitrary
// AddressMap, yielding the usual RunStats + telemetry + dispatch trace.
//
// Replay is exact: the lowered kernel preserves instruction indices,
// active-lane masks, op classes and logical addresses, which are the only
// inputs the scheduler and the congestion accounting consume — so
// capturing a workload and replaying it under the same (scheme, width,
// seed) reproduces the native run's RunStats bit for bit
// (tests/replay_differential_test.cpp pins this over every built-in
// workload x scheme x width). Data values are NOT replayed (reads become
// kLoad, writes kStoreImm 0, atomics kAtomicAdd): a trace is an address
// stream, and congestion is a function of addresses alone.
//
// certify_trace() closes the loop with the static analyzer: each
// read/write/atomic record is one warp's concrete address stream, so the
// per-warp prover (analyze::prove_worst_warp) can attach a congestion
// certificate — exact for affine-recognizable streams under deterministic
// schemes, the Theorem 2 envelope otherwise — to any replayed stream.

#pragma once

#include <cstdint>

#include "analyze/certificate.hpp"
#include "analyze/kernelir.hpp"
#include "analyze/sanitizer.hpp"
#include "core/mapping.hpp"
#include "dmm/capture.hpp"
#include "dmm/machine.hpp"
#include "replay/trace.hpp"
#include "telemetry/run_telemetry.hpp"
#include "telemetry/span_tracer.hpp"

namespace rapsim::replay {

/// AccessCapture adapter that accumulates a run into an AccessTrace.
/// Install on a Dmm, run any kernel, then take() the finished trace.
class TraceCaptureSink final : public dmm::AccessCapture {
 public:
  void begin_kernel(std::uint32_t num_threads, std::uint32_t width,
                    std::uint64_t memory_size) override;
  void on_warp_access(std::uint32_t instr, std::uint32_t warp,
                      dmm::CapturedOpClass op, std::uint64_t lane_mask,
                      std::span<const std::uint64_t> addrs) override;
  void on_barrier(std::uint32_t instr) override;

  [[nodiscard]] const AccessTrace& trace() const noexcept { return trace_; }
  /// Move the captured trace out (the sink resets for the next run).
  [[nodiscard]] AccessTrace take();

 private:
  AccessTrace trace_;
};

/// Run `machine`'s kernel while capturing, and return the trace. The
/// machine's previous capture sink (if any) is restored afterwards.
[[nodiscard]] AccessTrace capture_run(dmm::Dmm& machine,
                                      const dmm::Kernel& kernel,
                                      dmm::RunStats* stats = nullptr);

/// Lower a validated trace into an executable kernel: one instruction
/// per recorded index (unrecorded indices stay all-idle and cost
/// nothing), barriers at their markers, reads as kLoad, writes as
/// kStoreImm, atomics as kAtomicAdd, register records as kMinMax.
[[nodiscard]] dmm::Kernel lower_to_kernel(const AccessTrace& trace);

struct ReplayOptions {
  std::uint32_t latency = 1;
  dmm::MachineKind kind = dmm::MachineKind::kDmm;
  /// Optional span tracer: when set (and enabled), replay_trace records
  /// "replay:lower" and "replay:execute" spans parented under
  /// `trace_parent` (kNoSpan = they become roots). Never owned.
  telemetry::SpanTracer* tracer = nullptr;
  std::uint64_t trace_parent = telemetry::kNoSpan;
  /// Optional sanitizer installed on the replay machine (never owned).
  /// Replay memory is pre-initialized when set, so a replayed trace is
  /// screened for cross-warp races without uninitialized-read noise —
  /// the trace-replay leg of the race differential
  /// (tests/race_differential_test.cpp).
  analyze::ShmemSanitizer* sanitizer = nullptr;
};

struct ReplayResult {
  dmm::RunStats stats;
  telemetry::RunTelemetry telemetry;
  dmm::Trace dispatches;
};

/// Execute the trace under `map`. Requires map.width() == header.width
/// and map.size() >= header.memory_size (throws std::invalid_argument
/// otherwise).
[[nodiscard]] ReplayResult replay_trace(const AccessTrace& trace,
                                        const core::AddressMap& map,
                                        const ReplayOptions& options = {});

/// Materialize a kernel IR description (analyze/kernelir.hpp) into a
/// concrete AccessTrace: one memory record per (loop binding, access
/// site) pair, bindings enumerated odometer-style and truncated at
/// `max_records` (the truncation is deterministic — a prefix of the
/// odometer order). The record kind follows the site's AccessDir, the
/// lane mask covers the site's active lanes, and the header's memory
/// size is the kernel's rows x width footprint. This is the bridge that
/// lets a synthesized mapping (analyze/synth.hpp) be confirmed on the
/// full DMM for kernels that exist only as IR. Throws
/// std::invalid_argument on an invalid kernel or one whose width
/// exceeds kMaxTraceWidth.
[[nodiscard]] AccessTrace trace_from_kernel(const analyze::KernelDesc& kernel,
                                            std::uint64_t max_records = 1u
                                                                        << 16);

/// Worst-warp congestion certificate for the trace's memory records
/// under `scheme` (see analyze/certificate.hpp for the rule set).
/// Register-only and barrier records carry no addresses and are skipped.
/// Throws std::invalid_argument when the trace has no memory records.
[[nodiscard]] analyze::CongestionCertificate certify_trace(
    const AccessTrace& trace, core::Scheme scheme);

}  // namespace rapsim::replay
