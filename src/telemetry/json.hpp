// Minimal streaming JSON writer for the telemetry exporters.
//
// The repository takes no third-party JSON dependency; the exporters
// (metrics registry, chrome://tracing, the bench --format=json paths) only
// ever *write* JSON, so a small push-style writer with correct string
// escaping and a structural-validity state machine is all that is needed.
// Keys and values are emitted in call order; objects and arrays nest
// arbitrarily. Misuse (a value where a key is required, unbalanced
// end_* calls) throws std::logic_error rather than emitting bad JSON.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rapsim::telemetry {

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  // NaN / Inf render as null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null();

  /// Splice an already-serialized JSON document in as a value (no
  /// validation — the caller vouches it is well-formed). Lets one
  /// exporter embed another's output (e.g. a MetricsRegistry dump inside
  /// a bench document) without re-parsing.
  JsonWriter& raw_value(std::string_view serialized_json);

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The document so far. Throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

 private:
  void before_value();
  void raw(std::string_view text) { out_.append(text); }

  struct Frame {
    bool is_object = false;
    bool first = true;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace rapsim::telemetry
