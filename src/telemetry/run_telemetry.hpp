// Per-run telemetry sink for the DMM/UMM machine.
//
// Dmm::run cannot afford registry lookups per memory access, so the
// machine writes into this plain-vector sink instead (one branch on a
// nullable pointer per event — a null sink costs nothing but that branch).
// After the run the sink holds:
//
//   * bank_requests[b]    — unique requests routed to bank b (after CRCW
//                           merging; atomics count each serialized cycle)
//   * bank_peak[b]        — the most requests any single warp-instruction
//                           sent to bank b. Totals are uniform for any
//                           bijective workload (every address touched
//                           once), so this is the column that shows WHICH
//                           banks serialize: a RAW stride write peaks at w
//                           on one bank, RAP at ~1. DMM machines only
//                           (a UMM has no per-bank address lines).
//   * congestion          — exact histogram of per-dispatch congestion
//   * dispatches          — warp-instructions dispatched
//   * total_slots         — pipeline slots consumed (sum of congestion)
//   * warp_stall_slots    — slots warps spent ready-but-undispatched
//                           (round-robin queueing delay)
//   * pipeline_idle_slots — slots the MMU pipeline sat empty waiting for
//                           outstanding requests to drain
//
// flush_into() converts the raw vectors into labeled metrics in a
// MetricsRegistry; BankProfile renders the bank_requests vector as a
// heatmap row.

#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/stats.hpp"

namespace rapsim::telemetry {

struct RunTelemetry {
  std::vector<std::uint64_t> bank_requests;
  std::vector<std::uint64_t> bank_peak;
  util::Tally congestion;
  std::uint64_t dispatches = 0;
  std::uint64_t total_slots = 0;
  std::uint64_t warp_stall_slots = 0;
  std::uint64_t pipeline_idle_slots = 0;

  /// Clear all counters and size the per-bank vector for `width` banks.
  /// Dmm::run calls this at the start of every traced run.
  void reset(std::uint32_t width);

  /// Fraction of consumed pipeline slots in which bank `bank` carried a
  /// request (each unique request occupies its bank for one slot). 0 when
  /// nothing was dispatched.
  [[nodiscard]] double bank_occupancy(std::uint32_t bank) const noexcept;

  /// Register everything under the given labels:
  ///   counters  dmm.bank_requests{bank=b}, dmm.dispatches,
  ///             dmm.pipeline_slots, dmm.warp_stall_slots,
  ///             dmm.pipeline_idle_slots
  ///   gauges    dmm.bank_peak{bank=b} (max-merged),
  ///             dmm.bank_occupancy{bank=b}
  ///   distribution  dmm.congestion
  void flush_into(MetricsRegistry& registry, const Labels& labels) const;
};

}  // namespace rapsim::telemetry
