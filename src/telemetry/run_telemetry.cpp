#include "telemetry/run_telemetry.hpp"

#include <algorithm>

namespace rapsim::telemetry {

void RunTelemetry::reset(std::uint32_t width) {
  bank_requests.assign(width, 0);
  bank_peak.assign(width, 0);
  congestion = util::Tally{};
  dispatches = 0;
  total_slots = 0;
  warp_stall_slots = 0;
  pipeline_idle_slots = 0;
}

double RunTelemetry::bank_occupancy(std::uint32_t bank) const noexcept {
  if (total_slots == 0 || bank >= bank_requests.size()) return 0.0;
  return static_cast<double>(bank_requests[bank]) /
         static_cast<double>(total_slots);
}

void RunTelemetry::flush_into(MetricsRegistry& registry,
                              const Labels& labels) const {
  registry.counter("dmm.dispatches", labels).inc(dispatches);
  registry.counter("dmm.pipeline_slots", labels).inc(total_slots);
  registry.counter("dmm.warp_stall_slots", labels).inc(warp_stall_slots);
  registry.counter("dmm.pipeline_idle_slots", labels).inc(pipeline_idle_slots);

  for (std::size_t b = 0; b < bank_requests.size(); ++b) {
    Labels bank_labels = labels;
    bank_labels["bank"] = std::to_string(b);
    registry.counter("dmm.bank_requests", bank_labels).inc(bank_requests[b]);
    auto& peak = registry.gauge("dmm.bank_peak", bank_labels);
    peak.set(std::max(peak.value(), static_cast<double>(bank_peak[b])));
    registry.gauge("dmm.bank_occupancy", bank_labels)
        .set(bank_occupancy(static_cast<std::uint32_t>(b)));
  }

  auto& dist = registry.distribution("dmm.congestion", labels);
  for (const auto& [value, count] : congestion.histogram()) {
    dist.observe_repeated(value, count);
  }
}

}  // namespace rapsim::telemetry
