#include "telemetry/bank_profile.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "util/stats.hpp"

namespace rapsim::telemetry {

PhaseStats phase_stats(const dmm::Trace& trace, std::uint32_t instruction) {
  PhaseStats phase;
  phase.instruction = instruction;
  double sum = 0.0;
  for (const auto& d : trace.dispatches) {
    if (d.instruction != instruction) continue;
    if (phase.dispatches == 0) {
      phase.first_start = d.start;
      phase.last_completion = d.completion;
    } else {
      phase.first_start = std::min(phase.first_start, d.start);
      phase.last_completion = std::max(phase.last_completion, d.completion);
    }
    ++phase.dispatches;
    phase.slots += d.stages;
    sum += d.stages;
    phase.max_congestion = std::max(phase.max_congestion, d.stages);
  }
  if (phase.dispatches) {
    phase.avg_congestion = sum / static_cast<double>(phase.dispatches);
  }
  return phase;
}

std::vector<PhaseStats> per_instruction_stats(const dmm::Trace& trace) {
  std::map<std::uint32_t, PhaseStats> by_instruction;
  for (const auto& d : trace.dispatches) {
    auto [it, inserted] = by_instruction.try_emplace(d.instruction);
    PhaseStats& phase = it->second;
    if (inserted) {
      phase.instruction = d.instruction;
      phase.first_start = d.start;
      phase.last_completion = d.completion;
    } else {
      phase.first_start = std::min(phase.first_start, d.start);
      phase.last_completion = std::max(phase.last_completion, d.completion);
    }
    ++phase.dispatches;
    phase.slots += d.stages;
    phase.max_congestion = std::max(phase.max_congestion, d.stages);
  }
  std::vector<PhaseStats> phases;
  phases.reserve(by_instruction.size());
  for (auto& [instr, phase] : by_instruction) {
    phase.avg_congestion = static_cast<double>(phase.slots) /
                           static_cast<double>(phase.dispatches);
    phases.push_back(phase);
  }
  return phases;
}

std::string render_phase_timeline(const dmm::Trace& trace) {
  std::ostringstream out;
  for (const auto& phase : per_instruction_stats(trace)) {
    out << "instr " << phase.instruction << ": [" << phase.first_start << ", "
        << phase.last_completion << "]  dispatches " << phase.dispatches
        << "  slots " << phase.slots << "  congestion avg "
        << util::format_fixed(phase.avg_congestion, 2) << " max "
        << phase.max_congestion << '\n';
  }
  return out.str();
}

BankProfile::BankProfile(std::uint32_t width) : width_(width) {
  if (width == 0) throw std::invalid_argument("BankProfile: width must be > 0");
}

void BankProfile::add_row(std::string label,
                          std::vector<std::uint64_t> bank_counts) {
  if (bank_counts.size() != width_) {
    throw std::invalid_argument(
        "BankProfile::add_row: counts must have one entry per bank");
  }
  rows_.push_back({std::move(label), std::move(bank_counts)});
}

std::string BankProfile::render_heatmap(std::size_t max_columns) const {
  static constexpr char kScale[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kScale) - 2;  // index of '@'
  if (max_columns == 0) max_columns = 1;
  const std::size_t columns = std::min<std::size_t>(width_, max_columns);
  const std::size_t fold = (width_ + columns - 1) / columns;

  std::size_t label_width = 4;
  for (const auto& r : rows_) label_width = std::max(label_width, r.label.size());

  std::ostringstream out;
  out << std::string(label_width, ' ') << "  bank 0";
  if (width_ > 1) {
    out << " .. " << width_ - 1;
    if (fold > 1) out << " (x" << fold << " per column)";
  }
  out << '\n';
  for (const auto& r : rows_) {
    std::vector<std::uint64_t> cells(columns, 0);
    for (std::size_t b = 0; b < width_; ++b) cells[b / fold] += r.counts[b];
    const std::uint64_t peak = *std::max_element(cells.begin(), cells.end());
    out << r.label << std::string(label_width - r.label.size(), ' ') << "  [";
    for (const std::uint64_t c : cells) {
      const std::size_t level =
          peak == 0 ? 0
                    : (c * kLevels + peak - 1) / peak;  // ceil; 0 only if c==0
      out << kScale[level];
    }
    const std::size_t hottest = static_cast<std::size_t>(
        std::max_element(r.counts.begin(), r.counts.end()) - r.counts.begin());
    out << "]  max " << (r.counts.empty() ? 0 : r.counts[hottest]) << " @ bank "
        << hottest << '\n';
  }
  return out.str();
}

std::string BankProfile::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.kv("width", static_cast<std::uint64_t>(width_));
  json.key("rows").begin_array();
  for (const auto& r : rows_) {
    json.begin_object();
    json.kv("label", std::string_view(r.label));
    json.key("bank_requests").begin_array();
    for (const std::uint64_t c : r.counts) json.value(c);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace rapsim::telemetry
