#include "telemetry/span_tracer.hpp"

#include "perfbench/clock.hpp"

namespace rapsim::telemetry {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          perfbench::now().time_since_epoch())
          .count());
}

}  // namespace

SpanTracer::SpanTracer() : epoch_ns_(steady_ns()) {}

std::uint32_t SpanTracer::thread_index_locked() {
  const auto tid = std::this_thread::get_id();
  const auto it = threads_.find(tid);
  if (it != threads_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(threads_.size());
  threads_.emplace(tid, index);
  return index;
}

std::uint64_t SpanTracer::begin(std::string_view name, std::uint64_t parent) {
  if (!enabled()) return kNoSpan;
  const std::uint64_t start = steady_ns() - epoch_ns_;
  const std::uint64_t id =
      next_id_.fetch_add(1, std::memory_order_relaxed);
  SpanRecord record;
  record.id = id;
  record.parent = parent;
  record.name.assign(name.data(), name.size());
  record.start_ns = start;
  const std::lock_guard<std::mutex> lock(mutex_);
  record.thread = thread_index_locked();
  open_.emplace(id, std::move(record));
  return id;
}

void SpanTracer::end(std::uint64_t id) {
  if (id == kNoSpan) return;
  const std::uint64_t finish = steady_ns() - epoch_ns_;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_.find(id);
  if (it == open_.end()) return;  // unknown or already closed: no-op
  SpanRecord record = std::move(it->second);
  open_.erase(it);
  record.end_ns = finish < record.start_ns ? record.start_ns : finish;
  completed_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanTracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t SpanTracer::completed_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_.size();
}

void SpanTracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_.clear();
}

}  // namespace rapsim::telemetry
