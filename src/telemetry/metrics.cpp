#include "telemetry/metrics.hpp"

#include "telemetry/json.hpp"

namespace rapsim::telemetry {

namespace {

std::string make_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  return key;
}

void write_labels(JsonWriter& json, const Labels& labels) {
  json.key("labels").begin_object();
  for (const auto& [k, v] : labels) json.kv(k, std::string_view(v));
  json.end_object();
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  auto& entry = counters_[make_key(name, labels)];
  if (entry.name.empty()) {
    entry.name = name;
    entry.labels = labels;
  }
  return entry.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  auto& entry = gauges_[make_key(name, labels)];
  if (entry.name.empty()) {
    entry.name = name;
    entry.labels = labels;
  }
  return entry.metric;
}

Distribution& MetricsRegistry::distribution(const std::string& name,
                                            const Labels& labels) {
  auto& entry = distributions_[make_key(name, labels)];
  if (entry.name.empty()) {
    entry.name = name;
    entry.labels = labels;
  }
  return entry.metric;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  const auto it = counters_.find(make_key(name, labels));
  return it == counters_.end() ? nullptr : &it->second.metric;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  const auto it = gauges_.find(make_key(name, labels));
  return it == gauges_.end() ? nullptr : &it->second.metric;
}

const Distribution* MetricsRegistry::find_distribution(
    const std::string& name, const Labels& labels) const {
  const auto it = distributions_.find(make_key(name, labels));
  return it == distributions_.end() ? nullptr : &it->second.metric;
}

std::size_t MetricsRegistry::size() const noexcept {
  return counters_.size() + gauges_.size() + distributions_.size();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter json;
  json.begin_object();

  json.key("counters").begin_array();
  for (const auto& [key, entry] : counters_) {
    json.begin_object();
    json.kv("name", std::string_view(entry.name));
    write_labels(json, entry.labels);
    json.kv("value", entry.metric.value());
    json.end_object();
  }
  json.end_array();

  json.key("gauges").begin_array();
  for (const auto& [key, entry] : gauges_) {
    json.begin_object();
    json.kv("name", std::string_view(entry.name));
    write_labels(json, entry.labels);
    json.kv("value", entry.metric.value());
    json.end_object();
  }
  json.end_array();

  json.key("distributions").begin_array();
  for (const auto& [key, entry] : distributions_) {
    const auto& stats = entry.metric.stats();
    json.begin_object();
    json.kv("name", std::string_view(entry.name));
    write_labels(json, entry.labels);
    json.kv("count", static_cast<std::uint64_t>(stats.count()));
    json.kv("mean", stats.mean());
    json.kv("stddev", stats.stddev());
    json.kv("min", stats.min());
    json.kv("max", stats.max());
    json.kv("p50", entry.metric.percentile(50.0));
    json.kv("p95", entry.metric.percentile(95.0));
    json.kv("p99", entry.metric.percentile(99.0));
    json.key("histogram").begin_object();
    for (const auto& [value, count] : entry.metric.tally().histogram()) {
      json.kv(std::to_string(value), static_cast<std::uint64_t>(count));
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  json.end_object();
  return json.str();
}

}  // namespace rapsim::telemetry
