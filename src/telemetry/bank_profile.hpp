// Bank-level and phase-level aggregation over runs and traces.
//
// BankProfile answers the question the paper's whole argument turns on:
// *which banks* serialize under a given scheme. Each labeled row is one
// run's per-bank unique-request totals (from a RunTelemetry sink or any
// counts vector); render_heatmap() prints the rows as an ASCII intensity
// map, one character per bank, normalized per row — a RAW stride access
// shows one burning-hot column, RAS/RAP show an even wash.
//
// The phase helpers slice a dmm::Trace by instruction index: every
// dispatch of instruction k belongs to phase k, so a two-instruction
// transpose kernel yields a read phase (k = 0) and a write phase (k = 1).
// This replaces the ad-hoc read/write split that previously lived in
// transpose/runner.cpp and generalizes it to any straight-line kernel.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dmm/trace.hpp"

namespace rapsim::telemetry {

/// Congestion statistics of one kernel phase (one instruction index).
struct PhaseStats {
  std::uint32_t instruction = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t slots = 0;        // pipeline slots consumed by the phase
  double avg_congestion = 0.0;
  std::uint32_t max_congestion = 0;
  std::uint64_t first_start = 0;  // earliest dispatch slot
  std::uint64_t last_completion = 0;
};

/// Stats of the dispatches of one instruction. Instructions that never
/// dispatched (barriers, register-only, fully idle) yield an empty entry.
[[nodiscard]] PhaseStats phase_stats(const dmm::Trace& trace,
                                     std::uint32_t instruction);

/// One PhaseStats per instruction index that appears in the trace,
/// ordered by instruction — the kernel's phase timeline.
[[nodiscard]] std::vector<PhaseStats> per_instruction_stats(
    const dmm::Trace& trace);

/// Multi-line rendering of per_instruction_stats: one line per phase with
/// its dispatch window and congestion.
[[nodiscard]] std::string render_phase_timeline(const dmm::Trace& trace);

/// Labeled per-bank request totals, rendered as an ASCII heatmap.
class BankProfile {
 public:
  explicit BankProfile(std::uint32_t width);

  /// Append a row of per-bank counts (must have exactly `width` entries).
  void add_row(std::string label, std::vector<std::uint64_t> bank_counts);

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& row(std::size_t i) const {
    return rows_.at(i).counts;
  }
  [[nodiscard]] const std::string& label(std::size_t i) const {
    return rows_.at(i).label;
  }

  /// ASCII intensity map: one character per bank (banks wider than
  /// `max_columns` are folded into equal buckets), normalized per row.
  /// The scale runs " .:-=+*#%@" from zero to the row maximum; the row's
  /// max count and hottest bank are appended.
  [[nodiscard]] std::string render_heatmap(std::size_t max_columns = 64) const;

  /// {"width":w,"rows":[{"label":...,"bank_requests":[...]}]}
  [[nodiscard]] std::string to_json() const;

 private:
  struct Row {
    std::string label;
    std::vector<std::uint64_t> counts;
  };
  std::uint32_t width_;
  std::vector<Row> rows_;
};

}  // namespace rapsim::telemetry
