// Request-scoped span tracing: begin/end intervals with parent IDs, so
// one daemon request (or one campaign cell) renders as a nested flame
// of its actual phases instead of a single latency number.
//
// Design constraints, in order:
//
//   * zero-cost when disabled — begin() is one relaxed atomic load and
//     returns kNoSpan; end(kNoSpan) returns immediately. A Service or
//     replay path can thread a tracer unconditionally and pay nothing
//     until an operator passes --trace-out;
//   * thread-safe — spans begin on one thread (a connection pump) and
//     end on another (a pool worker); a mutex guards the span tables,
//     which is fine because an enabled tracer records a handful of
//     spans per REQUEST, not per memory access;
//   * timestamps come from perfbench::now() (the repository's single
//     steady clock, header-only so no link cycle), relative to the
//     tracer's construction epoch.
//
// Export: chrome_trace.hpp renders snapshot() as a Trace Event Format
// document — every span an "X" event carrying its id/parent in args,
// re-homed onto its root span's track so one request is one nested
// flame in ui.perfetto.dev.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rapsim::telemetry {

inline constexpr std::uint64_t kNoSpan = 0;

struct SpanRecord {
  std::uint64_t id = kNoSpan;
  std::uint64_t parent = kNoSpan;  // kNoSpan = a root span
  std::string name;
  std::uint32_t thread = 0;        // dense per-tracer thread index
  std::uint64_t start_ns = 0;      // from the tracer's epoch
  std::uint64_t end_ns = 0;
};

class SpanTracer {
 public:
  SpanTracer();

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Open a span. Returns kNoSpan (and records nothing) when disabled.
  [[nodiscard]] std::uint64_t begin(std::string_view name,
                                    std::uint64_t parent = kNoSpan);
  /// Close a span; id = kNoSpan or an unknown/already-closed id is a
  /// no-op (a tracer disabled mid-request must not trip callers).
  void end(std::uint64_t id);

  /// Completed spans, in completion order.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::size_t completed_count() const;
  /// Drop all recorded spans (open spans survive and complete normally).
  void clear();

 private:
  std::uint32_t thread_index_locked();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  // steady-clock epoch in ns, captured at construction (stored as the
  // raw count so the header needs no <chrono> for callers).
  std::uint64_t epoch_ns_ = 0;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, SpanRecord> open_;
  std::vector<SpanRecord> completed_;
  std::unordered_map<std::thread::id, std::uint32_t> threads_;
};

/// RAII span: begins on construction, ends on destruction. Safe on a
/// null tracer (records nothing).
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, std::string_view name,
             std::uint64_t parent = kNoSpan)
      : tracer_(tracer),
        id_(tracer ? tracer->begin(name, parent) : kNoSpan) {}
  ~ScopedSpan() {
    if (tracer_) tracer_->end(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  SpanTracer* tracer_;
  std::uint64_t id_;
};

}  // namespace rapsim::telemetry
