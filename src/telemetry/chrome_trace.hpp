// chrome://tracing export of a DMM execution trace.
//
// Converts a dmm::Trace into the Trace Event Format JSON that Perfetto
// (https://ui.perfetto.dev) and chrome://tracing load directly. One
// timeline track per warp; per dispatch:
//
//   * a complete ("X") event over the warp's pipeline slots
//     [start, start + stages) named "i<instr> c<congestion>", carrying
//     the full DispatchRecord in args;
//   * optionally a "latency" event over (start + stages, completion],
//     so the memory-latency tail is visible and the track visually ends
//     at the paper's completion time (Figure 3: t = 7);
//   * optionally a "congestion" counter ("C") event at the dispatch slot.
//
// Time units are pipeline slots rendered as microseconds (the format has
// no dimensionless unit); only relative positions are meaningful.

#pragma once

#include <string>

#include "dmm/trace.hpp"

namespace rapsim::telemetry {

struct ChromeTraceOptions {
  std::string process_name = "rapsim dmm";
  bool latency_spans = true;        // show the l-slot memory latency tail
  bool congestion_counter = true;   // emit a congestion counter track
};

/// Render `trace` as a Trace Event Format document:
/// {"traceEvents":[...], "displayTimeUnit":"ms"}.
[[nodiscard]] std::string to_chrome_trace(const dmm::Trace& trace,
                                          const ChromeTraceOptions& options = {});

}  // namespace rapsim::telemetry
