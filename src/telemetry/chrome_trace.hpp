// chrome://tracing export of a DMM execution trace.
//
// Converts a dmm::Trace into the Trace Event Format JSON that Perfetto
// (https://ui.perfetto.dev) and chrome://tracing load directly. One
// timeline track per warp; per dispatch:
//
//   * a complete ("X") event over the warp's pipeline slots
//     [start, start + stages) named "i<instr> c<congestion>", carrying
//     the full DispatchRecord in args;
//   * optionally a "latency" event over (start + stages, completion],
//     so the memory-latency tail is visible and the track visually ends
//     at the paper's completion time (Figure 3: t = 7);
//   * optionally a "congestion" counter ("C") event at the dispatch slot.
//
// Time units are pipeline slots rendered as microseconds (the format has
// no dimensionless unit); only relative positions are meaningful.

#pragma once

#include <string>
#include <vector>

#include "dmm/trace.hpp"
#include "telemetry/span_tracer.hpp"

namespace rapsim::telemetry {

struct ChromeTraceOptions {
  std::string process_name = "rapsim dmm";
  bool latency_spans = true;        // show the l-slot memory latency tail
  bool congestion_counter = true;   // emit a congestion counter track
};

/// Render `trace` as a Trace Event Format document:
/// {"traceEvents":[...], "displayTimeUnit":"ms"}.
[[nodiscard]] std::string to_chrome_trace(const dmm::Trace& trace,
                                          const ChromeTraceOptions& options = {});

/// Render SpanTracer spans as a Trace Event Format document. Each span
/// becomes a complete ("X") event with its id/parent in args; ts/dur are
/// nanoseconds rendered as microseconds. Every span is re-homed onto
/// the track (tid) of its ROOT span, so a request whose phases ran on a
/// connection thread AND a pool worker still renders as one nested
/// flame.
[[nodiscard]] std::string spans_to_chrome_trace(
    const std::vector<SpanRecord>& spans,
    const std::string& process_name = "rapsim spans");

}  // namespace rapsim::telemetry
