// Low-overhead metrics registry — the machine-readable side of every run.
//
// Three metric kinds cover everything the simulator reports:
//
//   * Counter       — monotonically increasing uint64 (bank requests,
//                     dispatches, stall slots)
//   * Gauge         — last-written double (occupancy ratios, derived rates)
//   * Distribution  — OnlineStats moments + an exact integer Tally, so the
//                     JSON exporter can emit mean/stddev AND p50/p95/p99
//                     of discrete observables such as congestion
//
// Metrics are identified by (name, labels); labels are free-form key/value
// pairs (scheme=RAP, width=32, seed=7, bank=13 ...). Lookup is a map walk
// — callers on hot paths (Dmm::run) do NOT talk to the registry per
// access; they fill a RunTelemetry sink (plain vectors) and flush it here
// once per run. References returned by counter()/gauge()/distribution()
// are stable for the registry's lifetime, so a caller may also cache one
// and increment it directly.
//
// to_json() renders one stable-schema document:
//   {"counters":[{"name":...,"labels":{...},"value":N}, ...],
//    "gauges":[...], "distributions":[{"name":...,"count":...,"mean":...,
//    "p50":...,"p95":...,"p99":...,"histogram":{...}}, ...]}

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/stats.hpp"

namespace rapsim::telemetry {

/// Metric labels, ordered so serialization is deterministic.
using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set(std::uint64_t value) noexcept { value_ = value; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Distribution {
 public:
  void observe(std::uint64_t value) {
    stats_.add(static_cast<double>(value));
    tally_.add(value);
  }
  /// O(1) weighted observation — used when flushing a histogram.
  void observe_repeated(std::uint64_t value, std::size_t count) {
    stats_.add_repeated(static_cast<double>(value), count);
    tally_.add_count(value, count);
  }
  [[nodiscard]] const util::OnlineStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const util::Tally& tally() const noexcept { return tally_; }
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    return tally_.percentile(p);
  }

 private:
  util::OnlineStats stats_;
  util::Tally tally_;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference stays valid until the
  /// registry is destroyed.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Distribution& distribution(const std::string& name,
                             const Labels& labels = {});

  /// Read-only lookup: nullptr when the metric was never registered.
  /// Unlike the find-or-create accessors these let asserting code (tests,
  /// schema checks) probe for a metric's absence without materializing it.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Distribution* find_distribution(
      const std::string& name, const Labels& labels = {}) const;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Stable-schema JSON document of every registered metric.
  [[nodiscard]] std::string to_json() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    T metric;
  };
  /// Key = name + '\0' + serialized labels (deterministic order).
  template <typename T>
  using EntryMap = std::map<std::string, Entry<T>>;

  EntryMap<Counter> counters_;
  EntryMap<Gauge> gauges_;
  EntryMap<Distribution> distributions_;
};

}  // namespace rapsim::telemetry
