#include "telemetry/chrome_trace.hpp"

#include <set>
#include <unordered_map>

#include "telemetry/json.hpp"

namespace rapsim::telemetry {

std::string to_chrome_trace(const dmm::Trace& trace,
                            const ChromeTraceOptions& options) {
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  // Metadata: name the process and one thread per warp so Perfetto shows
  // "warp N" track titles instead of bare tids.
  json.begin_object();
  json.kv("name", "process_name").kv("ph", "M").kv("pid", 0).kv("tid", 0);
  json.key("args").begin_object();
  json.kv("name", std::string_view(options.process_name));
  json.end_object();
  json.end_object();

  std::set<std::uint32_t> warps;
  for (const auto& d : trace.dispatches) warps.insert(d.warp);
  for (const std::uint32_t warp : warps) {
    json.begin_object();
    json.kv("name", "thread_name").kv("ph", "M").kv("pid", 0).kv("tid", warp);
    json.key("args").begin_object();
    json.kv("name", std::string_view("warp " + std::to_string(warp)));
    json.end_object();
    json.end_object();
  }

  for (const auto& d : trace.dispatches) {
    // Pipeline occupancy: slots [start, start + stages).
    json.begin_object();
    json.kv("name", std::string_view("i" + std::to_string(d.instruction) +
                                     " c" + std::to_string(d.stages)));
    json.kv("cat", "dispatch").kv("ph", "X").kv("pid", 0).kv("tid", d.warp);
    json.kv("ts", d.start).kv("dur", static_cast<std::uint64_t>(d.stages));
    json.key("args").begin_object();
    json.kv("instruction", d.instruction);
    json.kv("congestion", d.stages);
    json.kv("unique_requests", d.unique_requests);
    json.kv("active_threads", d.active_threads);
    json.kv("completion", d.completion);
    json.end_object();
    json.end_object();

    // Memory latency tail: the last request enters the pipeline at slot
    // start + stages - 1 and completes at `completion`, so the in-flight
    // window after the pipeline slots is [start + stages, completion].
    const std::uint64_t tail_start = d.start + d.stages;
    if (options.latency_spans && d.completion > tail_start) {
      json.begin_object();
      json.kv("name", "latency");
      json.kv("cat", "latency").kv("ph", "X").kv("pid", 0).kv("tid", d.warp);
      json.kv("ts", tail_start).kv("dur", d.completion - tail_start);
      json.end_object();
    }

    if (options.congestion_counter) {
      json.begin_object();
      json.kv("name", "congestion").kv("ph", "C").kv("pid", 0);
      json.kv("ts", d.start);
      json.key("args").begin_object();
      json.kv("slots", d.stages);
      json.end_object();
      json.end_object();
    }
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
  return json.str();
}

std::string spans_to_chrome_trace(const std::vector<SpanRecord>& spans,
                                  const std::string& process_name) {
  // Resolve each span to its root's thread so one request is one track.
  // Parents may complete after children, so resolve via an id index with
  // memoization rather than relying on record order.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) by_id.emplace(span.id, &span);

  std::unordered_map<std::uint64_t, std::uint32_t> track_memo;
  const auto track_of = [&](const SpanRecord& span) {
    std::vector<std::uint64_t> chain;
    const SpanRecord* at = &span;
    for (;;) {
      const auto memo = track_memo.find(at->id);
      if (memo != track_memo.end()) {
        for (const std::uint64_t id : chain) track_memo[id] = memo->second;
        return memo->second;
      }
      chain.push_back(at->id);
      const auto parent = at->parent != kNoSpan ? by_id.find(at->parent)
                                                : by_id.end();
      if (parent == by_id.end()) break;  // root, or parent never completed
      at = parent->second;
    }
    const std::uint32_t track = at->thread;
    for (const std::uint64_t id : chain) track_memo[id] = track;
    return track;
  };

  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  json.begin_object();
  json.kv("name", "process_name").kv("ph", "M").kv("pid", 0).kv("tid", 0);
  json.key("args").begin_object();
  json.kv("name", std::string_view(process_name));
  json.end_object();
  json.end_object();

  std::set<std::uint32_t> tracks;
  for (const SpanRecord& span : spans) tracks.insert(track_of(span));
  for (const std::uint32_t track : tracks) {
    json.begin_object();
    json.kv("name", "thread_name").kv("ph", "M").kv("pid", 0);
    json.kv("tid", track);
    json.key("args").begin_object();
    json.kv("name", std::string_view("track " + std::to_string(track)));
    json.end_object();
    json.end_object();
  }

  for (const SpanRecord& span : spans) {
    json.begin_object();
    json.kv("name", std::string_view(span.name));
    json.kv("cat", "span").kv("ph", "X").kv("pid", 0);
    json.kv("tid", track_of(span));
    // ns rendered as us so Perfetto shows sub-microsecond durations.
    json.kv("ts", static_cast<double>(span.start_ns) / 1000.0);
    json.kv("dur",
            static_cast<double>(span.end_ns - span.start_ns) / 1000.0);
    json.key("args").begin_object();
    json.kv("span", span.id);
    json.kv("parent", span.parent);
    json.kv("thread", span.thread);
    json.end_object();
    json.end_object();
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
  return json.str();
}

}  // namespace rapsim::telemetry
