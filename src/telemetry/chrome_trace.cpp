#include "telemetry/chrome_trace.hpp"

#include <set>

#include "telemetry/json.hpp"

namespace rapsim::telemetry {

std::string to_chrome_trace(const dmm::Trace& trace,
                            const ChromeTraceOptions& options) {
  JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();

  // Metadata: name the process and one thread per warp so Perfetto shows
  // "warp N" track titles instead of bare tids.
  json.begin_object();
  json.kv("name", "process_name").kv("ph", "M").kv("pid", 0).kv("tid", 0);
  json.key("args").begin_object();
  json.kv("name", std::string_view(options.process_name));
  json.end_object();
  json.end_object();

  std::set<std::uint32_t> warps;
  for (const auto& d : trace.dispatches) warps.insert(d.warp);
  for (const std::uint32_t warp : warps) {
    json.begin_object();
    json.kv("name", "thread_name").kv("ph", "M").kv("pid", 0).kv("tid", warp);
    json.key("args").begin_object();
    json.kv("name", std::string_view("warp " + std::to_string(warp)));
    json.end_object();
    json.end_object();
  }

  for (const auto& d : trace.dispatches) {
    // Pipeline occupancy: slots [start, start + stages).
    json.begin_object();
    json.kv("name", std::string_view("i" + std::to_string(d.instruction) +
                                     " c" + std::to_string(d.stages)));
    json.kv("cat", "dispatch").kv("ph", "X").kv("pid", 0).kv("tid", d.warp);
    json.kv("ts", d.start).kv("dur", static_cast<std::uint64_t>(d.stages));
    json.key("args").begin_object();
    json.kv("instruction", d.instruction);
    json.kv("congestion", d.stages);
    json.kv("unique_requests", d.unique_requests);
    json.kv("active_threads", d.active_threads);
    json.kv("completion", d.completion);
    json.end_object();
    json.end_object();

    // Memory latency tail: the last request enters the pipeline at slot
    // start + stages - 1 and completes at `completion`, so the in-flight
    // window after the pipeline slots is [start + stages, completion].
    const std::uint64_t tail_start = d.start + d.stages;
    if (options.latency_spans && d.completion > tail_start) {
      json.begin_object();
      json.kv("name", "latency");
      json.kv("cat", "latency").kv("ph", "X").kv("pid", 0).kv("tid", d.warp);
      json.kv("ts", tail_start).kv("dur", d.completion - tail_start);
      json.end_object();
    }

    if (options.congestion_counter) {
      json.begin_object();
      json.kv("name", "congestion").kv("ph", "C").kv("pid", 0);
      json.kv("ts", d.start);
      json.key("args").begin_object();
      json.kv("slots", d.stages);
      json.end_object();
      json.end_object();
    }
  }

  json.end_array();
  json.kv("displayTimeUnit", "ms");
  json.end_object();
  return json.str();
}

}  // namespace rapsim::telemetry
