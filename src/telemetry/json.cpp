#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rapsim::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  Frame& top = stack_.back();
  if (top.is_object) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: object member requires a key first");
    }
    key_pending_ = false;
  } else {
    if (!top.first) raw(",");
    top.first = false;
  }
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || !stack_.back().is_object) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: key already pending");
  Frame& top = stack_.back();
  if (!top.first) raw(",");
  top.first = false;
  raw("\"");
  raw(json_escape(k));
  raw("\":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({true, true});
  raw("{");
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  stack_.pop_back();
  raw("}");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({false, true});
  raw("[");
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  stack_.pop_back();
  raw("]");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  raw("\"");
  raw(json_escape(v));
  raw("\"");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    raw("null");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    raw(buf);
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view serialized_json) {
  before_value();
  raw(serialized_json);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ && !stack_.empty()) {
    throw std::logic_error("JsonWriter: str() with open containers");
  }
  return out_;
}

}  // namespace rapsim::telemetry
