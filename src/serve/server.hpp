// The socket front of the serve engine: accept loop, per-connection
// line pumps, and the graceful-drain state machine.
//
// Threading model: one accept loop (inside run()), one thread per
// connection. A connection pumps '\n'-framed requests sequentially —
// concurrency comes from concurrent CONNECTIONS, which is how the
// clients (compilers, autotuners) use the service. All socket waits are
// bounded polls, so every loop observes `stop` within kPollMs.
//
// Drain (SIGTERM, the shutdown method, or request_stop()):
//   1. stop accepting — the listener closes, new connects fail fast;
//   2. connection pumps answer any COMPLETE lines already buffered,
//      then close (a request the daemon acknowledged reading is never
//      dropped; bytes of a half-sent line are);
//   3. the service drains: queued + executing work finishes, workers
//      join;
//   4. metrics flush to config.metrics_path (when set);
//   5. run() returns 0.
//
// Signal handling stays in the daemon binary (tools/rapsim_served.cpp):
// the library exposes request_stop(), the binary wires SIGTERM/SIGINT
// to it via a sig_atomic_t flag it polls.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace rapsim::serve {

inline constexpr int kPollMs = 100;

struct ServerConfig {
  Endpoint endpoint;
  ServiceConfig service;
  std::string metrics_path;        // empty = no flush on drain
  /// Non-empty: enable request-scoped span tracing and write the
  /// chrome://tracing document here on drain. Each request becomes a
  /// root "request:<method>" span with the engine's phase spans
  /// (admission, cache_lookup, queue_wait, execute:<method>) and the
  /// transport's "write" span nested beneath it.
  std::string trace_path;
  std::size_t max_connections = 256;
};

class Server {
 public:
  /// Binds and listens immediately (so the caller knows the endpoint —
  /// including a kernel-assigned TCP port — before starting clients).
  /// Throws std::runtime_error when the endpoint cannot be bound.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound endpoint (TCP port resolved).
  [[nodiscard]] const Endpoint& endpoint() const noexcept;

  /// Accept-and-serve until request_stop() (or a client shutdown
  /// request), then drain as described above. Returns the process exit
  /// code: 0 on a clean drain.
  int run();

  /// Begin the drain from any thread / a signal watcher. Idempotent.
  void request_stop() noexcept;

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] telemetry::SpanTracer& tracer() noexcept { return tracer_; }

 private:
  void connection_loop(Socket socket);
  void reap_finished_connections();
  void write_trace();

  ServerConfig config_;
  Service service_;
  Listener listener_;
  telemetry::SpanTracer tracer_;  // enabled iff config_.trace_path set
  std::atomic<bool> stop_{false};

  std::mutex connections_mutex_;
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;
  std::atomic<std::size_t> open_connections_{0};
};

}  // namespace rapsim::serve
