#include "serve/protocol.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace rapsim::serve {

const char* error_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown";
}

Request parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ServeError(ErrorCode::kTooLarge,
                     "request line exceeds " +
                         std::to_string(kMaxRequestBytes) + " bytes");
  }
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::invalid_argument& e) {
    throw ServeError(ErrorCode::kBadRequest, e.what());
  }
  if (!doc.is_object()) {
    throw ServeError(ErrorCode::kBadRequest, "request must be a JSON object");
  }

  Request request;
  if (const JsonValue* id = doc.find("id")) {
    if (!id->is_string() && !id->is_integer() && !id->is_null()) {
      throw ServeError(ErrorCode::kBadRequest,
                       "id must be a string, integer or null");
    }
    request.id_json = id->serialize();
  }

  const JsonValue* method = doc.find("method");
  if (!method || !method->is_string() || method->as_string().empty()) {
    throw ServeError(ErrorCode::kBadRequest,
                     "method must be a non-empty string");
  }
  request.method = method->as_string();

  if (const JsonValue* params = doc.find("params")) {
    if (!params->is_object() && !params->is_null()) {
      throw ServeError(ErrorCode::kBadRequest,
                       "params must be an object when present");
    }
    request.params = *params;
  }

  const auto read_u64 = [&](const char* key, std::uint64_t cap) {
    const JsonValue* v = doc.find(key);
    if (!v) return std::uint64_t{0};
    if (!v->is_integer() || v->as_integer() < 0) {
      throw ServeError(ErrorCode::kBadRequest,
                       std::string(key) + " must be a non-negative integer");
    }
    const auto n = static_cast<std::uint64_t>(v->as_integer());
    return cap ? std::min(n, cap) : n;
  };
  request.deadline_ms = read_u64("deadline_ms", 0);
  request.debug_hold_ms = read_u64("debug_hold_ms", kMaxDebugHoldMs);

  // Reject unknown envelope members so typos fail loudly instead of
  // silently changing meaning (e.g. "deadline" vs "deadline_ms").
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "id" && key != "method" && key != "params" &&
        key != "deadline_ms" && key != "debug_hold_ms") {
      throw ServeError(ErrorCode::kBadRequest,
                       "unknown request member \"" + key + "\"");
    }
  }
  return request;
}

namespace {

void open_envelope(telemetry::JsonWriter& json, const std::string& id_json,
                   bool ok, const std::string& method) {
  json.begin_object();
  json.key("id").raw_value(id_json);
  json.kv("ok", ok);
  if (!method.empty()) json.kv("method", std::string_view(method));
}

}  // namespace

std::string make_success_response(const Request& request, bool cached,
                                  bool coalesced, std::uint64_t elapsed_us,
                                  const std::string& result_body) {
  telemetry::JsonWriter json;
  open_envelope(json, request.id_json, true, request.method);
  json.kv("cached", cached);
  json.kv("coalesced", coalesced);
  json.kv("elapsed_us", elapsed_us);
  json.key("result").raw_value(result_body);
  json.end_object();
  return json.str();
}

std::string make_error_response(const Request& request, ErrorCode code,
                                const std::string& message) {
  telemetry::JsonWriter json;
  open_envelope(json, request.id_json, false, request.method);
  json.key("error").begin_object();
  json.kv("code", static_cast<std::int64_t>(code));
  json.kv("name", error_name(code));
  json.kv("message", std::string_view(message));
  json.end_object();
  json.end_object();
  return json.str();
}

std::string make_parse_error_response(ErrorCode code,
                                      const std::string& message) {
  Request anonymous;
  return make_error_response(anonymous, code, message);
}

}  // namespace rapsim::serve
