#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace rapsim::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  // generic_category().message(), not strerror(): the accept loop and the
  // worker pool can fail concurrently, and strerror's static buffer is
  // not thread-safe (clang-tidy concurrency-mt-unsafe).
  throw std::runtime_error(
      "serve: " + what + ": " + std::generic_category().message(errno));
}

void set_cloexec(int fd) { (void)fcntl(fd, F_SETFD, FD_CLOEXEC); }

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_inet_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("serve: bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

std::string Endpoint::describe() const {
  if (is_unix()) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  const int domain = endpoint_.is_unix() ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  socket_ = Socket(fd);
  set_cloexec(fd);

  if (endpoint_.is_unix()) {
    // A stale socket file from a crashed daemon would fail the bind;
    // unlinking is safe because a live listener holds the inode open.
    ::unlink(endpoint_.path.c_str());
    const sockaddr_un addr = make_unix_addr(endpoint_.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      fail_errno("bind " + endpoint_.describe());
    }
  } else {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = make_inet_addr(endpoint_.host, endpoint_.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      fail_errno("bind " + endpoint_.describe());
    }
    if (endpoint_.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        fail_errno("getsockname");
      }
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 128) != 0) fail_errno("listen " + endpoint_.describe());
}

Listener::~Listener() { close(); }

void Listener::close() noexcept {
  if (!socket_.valid()) return;
  socket_.close();
  if (endpoint_.is_unix()) ::unlink(endpoint_.path.c_str());
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    fail_errno("poll");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    fail_errno("accept");
  }
  set_cloexec(fd);
  return Socket(fd);
}

Socket connect_to(const Endpoint& endpoint) {
  const int domain = endpoint.is_unix() ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  Socket socket(fd);
  set_cloexec(fd);
  int rc;
  if (endpoint.is_unix()) {
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_in addr = make_inet_addr(endpoint.host, endpoint.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) fail_errno("connect " + endpoint.describe());
  return socket;
}

bool write_all(Socket& socket, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::buffered_line_ready() const noexcept {
  return buffer_.find('\n') != std::string::npos;
}

LineReader::Status LineReader::read_line(std::string& line, int timeout_ms,
                                         std::size_t max_bytes) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return Status::kLine;
    }
    if (buffer_.size() > max_bytes) return Status::kClosed;

    pollfd pfd{socket_.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::kClosed;
    }
    if (ready == 0) return Status::kTimeout;

    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kClosed;
    }
    if (n == 0) return Status::kClosed;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rapsim::serve
