#include "serve/cache.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace rapsim::serve {

ResponseCache::ResponseCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      per_shard_(0),
      shards_(std::max<std::size_t>(shards, 1)) {
  if (capacity_ > 0) {
    per_shard_ = std::max<std::size_t>(capacity_ / shards_.size(), 1);
  }
}

std::optional<std::string> ResponseCache::lookup(const std::string& identity) {
  if (capacity_ == 0) return std::nullopt;
  const std::uint64_t key = util::fnv1a(identity);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->identity != identity) {
    ++shard.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->body;
}

void ResponseCache::insert(const std::string& identity,
                           const std::string& body) {
  if (capacity_ == 0) return;
  const std::uint64_t key = util::fnv1a(identity);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh (or replace a hash-colliding occupant — rare, and safe
    // either way because lookups compare the stored identity).
    it->second->identity = identity;
    it->second->body = body;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= per_shard_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(util::fnv1a(victim.identity));
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{identity, body});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
}

CacheStats ResponseCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.entries += shard.lru.size();
  }
  return total;
}

}  // namespace rapsim::serve
