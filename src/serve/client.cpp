#include "serve/client.hpp"

#include <stdexcept>

#include "serve/protocol.hpp"
#include "telemetry/json.hpp"

namespace rapsim::serve {

Client::Client(const Endpoint& endpoint)
    : socket_(connect_to(endpoint)), reader_(socket_) {}

std::string Client::roundtrip(const std::string& request_line) {
  if (!write_all(socket_, request_line + "\n")) {
    throw std::runtime_error("serve client: connection lost while sending");
  }
  std::string line;
  for (;;) {
    const LineReader::Status status =
        reader_.read_line(line, /*timeout_ms=*/60'000, kMaxRequestBytes);
    if (status == LineReader::Status::kLine) return line;
    if (status == LineReader::Status::kClosed) {
      throw std::runtime_error(
          "serve client: connection closed before a response arrived");
    }
    // kTimeout: keep waiting — the deadline, if any, is the server's to
    // enforce; a 408 response will arrive when it fires.
  }
}

ClientResponse Client::call(const std::string& method,
                            const std::string& params_json,
                            const CallOptions& options) {
  telemetry::JsonWriter json;
  json.begin_object();
  if (!options.id.empty()) json.kv("id", std::string_view(options.id));
  json.kv("method", std::string_view(method));
  if (!params_json.empty()) json.key("params").raw_value(params_json);
  if (options.deadline_ms) json.kv("deadline_ms", options.deadline_ms);
  if (options.debug_hold_ms) json.kv("debug_hold_ms", options.debug_hold_ms);
  json.end_object();
  return parse_response(roundtrip(json.str()));
}

ClientResponse parse_response(const std::string& line) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) {
    throw std::invalid_argument("serve response is not a JSON object");
  }
  ClientResponse response;
  response.raw = line;
  const JsonValue* ok = doc.find("ok");
  if (!ok || !ok->is_bool()) {
    throw std::invalid_argument("serve response lacks the ok member");
  }
  response.ok = ok->as_bool();
  if (const JsonValue* cached = doc.find("cached")) {
    response.cached = cached->is_bool() && cached->as_bool();
  }
  if (const JsonValue* coalesced = doc.find("coalesced")) {
    response.coalesced = coalesced->is_bool() && coalesced->as_bool();
  }
  if (const JsonValue* elapsed = doc.find("elapsed_us")) {
    if (elapsed->is_integer() && elapsed->as_integer() >= 0) {
      response.elapsed_us = static_cast<std::uint64_t>(elapsed->as_integer());
    }
  }
  if (response.ok) {
    if (!doc.find("result")) {
      throw std::invalid_argument("ok serve response lacks result");
    }
    // result is by protocol the LAST envelope member: take its exact
    // bytes from the raw line (not a re-serialization), so cache-hit
    // byte-identity is observable through the client.
    const std::size_t marker = line.find("\"result\":");
    if (marker == std::string::npos || line.back() != '}') {
      throw std::invalid_argument("ok serve response misplaces result");
    }
    response.result_json =
        line.substr(marker + 9, line.size() - marker - 10);
  } else {
    const JsonValue* error = doc.find("error");
    if (!error || !error->is_object()) {
      throw std::invalid_argument("error serve response lacks error object");
    }
    if (const JsonValue* code = error->find("code"); code &&
        code->is_integer()) {
      response.error_code = static_cast<int>(code->as_integer());
    }
    if (const JsonValue* name = error->find("name"); name &&
        name->is_string()) {
      response.error_name = name->as_string();
    }
    if (const JsonValue* message = error->find("message");
        message && message->is_string()) {
      response.error_message = message->as_string();
    }
  }
  return response;
}

}  // namespace rapsim::serve
