// The serve engine: request routing, worker pool, admission control,
// coalescing, response cache and metrics — everything except sockets
// (server.hpp adds those). Tests and the throughput bench drive a
// Service directly, so every concurrency property is pinned without a
// network in the loop.
//
// Life of a request (submit):
//
//   1. draining?            -> 503 overloaded ("draining") immediately
//   2. control method?      -> ping / stats / shutdown answered inline,
//                              never queued, never cached
//   3. prepare_method       -> params validated on the caller's thread;
//                              yields the canonical identity + closure
//   4. cache lookup         -> hit: the stored result body is spliced
//                              back verbatim (byte-identical), cached=true
//   5. coalesce             -> an in-flight computation with the same
//                              identity adopts this request as a waiter
//                              (coalesced=true when it completes)
//   6. admission            -> queue full: 503 overloaded WITHOUT
//                              blocking (backpressure; serve.shed_total);
//                              else enqueue for the worker pool
//
// Deadlines are cooperative: checked at admission, at dequeue, inside
// the debug hold loop, and at handler phase boundaries. A request whose
// deadline lapses gets 408 deadline_exceeded even if the shared
// computation later completes (its co-waiters still get the result).
//
// Every outcome lands in a telemetry::MetricsRegistry —
// serve.requests{method,status}, serve.latency_us{method} distributions
// (p50/p95/p99 for free), serve.shed_total, serve.coalesced_total, cache
// counters — exported by the stats method and flushed to
// results/serve/metrics.json on drain.
//
// Pool requests are additionally phase-attributed: the engine times
// admission (validation), cache_lookup, queue_wait and execute, folding
// each into the serve.phase_us{phase} distribution (the transport adds
// the "write" phase via observe_phase). When a telemetry::SpanTracer is
// attached (set_tracer) and the request carries a root span
// (Request::trace_parent), the same phases are recorded as nested spans
// so one request renders as a flame in chrome://tracing.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cache.hpp"
#include "serve/methods.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span_tracer.hpp"

namespace rapsim::serve {

struct ServiceConfig {
  std::size_t workers = 0;        // 0 = util::worker_count()
  std::size_t queue_depth = 64;   // queued-but-not-started cap (>= 1)
  std::size_t cache_capacity = 1024;  // entries; 0 disables the cache
  std::size_t cache_shards = 8;
};

class Service {
 public:
  explicit Service(ServiceConfig config = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one parsed request. The future yields the complete response
  /// line (success or error envelope, no trailing newline). Control
  /// methods, cache hits, sheds and validation errors complete the
  /// future before returning.
  [[nodiscard]] std::future<std::string> submit(Request request);

  /// Parse + submit + wait: the whole request cycle for one line. Never
  /// throws — malformed lines yield an error envelope. `trace_parent`
  /// (when a tracer is attached) is the transport's root span for the
  /// request; the engine nests its phase spans under it.
  [[nodiscard]] std::string handle_line(
      const std::string& line,
      std::uint64_t trace_parent = telemetry::kNoSpan);

  /// Attach (or detach, with nullptr) the span tracer. Call before
  /// traffic; the engine never takes ownership. Zero overhead while the
  /// tracer is disabled.
  void set_tracer(telemetry::SpanTracer* tracer) noexcept {
    tracer_ = tracer;
  }
  [[nodiscard]] telemetry::SpanTracer* tracer() const noexcept {
    return tracer_;
  }

  /// Fold one request-phase duration into serve.phase_us{phase}. The
  /// engine calls this for admission/cache_lookup/queue_wait/execute;
  /// the socket transport adds "write".
  void observe_phase(const char* phase, std::uint64_t us);

  /// Stop admitting, finish every queued and in-flight request, stop the
  /// workers. Idempotent; called by the destructor.
  void drain();

  [[nodiscard]] bool draining() const noexcept;
  /// Set once a client issued the shutdown method; the socket server
  /// polls this and begins its SIGTERM-equivalent drain.
  [[nodiscard]] bool shutdown_requested() const noexcept;

  [[nodiscard]] std::size_t worker_threads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return config_.queue_depth;
  }

  /// The stats method's result body (queue/cache/uptime snapshot plus
  /// the full metrics registry).
  [[nodiscard]] std::string stats_body();
  /// The standalone metrics document flushed to results/serve/metrics.json.
  [[nodiscard]] std::string metrics_document();
  /// Atomic write (tmp + rename) of metrics_document() to `path`,
  /// creating parent directories. Throws std::runtime_error on IO error.
  void write_metrics(const std::string& path);

 private:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    Request request;
    std::promise<std::string> promise;
    Clock::time_point submitted;
    std::optional<Clock::time_point> deadline;
    bool coalesced = false;
  };
  /// One identity's shared in-flight computation plus everyone waiting
  /// on it. Guarded by mutex_ until a worker takes the waiters out.
  struct Inflight {
    std::string identity;
    std::string method;
    MethodCall call;
    std::uint64_t debug_hold_ms = 0;
    std::vector<Waiter> waiters;
    /// Span/phase state for the FIRST waiter (the one that created the
    /// flight); coalesced waiters share the computation, not the trace.
    std::uint64_t trace_parent = telemetry::kNoSpan;
    std::uint64_t queue_span = telemetry::kNoSpan;
    Clock::time_point enqueued{};
  };

  void worker_loop();
  void execute(std::shared_ptr<Inflight> flight);
  void finish_waiter(Waiter& waiter, const std::string& method, bool cached,
                     const std::string& body);
  void fail_waiter(Waiter& waiter, const std::string& method, ErrorCode code,
                   const std::string& message);
  void count_request(const std::string& method, const char* status);
  void observe_latency(const std::string& method,
                       Clock::time_point submitted);

  ServiceConfig config_;
  ResponseCache cache_;
  Clock::time_point started_;
  telemetry::SpanTracer* tracer_ = nullptr;  // set before traffic

  mutable std::mutex mutex_;  // queue + inflight map + lifecycle flags
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::shared_ptr<Inflight>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  std::size_t executing_ = 0;
  bool draining_ = false;
  bool stop_workers_ = false;
  bool shutdown_requested_ = false;

  std::mutex metrics_mutex_;
  telemetry::MetricsRegistry metrics_;
  std::uint64_t shed_total_ = 0;
  std::uint64_t coalesced_total_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace rapsim::serve
