// The five worker-pool method families of the serve protocol, each a
// PURE function of its params:
//
//   certify   analyze::prove_worst_warp over explicit warp address lists
//   lint      analyze::lint_kernel over kernel IR text (the rapsim-lint
//             text format)
//   replay    replay::replay_trace of an inline trace (or a server-side
//             trace file) under one scheme draw — or, with params.map, a
//             synthesized permute-shift spec (analyze/synth.hpp)
//   advise    access::evaluate_kernel / evaluate_schemes scheme scoring
//   advise.synthesize
//             analyze::synthesize_mapping over kernel IR text: the full
//             layout-compiler search, returning the winning mapping spec,
//             its congestion certificate and the optimality witness
//
// prepare_method() validates params on the CALLER's thread (cheap,
// throws ServeError(kBadRequest) with a field-naming message) and
// returns the two things the service engine needs:
//
//   identity  the canonical cache/coalescing identity string. Scalars
//             and kernel/address content are embedded verbatim; a trace
//             rides as its replay::content_hash — the same identity the
//             campaign engine keys cells on — so a path-loaded and an
//             inline copy of the same stream share one cache entry.
//   run       the (possibly expensive) execution closure, run on a pool
//             worker; returns the serialized result body. It may consult
//             `cancelled` at phase boundaries and give up early by
//             throwing ServeError(kDeadlineExceeded) — cancellation is
//             cooperative, never preemptive.
//
// Purity is what licenses the response cache: same identity, same result
// body, byte for byte.

#pragma once

#include <functional>
#include <string>

#include "serve/jsonvalue.hpp"
#include "serve/protocol.hpp"
#include "telemetry/span_tracer.hpp"

namespace rapsim::serve {

/// True when a worker may abandon the computation (all waiters' deadlines
/// expired, or the service is force-stopping).
using CancelCheck = std::function<bool()>;

/// Everything the engine hands a handler at execution time. `cancelled`
/// is always callable. `tracer`/`span_parent` let a handler nest its own
/// phase spans under the engine's execute:<method> span — tracer is null
/// (and span_parent kNoSpan) for untraced requests, and handlers MUST NOT
/// let tracing influence the result body (purity licenses the cache).
struct ExecContext {
  CancelCheck cancelled;
  telemetry::SpanTracer* tracer = nullptr;
  std::uint64_t span_parent = telemetry::kNoSpan;
};

struct MethodCall {
  std::string identity;
  std::function<std::string(const ExecContext& ctx)> run;
};

/// Is `method` one of the worker-pool families prepare_method accepts?
[[nodiscard]] bool is_pool_method(const std::string& method) noexcept;

/// Validate and stage one worker-pool request. Throws
/// ServeError(kUnknownMethod) for a method not in the table and
/// ServeError(kBadRequest) for malformed params.
[[nodiscard]] MethodCall prepare_method(const std::string& method,
                                        const JsonValue& params);

}  // namespace rapsim::serve
