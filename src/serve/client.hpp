// serve::Client — the thin C++ client of the rapsim-served protocol.
//
// One connection, blocking request/response (the protocol allows
// pipelining, but every embedder so far — the CLI, the tests, the
// throughput bench — wants call-and-wait). Build params with the
// telemetry JsonWriter or pass a pre-serialized object; the response
// comes back both raw (the exact line, for byte-identity checks) and
// cracked into the envelope fields.

#pragma once

#include <cstdint>
#include <string>

#include "serve/jsonvalue.hpp"
#include "serve/socket.hpp"

namespace rapsim::serve {

struct ClientResponse {
  bool ok = false;
  bool cached = false;
  bool coalesced = false;
  std::uint64_t elapsed_us = 0;
  int error_code = 0;           // 0 when ok
  std::string error_name;
  std::string error_message;
  std::string result_json;      // serialized result body ("" on error)
  std::string raw;              // the exact response line
};

struct CallOptions {
  std::uint64_t deadline_ms = 0;
  std::uint64_t debug_hold_ms = 0;
  std::string id;               // empty = no id member
};

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit Client(const Endpoint& endpoint);

  /// Send `method` with `params_json` (a serialized object, or "" for
  /// none) and wait for the response. Throws std::runtime_error when
  /// the connection drops or the response line is not valid protocol
  /// JSON; server-side failures come back as ok=false, never throws.
  [[nodiscard]] ClientResponse call(const std::string& method,
                                    const std::string& params_json = "",
                                    const CallOptions& options = {});

  /// Send one raw request line verbatim and return the raw response
  /// line. The escape hatch for testing malformed requests.
  [[nodiscard]] std::string roundtrip(const std::string& request_line);

 private:
  Socket socket_;
  LineReader reader_;
};

/// Parse a response line into the envelope fields (shared by Client and
/// the CLI when reading server output). Throws std::invalid_argument on
/// non-protocol JSON.
[[nodiscard]] ClientResponse parse_response(const std::string& line);

}  // namespace rapsim::serve
