// Sharded LRU response cache (serve subsystem).
//
// Every worker-pool method is a pure function of its canonical identity
// string (DESIGN.md §11): `certify` of the same kernel text IS the same
// answer, so the serialized result body can be replayed byte-for-byte.
// Keys are util::fnv1a over that identity — the same content-hash family
// the campaign engine keys its cells on (util/hash.hpp), so the two
// caches can never disagree about what "the same request" means.
//
// Sharding keeps the hot path short: a lookup takes one shard mutex, not
// a global one, so concurrent workers on different shards never contend.
// Each shard is an intrusive LRU (doubly-linked list through the hash
// map's nodes); capacity is counted in entries and split evenly across
// shards, with eviction strictly least-recently-used per shard.
//
// Collisions: FNV-1a is not collision-free, so entries store the full
// identity string and a probe compares it before serving a hit — a
// colliding identity is a miss, never a wrong answer.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rapsim::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
};

class ResponseCache {
 public:
  /// `capacity` total entries spread over `shards` shards (each shard
  /// gets at least one slot). capacity == 0 disables the cache entirely
  /// (every lookup is a miss, inserts are dropped).
  explicit ResponseCache(std::size_t capacity, std::size_t shards = 8);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// The cached result body for `identity`, or nullopt. A hit refreshes
  /// the entry's recency.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& identity);

  /// Insert (or refresh) the result body for `identity`, evicting the
  /// shard's least-recently-used entry when full.
  void insert(const std::string& identity, const std::string& body);

  /// Aggregate statistics over all shards (taken under the shard locks,
  /// so the totals are consistent per shard though not globally atomic).
  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::string identity;
    std::string body;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept {
    return shards_[key % shards_.size()];
  }

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace rapsim::serve
