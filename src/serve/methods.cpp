#include "serve/methods.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "access/advisor.hpp"
#include "analyze/certificate.hpp"
#include "analyze/kernelir.hpp"
#include "analyze/lint.hpp"
#include "analyze/synth.hpp"
#include "core/factory.hpp"
#include "replay/campaign.hpp"
#include "replay/replay.hpp"
#include "replay/trace.hpp"
#include "telemetry/json.hpp"
#include "util/hash.hpp"

namespace rapsim::serve {

namespace {

// Input caps: one request must not be able to demand an absurd
// allocation before the handler notices.
constexpr std::size_t kMaxWarpLists = 1u << 16;
constexpr std::uint64_t kMaxAdviseDraws = 1u << 16;
// A synthesis draw is a full family-member evaluation, far costlier than
// an advise draw — cap it tighter.
constexpr std::uint64_t kMaxSynthDraws = 1u << 12;

[[noreturn]] void bad(const std::string& message) {
  throw ServeError(ErrorCode::kBadRequest, message);
}

const JsonValue* find_param(const JsonValue& params, const char* key) {
  return params.is_object() ? params.find(key) : nullptr;
}

std::string require_string(const JsonValue& params, const char* key) {
  const JsonValue* v = find_param(params, key);
  if (!v || !v->is_string()) bad(std::string("params.") + key +
                                 " must be a string");
  return v->as_string();
}

std::uint64_t get_u64(const JsonValue& params, const char* key,
                      std::uint64_t fallback) {
  const JsonValue* v = find_param(params, key);
  if (!v) return fallback;
  if (!v->is_integer() || v->as_integer() < 0) {
    bad(std::string("params.") + key + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->as_integer());
}

bool get_bool(const JsonValue& params, const char* key, bool fallback) {
  const JsonValue* v = find_param(params, key);
  if (!v) return fallback;
  if (!v->is_bool()) bad(std::string("params.") + key + " must be a bool");
  return v->as_bool();
}

core::Scheme get_scheme(const JsonValue& params, const char* key = "scheme",
                        const char* fallback = "raw") {
  std::string name = fallback;
  if (const JsonValue* v = find_param(params, key)) {
    if (!v->is_string()) bad(std::string("params.") + key +
                             " must be a string");
    name = v->as_string();
  }
  const std::optional<core::Scheme> scheme = replay::parse_scheme_name(name);
  if (!scheme) bad("unknown scheme '" + name + "' (use raw, ras, rap, pad)");
  return *scheme;
}

std::uint32_t get_width(const JsonValue& params, std::uint64_t fallback) {
  const std::uint64_t width = get_u64(params, "width", fallback);
  if (width == 0 || width > replay::kMaxTraceWidth) {
    bad("params.width must be in [1, " +
        std::to_string(replay::kMaxTraceWidth) + "]");
  }
  return static_cast<std::uint32_t>(width);
}

/// `addresses`: one warp's flat list of integers, or a list of such
/// lists (multi-warp). Every address must be < memory (when memory > 0).
std::vector<std::vector<std::uint64_t>> parse_warp_lists(
    const JsonValue& params, std::uint32_t width, std::uint64_t memory) {
  const JsonValue* v = find_param(params, "addresses");
  if (!v || !v->is_array() || v->as_array().empty()) {
    bad("params.addresses must be a non-empty array");
  }
  const JsonArray& outer = v->as_array();

  const auto parse_one = [&](const JsonArray& list) {
    if (list.empty() || list.size() > width) {
      bad("each warp's address list must have 1.." + std::to_string(width) +
          " entries");
    }
    std::vector<std::uint64_t> warp;
    warp.reserve(list.size());
    for (const JsonValue& a : list) {
      if (!a.is_integer() || a.as_integer() < 0) {
        bad("addresses must be non-negative integers");
      }
      const auto addr = static_cast<std::uint64_t>(a.as_integer());
      if (memory && addr >= memory) {
        bad("address " + std::to_string(addr) + " outside memory_size " +
            std::to_string(memory));
      }
      warp.push_back(addr);
    }
    return warp;
  };

  std::vector<std::vector<std::uint64_t>> warps;
  if (outer.front().is_array()) {
    if (outer.size() > kMaxWarpLists) bad("too many warp lists");
    warps.reserve(outer.size());
    for (const JsonValue& inner : outer) {
      if (!inner.is_array()) bad("params.addresses mixes warps and scalars");
      warps.push_back(parse_one(inner.as_array()));
    }
  } else {
    warps.push_back(parse_one(outer));
  }
  return warps;
}

std::string warps_canonical(
    const std::vector<std::vector<std::uint64_t>>& warps) {
  std::ostringstream out;
  for (std::size_t w = 0; w < warps.size(); ++w) {
    if (w) out << ';';
    for (std::size_t i = 0; i < warps[w].size(); ++i) {
      if (i) out << ',';
      out << warps[w][i];
    }
  }
  return out.str();
}

// ---------------------------------------------------------------- certify

MethodCall prepare_certify(const JsonValue& params) {
  const core::Scheme scheme = get_scheme(params);
  const std::uint32_t width = get_width(params, 32);
  std::uint64_t memory = get_u64(params, "memory_size", 0);
  auto warps = parse_warp_lists(params, width, memory);
  if (memory == 0) {
    std::uint64_t max_addr = 0;
    for (const auto& warp : warps) {
      for (const std::uint64_t a : warp) max_addr = std::max(max_addr, a);
    }
    // Round up to whole rows so the derived geometry is well-formed.
    memory = ((max_addr / width) + 1) * width;
  }

  MethodCall call;
  call.identity = std::string("certify\n") + core::scheme_name(scheme) +
                  '\n' + std::to_string(width) + '\n' +
                  std::to_string(memory) + '\n' + warps_canonical(warps);
  call.run = [scheme, width, memory,
              warps = std::move(warps)](const ExecContext&) {
    const analyze::CongestionCertificate certificate =
        analyze::prove_worst_warp(warps, width, memory, scheme);
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("scheme", core::scheme_name(scheme));
    json.kv("width", static_cast<std::uint64_t>(width));
    json.kv("memory_size", memory);
    json.kv("warps", static_cast<std::uint64_t>(warps.size()));
    json.key("certificate").raw_value(certificate.to_json());
    json.end_object();
    return json.str();
  };
  return call;
}

// ------------------------------------------------------------------- lint

MethodCall prepare_lint(const JsonValue& params) {
  const std::string text = require_string(params, "kernel");
  const core::Scheme scheme = get_scheme(params);
  const std::uint32_t width = get_width(params, 32);

  analyze::KernelDesc kernel;
  try {
    kernel = analyze::parse_kernel_text(text, width);
  } catch (const std::invalid_argument& e) {
    bad(std::string("kernel: ") + e.what());
  }

  analyze::LintOptions options;
  options.races = get_bool(params, "races", true);

  MethodCall call;
  call.identity = std::string("lint\n") + core::scheme_name(scheme) + '\n' +
                  std::to_string(width) + '\n' +
                  (options.races ? "races\n" : "no-races\n") + text;
  call.run = [scheme, options, kernel = std::move(kernel)](const ExecContext&) {
    return analyze::lint_report_json(
        analyze::lint_kernel(kernel, scheme, options));
  };
  return call;
}

// ----------------------------------------------------------------- replay

MethodCall prepare_replay(const JsonValue& params) {
  const core::Scheme scheme = get_scheme(params);
  const std::uint64_t seed = get_u64(params, "seed", 1);
  const std::uint64_t latency = get_u64(params, "latency", 1);
  if (latency == 0 || latency > 1u << 16) bad("params.latency out of range");
  const bool certify = get_bool(params, "certify", false);

  // Optional synthesized-mapping override: params.map is a permute-shift
  // spec (analyze::SynthMapping::parse_spec); exclusive with a non-default
  // params.scheme. This is how a mapping minted by advise.synthesize gets
  // confirmed against a captured trace on the full DMM.
  std::optional<analyze::SynthMapping> synth_mapping;
  if (const JsonValue* map_spec = find_param(params, "map")) {
    if (!map_spec->is_string()) bad("params.map must be a string");
    if (find_param(params, "scheme")) {
      bad("params.map and params.scheme are exclusive");
    }
    try {
      synth_mapping = analyze::SynthMapping::parse_spec(map_spec->as_string());
    } catch (const std::invalid_argument& e) {
      bad(std::string("map: ") + e.what());
    }
  }

  const JsonValue* inline_text = find_param(params, "trace");
  const JsonValue* path = find_param(params, "trace_path");
  if (!!inline_text == !!path) {
    bad("exactly one of params.trace (inline text) and params.trace_path "
        "is required");
  }
  replay::AccessTrace trace;
  try {
    if (inline_text) {
      if (!inline_text->is_string()) bad("params.trace must be a string");
      trace = replay::parse_trace(inline_text->as_string());
    } else {
      if (!path->is_string()) bad("params.trace_path must be a string");
      trace = replay::load_trace(path->as_string());
    }
    trace.validate();
  } catch (const std::invalid_argument& e) {
    bad(std::string("trace: ") + e.what());
  } catch (const std::runtime_error& e) {
    bad(std::string("trace: ") + e.what());
  }

  // The trace rides in the identity as its content hash — the same
  // identity the campaign engine keys cells on — so an inline and a
  // path-loaded copy of one stream share a cache entry.
  const std::uint64_t trace_hash = replay::content_hash(trace);

  if (synth_mapping) {
    if (certify) {
      bad("params.certify is not supported with params.map (the spec "
          "carries its own certificate from advise.synthesize)");
    }
    if (synth_mapping->width != trace.header.width) {
      bad("map width " + std::to_string(synth_mapping->width) +
          " != trace width " + std::to_string(trace.header.width));
    }
  }

  MethodCall call;
  call.identity = std::string("replay\n") + util::hex64(trace_hash) + '\n' +
                  (synth_mapping ? synth_mapping->spec()
                                 : std::string(core::scheme_name(scheme))) +
                  '\n' + std::to_string(seed) + '\n' +
                  std::to_string(latency) + '\n' + (certify ? "certify" : "-");
  call.run = [scheme, seed, latency, certify, trace_hash,
              synth_mapping = std::move(synth_mapping),
              trace = std::move(trace)](const ExecContext& ctx) {
    const std::uint32_t width = trace.header.width;
    const std::uint64_t rows =
        (trace.header.memory_size + width - 1) / width;
    const std::unique_ptr<core::AddressMap> map =
        synth_mapping
            ? analyze::make_synth_map(*synth_mapping,
                                      trace.header.memory_size)
            : core::make_matrix_map(scheme, width, rows, seed);
    if (ctx.cancelled()) {
      throw ServeError(ErrorCode::kDeadlineExceeded,
                       "cancelled before simulation");
    }
    replay::ReplayOptions options;
    options.latency = static_cast<std::uint32_t>(latency);
    // Nest the replay engine's own spans (replay:lower, replay:execute)
    // under the engine's execute:<method> span.
    options.tracer = ctx.tracer;
    options.trace_parent = ctx.span_parent;
    const replay::ReplayResult result =
        replay::replay_trace(trace, *map, options);

    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("trace_hash", std::string_view(util::hex64(trace_hash)));
    json.kv("scheme", synth_mapping ? core::scheme_name(core::Scheme::kSynth)
                                    : core::scheme_name(scheme));
    if (synth_mapping) json.kv("map", synth_mapping->spec());
    json.kv("width", static_cast<std::uint64_t>(width));
    json.kv("latency", latency);
    json.kv("seed", seed);
    json.kv("time", result.stats.time);
    json.kv("pipeline_slots", result.stats.total_stages);
    json.kv("dispatches", result.stats.dispatches);
    json.kv("max_congestion",
            static_cast<std::uint64_t>(result.stats.max_congestion));
    json.kv("avg_congestion", result.stats.avg_congestion);
    if (certify) {
      json.key("certificate")
          .raw_value(replay::certify_trace(trace, scheme).to_json());
    }
    json.end_object();
    return json.str();
  };
  return call;
}

// ----------------------------------------------------------------- advise

void render_advice(telemetry::JsonWriter& json, const access::Advice& advice) {
  json.key("scores").begin_array();
  for (std::size_t i = 0; i < advice.scores.size(); ++i) {
    const access::SchemeScore& score = advice.scores[i];
    json.begin_object();
    json.kv("scheme", core::scheme_name(score.scheme));
    json.kv("mean_congestion", score.mean_congestion);
    json.kv("max_congestion", score.max_congestion);
    json.kv("random_words", score.random_words);
    if (i < advice.certificates.size()) {
      json.key("certificate").raw_value(advice.certificates[i].to_json());
    }
    json.end_object();
  }
  json.end_array();
  json.kv("recommended", core::scheme_name(advice.recommended));
  json.kv("rationale", std::string_view(advice.rationale));
}

MethodCall prepare_advise(const JsonValue& params) {
  const std::uint64_t draws = get_u64(params, "draws", 32);
  if (draws == 0 || draws > kMaxAdviseDraws) bad("params.draws out of range");
  const std::uint64_t seed = get_u64(params, "seed", 1);

  const bool has_kernel = find_param(params, "kernel") != nullptr;
  const bool has_addresses = find_param(params, "addresses") != nullptr;
  if (has_kernel == has_addresses) {
    bad("exactly one of params.kernel (IR text) and params.addresses is "
        "required");
  }

  MethodCall call;
  if (has_kernel) {
    const std::string text = require_string(params, "kernel");
    const std::uint32_t width = get_width(params, 32);
    analyze::KernelDesc kernel;
    try {
      kernel = analyze::parse_kernel_text(text, width);
    } catch (const std::invalid_argument& e) {
      bad(std::string("kernel: ") + e.what());
    }
    call.identity = std::string("advise\nkernel\n") + std::to_string(width) +
                    '\n' + std::to_string(draws) + '\n' +
                    std::to_string(seed) + '\n' + text;
    call.run = [draws, seed, kernel = std::move(kernel)](const ExecContext&) {
      const access::Advice advice = access::evaluate_kernel(
          kernel, static_cast<std::uint32_t>(draws), seed);
      telemetry::JsonWriter json;
      json.begin_object();
      json.kv("kernel", std::string_view(kernel.name));
      json.kv("width", static_cast<std::uint64_t>(kernel.width));
      json.kv("rows", kernel.rows);
      json.kv("draws", draws);
      json.kv("seed", seed);
      render_advice(json, advice);
      json.end_object();
      return json.str();
    };
    return call;
  }

  const std::uint32_t width = get_width(params, 32);
  const std::uint64_t rows = get_u64(params, "rows", 0);
  if (rows == 0) bad("params.rows is required with params.addresses");
  auto warps = parse_warp_lists(params, width, rows * width);
  call.identity = std::string("advise\naddresses\n") + std::to_string(width) +
                  '\n' + std::to_string(rows) + '\n' + std::to_string(draws) +
                  '\n' + std::to_string(seed) + '\n' +
                  warps_canonical(warps);
  call.run = [width, rows, draws, seed,
              warps = std::move(warps)](const ExecContext&) {
    const access::Advice advice = access::evaluate_schemes(
        warps, width, rows, static_cast<std::uint32_t>(draws), seed);
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("width", static_cast<std::uint64_t>(width));
    json.kv("rows", rows);
    json.kv("draws", draws);
    json.kv("seed", seed);
    render_advice(json, advice);
    json.end_object();
    return json.str();
  };
  return call;
}

// ------------------------------------------------------- advise.synthesize

MethodCall prepare_synthesize(const JsonValue& params) {
  const std::string text = require_string(params, "kernel");
  const std::uint32_t width = get_width(params, 32);
  const std::uint64_t draws = get_u64(params, "draws", 48);
  if (draws == 0 || draws > kMaxSynthDraws) bad("params.draws out of range");
  const std::uint64_t seed = get_u64(params, "seed", 1);
  const std::uint64_t digits = get_u64(params, "digits", analyze::kMaxDigits);
  if (digits == 0 || digits > analyze::kMaxDigits) {
    bad("params.digits must be in [1, " +
        std::to_string(analyze::kMaxDigits) + "]");
  }

  analyze::KernelDesc kernel;
  try {
    kernel = analyze::parse_kernel_text(text, width);
  } catch (const std::invalid_argument& e) {
    bad(std::string("kernel: ") + e.what());
  }

  MethodCall call;
  call.identity = std::string("advise.synthesize\n") + std::to_string(width) +
                  '\n' + std::to_string(digits) + '\n' +
                  std::to_string(draws) + '\n' + std::to_string(seed) + '\n' +
                  text;
  call.run = [draws, seed, digits,
              kernel = std::move(kernel)](const ExecContext& ctx) {
    analyze::SynthesisOptions options;
    options.max_digits = static_cast<std::uint32_t>(digits);
    options.random_draws = draws;
    options.seed = seed;
    // The search polls this between candidate evaluations, so a request
    // whose deadline lapses mid-search sheds promptly.
    options.cancelled = [&ctx] {
      if (ctx.cancelled()) {
        throw ServeError(ErrorCode::kDeadlineExceeded,
                         "cancelled during synthesis search");
      }
      return false;
    };
    try {
      return analyze::synthesize_mapping(kernel, options).to_json();
    } catch (const std::invalid_argument& e) {
      // Unsynthesizable kernel (out-of-bounds accesses, ...): the
      // request is at fault, not the server.
      throw ServeError(ErrorCode::kBadRequest,
                       std::string("kernel: ") + e.what());
    }
  };
  return call;
}

}  // namespace

bool is_pool_method(const std::string& method) noexcept {
  return method == "certify" || method == "lint" || method == "replay" ||
         method == "advise" || method == "advise.synthesize";
}

MethodCall prepare_method(const std::string& method, const JsonValue& params) {
  if (method == "certify") return prepare_certify(params);
  if (method == "lint") return prepare_lint(params);
  if (method == "replay") return prepare_replay(params);
  if (method == "advise") return prepare_advise(params);
  if (method == "advise.synthesize") return prepare_synthesize(params);
  throw ServeError(ErrorCode::kUnknownMethod,
                   "unknown method '" + method +
                       "' (certify, lint, replay, advise, "
                       "advise.synthesize, stats, ping, shutdown)");
}

}  // namespace rapsim::serve
