#include "serve/server.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "perfbench/clock.hpp"
#include "telemetry/chrome_trace.hpp"

namespace rapsim::serve {

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      listener_(config_.endpoint) {
  if (!config_.trace_path.empty()) {
    tracer_.enable();
    service_.set_tracer(&tracer_);
  }
}

Server::~Server() {
  request_stop();
  // run() owns the joins; if run() was never called, connections_ is
  // empty and there is nothing to wait for.
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (Connection& connection : connections_) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

const Endpoint& Server::endpoint() const noexcept {
  return listener_.endpoint();
}

void Server::request_stop() noexcept { stop_.store(true); }

void Server::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

int Server::run() {
  while (!stop_.load()) {
    if (service_.shutdown_requested()) break;
    std::optional<Socket> accepted = listener_.accept(kPollMs);
    reap_finished_connections();
    if (!accepted) continue;

    if (open_connections_.load() >= config_.max_connections) {
      // Connection-level backpressure mirrors request-level shedding:
      // refuse with a structured line rather than hanging the client.
      Socket refused = std::move(*accepted);
      (void)write_all(refused,
                      make_parse_error_response(
                          ErrorCode::kOverloaded,
                          "connection limit reached; retry later") +
                          "\n");
      continue;
    }

    auto done = std::make_shared<std::atomic<bool>>(false);
    open_connections_.fetch_add(1);
    std::thread thread(
        [this, done, socket = std::move(*accepted)]() mutable {
          connection_loop(std::move(socket));
          open_connections_.fetch_sub(1);
          done->store(true);
        });
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(Connection{std::move(thread), std::move(done)});
  }

  // Drain: stop accepting (close the listener so backlogged connects
  // fail fast), connection pumps observe stop_ and wind down, then the
  // pool empties.
  stop_.store(true);
  listener_.close();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.thread.joinable()) connection.thread.join();
    }
    connections_.clear();
  }
  service_.drain();
  if (!config_.metrics_path.empty()) {
    service_.write_metrics(config_.metrics_path);
  }
  if (!config_.trace_path.empty()) write_trace();
  return 0;
}

void Server::write_trace() {
  const std::string document =
      telemetry::spans_to_chrome_trace(tracer_.snapshot(), "rapsim-served");
  const std::filesystem::path target(config_.trace_path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp = config_.trace_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("serve: cannot write " + tmp);
    out << document << '\n';
    if (!out) throw std::runtime_error("serve: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), config_.trace_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("serve: cannot rename " + tmp + " to " +
                             config_.trace_path);
  }
}

void Server::connection_loop(Socket socket) {
  LineReader reader(socket);
  std::string line;
  for (;;) {
    // On stop: answer complete lines already buffered, then hang up.
    if (stop_.load() && !reader.buffered_line_ready()) return;
    const LineReader::Status status =
        reader.read_line(line, kPollMs, kMaxRequestBytes + 1024);
    if (status == LineReader::Status::kClosed) return;
    if (status == LineReader::Status::kTimeout) continue;
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    // The transport owns the root "request" span; the engine parents its
    // phase spans under it and the write phase closes the flame.
    const std::uint64_t root = tracer_.begin("request");
    const std::string response = service_.handle_line(line, root);
    const std::uint64_t write_span = tracer_.begin("write", root);
    const perfbench::Clock::time_point write_start = perfbench::now();
    const bool ok = write_all(socket, response + "\n");
    service_.observe_phase("write", perfbench::elapsed_ns(write_start) / 1000);
    tracer_.end(write_span);
    tracer_.end(root);
    if (!ok) return;
  }
}

}  // namespace rapsim::serve
