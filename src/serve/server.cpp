#include "serve/server.hpp"

#include <utility>

namespace rapsim::serve {

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      listener_(config_.endpoint) {}

Server::~Server() {
  request_stop();
  // run() owns the joins; if run() was never called, connections_ is
  // empty and there is nothing to wait for.
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (Connection& connection : connections_) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

const Endpoint& Server::endpoint() const noexcept {
  return listener_.endpoint();
}

void Server::request_stop() noexcept { stop_.store(true); }

void Server::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

int Server::run() {
  while (!stop_.load()) {
    if (service_.shutdown_requested()) break;
    std::optional<Socket> accepted = listener_.accept(kPollMs);
    reap_finished_connections();
    if (!accepted) continue;

    if (open_connections_.load() >= config_.max_connections) {
      // Connection-level backpressure mirrors request-level shedding:
      // refuse with a structured line rather than hanging the client.
      Socket refused = std::move(*accepted);
      (void)write_all(refused,
                      make_parse_error_response(
                          ErrorCode::kOverloaded,
                          "connection limit reached; retry later") +
                          "\n");
      continue;
    }

    auto done = std::make_shared<std::atomic<bool>>(false);
    open_connections_.fetch_add(1);
    std::thread thread(
        [this, done, socket = std::move(*accepted)]() mutable {
          connection_loop(std::move(socket));
          open_connections_.fetch_sub(1);
          done->store(true);
        });
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(Connection{std::move(thread), std::move(done)});
  }

  // Drain: stop accepting (close the listener so backlogged connects
  // fail fast), connection pumps observe stop_ and wind down, then the
  // pool empties.
  stop_.store(true);
  listener_.close();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& connection : connections_) {
      if (connection.thread.joinable()) connection.thread.join();
    }
    connections_.clear();
  }
  service_.drain();
  if (!config_.metrics_path.empty()) {
    service_.write_metrics(config_.metrics_path);
  }
  return 0;
}

void Server::connection_loop(Socket socket) {
  LineReader reader(socket);
  std::string line;
  for (;;) {
    // On stop: answer complete lines already buffered, then hang up.
    if (stop_.load() && !reader.buffered_line_ready()) return;
    const LineReader::Status status =
        reader.read_line(line, kPollMs, kMaxRequestBytes + 1024);
    if (status == LineReader::Status::kClosed) return;
    if (status == LineReader::Status::kTimeout) continue;
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    const std::string response = service_.handle_line(line);
    if (!write_all(socket, response + "\n")) return;
  }
}

}  // namespace rapsim::serve
