#include "serve/jsonvalue.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "telemetry/json.hpp"

namespace rapsim::serve {

namespace {

[[noreturn]] void fail_kind(const char* wanted) {
  throw std::logic_error(std::string("json: value is not ") + wanted);
}

}  // namespace

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::make_double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<JsonArray>(std::move(items));
  return v;
}

JsonValue JsonValue::make_object(JsonMembers members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<JsonMembers>(std::move(members));
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) fail_kind("a bool");
  return bool_;
}

std::int64_t JsonValue::as_integer() const {
  if (kind_ != Kind::kInteger) fail_kind("an integer");
  return int_;
}

double JsonValue::as_number() const {
  if (kind_ == Kind::kInteger) return static_cast<double>(int_);
  if (kind_ == Kind::kDouble) return double_;
  fail_kind("a number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) fail_kind("a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) fail_kind("an array");
  return *array_;
}

const JsonMembers& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) fail_kind("an object");
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void serialize_into(const JsonValue& value, telemetry::JsonWriter& out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out.null();
      return;
    case JsonValue::Kind::kBool:
      out.value(value.as_bool());
      return;
    case JsonValue::Kind::kInteger:
      out.value(value.as_integer());
      return;
    case JsonValue::Kind::kDouble:
      out.value(value.as_number());
      return;
    case JsonValue::Kind::kString:
      out.value(std::string_view(value.as_string()));
      return;
    case JsonValue::Kind::kArray:
      out.begin_array();
      for (const JsonValue& item : value.as_array()) serialize_into(item, out);
      out.end_array();
      return;
    case JsonValue::Kind::kObject:
      out.begin_object();
      for (const auto& [k, v] : value.as_object()) {
        out.key(k);
        serialize_into(v, out);
      }
      out.end_object();
      return;
  }
}

}  // namespace

std::string JsonValue::serialize() const {
  telemetry::JsonWriter out;
  serialize_into(*this, out);
  return out.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: byte " + std::to_string(pos_) + ": " +
                                what);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxJsonDepth) fail("nesting deeper than the protocol cap");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonMembers members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [k, v] : members) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonArray items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool integral = true;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string literal(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (integral) {
      errno = 0;
      const long long n = std::strtoll(literal.c_str(), &end, 10);
      if (end == literal.c_str() + literal.size() && errno == 0) {
        return JsonValue::make_integer(n);
      }
      // Out-of-int64-range integer literal: keep it as a double.
    }
    errno = 0;
    const double d = std::strtod(literal.c_str(), &end);
    if (end != literal.c_str() + literal.size() || errno == ERANGE) {
      pos_ = start;
      fail("bad number literal '" + literal + "'");
    }
    return JsonValue::make_double(d);
  }
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace rapsim::serve
