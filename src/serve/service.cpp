#include "serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "telemetry/json.hpp"
#include "util/parallel.hpp"

namespace rapsim::serve {

namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;

std::uint64_t elapsed_us_since(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, duration_cast<microseconds>(now - start)
                                    .count()));
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity, std::max<std::size_t>(config.cache_shards,
                                                          1)),
      started_(Clock::now()) {
  config_.queue_depth = std::max<std::size_t>(config_.queue_depth, 1);
  std::size_t workers = config_.workers ? config_.workers
                                        : util::worker_count();
  workers = std::min(std::max<std::size_t>(workers, 1),
                     util::kMaxWorkerCount);
  config_.workers = workers;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { drain(); }

bool Service::draining() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

bool Service::shutdown_requested() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_requested_;
}

void Service::count_request(const std::string& method, const char* status) {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.counter("serve.requests", {{"method", method}, {"status", status}})
      .inc();
}

void Service::observe_latency(const std::string& method,
                              Clock::time_point submitted) {
  const std::uint64_t us = elapsed_us_since(submitted);
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.distribution("serve.latency_us", {{"method", method}}).observe(us);
}

void Service::observe_phase(const char* phase, std::uint64_t us) {
  const std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_.distribution("serve.phase_us", {{"phase", phase}}).observe(us);
}

std::future<std::string> Service::submit(Request request) {
  const Clock::time_point submitted = Clock::now();
  std::optional<Clock::time_point> deadline;
  if (request.deadline_ms > 0) {
    deadline = submitted + milliseconds(request.deadline_ms);
  }

  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  const std::string method = request.method;

  const auto reply_error = [&](ErrorCode code, const std::string& message) {
    promise.set_value(make_error_response(request, code, message));
    count_request(method, error_name(code));
  };
  const auto reply_ok = [&](const std::string& body) {
    promise.set_value(make_success_response(request, false, false,
                                            elapsed_us_since(submitted),
                                            body));
    count_request(method, "ok");
    observe_latency(method, submitted);
  };

  // Control plane: answered inline, never queued, never cached — stats
  // stays reachable even when the pool is saturated (that is how tests
  // and operators observe the saturation).
  if (method == "ping") {
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("pong", true);
    json.end_object();
    reply_ok(json.str());
    return future;
  }
  if (method == "stats") {
    reply_ok(stats_body());
    return future;
  }
  if (method == "shutdown") {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_requested_ = true;
    }
    telemetry::JsonWriter json;
    json.begin_object();
    json.kv("stopping", true);
    json.end_object();
    reply_ok(json.str());
    return future;
  }

  // The root span the transport opened for this request (kNoSpan when
  // the request is untraced or no tracer is attached).
  telemetry::SpanTracer* const tracer = tracer_;
  const std::uint64_t root =
      tracer ? request.trace_parent : telemetry::kNoSpan;

  MethodCall call;
  {
    const telemetry::ScopedSpan span(root ? tracer : nullptr, "admission",
                                     root);
    try {
      call = prepare_method(method, request.params);
    } catch (const ServeError& e) {
      reply_error(e.code(), e.what());
      return future;
    } catch (const std::invalid_argument& e) {
      reply_error(ErrorCode::kBadRequest, e.what());
      return future;
    } catch (const std::exception& e) {
      reply_error(ErrorCode::kInternal, e.what());
      return future;
    }

    if (deadline && Clock::now() >= *deadline) {
      reply_error(ErrorCode::kDeadlineExceeded,
                  "deadline elapsed before admission");
      return future;
    }
    observe_phase("admission", elapsed_us_since(submitted));
  }

  {
    const Clock::time_point lookup_started = Clock::now();
    const telemetry::ScopedSpan span(root ? tracer : nullptr,
                                     "cache_lookup", root);
    std::optional<std::string> body = cache_.lookup(call.identity);
    observe_phase("cache_lookup", elapsed_us_since(lookup_started));
    if (body) {
      promise.set_value(make_success_response(request, /*cached=*/true,
                                              /*coalesced=*/false,
                                              elapsed_us_since(submitted),
                                              *body));
      count_request(method, "ok");
      observe_latency(method, submitted);
      return future;
    }
  }

  Waiter waiter;
  waiter.request = std::move(request);
  waiter.promise = std::move(promise);
  waiter.submitted = submitted;
  waiter.deadline = deadline;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      lock.unlock();
      waiter.promise.set_value(make_error_response(
          waiter.request, ErrorCode::kOverloaded, "service is draining"));
      count_request(method, error_name(ErrorCode::kOverloaded));
      return future;
    }
    if (const auto it = inflight_.find(call.identity);
        it != inflight_.end()) {
      waiter.coalesced = true;
      it->second->waiters.push_back(std::move(waiter));
      lock.unlock();
      const std::lock_guard<std::mutex> mlock(metrics_mutex_);
      ++coalesced_total_;
      return future;
    }
    if (queue_.size() >= config_.queue_depth) {
      // Backpressure: shed instead of blocking the caller. The client
      // owns the retry policy; the structured 503 is the signal.
      lock.unlock();
      waiter.promise.set_value(make_error_response(
          waiter.request, ErrorCode::kOverloaded,
          "admission queue full (" + std::to_string(config_.queue_depth) +
              " queued); retry later"));
      count_request(method, error_name(ErrorCode::kOverloaded));
      {
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        ++shed_total_;
      }
      return future;
    }
    auto flight = std::make_shared<Inflight>();
    flight->identity = call.identity;
    flight->method = method;
    flight->debug_hold_ms = waiter.request.debug_hold_ms;
    flight->call = std::move(call);
    flight->trace_parent = root;
    flight->enqueued = Clock::now();
    if (root) flight->queue_span = tracer->begin("queue_wait", root);
    flight->waiters.push_back(std::move(waiter));
    inflight_.emplace(flight->identity, flight);
    queue_.push_back(std::move(flight));
  }
  work_cv_.notify_one();
  return future;
}

std::string Service::handle_line(const std::string& line,
                                 std::uint64_t trace_parent) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ServeError& e) {
    return make_parse_error_response(e.code(), e.what());
  }
  request.trace_parent = trace_parent;
  return submit(std::move(request)).get();
}

void Service::worker_loop() {
  for (;;) {
    std::shared_ptr<Inflight> flight;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      flight = queue_.front();
      queue_.pop_front();
      ++executing_;
    }
    execute(std::move(flight));
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --executing_;
      if (queue_.empty() && executing_ == 0) idle_cv_.notify_all();
    }
  }
}

void Service::finish_waiter(Waiter& waiter, const std::string& method,
                            bool cached, const std::string& body) {
  waiter.promise.set_value(make_success_response(
      waiter.request, cached, waiter.coalesced,
      elapsed_us_since(waiter.submitted), body));
  count_request(method, "ok");
  observe_latency(method, waiter.submitted);
}

void Service::fail_waiter(Waiter& waiter, const std::string& method,
                          ErrorCode code, const std::string& message) {
  waiter.promise.set_value(
      make_error_response(waiter.request, code, message));
  count_request(method, error_name(code));
}

void Service::execute(std::shared_ptr<Inflight> flight) {
  // Phase accounting: the flight left the queue the moment a worker got
  // here. Spans belong to the first waiter's trace (if any).
  telemetry::SpanTracer* const tracer = tracer_;
  if (tracer) tracer->end(flight->queue_span);
  observe_phase("queue_wait", elapsed_us_since(flight->enqueued));
  const std::uint64_t exec_span =
      tracer && flight->trace_parent
          ? tracer->begin("execute:" + flight->method, flight->trace_parent)
          : telemetry::kNoSpan;
  const Clock::time_point exec_started = Clock::now();

  // True when every waiter's deadline has lapsed (waiters may still be
  // attaching, hence the lock). A flight with any open-ended waiter is
  // never cancelled.
  const auto all_expired = [&] {
    const Clock::time_point now = Clock::now();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Waiter& waiter : flight->waiters) {
      if (!waiter.deadline || now < *waiter.deadline) return false;
    }
    return true;
  };

  // Test hook: hold the worker (cooperatively) before executing.
  if (flight->debug_hold_ms > 0) {
    const Clock::time_point until =
        Clock::now() + milliseconds(flight->debug_hold_ms);
    while (Clock::now() < until && !all_expired()) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  }

  std::string body;
  bool failed = false;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  if (all_expired()) {
    failed = true;
    code = ErrorCode::kDeadlineExceeded;
    message = "deadline elapsed before execution";
  } else {
    try {
      ExecContext ctx;
      ctx.cancelled = all_expired;
      ctx.tracer = exec_span != telemetry::kNoSpan ? tracer : nullptr;
      ctx.span_parent = exec_span;
      body = flight->call.run(ctx);
    } catch (const ServeError& e) {
      failed = true;
      code = e.code();
      message = e.what();
    } catch (const std::invalid_argument& e) {
      failed = true;
      code = ErrorCode::kBadRequest;
      message = e.what();
    } catch (const std::exception& e) {
      failed = true;
      code = ErrorCode::kInternal;
      message = e.what();
    }
  }

  if (tracer) tracer->end(exec_span);
  observe_phase("execute", elapsed_us_since(exec_started));

  if (!failed) {
    // Insert BEFORE detaching the in-flight entry: an identical request
    // arriving now either coalesces onto this flight or hits the cache —
    // there is no window where it would recompute.
    cache_.insert(flight->identity, body);
  }

  std::vector<Waiter> waiters;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(flight->identity);
    waiters = std::move(flight->waiters);
  }

  const Clock::time_point now = Clock::now();
  for (Waiter& waiter : waiters) {
    if (failed) {
      fail_waiter(waiter, flight->method, code, message);
    } else if (waiter.deadline && now >= *waiter.deadline) {
      fail_waiter(waiter, flight->method, ErrorCode::kDeadlineExceeded,
                  "deadline elapsed during execution");
    } else {
      finish_waiter(waiter, flight->method, /*cached=*/false, body);
    }
  }
}

void Service::drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && executing_ == 0; });
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

namespace {

void render_cache(telemetry::JsonWriter& json, const CacheStats& stats,
                  std::size_t capacity) {
  json.key("cache").begin_object();
  json.kv("hits", stats.hits);
  json.kv("misses", stats.misses);
  json.kv("insertions", stats.insertions);
  json.kv("evictions", stats.evictions);
  json.kv("entries", stats.entries);
  json.kv("capacity", static_cast<std::uint64_t>(capacity));
  const double lookups =
      static_cast<double>(stats.hits) + static_cast<double>(stats.misses);
  json.kv("hit_rate",
          lookups > 0.0 ? static_cast<double>(stats.hits) / lookups : 0.0);
  const double occupancy =
      capacity > 0 ? static_cast<double>(stats.entries) /
                         static_cast<double>(capacity)
                   : 0.0;
  json.kv("occupancy", occupancy);
  json.end_object();
}

}  // namespace

std::string Service::stats_body() {
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  std::size_t busy_workers = 0;
  bool draining = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_depth = queue_.size();
    in_flight = inflight_.size();
    busy_workers = executing_;
    draining = draining_;
  }
  const CacheStats cache_stats = cache_.stats();

  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("uptime_ms",
          static_cast<std::uint64_t>(
              duration_cast<milliseconds>(Clock::now() - started_).count()));
  json.kv("workers", static_cast<std::uint64_t>(config_.workers));
  json.kv("busy_workers", static_cast<std::uint64_t>(busy_workers));
  json.kv("utilization",
          config_.workers > 0
              ? static_cast<double>(busy_workers) /
                    static_cast<double>(config_.workers)
              : 0.0);
  json.kv("queue_depth", static_cast<std::uint64_t>(queue_depth));
  json.kv("queue_capacity", static_cast<std::uint64_t>(config_.queue_depth));
  json.kv("in_flight", static_cast<std::uint64_t>(in_flight));
  json.kv("draining", draining);
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    json.kv("shed_total", shed_total_);
    json.kv("coalesced_total", coalesced_total_);
    render_cache(json, cache_stats, cache_.capacity());
    json.key("metrics").raw_value(metrics_.to_json());
  }
  json.end_object();
  return json.str();
}

std::string Service::metrics_document() {
  const CacheStats cache_stats = cache_.stats();
  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("schema_version", 1);
  json.kv("experiment", "rapsim_served");
  json.kv("uptime_ms",
          static_cast<std::uint64_t>(
              duration_cast<milliseconds>(Clock::now() - started_).count()));
  json.kv("workers", static_cast<std::uint64_t>(config_.workers));
  json.kv("queue_capacity", static_cast<std::uint64_t>(config_.queue_depth));
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    json.kv("shed_total", shed_total_);
    json.kv("coalesced_total", coalesced_total_);
    render_cache(json, cache_stats, cache_.capacity());
    json.key("metrics").raw_value(metrics_.to_json());
  }
  json.end_object();
  return json.str();
}

void Service::write_metrics(const std::string& path) {
  const std::string document = metrics_document();
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("serve: cannot write " + tmp);
    out << document << '\n';
    if (!out) throw std::runtime_error("serve: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("serve: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace rapsim::serve
