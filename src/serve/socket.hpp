// Thin POSIX socket layer for the serve daemon and client.
//
// Two transports, one abstraction: a UNIX domain socket (the default —
// filesystem permissions are the access control) and a TCP loopback
// fallback for hosts or clients that cannot share a filesystem path.
// Endpoint picks the transport: a non-empty `path` means AF_UNIX,
// otherwise 127.0.0.1:`port` (port 0 lets the kernel choose; the bound
// port is readable back from the listener for tests).
//
// Everything blocks with bounded waits: accept and line reads poll()
// with a timeout so the server's loops can observe stop flags between
// waits — that is what makes SIGTERM drain latency bounded. All fds are
// CLOEXEC; SIGPIPE is avoided with MSG_NOSIGNAL.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rapsim::serve {

struct Endpoint {
  std::string path;              // non-empty = UNIX domain socket
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;        // TCP fallback; 0 = kernel-assigned

  [[nodiscard]] bool is_unix() const noexcept { return !path.empty(); }
  /// "unix:/run/rapsim.sock" or "tcp:127.0.0.1:7411" — log/CLI spelling.
  [[nodiscard]] std::string describe() const;
};

/// Owning fd wrapper (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Bound + listening server socket. Unlinks a stale UNIX socket path on
/// bind and removes it again on destruction.
class Listener {
 public:
  /// Throws std::runtime_error (with errno text) when the endpoint
  /// cannot be bound.
  explicit Listener(const Endpoint& endpoint);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The endpoint actually bound (TCP port resolved when 0 was asked).
  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoint_;
  }
  /// One accepted connection, or nullopt after `timeout_ms` with no
  /// arrival. Throws on listener failure.
  [[nodiscard]] std::optional<Socket> accept(int timeout_ms);

  /// Stop listening now (drain step 1): closes the socket and unlinks a
  /// UNIX socket path so new connects fail fast instead of queueing in
  /// the backlog. Idempotent; the destructor calls it.
  void close() noexcept;

 private:
  Endpoint endpoint_;
  Socket socket_;
};

/// Connect to a serve endpoint (client side). Throws std::runtime_error
/// when the connection cannot be established.
[[nodiscard]] Socket connect_to(const Endpoint& endpoint);

/// Write all of `data` (handles short writes; MSG_NOSIGNAL). Returns
/// false when the peer is gone.
[[nodiscard]] bool write_all(Socket& socket, std::string_view data);

/// Buffered newline-framed reader over a socket.
class LineReader {
 public:
  explicit LineReader(Socket& socket) noexcept : socket_(socket) {}

  enum class Status { kLine, kTimeout, kClosed };

  /// Wait up to `timeout_ms` for one complete '\n'-terminated line (the
  /// terminator is stripped). kClosed covers both EOF and errors. Lines
  /// longer than `max_bytes` fail the connection (kClosed) — the caller
  /// cannot be made to buffer unboundedly.
  Status read_line(std::string& line, int timeout_ms,
                   std::size_t max_bytes);

  /// A complete line already sitting in the buffer (drained on shutdown
  /// so received-but-unprocessed requests still get answers).
  [[nodiscard]] bool buffered_line_ready() const noexcept;

 private:
  Socket& socket_;
  std::string buffer_;
};

}  // namespace rapsim::serve
