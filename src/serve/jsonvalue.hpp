// Minimal JSON value model + parser for the serve wire protocol.
//
// The repository's telemetry layer only ever *writes* JSON
// (telemetry/json.hpp); a server must also read it. This is the matching
// pull side: a small immutable DOM (JsonValue) and a strict
// recursive-descent parser with byte-offset errors. Strictness matters
// more than features on a wire protocol: no comments, no trailing
// commas, no NaN/Infinity literals, objects keep INSERTION order (so a
// re-serialized document is stable), duplicate keys are rejected (a
// request must not mean two things), and depth is capped so a crafted
// request cannot blow the stack.
//
// Numbers keep both views: is_integer() is true when the literal was a
// pure integer that fits int64/uint64 exactly — the protocol layer wants
// "width": 32 to be an integer, while "bound": 1.5 stays a double.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rapsim::serve {

class JsonValue;

/// Object member list in insertion order. Lookup is linear — protocol
/// objects have a handful of keys, and order preservation is what makes
/// canonical re-serialization deterministic.
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInteger, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_integer(std::int64_t i);
  static JsonValue make_double(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray items);
  static JsonValue make_object(JsonMembers members);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == Kind::kInteger;
  }
  /// Any numeric literal (integer or double).
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInteger || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // Accessors throw std::logic_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_integer() const;
  [[nodiscard]] double as_number() const;  // integer widens to double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonMembers& as_object() const;

  /// Member lookup on an object: nullptr when absent (or when this value
  /// is not an object — callers probe optional fields in one step).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Compact canonical serialization (no whitespace, keys in stored
  /// order). Integers render without a decimal point; doubles via the
  /// telemetry JsonWriter's shortest-round-trip formatting.
  [[nodiscard]] std::string serialize() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonMembers> object_;
};

inline constexpr std::size_t kMaxJsonDepth = 64;

/// Parse exactly one JSON document occupying the whole input (trailing
/// whitespace allowed, anything else rejected). Throws
/// std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace rapsim::serve
