// serve wire protocol: newline-delimited JSON requests and responses.
//
// One request per line, one response per line, UTF-8, no intra-message
// newlines (the JSON escaper guarantees that). Requests:
//
//   {"id":"r1","method":"certify","params":{...},"deadline_ms":250}
//
//   id           optional string/integer echoed back verbatim (null when
//                absent) — correlation only, never interpreted.
//   method       certify | lint | replay | advise  (worker-pool methods)
//                stats | ping | shutdown           (control plane: answered
//                inline, never queued, never cached)
//   params       object, method-specific (see DESIGN.md §11).
//   deadline_ms  optional per-request budget; 0/absent = no deadline.
//   debug_hold_ms  optional test hook: the handler holds the worker for
//                this long (capped at kMaxDebugHoldMs, excluded from the
//                cache identity). Lets tests fill the pool deterministically.
//
// Success response (result is ALWAYS the last member, so the byte-exact
// result body of a cached reply is the suffix after `"result":`):
//
//   {"id":"r1","ok":true,"method":"certify","cached":false,
//    "coalesced":false,"elapsed_us":412,"result":{...}}
//
// Error response:
//
//   {"id":"r1","ok":false,"method":"certify",
//    "error":{"code":503,"name":"overloaded","message":"..."}}
//
// Error codes (HTTP-flavored, stable):
//   400 bad_request        malformed JSON / bad params / unparseable input
//   404 unknown_method     method not in the table above
//   408 deadline_exceeded  budget elapsed before or during execution
//   413 too_large          request line longer than kMaxRequestBytes
//   500 internal           handler threw something unexpected
//   503 overloaded         admission queue full — retry later (backpressure)

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/jsonvalue.hpp"

namespace rapsim::serve {

/// Ceiling on one request line; a client cannot make the server buffer
/// an unbounded message.
inline constexpr std::size_t kMaxRequestBytes = 8u << 20;
inline constexpr std::uint64_t kMaxDebugHoldMs = 10'000;

enum class ErrorCode : int {
  kBadRequest = 400,
  kUnknownMethod = 404,
  kDeadlineExceeded = 408,
  kTooLarge = 413,
  kInternal = 500,
  kOverloaded = 503,
};

[[nodiscard]] const char* error_name(ErrorCode code) noexcept;

/// Handler-level failure: carries the structured code the response
/// renderer needs. Everything a handler throws that is NOT a ServeError
/// is mapped to 500 internal.
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

struct Request {
  std::string id_json = "null";  // the id member re-serialized verbatim
  std::string method;
  JsonValue params;                   // object or null
  std::uint64_t deadline_ms = 0;      // 0 = none
  std::uint64_t debug_hold_ms = 0;    // test hook, see header comment
  /// NOT a wire field: the root span id the transport opened for this
  /// request (telemetry::kNoSpan = untraced). The engine parents its
  /// phase spans (admission, cache_lookup, queue_wait, execute) here.
  std::uint64_t trace_parent = 0;
};

/// Parse + validate one request line (already stripped of its '\n').
/// Throws ServeError(kBadRequest/kTooLarge) on anything malformed.
[[nodiscard]] Request parse_request(std::string_view line);

/// Render the success envelope around an already-serialized result body.
/// `result_body` is spliced in verbatim — for cache hits this is what
/// makes the replayed result byte-identical to the original.
[[nodiscard]] std::string make_success_response(const Request& request,
                                                bool cached, bool coalesced,
                                                std::uint64_t elapsed_us,
                                                const std::string& result_body);

/// Render the error envelope.
[[nodiscard]] std::string make_error_response(const Request& request,
                                              ErrorCode code,
                                              const std::string& message);

/// Error envelope for a line that never parsed into a Request.
[[nodiscard]] std::string make_parse_error_response(ErrorCode code,
                                                    const std::string& message);

}  // namespace rapsim::serve
