// Umbrella header: the whole rapsim public API in one include.
//
//   #include "rapsim.hpp"            // with -I<repo>/src
//
// Downstream users who want finer-grained includes can pull individual
// module headers (core/mapping2d.hpp, dmm/machine.hpp, ...) — this header
// exists for quick starts and examples.

#pragma once

#include "access/adversary.hpp"
#include "access/advisor.hpp"
#include "access/montecarlo.hpp"
#include "access/pattern2d.hpp"
#include "access/pattern4d.hpp"
#include "analyze/affine.hpp"
#include "analyze/certificate.hpp"
#include "analyze/sanitizer.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "core/mapping.hpp"
#include "core/mapping2d.hpp"
#include "core/mapping4d.hpp"
#include "core/mappingnd.hpp"
#include "core/permutation.hpp"
#include "core/theory.hpp"
#include "dmm/capture.hpp"
#include "dmm/config.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"
#include "dmm/trace.hpp"
#include "dmm/umm.hpp"
#include "gpu/grid.hpp"
#include "gpu/register_pack.hpp"
#include "gpu/sm_model.hpp"
#include "hmm/hmm.hpp"
#include "hmm/tiled_transpose.hpp"
#include "permute/offline.hpp"
#include "replay/campaign.hpp"
#include "replay/replay.hpp"
#include "replay/trace.hpp"
#include "transpose/algorithms.hpp"
#include "transpose/runner.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/bitonic.hpp"
#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/reduction.hpp"
