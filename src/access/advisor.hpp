// Layout advisor: given a recorded set of warp accesses, score every
// candidate scheme and recommend one.
//
// This is the downstream-user entry point the paper's conclusion gestures
// at ("it is not necessary for CUDA developers to avoid bank conflicts if
// they use the RAP"): capture the logical addresses your kernel's warps
// touch (profiled or hand-written), hand them to evaluate_schemes(), and
// get per-scheme expected congestion plus a recommendation that weighs
// the randomized schemes' average case against the deterministic schemes'
// exact behaviour on YOUR trace.
//
// Every score also carries a static CongestionCertificate from the
// analyzer (analyze/certificate.hpp): when the trace is affine the
// rationale cites the proof rule that PROVES the congestion (gcd law,
// permutation distinctness, Theorem 2 envelope) instead of only the
// sampled means.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/certificate.hpp"
#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"

namespace rapsim::access {

/// One warp's worth of logical addresses (up to `width` entries).
using WarpTrace = std::vector<std::uint64_t>;

struct SchemeScore {
  core::Scheme scheme = core::Scheme::kRaw;
  double mean_congestion = 0.0;  // over warps (and draws, if randomized)
  double max_congestion = 0.0;   // worst warp (averaged over draws)
  std::uint64_t random_words = 0;
};

struct Advice {
  std::vector<SchemeScore> scores;  // RAW, PAD, RAS, RAP — in that order
  /// Static certificates aligned with `scores`: the worst warp's proven
  /// congestion (exact) or per-warp expected-congestion envelope.
  std::vector<analyze::CongestionCertificate> certificates;
  core::Scheme recommended = core::Scheme::kRaw;
  std::string rationale;
};

/// Score the 2-D schemes on a trace over a `rows` x `width` logical
/// array. Deterministic schemes (RAW, PAD) are evaluated exactly;
/// randomized ones (RAS, RAP) are averaged over `draws` mapping draws
/// seeded from `seed`.
[[nodiscard]] Advice evaluate_schemes(const std::vector<WarpTrace>& traces,
                                      std::uint32_t width, std::uint64_t rows,
                                      std::uint32_t draws = 32,
                                      std::uint64_t seed = 1);

/// Advise on a kernel described in the loop-nest IR. The Monte Carlo
/// scores run on representative warp traces materialized from the IR (one
/// per residue class, analyze/passes.hpp), but the certificates come from
/// the whole-kernel symbolic closure — they cover EVERY binding of the
/// loop variables, not just the materialized sample, so the rationale's
/// proof claims are strictly stronger than in evaluate_schemes.
[[nodiscard]] Advice evaluate_kernel(const analyze::KernelDesc& kernel,
                                     std::uint32_t draws = 32,
                                     std::uint64_t seed = 1);

}  // namespace rapsim::access
