// Malicious (adversarial) access generators.
//
// The adversary knows the mapping *scheme* but not the random draw, and
// places one warp's worth of requests to maximize the expected congestion
// (Table I's "Any" row and Table IV's "Malicious" row):
//
//   RAW  2-D — all w cells in one column: deterministically one bank,
//              congestion w.
//   RAS  2-D — one cell per row (cells in the same row can never collide;
//              cross-row banks are iid uniform): balls-in-bins.
//   RAP  2-D — one cell per row, rows distinct mod w: cross-row collision
//              probability rises from 1/w to 1/(w-1) (the paper's Section V
//              remark), the best an oblivious adversary can do.
//
//   RAW  4-D — all cells share the innermost coordinate l: congestion w.
//   1P   4-D — all cells share k and l (shift p[k] is common): congestion w.
//   R1P  4-D — the paper's index-permutation attack: for distinct values
//              {a,b,c}, all 6 cells (i,j,k) in the permutation group of
//              (a,b,c) share f = p[a]+p[b]+p[c], so with a common l each
//              group of 6 lands in ONE bank regardless of the draw; w/6
//              groups give expected congestion 6 * E[max load of w/6 balls
//              in w bins].
//   3P / w2P / 1P+w2R / RAS 4-D — no structured attack beats one cell per
//              (i,j,k) row; banks are (pairwise) near-uniform, so the
//              adversary degenerates to balls-in-bins.
//
// search_adversary() is an independent randomized hill-climber used by the
// ablation bench as a lower-bound probe that the structured attacks above
// are not leaving much on the table.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/mapping2d.hpp"
#include "core/mapping4d.hpp"
#include "util/rng.hpp"

namespace rapsim::access {

/// One warp of adversarial logical addresses against a 2-D mapping scheme.
[[nodiscard]] std::vector<std::uint64_t> malicious_addresses_2d(
    const core::MatrixMap& map, util::Pcg32& rng);

/// One warp of adversarial logical addresses against a 4-D mapping scheme.
[[nodiscard]] std::vector<std::uint64_t> malicious_addresses_4d(
    const core::Tensor4dMap& map, util::Pcg32& rng);

/// Randomized hill-climbing adversary: starts from a random placement of
/// `width` distinct cells and greedily mutates single cells, scoring a
/// candidate by its mean congestion over `sample_draws` freshly drawn
/// mappings produced by `make_map`. Returns the best placement found and
/// its score. Deliberately scheme-agnostic — used to sanity-check the
/// structured adversaries.
struct AdversarySearchResult {
  std::vector<std::uint64_t> addresses;
  double mean_congestion = 0.0;
};

[[nodiscard]] AdversarySearchResult search_adversary(
    const std::function<std::unique_ptr<core::AddressMap>(std::uint64_t seed)>&
        make_map,
    std::uint32_t width, std::uint64_t domain_size, std::uint32_t iterations,
    std::uint32_t sample_draws, std::uint64_t seed);

}  // namespace rapsim::access
