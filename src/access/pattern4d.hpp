// Memory-access operations on a 4-D array of size w^4 (Section VII).
//
// One warp of w threads accesses:
//
//   contiguous — A[i][j][k][0..w-1]   (vary l)
//   stride1    — A[i][j][0..w-1][l]   (vary k)
//   stride2    — A[i][0..w-1][k][l]   (vary j)
//   stride3    — A[0..w-1][j][k][l]   (vary i)
//   random     — w uniformly random cells
//   malicious  — scheme-aware adversary (adversary.hpp)
//
// The fixed coordinates are drawn from `rng` so Monte-Carlo averaging
// covers the whole array, matching Table IV's setup.

#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping4d.hpp"
#include "util/rng.hpp"

namespace rapsim::access {

enum class Pattern4d {
  kContiguous,
  kStride1,
  kStride2,
  kStride3,
  kRandom,
  kMalicious
};

[[nodiscard]] const char* pattern4d_name(Pattern4d pattern) noexcept;

/// Logical addresses accessed by one warp of map.width() threads.
[[nodiscard]] std::vector<std::uint64_t> warp_addresses_4d(
    Pattern4d pattern, const core::Tensor4dMap& map, util::Pcg32& rng);

/// All Pattern4d values in the order of the paper's Table IV rows.
[[nodiscard]] const std::vector<Pattern4d>& table4_patterns();

}  // namespace rapsim::access
