#include "access/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "core/congestion.hpp"
#include "core/factory.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rapsim::access {

namespace {

constexpr std::size_t kChunks = 64;  // fixed: part of the deterministic contract

struct ChunkAccumulator {
  util::OnlineStats stats;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  bool any = false;

  void add(std::uint32_t congestion) {
    stats.add(congestion);
    if (!any) {
      min = max = congestion;
      any = true;
    } else {
      min = std::min(min, congestion);
      max = std::max(max, congestion);
    }
  }
};

CongestionEstimate reduce(const std::vector<ChunkAccumulator>& chunks) {
  util::OnlineStats total;
  CongestionEstimate est;
  bool any = false;
  for (const auto& c : chunks) {
    if (!c.any) continue;
    total.merge(c.stats);
    if (!any) {
      est.min = c.min;
      est.max = c.max;
      any = true;
    } else {
      est.min = std::min(est.min, c.min);
      est.max = std::max(est.max, c.max);
    }
  }
  est.mean = total.mean();
  est.ci95 = total.ci95();
  est.trials = total.count();
  return est;
}

}  // namespace

CongestionEstimate estimate_congestion_2d(core::Scheme scheme,
                                          Pattern2d pattern,
                                          std::uint32_t width,
                                          std::uint64_t trials,
                                          std::uint64_t seed) {
  std::vector<ChunkAccumulator> chunks(kChunks);
  util::parallel_for_chunks(
      trials, kChunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        util::Pcg32 rng(seed ^ (0x32645f5472ull + chunk), chunk);
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint64_t map_seed =
              seed * 0x9e3779b97f4a7c15ull + t + 1;
          const auto map =
              core::make_matrix_map(scheme, width, width, map_seed);
          const std::uint32_t warp = rng.bounded(width);
          const auto addrs = warp_addresses_2d(pattern, *map, warp, rng);
          chunks[chunk].add(core::congestion_value(addrs, *map));
        }
      });
  return reduce(chunks);
}

util::Tally congestion_distribution_2d(core::Scheme scheme,
                                       Pattern2d pattern, std::uint32_t width,
                                       std::uint64_t trials,
                                       std::uint64_t seed) {
  util::Tally tally;
  util::Pcg32 rng(seed ^ 0x64697374ull, 0);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t map_seed = seed * 0x9e3779b97f4a7c15ull + t + 1;
    const auto map = core::make_matrix_map(scheme, width, width, map_seed);
    const std::uint32_t warp = rng.bounded(width);
    const auto addrs = warp_addresses_2d(pattern, *map, warp, rng);
    tally.add(core::congestion_value(addrs, *map));
  }
  return tally;
}

CongestionProfile profile_congestion_2d(core::Scheme scheme,
                                        Pattern2d pattern, std::uint32_t width,
                                        std::uint64_t trials,
                                        std::uint64_t seed) {
  CongestionProfile profile;
  profile.bank_requests.assign(width, 0);
  util::OnlineStats stats;
  util::Pcg32 rng(seed ^ 0x64697374ull, 0);  // congestion_distribution_2d's stream
  for (std::uint64_t t = 0; t < trials; ++t) {
    const std::uint64_t map_seed = seed * 0x9e3779b97f4a7c15ull + t + 1;
    const auto map = core::make_matrix_map(scheme, width, width, map_seed);
    const std::uint32_t warp = rng.bounded(width);
    const auto addrs = warp_addresses_2d(pattern, *map, warp, rng);
    const auto result = core::congestion_of_logical(addrs, *map);
    profile.distribution.add(result.congestion);
    stats.add(result.congestion);
    for (std::uint32_t b = 0; b < width; ++b) {
      profile.bank_requests[b] += result.per_bank[b];
    }
  }
  profile.estimate.mean = stats.mean();
  profile.estimate.ci95 = stats.ci95();
  profile.estimate.min = static_cast<std::uint32_t>(profile.distribution.min());
  profile.estimate.max = static_cast<std::uint32_t>(profile.distribution.max());
  profile.estimate.trials = stats.count();
  return profile;
}

CongestionEstimate estimate_congestion_4d(core::Scheme scheme,
                                          Pattern4d pattern,
                                          std::uint32_t width,
                                          std::uint64_t trials,
                                          std::uint64_t seed) {
  std::vector<ChunkAccumulator> chunks(kChunks);
  util::parallel_for_chunks(
      trials, kChunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        util::Pcg32 rng(seed ^ (0x34645f5472ull + chunk), chunk);
        for (std::size_t t = begin; t < end; ++t) {
          const std::uint64_t map_seed =
              seed * 0x9e3779b97f4a7c15ull + t + 1;
          const auto map = core::make_tensor4d_map(scheme, width, map_seed);
          const auto addrs = warp_addresses_4d(pattern, *map, rng);
          chunks[chunk].add(core::congestion_value(addrs, *map));
        }
      });
  return reduce(chunks);
}

}  // namespace rapsim::access
