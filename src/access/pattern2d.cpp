#include "access/pattern2d.hpp"

#include <stdexcept>

#include "access/adversary.hpp"

namespace rapsim::access {

const char* pattern2d_name(Pattern2d pattern) noexcept {
  switch (pattern) {
    case Pattern2d::kContiguous: return "Contiguous";
    case Pattern2d::kStride: return "Stride";
    case Pattern2d::kDiagonal: return "Diagonal";
    case Pattern2d::kRandom: return "Random";
    case Pattern2d::kMalicious: return "Malicious";
  }
  return "?";
}

std::vector<std::uint64_t> warp_addresses_2d(Pattern2d pattern,
                                             const core::MatrixMap& map,
                                             std::uint32_t warp_index,
                                             util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  if (map.rows() < w) {
    throw std::invalid_argument(
        "warp_addresses_2d: matrix must have at least width rows");
  }
  std::vector<std::uint64_t> addrs;
  addrs.reserve(w);
  switch (pattern) {
    case Pattern2d::kContiguous:
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index(warp_index % map.rows(), t));
      }
      break;
    case Pattern2d::kStride:
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index(t, warp_index % w));
      }
      break;
    case Pattern2d::kDiagonal:
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index(t, (t + warp_index) % w));
      }
      break;
    case Pattern2d::kRandom:
      for (std::uint32_t t = 0; t < w; ++t) {
        const std::uint64_t i = rng.bounded(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(map.rows(), 0xffffffffull)));
        const std::uint64_t j = rng.bounded(w);
        addrs.push_back(map.index(i, j));
      }
      break;
    case Pattern2d::kMalicious:
      return malicious_addresses_2d(map, rng);
  }
  return addrs;
}

std::vector<std::uint64_t> strided_flat_addresses(const core::AddressMap& map,
                                                  std::uint64_t stride,
                                                  std::uint64_t base) {
  std::vector<std::uint64_t> addrs;
  addrs.reserve(map.width());
  for (std::uint32_t t = 0; t < map.width(); ++t) {
    addrs.push_back((base + t * stride) % map.size());
  }
  return addrs;
}

const std::vector<Pattern2d>& table2_patterns() {
  static const std::vector<Pattern2d> kPatterns = {
      Pattern2d::kContiguous, Pattern2d::kStride, Pattern2d::kDiagonal,
      Pattern2d::kRandom};
  return kPatterns;
}

}  // namespace rapsim::access
