#include "access/adversary.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "core/congestion.hpp"

namespace rapsim::access {

namespace {

/// Generic oblivious attack: one cell per row. Rows can never self-collide
/// under any shift scheme (a row is rotated as a unit), so the adversary's
/// best generic move is to spread across rows and let the bank draws
/// collide; column choice is random to avoid accidentally hitting a
/// conflict-free sub-structure.
std::vector<std::uint64_t> one_cell_per_row_2d(const core::MatrixMap& map,
                                               util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  std::vector<std::uint64_t> addrs;
  addrs.reserve(w);
  for (std::uint32_t t = 0; t < w; ++t) {
    addrs.push_back(map.index(t, rng.bounded(w)));
  }
  return addrs;
}

std::vector<std::uint64_t> one_cell_per_row_4d(const core::Tensor4dMap& map,
                                               util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  std::vector<std::uint64_t> addrs;
  addrs.reserve(w);
  for (std::uint32_t t = 0; t < w; ++t) {
    addrs.push_back(
        map.index({t, rng.bounded(w), rng.bounded(w), rng.bounded(w)}));
  }
  return addrs;
}

}  // namespace

std::vector<std::uint64_t> malicious_addresses_2d(const core::MatrixMap& map,
                                                  util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  switch (map.scheme()) {
    case core::Scheme::kRaw: {
      // All threads on one column: deterministically congestion w.
      std::vector<std::uint64_t> addrs;
      addrs.reserve(w);
      const std::uint32_t column = rng.bounded(w);
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index(t, column));
      }
      return addrs;
    }
    case core::Scheme::kPad: {
      // The padding skew is public: cells on an anti-diagonal
      // (i + j = const mod w) all share bank (i + j) mod w.
      std::vector<std::uint64_t> addrs;
      addrs.reserve(w);
      const std::uint32_t c = rng.bounded(w);
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index(t, (c + w - t % w) % w));
      }
      return addrs;
    }
    default:
      // RAS / RAP: no structured attack exists; one cell per row maximizes
      // the collision opportunities (RAP's cross-row collision probability
      // is 1/(w-1), slightly above RAS's 1/w — Section V).
      return one_cell_per_row_2d(map, rng);
  }
}

std::vector<std::uint64_t> malicious_addresses_4d(const core::Tensor4dMap& map,
                                                  util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  std::vector<std::uint64_t> addrs;
  addrs.reserve(w);

  switch (map.scheme()) {
    case core::Scheme::kRaw: {
      // Any w cells sharing the innermost coordinate l sit in bank l.
      const std::uint32_t l = rng.bounded(w);
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index({t, rng.bounded(w), rng.bounded(w), l}));
      }
      return addrs;
    }
    case core::Scheme::kRap1P: {
      // shift = p[k]: fixing k and l pins the bank at (l + p[k]) mod w for
      // every (i, j) — the whole warp lands in one bank.
      const std::uint32_t k = rng.bounded(w);
      const std::uint32_t l = rng.bounded(w);
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index({0u, t, k, l}));
      }
      return addrs;
    }
    case core::Scheme::kRapR1P: {
      // The paper's index-permutation attack: the 6 arrangements of a
      // distinct triple {a,b,c} all have shift p[a]+p[b]+p[c]; with a
      // common l each group of 6 requests lands in ONE bank regardless of
      // the draw. w/6 disjoint triples fill the warp.
      const std::uint32_t l = rng.bounded(w);
      const std::uint32_t groups = w / 6;
      for (std::uint32_t g = 0; g < groups; ++g) {
        const std::uint32_t a = 3 * g, b = 3 * g + 1, c = 3 * g + 2;
        const std::uint32_t perms[6][3] = {{a, b, c}, {a, c, b}, {b, a, c},
                                           {b, c, a}, {c, a, b}, {c, b, a}};
        for (const auto& ijk : perms) {
          addrs.push_back(map.index({ijk[0], ijk[1], ijk[2], l}));
        }
      }
      // Fill the remaining threads with generic one-per-row cells drawn
      // from untouched i values so addresses stay distinct.
      std::uint32_t next_i = 3 * groups;
      while (addrs.size() < w) {
        addrs.push_back(map.index(
            {next_i % w, rng.bounded(w), rng.bounded(w), rng.bounded(w)}));
        ++next_i;
      }
      return addrs;
    }
    case core::Scheme::kRapW2P:
    case core::Scheme::kRap1PW2R: {
      // shift depends on (i, j) through an independent draw per plane:
      // fixing k and l and varying (i, j) reduces to balls-in-bins — the
      // strongest oblivious structure available.
      const std::uint32_t k = rng.bounded(w);
      const std::uint32_t l = rng.bounded(w);
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index({t, rng.bounded(w), k, l}));
      }
      return addrs;
    }
    case core::Scheme::kRas:
    case core::Scheme::kRap3P:
    default:
      // No structure to exploit; vary everything across rows.
      return one_cell_per_row_4d(map, rng);
  }
}

AdversarySearchResult search_adversary(
    const std::function<std::unique_ptr<core::AddressMap>(std::uint64_t)>&
        make_map,
    std::uint32_t width, std::uint64_t domain_size, std::uint32_t iterations,
    std::uint32_t sample_draws, std::uint64_t seed) {
  util::Pcg32 rng(seed, /*stream=*/0xadull);

  const auto score = [&](const std::vector<std::uint64_t>& addrs) {
    double sum = 0.0;
    for (std::uint32_t d = 0; d < sample_draws; ++d) {
      const auto map = make_map(seed * 1315423911ull + d);
      sum += core::congestion_value(addrs, *map);
    }
    return sum / sample_draws;
  };

  const auto random_address = [&] {
    // domain_size may exceed 32 bits for large 4-D arrays; compose two
    // bounded draws.
    const std::uint64_t hi = domain_size >> 16;
    if (hi == 0) return static_cast<std::uint64_t>(rng.bounded(
        static_cast<std::uint32_t>(domain_size)));
    for (;;) {
      const std::uint64_t candidate =
          (static_cast<std::uint64_t>(rng.bounded(static_cast<std::uint32_t>(
               hi + 1)))
           << 16) |
          rng.bounded(1u << 16);
      if (candidate < domain_size) return candidate;
    }
  };

  // Start from distinct random addresses.
  std::unordered_set<std::uint64_t> used;
  std::vector<std::uint64_t> current;
  current.reserve(width);
  while (current.size() < width && used.size() < domain_size) {
    const std::uint64_t a = random_address();
    if (used.insert(a).second) current.push_back(a);
  }

  AdversarySearchResult best{current, score(current)};
  double current_score = best.mean_congestion;

  for (std::uint32_t it = 0; it < iterations; ++it) {
    const std::uint32_t victim = rng.bounded(width);
    const std::uint64_t old_addr = current[victim];
    const std::uint64_t new_addr = random_address();
    if (used.contains(new_addr)) continue;
    used.erase(old_addr);
    used.insert(new_addr);
    current[victim] = new_addr;
    const double s = score(current);
    if (s >= current_score) {
      current_score = s;
      if (s > best.mean_congestion) best = {current, s};
    } else {
      used.erase(new_addr);
      used.insert(old_addr);
      current[victim] = old_addr;
    }
  }
  return best;
}

}  // namespace rapsim::access
