// Monte-Carlo congestion estimation — the engine behind Tables I, II, IV.
//
// Each trial draws a fresh mapping (fresh random permutation / offsets for
// the randomized schemes) and one warp's worth of addresses for the
// requested pattern, then records the congestion. Trials are split into
// fixed chunks with independent RNG streams, so results are deterministic
// in (seed, trials) and independent of the worker-thread count.

#pragma once

#include <cstdint>

#include "access/pattern2d.hpp"
#include "access/pattern4d.hpp"
#include "core/mapping.hpp"
#include "util/stats.hpp"

namespace rapsim::access {

struct CongestionEstimate {
  double mean = 0.0;       // expected congestion
  double ci95 = 0.0;       // 95% confidence half-width
  std::uint32_t min = 0;   // smallest observed
  std::uint32_t max = 0;   // largest observed
  std::uint64_t trials = 0;
};

/// Expected per-warp congestion of `pattern` on a w x w matrix under
/// `scheme` (Table II cell). Deterministic in (seed, trials).
[[nodiscard]] CongestionEstimate estimate_congestion_2d(
    core::Scheme scheme, Pattern2d pattern, std::uint32_t width,
    std::uint64_t trials, std::uint64_t seed);

/// Expected per-warp congestion of `pattern` on a w^4 4-D array under
/// `scheme` (Table IV cell).
[[nodiscard]] CongestionEstimate estimate_congestion_4d(
    core::Scheme scheme, Pattern4d pattern, std::uint32_t width,
    std::uint64_t trials, std::uint64_t seed);

/// Full congestion distribution (exact integer histogram) of `pattern` on
/// a w x w matrix under `scheme`. Used to check the Lemma 4 / Theorem 2
/// tail probabilities, not just the mean. Single-threaded (the Tally is
/// not mergeable across chunks deterministically at the same cost), so
/// keep trials moderate.
[[nodiscard]] util::Tally congestion_distribution_2d(core::Scheme scheme,
                                                     Pattern2d pattern,
                                                     std::uint32_t width,
                                                     std::uint64_t trials,
                                                     std::uint64_t seed);

/// Everything the JSON exporter reports for one Table II cell in a single
/// deterministic sweep: moment statistics, the exact congestion histogram
/// (for p50/p95/p99), and per-bank unique-request totals summed over all
/// trials. Same sampling as congestion_distribution_2d (single-threaded,
/// identical seeding), so `distribution` matches it sample-for-sample.
struct CongestionProfile {
  CongestionEstimate estimate;
  util::Tally distribution;
  std::vector<std::uint64_t> bank_requests;  // one total per bank
};

[[nodiscard]] CongestionProfile profile_congestion_2d(core::Scheme scheme,
                                                      Pattern2d pattern,
                                                      std::uint32_t width,
                                                      std::uint64_t trials,
                                                      std::uint64_t seed);

}  // namespace rapsim::access
