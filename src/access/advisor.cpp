#include "access/advisor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analyze/passes.hpp"
#include "core/congestion.hpp"
#include "core/factory.hpp"

namespace rapsim::access {

namespace {

/// Mean and worst warp congestion of the trace under one concrete map.
std::pair<double, double> score_map(const std::vector<WarpTrace>& traces,
                                    const core::AddressMap& map) {
  double sum = 0.0;
  std::uint32_t worst = 0;
  for (const auto& warp : traces) {
    const std::uint32_t c = core::congestion_value(warp, map);
    sum += c;
    worst = std::max(worst, c);
  }
  return {sum / static_cast<double>(traces.size()),
          static_cast<double>(worst)};
}

}  // namespace

Advice evaluate_schemes(const std::vector<WarpTrace>& traces,
                        std::uint32_t width, std::uint64_t rows,
                        std::uint32_t draws, std::uint64_t seed) {
  if (traces.empty()) {
    throw std::invalid_argument("evaluate_schemes: no traces given");
  }
  for (const auto& warp : traces) {
    if (warp.empty() || warp.size() > width) {
      throw std::invalid_argument(
          "evaluate_schemes: each warp trace needs 1..width addresses");
    }
    for (const std::uint64_t a : warp) {
      if (a >= rows * width) {
        throw std::invalid_argument(
            "evaluate_schemes: address outside rows x width array");
      }
    }
  }

  Advice advice;
  const core::Scheme order[] = {core::Scheme::kRaw, core::Scheme::kPad,
                                core::Scheme::kRas, core::Scheme::kRap};
  for (const core::Scheme scheme : order) {
    SchemeScore score;
    score.scheme = scheme;
    const bool randomized =
        scheme == core::Scheme::kRas || scheme == core::Scheme::kRap;
    const std::uint32_t n = randomized ? std::max(draws, 1u) : 1u;
    for (std::uint32_t d = 0; d < n; ++d) {
      const auto map = core::make_matrix_map(scheme, width, rows,
                                             seed * 2654435761ull + d);
      const auto [mean, worst] = score_map(traces, *map);
      score.mean_congestion += mean;
      score.max_congestion += worst;
    }
    score.mean_congestion /= n;
    score.max_congestion /= n;
    score.random_words =
        core::make_matrix_map(scheme, width, rows, seed)->random_words();
    advice.scores.push_back(score);
    advice.certificates.push_back(
        analyze::prove_worst_warp(traces, width, rows * width, scheme));
  }

  // Recommendation policy: prefer the cheapest scheme whose *worst* warp
  // stays within 25% of the best observed worst-case; tie-break by fewer
  // random words (RAW < PAD < RAP < RAS in cost). The deterministic
  // schemes are scored on this exact trace, so picking them is only safe
  // when the trace is the production access pattern — the rationale says
  // so when RAP is within noise of the winner.
  double best_worst = advice.scores[0].max_congestion;
  for (const auto& s : advice.scores) {
    best_worst = std::min(best_worst, s.max_congestion);
  }
  const double tolerance = best_worst * 1.25 + 0.01;
  for (const std::size_t idx : {0u, 1u, 3u, 2u}) {  // RAW, PAD, RAP, RAS
    if (advice.scores[idx].max_congestion <= tolerance) {
      advice.recommended = advice.scores[idx].scheme;
      break;
    }
  }

  std::ostringstream why;
  why << "worst-warp congestion: ";
  for (const auto& s : advice.scores) {
    why << core::scheme_name(s.scheme) << "=" << s.max_congestion << " ";
  }
  why << "-> " << core::scheme_name(advice.recommended);
  const auto& rap = advice.scores[3];
  if (advice.recommended != core::Scheme::kRap &&
      rap.max_congestion <= tolerance) {
    why << " (RAP is equivalent and additionally robust to access "
           "patterns not in this trace)";
  }
  // Cite the analyzer's proof rules: an exact certificate pins the worst
  // warp for every draw, an expected-upper one bounds each warp's mean.
  why << "; static proof:";
  for (const auto& cert : advice.certificates) {
    why << " " << core::scheme_name(cert.scheme)
        << (cert.exact() ? "=" : "<=") << cert.bound << " [" << cert.rule
        << "]";
  }
  advice.rationale = why.str();
  return advice;
}

Advice evaluate_kernel(const analyze::KernelDesc& kernel,
                       std::uint32_t draws, std::uint64_t seed) {
  Advice advice = evaluate_schemes(analyze::enumerate_warp_traces(kernel),
                                   kernel.width, kernel.rows, draws, seed);

  // Upgrade the certificates from per-trace to whole-kernel: the symbolic
  // passes close over every binding, so the cited bound holds for warps
  // the materialized sample never produced.
  std::ostringstream why;
  why << advice.rationale << "; whole-kernel (all "
      << kernel.binding_count() << " bindings):";
  for (std::size_t idx = 0; idx < advice.certificates.size(); ++idx) {
    const analyze::KernelAnalysis analysis =
        analyze::analyze_kernel(kernel, advice.certificates[idx].scheme);
    advice.certificates[idx] = analysis.worst;
    why << " " << core::scheme_name(analysis.scheme)
        << (analysis.worst.exact() ? "=" : "<=") << analysis.worst.bound
        << " [" << analysis.worst.rule << "]";
  }
  advice.rationale = why.str();
  return advice;
}

}  // namespace rapsim::access
