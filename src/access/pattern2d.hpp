// Fundamental memory-access operations on a w x w matrix (Section III).
//
// Each operation assigns one matrix element to each of the w threads of a
// warp; the paper's full operations use w warps (p = w^2 threads) but all
// congestion statistics are per-warp, so the generators here produce the
// logical addresses touched by one warp:
//
//   contiguous  — warp `i` reads row i:          thread t -> (i, t)
//   stride      — warp `j` reads column j:       thread t -> (t, j)
//   diagonal    — warp `d` reads a diagonal:     thread t -> (t, (t+d) mod w)
//   random      — every thread picks a uniformly random cell
//   malicious   — scheme-aware adversarial placement (adversary.hpp)
//
// `warp_index` selects the row / column / diagonal; for square matrices it
// ranges over [0, w).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapping2d.hpp"
#include "util/rng.hpp"

namespace rapsim::access {

enum class Pattern2d { kContiguous, kStride, kDiagonal, kRandom, kMalicious };

[[nodiscard]] const char* pattern2d_name(Pattern2d pattern) noexcept;

/// Logical addresses accessed by one warp of map.width() threads under
/// `pattern`. `rng` is consumed only by kRandom (and by the randomized
/// part of kMalicious); deterministic patterns ignore it.
[[nodiscard]] std::vector<std::uint64_t> warp_addresses_2d(
    Pattern2d pattern, const core::MatrixMap& map, std::uint32_t warp_index,
    util::Pcg32& rng);

/// All Pattern2d values in the order of the paper's Table II rows
/// (contiguous, stride, diagonal, random).
[[nodiscard]] const std::vector<Pattern2d>& table2_patterns();

/// Flat power-of-stride access: thread t touches logical address
/// (base + t * stride) mod map.size() — the FFT-butterfly / multi-word
/// struct pattern that causes 2^s-way bank conflicts under RAW when
/// stride is a multiple of 2^s. Used by the power-stride ablation bench.
[[nodiscard]] std::vector<std::uint64_t> strided_flat_addresses(
    const core::AddressMap& map, std::uint64_t stride, std::uint64_t base);

}  // namespace rapsim::access
