#include "access/pattern4d.hpp"

#include "access/adversary.hpp"

namespace rapsim::access {

const char* pattern4d_name(Pattern4d pattern) noexcept {
  switch (pattern) {
    case Pattern4d::kContiguous: return "Contiguous";
    case Pattern4d::kStride1: return "Stride1";
    case Pattern4d::kStride2: return "Stride2";
    case Pattern4d::kStride3: return "Stride3";
    case Pattern4d::kRandom: return "Random";
    case Pattern4d::kMalicious: return "Malicious";
  }
  return "?";
}

std::vector<std::uint64_t> warp_addresses_4d(Pattern4d pattern,
                                             const core::Tensor4dMap& map,
                                             util::Pcg32& rng) {
  const std::uint32_t w = map.width();
  std::vector<std::uint64_t> addrs;
  addrs.reserve(w);

  core::Index4d cell{rng.bounded(w), rng.bounded(w), rng.bounded(w),
                     rng.bounded(w)};
  switch (pattern) {
    case Pattern4d::kContiguous:
      for (std::uint32_t t = 0; t < w; ++t) {
        cell.l = t;
        addrs.push_back(map.index(cell));
      }
      break;
    case Pattern4d::kStride1:
      for (std::uint32_t t = 0; t < w; ++t) {
        cell.k = t;
        addrs.push_back(map.index(cell));
      }
      break;
    case Pattern4d::kStride2:
      for (std::uint32_t t = 0; t < w; ++t) {
        cell.j = t;
        addrs.push_back(map.index(cell));
      }
      break;
    case Pattern4d::kStride3:
      for (std::uint32_t t = 0; t < w; ++t) {
        cell.i = t;
        addrs.push_back(map.index(cell));
      }
      break;
    case Pattern4d::kRandom:
      for (std::uint32_t t = 0; t < w; ++t) {
        addrs.push_back(map.index({rng.bounded(w), rng.bounded(w),
                                   rng.bounded(w), rng.bounded(w)}));
      }
      break;
    case Pattern4d::kMalicious:
      return malicious_addresses_4d(map, rng);
  }
  return addrs;
}

const std::vector<Pattern4d>& table4_patterns() {
  static const std::vector<Pattern4d> kPatterns = {
      Pattern4d::kContiguous, Pattern4d::kStride1, Pattern4d::kStride2,
      Pattern4d::kStride3,    Pattern4d::kRandom,  Pattern4d::kMalicious};
  return kPatterns;
}

}  // namespace rapsim::access
