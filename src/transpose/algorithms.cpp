#include "transpose/algorithms.hpp"

namespace rapsim::transpose {

const char* algorithm_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kCrsw: return "CRSW";
    case Algorithm::kSrcw: return "SRCW";
    case Algorithm::kDrdw: return "DRDW";
  }
  return "?";
}

dmm::Kernel build_kernel(Algorithm algorithm, const MatrixPair& layout) {
  const std::uint32_t w = layout.width;
  dmm::Kernel kernel;
  kernel.num_threads = w * w;

  dmm::Instruction reads(kernel.num_threads);
  dmm::Instruction writes(kernel.num_threads);

  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      const std::uint32_t t = i * w + j;
      switch (algorithm) {
        case Algorithm::kCrsw:
          reads[t] = dmm::ThreadOp::load(layout.a_index(i, j));
          writes[t] = dmm::ThreadOp::store(layout.b_index(j, i));
          break;
        case Algorithm::kSrcw:
          reads[t] = dmm::ThreadOp::load(layout.a_index(j, i));
          writes[t] = dmm::ThreadOp::store(layout.b_index(i, j));
          break;
        case Algorithm::kDrdw: {
          const std::uint32_t c = (i + j) % w;
          reads[t] = dmm::ThreadOp::load(layout.a_index(j, c));
          writes[t] = dmm::ThreadOp::store(layout.b_index(c, j));
          break;
        }
      }
    }
  }

  kernel.push(std::move(reads));
  kernel.push(std::move(writes));
  return kernel;
}

}  // namespace rapsim::transpose
