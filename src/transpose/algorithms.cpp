#include "transpose/algorithms.hpp"

namespace rapsim::transpose {

const char* algorithm_name(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kCrsw: return "CRSW";
    case Algorithm::kSrcw: return "SRCW";
    case Algorithm::kDrdw: return "DRDW";
  }
  return "?";
}

dmm::Kernel build_kernel(Algorithm algorithm, const MatrixPair& layout) {
  const std::uint32_t w = layout.width;
  dmm::Kernel kernel;
  kernel.num_threads = w * w;

  dmm::Instruction reads(kernel.num_threads);
  dmm::Instruction writes(kernel.num_threads);

  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      const std::uint32_t t = i * w + j;
      switch (algorithm) {
        case Algorithm::kCrsw:
          reads[t] = dmm::ThreadOp::load(layout.a_index(i, j));
          writes[t] = dmm::ThreadOp::store(layout.b_index(j, i));
          break;
        case Algorithm::kSrcw:
          reads[t] = dmm::ThreadOp::load(layout.a_index(j, i));
          writes[t] = dmm::ThreadOp::store(layout.b_index(i, j));
          break;
        case Algorithm::kDrdw: {
          const std::uint32_t c = (i + j) % w;
          reads[t] = dmm::ThreadOp::load(layout.a_index(j, c));
          writes[t] = dmm::ThreadOp::store(layout.b_index(c, j));
          break;
        }
      }
    }
  }

  kernel.push(std::move(reads));
  kernel.push(std::move(writes));
  return kernel;
}

analyze::KernelDesc describe_kernel(Algorithm algorithm,
                                    const MatrixPair& layout) {
  using analyze::AccessDir;
  using analyze::AccessSite;
  using analyze::IndexForm;
  const std::int64_t w = layout.width;

  analyze::KernelDesc kernel;
  kernel.name = std::string("transpose-") + algorithm_name(algorithm);
  kernel.width = layout.width;
  kernel.rows = layout.rows();
  kernel.vars = {{"u", layout.width}};  // warp index = thread row i

  AccessSite read;
  read.name = "read A";
  read.dir = AccessDir::kLoad;
  read.warp = "u";
  AccessSite write;
  write.name = "write B";
  write.dir = AccessDir::kStore;
  write.warp = "u";

  switch (algorithm) {
    case Algorithm::kCrsw:
      // A[i][j] = u*w + lane; B[j][i] = (w + lane)*w + u.
      read.flat = {0, 1, {w}};
      write.flat = {w * w, w, {1}};
      break;
    case Algorithm::kSrcw:
      // A[j][i] = lane*w + u; B[i][j] = (w + u)*w + lane.
      read.flat = {0, w, {1}};
      write.flat = {w * w, 1, {w}};
      break;
    case Algorithm::kDrdw:
      // A[j][(i+j)%w]: row = lane, col wraps; B[(i+j)%w][j]: row wraps
      // mod w and lands in the B half (row_base = w).
      read.form = IndexForm::kRowCol;
      read.row = {0, 1, {0}};
      read.col = {0, 1, {1}};
      write.form = IndexForm::kRowCol;
      write.row = {0, 1, {1}};
      write.row_mod = layout.width;
      write.row_base = w;
      write.col = {0, 1, {0}};
      break;
  }
  kernel.sites = {std::move(read), std::move(write)};
  return kernel;
}

}  // namespace rapsim::transpose
