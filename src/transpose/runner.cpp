#include "transpose/runner.hpp"

#include "core/factory.hpp"
#include "dmm/trace.hpp"
#include "telemetry/bank_profile.hpp"

namespace rapsim::transpose {

namespace {

/// Distinguishable A[i][j] value: no two cells share it, and 0 (the
/// initial memory fill) never appears, so a dropped store is detectable.
std::uint64_t cell_value(std::uint32_t w, std::uint64_t i, std::uint64_t j) {
  return i * w + j + 1;
}

PhaseCongestion phase_congestion(const dmm::Trace& trace,
                                 std::uint32_t instruction) {
  const telemetry::PhaseStats stats = telemetry::phase_stats(trace, instruction);
  return {stats.avg_congestion, stats.max_congestion};
}

}  // namespace

TransposeReport run_transpose_on(Algorithm algorithm, dmm::Dmm& machine,
                                 const MatrixPair& layout, dmm::Trace* trace) {
  const std::uint32_t w = layout.width;

  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      machine.store(layout.a_index(i, j), cell_value(w, i, j));
      machine.store(layout.b_index(i, j), 0);
    }
  }

  dmm::Trace local_trace;
  dmm::Trace* t = trace ? trace : &local_trace;

  TransposeReport report;
  report.stats = machine.run(build_kernel(algorithm, layout), t);
  report.read = phase_congestion(*t, 0);
  report.write = phase_congestion(*t, 1);

  report.correct = true;
  for (std::uint32_t i = 0; i < w && report.correct; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      if (machine.load(layout.b_index(i, j)) != cell_value(w, j, i)) {
        report.correct = false;
        break;
      }
    }
  }
  return report;
}

TransposeReport run_transpose(Algorithm algorithm, core::Scheme scheme,
                              std::uint32_t width, std::uint32_t latency,
                              std::uint64_t seed) {
  const MatrixPair layout{width};
  const auto map =
      core::make_matrix_map(scheme, width, layout.rows(), seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency, dmm::MachineKind::kDmm},
                   *map);
  return run_transpose_on(algorithm, machine, layout);
}

}  // namespace rapsim::transpose
