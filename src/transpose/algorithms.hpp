// The paper's three matrix-transpose algorithms (Section III, Figure 5).
//
// A w x w source matrix A and destination B live in the same banked
// memory; thread (i, j) of a p = w^2-thread kernel copies one element:
//
//   CRSW  (Contiguous Read, Stride Write):  B[j][i]            <- A[i][j]
//   SRCW  (Stride Read, Contiguous Write):  B[i][j]            <- A[j][i]
//   DRDW  (Diagonal Read, Diagonal Write):  B[(i+j)%w][j]      <- A[j][(i+j)%w]
//
// Under the RAW mapping, CRSW's write and SRCW's read are stride accesses
// with congestion w; DRDW touches one cell per row on both sides
// (congestion 1) — it is the hand-optimized algorithm a CUDA expert would
// write. The RAP mapping makes the naive CRSW/SRCW conflict-free instead,
// which is the paper's headline result (Table III).
//
// Each algorithm compiles to a two-instruction DMM kernel (SIMD load, then
// SIMD store through the per-thread accumulator register).

#pragma once

#include <cstdint>
#include <string>

#include "analyze/kernelir.hpp"
#include "dmm/kernel.hpp"

namespace rapsim::transpose {

enum class Algorithm { kCrsw, kSrcw, kDrdw };

[[nodiscard]] const char* algorithm_name(Algorithm algorithm) noexcept;

/// Layout of the two matrices inside the DMM memory: A occupies rows
/// [0, w) and B rows [w, 2w) of a 2w x w logical matrix, mirroring the
/// paper's `__shared__ double a[32][32], b[32][32]`.
struct MatrixPair {
  std::uint32_t width = 32;

  [[nodiscard]] std::uint64_t a_index(std::uint64_t i,
                                      std::uint64_t j) const noexcept {
    return i * width + j;
  }
  [[nodiscard]] std::uint64_t b_index(std::uint64_t i,
                                      std::uint64_t j) const noexcept {
    return (static_cast<std::uint64_t>(width) + i) * width + j;
  }
  /// Rows the backing MatrixMap must have (A and B stacked).
  [[nodiscard]] std::uint64_t rows() const noexcept { return 2ull * width; }
};

/// Build the two-instruction transpose kernel for `algorithm` on `layout`.
[[nodiscard]] dmm::Kernel build_kernel(Algorithm algorithm,
                                       const MatrixPair& layout);

/// Loop-nest IR description of the same kernel for the symbolic passes:
/// warp u = thread row i, lane = thread column j. The differential test
/// checks the IR's certified worst warp against the simulated kernel.
[[nodiscard]] analyze::KernelDesc describe_kernel(Algorithm algorithm,
                                                  const MatrixPair& layout);

}  // namespace rapsim::transpose
