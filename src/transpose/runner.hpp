// Transpose execution + verification on the DMM.
//
// run_transpose() stands up a DMM over the requested mapping scheme, fills
// A with a distinguishable pattern, executes the algorithm's kernel, checks
// B == A^T element-by-element, and splits the trace into read-phase and
// write-phase congestion statistics (the two "congestion" columns of the
// paper's Table III).

#pragma once

#include <cstdint>
#include <memory>

#include "core/mapping.hpp"
#include "dmm/machine.hpp"
#include "transpose/algorithms.hpp"

namespace rapsim::transpose {

struct PhaseCongestion {
  double avg = 0.0;
  std::uint32_t max = 0;
};

struct TransposeReport {
  bool correct = false;           // B == A^T after the run
  PhaseCongestion read;           // congestion of the load instruction
  PhaseCongestion write;          // congestion of the store instruction
  dmm::RunStats stats;            // machine-level timing
};

/// Run `algorithm` for a width x width matrix under `scheme` with the
/// mapping drawn from `seed`. `latency` is the DMM pipeline latency l.
[[nodiscard]] TransposeReport run_transpose(Algorithm algorithm,
                                            core::Scheme scheme,
                                            std::uint32_t width,
                                            std::uint32_t latency,
                                            std::uint64_t seed);

/// Same, against a caller-provided machine + layout (the machine's map
/// must span layout.rows() x width). Used by tests that need to inspect
/// memory afterwards.
[[nodiscard]] TransposeReport run_transpose_on(Algorithm algorithm,
                                               dmm::Dmm& machine,
                                               const MatrixPair& layout,
                                               dmm::Trace* trace = nullptr);

}  // namespace rapsim::transpose
