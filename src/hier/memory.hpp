// The L1/L2/DRAM path of the hierarchy simulator.
//
// Model (deliberately small, fully deterministic):
//
//   * The kernel's logical address space is backed by global memory in
//     lines of `line_words` words. Every dispatched warp-instruction
//     must have its touched lines present in the SM's L1 before its data
//     can arrive; a line that is absent is filled through L2 and (on an
//     L2 miss) DRAM. The warp's completion waits for its slowest fill —
//     the shared-memory pipeline itself is NOT blocked, which is exactly
//     the latency-tolerance mechanism warp scheduling exploits.
//   * L1 is per-SM, L2 is shared by all SMs; both are fully-associative
//     LRU over `lines` cache lines (0 lines = no cache at that level:
//     every access misses through).
//   * L2 and DRAM are bandwidth-limited servers: a fill occupies the
//     level's port for `service` cycles, so concurrent fills from many
//     SMs queue behind one another (next_free bookkeeping). service = 0
//     means unlimited bandwidth at that level.
//   * Each SM has `mshrs` miss-status-holding registers: at most that
//     many fills in flight; a miss arriving with all MSHRs busy waits
//     for the earliest outstanding fill to retire (counted as MSHR stall
//     cycles). mshrs = 0 means unlimited.
//
// PathParams::zero() disables the path entirely (line_words = 0): no
// line is ever looked up and every IssueResult::extra_latency is 0 —
// the configuration under which a 1-SM hierarchy reproduces the Dmm
// bit for bit (the differential pin in tests/hier_differential_test.cpp).
//
// Determinism: the multi-SM driver steps SMs in nondecreasing clock
// order, so fills arrive at the shared servers with nondecreasing issue
// times and the queue bookkeeping below never needs reordering.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rapsim::hier {

/// One cache level: capacity (lines; 0 = bypass) and traversal latency.
struct CacheParams {
  std::uint64_t lines = 0;
  std::uint32_t latency = 0;
};

struct PathParams {
  std::uint32_t line_words = 0;  // words per line; 0 disables the path
  CacheParams l1;                // per-SM
  CacheParams l2;                // shared across SMs
  std::uint32_t l2_service = 0;   // port cycles per fill through L2
  std::uint32_t dram_latency = 0;
  std::uint32_t dram_service = 0;  // port cycles per fill through DRAM
  std::uint32_t mshrs = 0;         // per-SM outstanding-fill limit

  [[nodiscard]] bool enabled() const noexcept { return line_words > 0; }

  /// The differential-pin configuration: no path at all.
  [[nodiscard]] static PathParams zero() noexcept { return {}; }

  /// GPU-flavoured defaults: 32-word lines, 64-line L1 (2 KiB of words)
  /// at 4 cycles, 512-line shared L2 at 16 cycles with a 2-cycle port,
  /// 200-cycle DRAM with a 4-cycle port, 8 MSHRs per SM.
  [[nodiscard]] static PathParams defaults() noexcept {
    PathParams p;
    p.line_words = 32;
    p.l1 = {64, 4};
    p.l2 = {512, 16};
    p.l2_service = 2;
    p.dram_latency = 200;
    p.dram_service = 4;
    p.mshrs = 8;
    return p;
  }
};

/// Fully-associative LRU set of cache lines. Capacity 0 = bypass (every
/// access misses, nothing is retained).
class LruCache {
 public:
  explicit LruCache(std::uint64_t lines) : capacity_(lines) {}

  /// True on hit. A miss inserts the line (allocate on fill), evicting
  /// the least recently used one when full.
  bool access(std::uint64_t line);

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return stamp_.size(); }

 private:
  std::uint64_t capacity_;
  std::uint64_t tick_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> stamp_;  // line -> recency
};

/// Per-fill outcome reported by the shared path.
struct FillResult {
  std::uint64_t done = 0;  // cycle at which the line reaches the SM
  bool l2_hit = false;
};

/// The shared half of the path: the L2 cache and the L2/DRAM ports.
/// One instance is shared by every SM of a HierSim.
class SharedPath {
 public:
  explicit SharedPath(const PathParams& params) : params_(params), l2_(params.l2.lines) {}

  /// Fill `line` for a request issued at `issue`. The driver steps SMs
  /// in nondecreasing clock order, so arrivals are near-sorted; a fill
  /// delayed past another SM's clock (MSHR wait) simply queues behind
  /// whatever already claimed the port — deterministic either way.
  FillResult fill(std::uint64_t line, std::uint64_t issue);

  [[nodiscard]] std::uint64_t l2_hits() const noexcept { return l2_hits_; }
  [[nodiscard]] std::uint64_t l2_misses() const noexcept { return l2_misses_; }
  [[nodiscard]] std::uint64_t queue_cycles() const noexcept {
    return queue_cycles_;  // cycles fills spent waiting for a busy port
  }

 private:
  PathParams params_;
  LruCache l2_;
  std::uint64_t l2_next_free_ = 0;
  std::uint64_t dram_next_free_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t l2_misses_ = 0;
  std::uint64_t queue_cycles_ = 0;
};

/// The per-SM half: L1 lookup + MSHR tracking. Converts the set of lines
/// one warp-instruction touches into the extra completion latency the
/// event core charges.
class SmMemoryPath {
 public:
  SmMemoryPath(const PathParams& params, SharedPath* shared)
      : params_(params), shared_(shared), l1_(params.l1.lines) {}

  /// Account one warp-instruction's line set, issued at cycle `issue`
  /// with base completion `base` (start + stages + latency - 1). Returns
  /// the extra latency beyond `base` until the slowest line arrives.
  /// `lines` may contain duplicates; they are deduplicated in place.
  std::uint64_t access(std::vector<std::uint64_t>& lines,
                       std::uint64_t issue, std::uint64_t base);

  [[nodiscard]] std::uint64_t l1_hits() const noexcept { return l1_hits_; }
  [[nodiscard]] std::uint64_t l1_misses() const noexcept { return l1_misses_; }
  [[nodiscard]] std::uint64_t l2_hits() const noexcept { return l2_hits_; }
  [[nodiscard]] std::uint64_t dram_fills() const noexcept {
    return dram_fills_;
  }
  [[nodiscard]] std::uint64_t mshr_stall_cycles() const noexcept {
    return mshr_stall_cycles_;
  }

 private:
  PathParams params_;
  SharedPath* shared_;  // not owned; shared across SMs
  LruCache l1_;
  std::vector<std::uint64_t> inflight_;  // completion cycles of open fills
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l1_misses_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t dram_fills_ = 0;
  std::uint64_t mshr_stall_cycles_ = 0;
};

}  // namespace rapsim::hier
