#include "hier/hier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/run_telemetry.hpp"

namespace rapsim::hier {

namespace {

[[nodiscard]] bool is_memory_op(dmm::OpKind kind) noexcept {
  switch (kind) {
    case dmm::OpKind::kLoad:
    case dmm::OpKind::kLoadAdd:
    case dmm::OpKind::kLoadMulAdd:
    case dmm::OpKind::kStore:
    case dmm::OpKind::kStoreImm:
    case dmm::OpKind::kAtomicAdd:
      return true;
    default:
      return false;
  }
}

/// KernelWarpSource plus the global-memory path: each dispatched
/// warp-instruction's touched lines must reach the SM's L1, and the
/// slowest fill extends the warp's completion (IssueResult::extra_latency)
/// without blocking the shared-memory pipeline.
class PathWarpSource final : public WarpSource {
 public:
  PathWarpSource(dmm::KernelWarpSource& inner, const dmm::Kernel& kernel,
                 SmMemoryPath& path, const PathParams& params,
                 const EventCore& core, std::uint32_t width,
                 std::uint32_t latency)
      : inner_(&inner),
        kernel_(&kernel),
        path_(&path),
        params_(&params),
        core_(&core),
        width_(width),
        latency_(latency) {}

  [[nodiscard]] bool done(std::uint32_t warp) const override {
    return inner_->done(warp);
  }
  [[nodiscard]] bool at_barrier(std::uint32_t warp) const override {
    return inner_->at_barrier(warp);
  }
  [[nodiscard]] std::size_t pc(std::uint32_t warp) const override {
    return inner_->pc(warp);
  }

  [[nodiscard]] IssueResult issue(std::uint32_t warp) override {
    const std::size_t pc = inner_->pc(warp);
    IssueResult result = inner_->issue(warp);
    if (result.stages == 0 || !params_->enabled()) return result;
    // Collect the lines this warp-instruction touches (logical address
    // space: the backing store is scheme-independent; only the banked
    // shared memory sees the permuted layout).
    lines_.clear();
    const dmm::Instruction& instr = kernel_->instructions[pc];
    const std::uint32_t begin = warp * width_;
    const std::uint32_t end =
        std::min(begin + width_, kernel_->num_threads);
    for (std::uint32_t t = begin; t < end; ++t) {
      if (is_memory_op(instr[t].kind)) {
        lines_.push_back(instr[t].logical / params_->line_words);
      }
    }
    // At issue time the core's clock IS the dispatch slot (candidates
    // are selected with ready <= now and issue precedes the clock
    // advance), so `now` is this instruction's start.
    const std::uint64_t start = core_->now();
    const std::uint64_t base = start + result.stages + latency_ - 1;
    result.extra_latency = path_->access(lines_, start, base);
    mem_wait_cycles_ += result.extra_latency;
    return result;
  }

  void advance(std::uint32_t warp) override { inner_->advance(warp); }

  [[nodiscard]] std::uint64_t mem_wait_cycles() const noexcept {
    return mem_wait_cycles_;
  }

 private:
  dmm::KernelWarpSource* inner_;
  const dmm::Kernel* kernel_;
  SmMemoryPath* path_;
  const PathParams* params_;
  const EventCore* core_;
  std::uint32_t width_;
  std::uint32_t latency_;
  std::vector<std::uint64_t> lines_;  // scratch, reused per issue
  std::uint64_t mem_wait_cycles_ = 0;
};

/// Per-SM hooks: SmStats accumulation, the machine's barrier side
/// effects, and — when the SM's Dmm has a telemetry sink installed — the
/// same per-dispatch feed Dmm::run performs.
class SmHooks final : public CoreHooks {
 public:
  SmHooks(dmm::Dmm& machine, SmStats& stats) : machine_(machine), stats_(stats) {}

  void on_idle(std::uint64_t slots) override {
    stats_.idle_slots += slots;
    if (auto* t = machine_.telemetry()) t->pipeline_idle_slots += slots;
  }

  void on_dispatch(const DispatchEvent& event) override {
    stats_.warp_stall_slots += event.stall_slots;
    ++stats_.warp_dispatches[event.warp];
    if (auto* t = machine_.telemetry()) {
      t->congestion.add(event.stages);
      ++t->dispatches;
      t->total_slots += event.stages;
      t->warp_stall_slots += event.stall_slots;
    }
  }

  void on_barrier_release(std::size_t pc) override {
    machine_.finish_barrier(static_cast<std::uint32_t>(pc));
  }

 private:
  dmm::Dmm& machine_;
  SmStats& stats_;
};

}  // namespace

void HierConfig::validate() const {
  if (sms == 0) throw std::invalid_argument("HierConfig: sms must be > 0");
  if (width == 0) throw std::invalid_argument("HierConfig: width must be > 0");
  if (shared_latency == 0) {
    throw std::invalid_argument("HierConfig: shared_latency must be > 0");
  }
}

HierSim::HierSim(HierConfig config, const core::AddressMap& map)
    : config_(std::move(config)), map_(&map) {
  config_.validate();
  (void)make_scheduler(config_.scheduler);  // fail fast on unknown names
  dmm::DmmConfig dmm_config;
  dmm_config.width = config_.width;
  dmm_config.latency = config_.shared_latency;
  machines_.reserve(config_.sms);
  for (std::uint32_t sm = 0; sm < config_.sms; ++sm) {
    machines_.push_back(std::make_unique<dmm::Dmm>(dmm_config, *map_));
  }
}

HierResult HierSim::run(const dmm::Kernel& kernel, core::Scheme scheme,
                        const gpu::SmTimingParams& timing) {
  HierResult result;
  result.sms.resize(machines_.size());
  if (kernel.num_threads == 0) return result;

  SharedPath shared(config_.path);

  // Per-SM execution state. Built behind stable addresses (unique_ptr)
  // because the source/hooks hold pointers into their own SM's parts.
  struct SmRun {
    dmm::KernelWarpSource inner;
    SmMemoryPath path;
    EventCore core;
    PathWarpSource source;
    std::unique_ptr<Scheduler> scheduler;
    SmHooks hooks;
    bool done = false;

    SmRun(dmm::Dmm& machine, const dmm::Kernel& kernel,
          const HierConfig& config, SharedPath& shared, SmStats& stats)
        : inner(machine, kernel),
          path(config.path, &shared),
          core(inner.num_warps(), config.shared_latency),
          source(inner, kernel, path, config.path, core, config.width,
                 config.shared_latency),
          scheduler(make_scheduler(config.scheduler)),
          hooks(machine, stats) {
      scheduler->reset(inner.num_warps());
      stats.warp_dispatches.assign(inner.num_warps(), 0);
    }
  };

  std::vector<std::unique_ptr<SmRun>> runs;
  runs.reserve(machines_.size());
  for (std::uint32_t sm = 0; sm < machines_.size(); ++sm) {
    result.sms[sm].sm = sm;
    machines_[sm]->begin_run(kernel);
    runs.push_back(std::make_unique<SmRun>(*machines_[sm], kernel, config_,
                                           shared, result.sms[sm]));
  }

  // Deterministic interleaving: always step the unfinished SM with the
  // smallest clock (ties to the lowest id), so requests reach the shared
  // L2/DRAM ports in a reproducible order.
  for (;;) {
    std::size_t next = runs.size();
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t sm = 0; sm < runs.size(); ++sm) {
      if (runs[sm]->done) continue;
      if (runs[sm]->core.now() < best) {
        best = runs[sm]->core.now();
        next = sm;
      }
    }
    if (next == runs.size()) break;
    SmRun& r = *runs[next];
    if (!r.core.step(r.source, *r.scheduler, &r.hooks)) r.done = true;
  }

  double congestion_sum = 0.0;
  for (std::size_t sm = 0; sm < runs.size(); ++sm) {
    SmRun& r = *runs[sm];
    SmStats& stats = result.sms[sm];
    const DispatchTotals& totals = r.core.totals();
    stats.run.time = totals.last_completion;
    stats.run.total_stages = totals.total_stages;
    stats.run.dispatches = totals.dispatches;
    stats.run.max_congestion = totals.max_congestion;
    stats.run.avg_congestion = totals.avg_congestion();
    stats.l1_hits = r.path.l1_hits();
    stats.l1_misses = r.path.l1_misses();
    stats.l2_hits = r.path.l2_hits();
    stats.dram_fills = r.path.dram_fills();
    stats.mshr_stall_cycles = r.path.mshr_stall_cycles();
    stats.mem_wait_cycles = r.source.mem_wait_cycles();
    stats.est_ns = gpu::estimate_time_ns(totals.total_stages,
                                         totals.dispatches, scheme, timing);

    result.cycles = std::max(result.cycles, stats.run.time);
    result.dispatches += stats.run.dispatches;
    result.total_stages += stats.run.total_stages;
    result.max_congestion =
        std::max(result.max_congestion, stats.run.max_congestion);
    congestion_sum += totals.congestion_sum;
    result.est_ns = std::max(result.est_ns, stats.est_ns);
  }
  result.avg_congestion =
      result.dispatches != 0
          ? congestion_sum / static_cast<double>(result.dispatches)
          : 0.0;
  result.l2_hits = shared.l2_hits();
  result.l2_misses = shared.l2_misses();
  result.l2_queue_cycles = shared.queue_cycles();
  return result;
}

void flush_metrics(const HierResult& result,
                   telemetry::MetricsRegistry& registry,
                   const telemetry::Labels& labels) {
  registry.counter("hier.cycles", labels).set(result.cycles);
  registry.counter("hier.dispatches", labels).set(result.dispatches);
  registry.counter("hier.total_stages", labels).set(result.total_stages);
  registry.counter("hier.max_congestion", labels).set(result.max_congestion);
  registry.counter("hier.l2_hits", labels).set(result.l2_hits);
  registry.counter("hier.l2_misses", labels).set(result.l2_misses);
  registry.counter("hier.l2_queue_cycles", labels)
      .set(result.l2_queue_cycles);
  registry.gauge("hier.avg_congestion", labels).set(result.avg_congestion);
  registry.gauge("hier.est_ns", labels).set(result.est_ns);

  for (const SmStats& sm : result.sms) {
    telemetry::Labels sm_labels = labels;
    sm_labels["sm"] = std::to_string(sm.sm);
    registry.counter("hier.sm_cycles", sm_labels).set(sm.run.time);
    registry.counter("hier.sm_dispatches", sm_labels).set(sm.run.dispatches);
    registry.counter("hier.l1_hits", sm_labels).set(sm.l1_hits);
    registry.counter("hier.l1_misses", sm_labels).set(sm.l1_misses);
    registry.counter("hier.sm_l2_hits", sm_labels).set(sm.l2_hits);
    registry.counter("hier.dram_fills", sm_labels).set(sm.dram_fills);
    registry.counter("hier.mshr_stall_cycles", sm_labels)
        .set(sm.mshr_stall_cycles);
    registry.counter("hier.mem_wait_cycles", sm_labels)
        .set(sm.mem_wait_cycles);
    registry.counter("hier.idle_slots", sm_labels).set(sm.idle_slots);
    registry.counter("hier.warp_stall_slots", sm_labels)
        .set(sm.warp_stall_slots);
    auto& dist = registry.distribution("hier.warp_dispatches", sm_labels);
    for (const std::uint64_t count : sm.warp_dispatches) {
      dist.observe(count);
    }
  }
}

}  // namespace rapsim::hier
