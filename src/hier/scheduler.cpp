#include "hier/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace rapsim::hier {

// --- RoundRobinScheduler ---------------------------------------------------

void RoundRobinScheduler::reset(std::uint32_t num_warps) {
  num_warps_ = num_warps;
  rr_ = 0;
}

std::uint32_t RoundRobinScheduler::pick(const SchedulerView& view) {
  // First candidate in cyclic order starting at rr_ — identical to the
  // historical Dmm scan `(rr + k) % num_warps` choosing the first warp
  // whose ready time has arrived.
  std::uint32_t best = view.candidates.front();
  std::uint32_t best_key = num_warps_;
  for (const std::uint32_t warp : view.candidates) {
    const std::uint32_t key = (warp + num_warps_ - rr_) % num_warps_;
    if (key < best_key) {
      best_key = key;
      best = warp;
    }
  }
  return best;
}

void RoundRobinScheduler::on_dispatch(std::uint32_t warp) {
  rr_ = (warp + 1) % num_warps_;
}

// --- GreedyThenOldestScheduler ---------------------------------------------

void GreedyThenOldestScheduler::reset(std::uint32_t num_warps) {
  (void)num_warps;
  has_last_ = false;
  last_ = 0;
}

std::uint32_t GreedyThenOldestScheduler::pick(const SchedulerView& view) {
  if (has_last_ &&
      std::find(view.candidates.begin(), view.candidates.end(), last_) !=
          view.candidates.end()) {
    return last_;  // greedy: stick with the running warp
  }
  // Oldest: the candidate ready the longest (smallest ready time); the
  // candidate list is ascending by warp id, so the first minimum wins
  // ties deterministically.
  std::uint32_t best = view.candidates.front();
  for (const std::uint32_t warp : view.candidates) {
    if (view.ready[warp] < view.ready[best]) best = warp;
  }
  return best;
}

void GreedyThenOldestScheduler::on_dispatch(std::uint32_t warp) {
  last_ = warp;
  has_last_ = true;
}

// --- DynamicResizeScheduler ------------------------------------------------

DynamicResizeScheduler::DynamicResizeScheduler(std::uint32_t grow_streak,
                                               std::uint32_t shrink_misses)
    : grow_streak_(grow_streak == 0 ? 1 : grow_streak),
      shrink_misses_(shrink_misses == 0 ? 1 : shrink_misses) {}

void DynamicResizeScheduler::reset(std::uint32_t num_warps) {
  num_warps_ = num_warps;
  max_group_ = 1;
  while (max_group_ * 2 <= num_warps) max_group_ *= 2;
  group_size_ = 1;
  last_ = 0;
  has_last_ = false;
  streak_ = 0;
  misses_ = 0;
}

std::uint32_t DynamicResizeScheduler::pick(const SchedulerView& view) {
  if (has_last_ && group_size_ > 1) {
    // Prefer the next member of the running macro-warp (cyclic within the
    // aligned group), emulating one resized large warp issuing
    // back-to-back.
    const std::uint32_t base = (last_ / group_size_) * group_size_;
    for (std::uint32_t k = 1; k <= group_size_; ++k) {
      const std::uint32_t warp = base + (last_ - base + k) % group_size_;
      if (warp >= num_warps_) continue;
      if (std::binary_search(view.candidates.begin(), view.candidates.end(),
                             warp)) {
        misses_ = 0;
        if (++streak_ >= grow_streak_ && group_size_ < max_group_) {
          group_size_ *= 2;
          streak_ = 0;
        }
        return warp;
      }
    }
    // Divergence: the macro-warp has no ready member while other warps
    // do — the resized warp lost lockstep; vote to split it.
    streak_ = 0;
    if (++misses_ >= shrink_misses_ && group_size_ > 1) {
      group_size_ /= 2;
      misses_ = 0;
    }
  } else if (has_last_) {
    // Group size 1: a completed solo pick still counts toward regrowth.
    if (++streak_ >= grow_streak_ && group_size_ < max_group_) {
      group_size_ *= 2;
      streak_ = 0;
    }
  }
  // Fallback: oldest-first, ties to the lowest id.
  std::uint32_t best = view.candidates.front();
  for (const std::uint32_t warp : view.candidates) {
    if (view.ready[warp] < view.ready[best]) best = warp;
  }
  return best;
}

void DynamicResizeScheduler::on_dispatch(std::uint32_t warp) {
  last_ = warp;
  has_last_ = true;
}

// --- factory ---------------------------------------------------------------

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {"roundrobin", "gto", "dwr"};
  return names;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "roundrobin" || name == "rr") {
    return std::make_unique<RoundRobinScheduler>();
  }
  if (name == "gto") return std::make_unique<GreedyThenOldestScheduler>();
  if (name == "dwr") return std::make_unique<DynamicResizeScheduler>();
  std::string valid;
  for (const std::string& n : scheduler_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  throw std::invalid_argument("unknown scheduler: " + name + " (valid: " +
                              valid + ")");
}

}  // namespace rapsim::hier
