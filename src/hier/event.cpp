#include "hier/event.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rapsim::hier {

EventCore::EventCore(std::uint32_t num_warps, std::uint32_t latency)
    : num_warps_(num_warps), latency_(latency), ready_(num_warps, 0) {
  if (latency == 0) {
    throw std::invalid_argument("EventCore: pipeline latency must be > 0");
  }
  candidates_.reserve(num_warps);
}

bool EventCore::step(WarpSource& source, Scheduler& scheduler,
                     CoreHooks* hooks) {
  // One scan establishes everything the decision needs: whether any warp
  // is still pending, whether any pending warp is NOT parked at a
  // barrier, the earliest readiness among those, and the candidate set
  // (ready now, not at a barrier).
  bool any_pending = false;
  bool any_non_barrier = false;
  std::uint64_t min_ready = std::numeric_limits<std::uint64_t>::max();
  candidates_.clear();
  for (std::uint32_t warp = 0; warp < num_warps_; ++warp) {
    if (source.done(warp)) continue;
    any_pending = true;
    if (source.at_barrier(warp)) continue;
    any_non_barrier = true;
    min_ready = std::min(min_ready, ready_[warp]);
    if (ready_[warp] <= pipeline_next_) candidates_.push_back(warp);
  }
  if (!any_pending) return false;

  if (candidates_.empty()) {
    if (any_non_barrier) {
      // All runnable warps are still waiting on outstanding requests; the
      // pipeline idles until the first becomes ready.
      if (hooks) hooks->on_idle(min_ready - pipeline_next_);
      pipeline_next_ = min_ready;
      return true;
    }
    // Every pending warp is parked at a barrier: release the earliest
    // barrier group once all outstanding requests have drained. Exactly
    // one release group fires per barrier instruction (no warp can pass
    // a barrier other warps still approach).
    std::size_t barrier_pc = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t warp = 0; warp < num_warps_; ++warp) {
      if (!source.done(warp)) barrier_pc = std::min(barrier_pc, source.pc(warp));
    }
    std::uint64_t release = 0;
    for (std::uint32_t warp = 0; warp < num_warps_; ++warp) {
      release = std::max(release, ready_[warp]);
    }
    if (hooks) hooks->on_barrier_release(barrier_pc);
    for (std::uint32_t warp = 0; warp < num_warps_; ++warp) {
      if (!source.done(warp) && source.pc(warp) == barrier_pc) {
        ready_[warp] = release;
        source.advance(warp);
      }
    }
    return true;
  }

  const std::uint32_t chosen =
      scheduler.pick({candidates_, ready_, pipeline_next_});
  if (std::find(candidates_.begin(), candidates_.end(), chosen) ==
      candidates_.end()) {
    throw std::logic_error(
        "EventCore: scheduler picked a warp outside the candidate set");
  }

  const std::size_t pc = source.pc(chosen);
  const IssueResult access = source.issue(chosen);

  if (access.stages == 0) {
    // Register-only instruction: executed by the source, no pipeline
    // traffic and no completion to wait for.
    source.advance(chosen);
    scheduler.on_dispatch(chosen);
    return true;
  }

  const std::uint64_t start = pipeline_next_;
  const std::uint64_t completion =
      start + access.stages + latency_ - 1 + access.extra_latency;
  totals_.add(access.stages, completion);

  if (hooks) {
    hooks->on_dispatch({chosen, pc, start, access.stages, completion,
                        access.active_threads, access.unique_requests,
                        start - ready_[chosen]});
  }

  pipeline_next_ = start + access.stages;
  ready_[chosen] = completion + 1;
  source.advance(chosen);
  scheduler.on_dispatch(chosen);
  return true;
}

const DispatchTotals& EventCore::run(WarpSource& source, Scheduler& scheduler,
                                     CoreHooks* hooks) {
  while (step(source, scheduler, hooks)) {
  }
  return totals_;
}

}  // namespace rapsim::hier
