// Pluggable warp schedulers for the event core.
//
// Three policies, all deterministic and starvation-free (a dispatched
// warp leaves the candidate set for at least `latency` slots, so any
// other ready warp is picked no later than the moment it becomes the
// only candidate — tests/hier_test.cpp pins the fairness property):
//
//   * RoundRobinScheduler ("roundrobin") — the historical Dmm policy:
//     first ready warp in cyclic order after the last dispatch. The
//     1-SM zero-latency-path differential pin runs on this one.
//   * GreedyThenOldestScheduler ("gto") — greedy-then-oldest: keep
//     issuing the last-dispatched warp while it stays ready (maximizes
//     intra-warp locality / row-buffer reuse), otherwise fall back to
//     the warp that has been ready longest (oldest-first latency
//     tolerance), ties to the lowest id.
//   * DynamicResizeScheduler ("dwr") — a dynamic-warp-resizing policy in
//     the spirit of Lashgar et al. ("Dynamic Warp Resizing in
//     High-Performance SIMT"): warps are grouped into aligned macro-warps
//     of 2^k members that the policy tries to issue back-to-back (one
//     large warp amortizing a single fetch). Sustained full sweeps grow
//     the macro-warp; repeated divergence (the preferred group has no
//     ready member while others do) shrinks it. At group size 1 the
//     policy degenerates to oldest-first.
//
// make_scheduler() maps the CLI spelling to an instance; scheduler_names
// lists the valid spellings for error messages and sweeps.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hier/event.hpp"

namespace rapsim::hier {

class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "roundrobin";
  }
  void reset(std::uint32_t num_warps) override;
  [[nodiscard]] std::uint32_t pick(const SchedulerView& view) override;
  void on_dispatch(std::uint32_t warp) override;

 private:
  std::uint32_t num_warps_ = 0;
  std::uint32_t rr_ = 0;  // scan starts here
};

class GreedyThenOldestScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "gto"; }
  void reset(std::uint32_t num_warps) override;
  [[nodiscard]] std::uint32_t pick(const SchedulerView& view) override;
  void on_dispatch(std::uint32_t warp) override;

 private:
  std::uint32_t last_ = 0;
  bool has_last_ = false;
};

class DynamicResizeScheduler final : public Scheduler {
 public:
  /// Grow after `grow_streak` consecutive same-group picks, shrink after
  /// `shrink_misses` consecutive divergences. The defaults are the ones
  /// every consumer (CLI, bench, tests) uses.
  explicit DynamicResizeScheduler(std::uint32_t grow_streak = 4,
                                  std::uint32_t shrink_misses = 2);

  [[nodiscard]] const char* name() const noexcept override { return "dwr"; }
  void reset(std::uint32_t num_warps) override;
  [[nodiscard]] std::uint32_t pick(const SchedulerView& view) override;
  void on_dispatch(std::uint32_t warp) override;

  /// Current macro-warp size (power of two) — exposed for tests.
  [[nodiscard]] std::uint32_t group_size() const noexcept {
    return group_size_;
  }

 private:
  std::uint32_t grow_streak_;
  std::uint32_t shrink_misses_;
  std::uint32_t num_warps_ = 0;
  std::uint32_t max_group_ = 1;  // largest power of two <= num_warps
  std::uint32_t group_size_ = 1;
  std::uint32_t last_ = 0;
  bool has_last_ = false;
  std::uint32_t streak_ = 0;  // consecutive same-group picks
  std::uint32_t misses_ = 0;  // consecutive divergences
};

/// All valid --scheduler spellings, in presentation order.
[[nodiscard]] const std::vector<std::string>& scheduler_names();

/// Instantiate a scheduler by name ("roundrobin"/"rr", "gto", "dwr").
/// Throws std::invalid_argument listing the valid names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name);

}  // namespace rapsim::hier
