// The shared event core: one clock + dispatch engine for every machine.
//
// Before the hierarchy simulator existed, the warp-dispatch bookkeeping
// (pipeline clock, per-warp readiness, round-robin selection, barrier
// release, dispatch statistics) lived inside dmm::Dmm::run, and the GPU
// timing model re-summed the same per-dispatch totals from a trace. This
// header hoists that machinery into one place:
//
//   * EventCore — the clock. Owns the MMU pipeline slot counter, the
//     per-warp earliest-issue times, and the dispatch totals. One step()
//     performs exactly one scheduling decision: dispatch a warp, advance
//     the clock over an idle gap, or release a barrier group.
//   * WarpSource — what the machine provides: per-warp program state
//     (done / at-barrier / program counter) and the data movement of one
//     warp-instruction (issue/advance). dmm::KernelWarpSource adapts a
//     dmm::Kernel; hier::Sm wraps that adapter and adds the memory-path
//     penalty to each issue.
//   * Scheduler — the pluggable warp-selection policy (scheduler.hpp).
//     RoundRobinScheduler reproduces the historical Dmm order bit for
//     bit; the differential tests pin it.
//   * CoreHooks — optional per-event callbacks (trace records, telemetry,
//     barrier side effects). Null hooks cost one branch per event.
//
// Determinism contract: step() consults only the source, the scheduler
// and its own state, so two runs with equal inputs produce identical
// dispatch sequences. The multi-SM driver (hier.hpp) interleaves several
// cores by always stepping the one with the smallest clock (ties by SM
// id), which keeps shared-resource arrival order deterministic too.
//
// This library deliberately depends on nothing but the standard library:
// dmm links it (the Dmm runs ON the core), and the hierarchy links both.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapsim::hier {

/// Cost of issuing one warp-instruction, reported by the WarpSource.
struct IssueResult {
  /// Pipeline slots occupied (the congestion). 0 means a register-only
  /// instruction: it executes without touching the memory pipeline and
  /// produces no dispatch record.
  std::uint32_t stages = 0;
  std::uint32_t active_threads = 0;
  std::uint32_t unique_requests = 0;
  /// Extra completion latency beyond the banked pipeline (the memory
  /// hierarchy's miss penalty). Zero for a pure shared-memory machine —
  /// the configuration under which the core reproduces the historical
  /// Dmm timing exactly.
  std::uint64_t extra_latency = 0;
};

/// One dispatched warp-instruction, as reported to CoreHooks.
struct DispatchEvent {
  std::uint32_t warp = 0;
  std::size_t pc = 0;             // program counter at dispatch
  std::uint64_t start = 0;        // first pipeline slot occupied
  std::uint32_t stages = 0;       // slots occupied == congestion
  std::uint64_t completion = 0;   // last data arrival (incl. path penalty)
  std::uint32_t active_threads = 0;
  std::uint32_t unique_requests = 0;
  std::uint64_t stall_slots = 0;  // ready-but-undispatched queueing delay
};

/// Per-warp program state + data movement, provided by the machine.
class WarpSource {
 public:
  virtual ~WarpSource() = default;

  /// Warp has no further instructions to dispatch.
  [[nodiscard]] virtual bool done(std::uint32_t warp) const = 0;

  /// Warp's next instruction is a block-wide barrier.
  [[nodiscard]] virtual bool at_barrier(std::uint32_t warp) const = 0;

  /// Program counter (instruction index) of the warp's next instruction.
  /// Used to group barrier releases: all warps parked at the earliest
  /// barrier release together.
  [[nodiscard]] virtual std::size_t pc(std::uint32_t warp) const = 0;

  /// Execute the data movement of the warp's current instruction and
  /// report its cost. Called exactly once per dispatched instruction.
  [[nodiscard]] virtual IssueResult issue(std::uint32_t warp) = 0;

  /// Move the warp past its current instruction (skipping any following
  /// instructions in which it has nothing to do).
  virtual void advance(std::uint32_t warp) = 0;
};

/// Optional per-event callbacks.
class CoreHooks {
 public:
  virtual ~CoreHooks() = default;
  /// The pipeline idled `slots` slots waiting for a request to drain.
  virtual void on_idle(std::uint64_t slots) { (void)slots; }
  /// A warp-instruction entered the pipeline.
  virtual void on_dispatch(const DispatchEvent& event) { (void)event; }
  /// The barrier group at instruction `pc` released (fires once per
  /// barrier instruction).
  virtual void on_barrier_release(std::size_t pc) { (void)pc; }
};

/// Everything a warp scheduler may consult when choosing. `candidates`
/// is non-empty and sorted by warp id; every member is ready now.
struct SchedulerView {
  const std::vector<std::uint32_t>& candidates;
  const std::vector<std::uint64_t>& ready;  // per-warp earliest-issue slot
  std::uint64_t now;                        // next free pipeline slot
};

/// Pluggable warp-selection policy. Concrete policies in scheduler.hpp.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Reset policy state for a fresh run over `num_warps` warps.
  virtual void reset(std::uint32_t num_warps) = 0;
  /// Choose one of view.candidates. Returning a warp not in the
  /// candidate set is a policy bug; EventCore throws std::logic_error.
  [[nodiscard]] virtual std::uint32_t pick(const SchedulerView& view) = 0;
  /// `warp`'s current instruction was executed (memory or register-only).
  virtual void on_dispatch(std::uint32_t warp) = 0;
};

/// Aggregated dispatch bookkeeping — the one accumulator shared by the
/// live core (EventCore::step), the Dmm's RunStats conversion, and the
/// GPU timing model's trace replay (gpu/sm_model.hpp).
struct DispatchTotals {
  std::uint64_t last_completion = 0;
  std::uint64_t total_stages = 0;
  std::uint64_t dispatches = 0;
  std::uint32_t max_congestion = 0;
  double congestion_sum = 0.0;

  void add(std::uint32_t stages, std::uint64_t completion) noexcept {
    total_stages += stages;
    if (stages > max_congestion) max_congestion = stages;
    congestion_sum += stages;
    ++dispatches;
    if (completion > last_completion) last_completion = completion;
  }

  [[nodiscard]] double avg_congestion() const noexcept {
    return dispatches != 0
               ? congestion_sum / static_cast<double>(dispatches)
               : 0.0;
  }
};

/// The clock + dispatch engine. See header comment for the step()
/// semantics; run() is while (step()).
class EventCore {
 public:
  /// `latency` is the banked pipeline latency (the DMM's l >= 1): a
  /// dispatch occupying slots [s, s+c-1] completes at s + c + latency - 1.
  EventCore(std::uint32_t num_warps, std::uint32_t latency);

  /// Perform one scheduling decision. Returns false when every warp has
  /// finished (and performs nothing).
  bool step(WarpSource& source, Scheduler& scheduler,
            CoreHooks* hooks = nullptr);

  /// Drive step() to completion and return the totals.
  const DispatchTotals& run(WarpSource& source, Scheduler& scheduler,
                            CoreHooks* hooks = nullptr);

  /// The clock: next free pipeline slot.
  [[nodiscard]] std::uint64_t now() const noexcept { return pipeline_next_; }
  [[nodiscard]] const DispatchTotals& totals() const noexcept {
    return totals_;
  }
  [[nodiscard]] std::uint32_t num_warps() const noexcept {
    return num_warps_;
  }

 private:
  std::uint32_t num_warps_;
  std::uint32_t latency_;
  std::uint64_t pipeline_next_ = 0;       // next free MMU pipeline slot
  std::vector<std::uint64_t> ready_;      // per-warp earliest issue slot
  std::vector<std::uint32_t> candidates_; // scratch, reused across steps
  DispatchTotals totals_;
};

}  // namespace rapsim::hier
