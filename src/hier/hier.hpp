// Multi-SM memory-hierarchy simulator.
//
// A HierSim runs the SAME dmm::Kernel on N streaming multiprocessors —
// the standard GPU launch shape where every block executes one copy of
// the program against its own shared memory. Each SM owns:
//
//   * a dmm::Dmm (banked shared memory under the configured AddressMap —
//     so the full RAW/RAS/RAP bank-conflict model applies per SM),
//   * an EventCore clock driving a pluggable warp Scheduler
//     (roundrobin / gto / dwr — scheduler.hpp),
//   * an L1 + MSHR front of the global-memory path (memory.hpp); the L2
//     and DRAM ports behind it are shared by all SMs, which is where the
//     SMs actually contend.
//
// The driver interleaves the per-SM cores deterministically: each
// iteration steps the unfinished SM with the smallest clock (ties to the
// lowest SM id). SMs share no kernel state — only the L2/DRAM ports —
// so this ordering fixes the one cross-SM interaction (arrival order at
// the shared servers) and two runs of the same configuration are
// bit-identical.
//
// Soundness of the differential pin (tests/hier_differential_test.cpp):
// with sms = 1, scheduler = "roundrobin" and PathParams::zero(), the SM's
// EventCore + KernelWarpSource sequence is definitionally the body of
// Dmm::run — same core, same scheduler, extra_latency identically 0 —
// so HierSim reproduces dmm::RunStats bit for bit, including the double
// avg_congestion accumulation order.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"
#include "gpu/sm_model.hpp"
#include "hier/event.hpp"
#include "hier/memory.hpp"
#include "hier/scheduler.hpp"
#include "telemetry/metrics.hpp"

namespace rapsim::hier {

struct HierConfig {
  std::uint32_t sms = 1;
  std::uint32_t width = 32;            // banks / threads per warp, per SM
  std::uint32_t shared_latency = 1;    // banked-pipeline latency (DMM l)
  std::string scheduler = "roundrobin";
  PathParams path = PathParams::zero();

  void validate() const;
};

/// Per-SM outcome of one hierarchy run.
struct SmStats {
  std::uint32_t sm = 0;
  dmm::RunStats run;                 // same shape as a single-Dmm run
  std::uint64_t idle_slots = 0;      // pipeline idle (waiting on drains)
  std::uint64_t warp_stall_slots = 0;  // ready-but-undispatched queueing
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;         // this SM's fills answered by L2
  std::uint64_t dram_fills = 0;      // this SM's fills that went to DRAM
  std::uint64_t mshr_stall_cycles = 0;
  std::uint64_t mem_wait_cycles = 0;  // extra completion latency charged
  double est_ns = 0.0;                // gpu::SmTimingParams estimate
  std::vector<std::uint64_t> warp_dispatches;  // per-warp dispatch counts
};

/// Whole-hierarchy outcome.
struct HierResult {
  std::uint64_t cycles = 0;         // max per-SM completion time
  std::uint64_t dispatches = 0;     // summed over SMs
  std::uint64_t total_stages = 0;   // summed over SMs
  std::uint32_t max_congestion = 0;
  double avg_congestion = 0.0;      // dispatch-weighted mean over SMs
  std::uint64_t l2_hits = 0;        // shared-path totals
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_queue_cycles = 0;  // fills waiting on busy L2/DRAM ports
  double est_ns = 0.0;                // max per-SM estimate (SMs overlap)
  std::vector<SmStats> sms;
};

/// The simulator. Owns one Dmm per SM over a shared AddressMap; run()
/// builds the event cores, memory paths and scheduler instances fresh
/// each call, so a HierSim can be reused across kernels and schemes.
class HierSim {
 public:
  /// The map must outlive the simulator; map.width() must equal
  /// config.width (same contract as Dmm).
  HierSim(HierConfig config, const core::AddressMap& map);

  [[nodiscard]] const HierConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_sms() const noexcept {
    return static_cast<std::uint32_t>(machines_.size());
  }
  /// The SM's machine — host loads/stores for inputs and outputs, or to
  /// install telemetry/sanitizer/capture sinks on a particular SM.
  [[nodiscard]] dmm::Dmm& sm_machine(std::uint32_t sm) {
    return *machines_[sm];
  }

  /// Execute `kernel` on every SM. `scheme` selects the address-overhead
  /// term of the ns estimate (the bank mapping itself is fixed by the
  /// AddressMap given at construction).
  HierResult run(const dmm::Kernel& kernel, core::Scheme scheme,
                 const gpu::SmTimingParams& timing =
                     gpu::SmTimingParams::titan_calibrated());

 private:
  HierConfig config_;
  const core::AddressMap* map_;
  std::vector<std::unique_ptr<dmm::Dmm>> machines_;
};

/// Register a run's results as hier.* metrics:
///   counters  hier.cycles, hier.dispatches, hier.total_stages,
///             hier.l2_hits, hier.l2_misses, hier.l2_queue_cycles;
///             per-SM (labels + sm=<i>) hier.sm_cycles,
///             hier.sm_dispatches, hier.l1_hits, hier.l1_misses,
///             hier.sm_l2_hits, hier.dram_fills, hier.mshr_stall_cycles,
///             hier.mem_wait_cycles, hier.idle_slots,
///             hier.warp_stall_slots
///   gauges    hier.avg_congestion, hier.est_ns
///   distribution  hier.warp_dispatches (per-SM, dispatch counts over
///             warps — its spread is the scheduler-fairness signal)
void flush_metrics(const HierResult& result,
                   telemetry::MetricsRegistry& registry,
                   const telemetry::Labels& labels);

}  // namespace rapsim::hier
