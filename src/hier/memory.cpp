#include "hier/memory.hpp"

#include <algorithm>

namespace rapsim::hier {

bool LruCache::access(std::uint64_t line) {
  if (capacity_ == 0) return false;
  ++tick_;
  const auto it = stamp_.find(line);
  if (it != stamp_.end()) {
    it->second = tick_;
    return true;
  }
  if (stamp_.size() >= capacity_) {
    // Evict the least recently used line. Linear scan — capacities are
    // model-sized (tens to hundreds of lines), not hardware-sized.
    auto victim = stamp_.begin();
    for (auto cur = stamp_.begin(); cur != stamp_.end(); ++cur) {
      if (cur->second < victim->second) victim = cur;
    }
    stamp_.erase(victim);
  }
  stamp_.emplace(line, tick_);
  return false;
}

FillResult SharedPath::fill(std::uint64_t line, std::uint64_t issue) {
  FillResult result;
  // Through the L2 port (bandwidth), then the L2 array (latency).
  std::uint64_t t = issue;
  if (params_.l2_service > 0) {
    const std::uint64_t start = std::max(t, l2_next_free_);
    queue_cycles_ += start - t;
    l2_next_free_ = start + params_.l2_service;
    t = start + params_.l2_service;
  }
  t += params_.l2.latency;
  if (l2_.access(line)) {
    ++l2_hits_;
    result.done = t;
    result.l2_hit = true;
    return result;
  }
  ++l2_misses_;
  // Miss: on to DRAM — port, then access latency.
  if (params_.dram_service > 0) {
    const std::uint64_t start = std::max(t, dram_next_free_);
    queue_cycles_ += start - t;
    dram_next_free_ = start + params_.dram_service;
    t = start + params_.dram_service;
  }
  t += params_.dram_latency;
  result.done = t;
  return result;
}

std::uint64_t SmMemoryPath::access(std::vector<std::uint64_t>& lines,
                                   std::uint64_t issue, std::uint64_t base) {
  if (!params_.enabled() || lines.empty()) return 0;
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

  std::uint64_t last_arrival = 0;
  for (const std::uint64_t line : lines) {
    if (l1_.access(line)) {
      ++l1_hits_;
      last_arrival = std::max(last_arrival, issue + params_.l1.latency);
      continue;
    }
    ++l1_misses_;
    // MSHR admission: retire fills that completed by now, then wait for
    // the earliest outstanding one if all registers are busy.
    std::uint64_t start = issue;
    if (params_.mshrs > 0) {
      inflight_.erase(std::remove_if(inflight_.begin(), inflight_.end(),
                                     [&](std::uint64_t done) {
                                       return done <= start;
                                     }),
                      inflight_.end());
      while (inflight_.size() >= params_.mshrs) {
        const auto earliest =
            std::min_element(inflight_.begin(), inflight_.end());
        const std::uint64_t wait_until = *earliest;
        mshr_stall_cycles_ += wait_until - start;
        start = wait_until;
        inflight_.erase(earliest);
      }
    }
    const FillResult fill =
        shared_->fill(line, start + params_.l1.latency);
    if (fill.l2_hit) {
      ++l2_hits_;
    } else {
      ++dram_fills_;
    }
    if (params_.mshrs > 0) inflight_.push_back(fill.done);
    last_arrival = std::max(last_arrival, fill.done);
  }
  return last_arrival > base ? last_arrival - base : 0;
}

}  // namespace rapsim::hier
