#include "workloads/matmul.hpp"

#include <vector>

#include "core/factory.hpp"
#include "util/rng.hpp"

namespace rapsim::workloads {

const char* matmul_layout_name(MatmulLayout layout) noexcept {
  switch (layout) {
    case MatmulLayout::kRowMajorB: return "row-major B";
    case MatmulLayout::kTransposedB: return "transposed B";
  }
  return "?";
}

dmm::Kernel build_matmul_kernel(MatmulLayout layout,
                                const MatmulArrays& arrays) {
  const std::uint32_t w = arrays.width;
  dmm::Kernel kernel;
  kernel.num_threads = w * w;

  // r0 = accumulator, r1 = current A element. Zero the accumulator by
  // multiplying into a fresh register file (registers start at 0).
  for (std::uint32_t k = 0; k < w; ++k) {
    dmm::Instruction load_a(kernel.num_threads), fma_b(kernel.num_threads);
    for (std::uint32_t i = 0; i < w; ++i) {
      for (std::uint32_t j = 0; j < w; ++j) {
        const std::uint32_t t = i * w + j;
        load_a[t] = dmm::ThreadOp::load(arrays.a(i, k), 1);
        const std::uint64_t b_addr = layout == MatmulLayout::kRowMajorB
                                         ? arrays.b(k, j)
                                         : arrays.b(j, k);
        fma_b[t] = dmm::ThreadOp::load_mul_add(b_addr, 0, 1);
      }
    }
    kernel.push(std::move(load_a));
    kernel.push(std::move(fma_b));
  }

  dmm::Instruction store_c(kernel.num_threads);
  for (std::uint32_t i = 0; i < w; ++i) {
    for (std::uint32_t j = 0; j < w; ++j) {
      store_c[i * w + j] = dmm::ThreadOp::store(arrays.c(i, j), 0);
    }
  }
  kernel.push(std::move(store_c));
  return kernel;
}

analyze::KernelDesc describe_matmul_kernel(MatmulLayout layout,
                                           const MatmulArrays& arrays) {
  using analyze::AccessDir;
  using analyze::AccessSite;
  const std::int64_t w = arrays.width;

  analyze::KernelDesc kernel;
  kernel.name = layout == MatmulLayout::kRowMajorB ? "matmul-rowmajorB"
                                                   : "matmul-transposedB";
  kernel.width = arrays.width;
  kernel.rows = arrays.rows();
  kernel.vars = {{"u", arrays.width}, {"k", arrays.width}};

  // A[i][k] = u*w + k: one address per warp (CRCW-merged broadcast).
  AccessSite load_a;
  load_a.name = "load A[i][k]";
  load_a.dir = AccessDir::kLoad;
  load_a.warp = "u";
  load_a.flat = {0, 0, {w, 1}};

  // Row-major B[k][j] = w^2 + k*w + lane (a row: conflict-free);
  // transposed Bt[j][k] = w^2 + lane*w + k (a column: the stride trap).
  AccessSite load_b;
  load_b.name = layout == MatmulLayout::kRowMajorB ? "load B[k][j]"
                                                   : "load Bt[j][k]";
  load_b.dir = AccessDir::kLoad;
  load_b.warp = "u";
  load_b.flat = layout == MatmulLayout::kRowMajorB
                    ? analyze::AffineExpr{w * w, 1, {0, w}}
                    : analyze::AffineExpr{w * w, w, {0, 1}};

  // C[i][j] = 2w^2 + u*w + lane (a row).
  AccessSite store_c;
  store_c.name = "store C[i][j]";
  store_c.dir = AccessDir::kStore;
  store_c.warp = "u";
  store_c.flat = {2 * w * w, 1, {w, 0}};

  kernel.sites = {std::move(load_a), std::move(load_b), std::move(store_c)};
  return kernel;
}

MatmulReport run_matmul(MatmulLayout layout, core::Scheme scheme,
                        std::uint32_t width, std::uint32_t latency,
                        std::uint64_t seed) {
  const MatmulArrays arrays{width};
  const auto map = core::make_matrix_map(scheme, width, arrays.rows(), seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);

  // Small values so the uint64 accumulation cannot overflow: entries in
  // [0, 256), products < 2^16, sums < 2^16 * w.
  util::Pcg32 rng(seed, /*stream=*/0x6d6dull);
  std::vector<std::uint64_t> a(width * width), b(width * width);
  for (std::uint32_t i = 0; i < width; ++i) {
    for (std::uint32_t j = 0; j < width; ++j) {
      a[i * width + j] = rng.bounded(256);
      b[i * width + j] = rng.bounded(256);
      machine.store(arrays.a(i, j), a[i * width + j]);
      const bool transposed = layout == MatmulLayout::kTransposedB;
      machine.store(transposed ? arrays.b(j, i) : arrays.b(i, j),
                    b[i * width + j]);
    }
  }

  MatmulReport report;
  report.stats = machine.run(build_matmul_kernel(layout, arrays));

  report.correct = true;
  for (std::uint32_t i = 0; i < width && report.correct; ++i) {
    for (std::uint32_t j = 0; j < width; ++j) {
      std::uint64_t expected = 0;
      for (std::uint32_t k = 0; k < width; ++k) {
        expected += a[i * width + k] * b[k * width + j];
      }
      if (machine.load(arrays.c(i, j)) != expected) {
        report.correct = false;
        break;
      }
    }
  }
  return report;
}

}  // namespace rapsim::workloads
