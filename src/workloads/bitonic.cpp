#include "workloads/bitonic.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/factory.hpp"
#include "util/rng.hpp"
#include "vm/assembler.hpp"
#include "vm/exec.hpp"
#include "vm/extract.hpp"
#include "vm/suite.hpp"

namespace rapsim::workloads {

dmm::Kernel build_bitonic_kernel(std::uint64_t n, std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % (2ull * width) != 0) {
    throw std::invalid_argument(
        "build_bitonic_kernel: n must be a power of two multiple of 2w");
  }
  const vm::Program program =
      vm::assemble(vm::bitonic_text(n, width), width);
  return vm::lower_program(program).kernel;
}

analyze::KernelDesc describe_bitonic_kernel(std::uint64_t n,
                                            std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % (2ull * width) != 0) {
    throw std::invalid_argument(
        "describe_bitonic_kernel: n must be a power of two multiple of 2w");
  }
  vm::ExtractResult result =
      vm::extract_kernel(vm::assemble(vm::bitonic_text(n, width), width));
  // The program refuses inexact modeling, so extraction is always
  // complete here; keep the catalog name the executable builders use.
  result.kernel.name = "bitonic";
  return std::move(result.kernel);
}

BitonicReport run_bitonic_sort(core::Scheme scheme, std::uint64_t n,
                               std::uint32_t width, std::uint32_t latency,
                               std::uint64_t seed) {
  const std::uint64_t rows = n / width;
  const auto map = core::make_matrix_map(scheme, width, rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);

  util::Pcg32 rng(seed, /*stream=*/0x62746eull);
  std::vector<std::uint64_t> input(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input[i] = rng();
    machine.store(i, input[i]);
  }

  BitonicReport report;
  report.stats = machine.run(build_bitonic_kernel(n, width));

  std::vector<std::uint64_t> output(n);
  for (std::uint64_t i = 0; i < n; ++i) output[i] = machine.load(i);
  report.sorted = std::is_sorted(output.begin(), output.end());
  std::sort(input.begin(), input.end());
  std::vector<std::uint64_t> sorted_output = output;
  std::sort(sorted_output.begin(), sorted_output.end());
  report.is_permutation = sorted_output == input;
  return report;
}

}  // namespace rapsim::workloads
