#include "workloads/bitonic.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/factory.hpp"
#include "util/rng.hpp"

namespace rapsim::workloads {

dmm::Kernel build_bitonic_kernel(std::uint64_t n, std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % (2ull * width) != 0) {
    throw std::invalid_argument(
        "build_bitonic_kernel: n must be a power of two multiple of 2w");
  }
  dmm::Kernel kernel;
  kernel.num_threads = static_cast<std::uint32_t>(n / 2);

  for (std::uint64_t k = 2; k <= n; k *= 2) {
    for (std::uint64_t j = k / 2; j >= 1; j /= 2) {
      dmm::Instruction load_lo(kernel.num_threads),
          load_hi(kernel.num_threads), cmp(kernel.num_threads),
          store_lo(kernel.num_threads), store_hi(kernel.num_threads);
      for (std::uint64_t t = 0; t < n / 2; ++t) {
        // Spread the n/2 pairs over the threads: insert a zero bit at
        // position log2(j) so i has bit j clear and i|j is the partner.
        const std::uint64_t i = ((t & ~(j - 1)) << 1) | (t & (j - 1));
        const std::uint64_t partner = i | j;
        const bool ascending = (i & k) == 0;
        load_lo[t] = dmm::ThreadOp::load(i, 0);
        load_hi[t] = dmm::ThreadOp::load(partner, 1);
        cmp[t] = dmm::ThreadOp::min_max(0, 1);  // r0 = min, r1 = max
        const std::uint64_t min_dst = ascending ? i : partner;
        const std::uint64_t max_dst = ascending ? partner : i;
        store_lo[t] = dmm::ThreadOp::store(min_dst, 0);
        store_hi[t] = dmm::ThreadOp::store(max_dst, 1);
      }
      kernel.push(std::move(load_lo));
      kernel.push(std::move(load_hi));
      kernel.push(std::move(cmp));
      kernel.push(std::move(store_lo));
      kernel.push(std::move(store_hi));
      // The next round's pairs cross warp boundaries: synchronize, as the
      // CUDA bitonic kernel does with __syncthreads().
      kernel.push_barrier();
    }
  }
  return kernel;
}

analyze::KernelDesc describe_bitonic_kernel(std::uint64_t n,
                                            std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % (2ull * width) != 0) {
    throw std::invalid_argument(
        "describe_bitonic_kernel: n must be a power of two multiple of 2w");
  }
  using analyze::AccessDir;
  using analyze::AccessSite;
  using analyze::IndexForm;

  analyze::KernelDesc kernel;
  kernel.name = "bitonic";
  kernel.width = width;
  kernel.rows = n / width;
  kernel.vars = {{"u", (n / 2) / width}};

  // The lo/hi streams depend only on the partner distance j (the stage k
  // only flips which register lands where), so one site pair per j.
  for (std::uint64_t j = n / 2; j >= 1; j /= 2) {
    const auto make = [width, j](bool hi) {
      return [width, j, hi](std::uint32_t lane,
                            std::span<const std::uint64_t> binding) {
        const std::uint64_t t =
            (binding.empty() ? 0 : binding[0]) * width + lane;
        const std::uint64_t i = ((t & ~(j - 1)) << 1) | (t & (j - 1));
        return hi ? (i | j) : i;
      };
    };
    AccessSite lo;
    lo.name = "pair(j=" + std::to_string(j) + ").lo";
    lo.dir = AccessDir::kStore;  // loaded and stored: identical streams
    lo.form = IndexForm::kOpaque;
    lo.warp = "u";
    lo.opaque = make(false);
    AccessSite hi;
    hi.name = "pair(j=" + std::to_string(j) + ").hi";
    hi.dir = AccessDir::kStore;
    hi.form = IndexForm::kOpaque;
    hi.warp = "u";
    hi.opaque = make(true);
    kernel.sites.push_back(std::move(lo));
    kernel.sites.push_back(std::move(hi));
    // build_bitonic_kernel synchronizes after every compare-exchange
    // round; the next round's pairs cross warp boundaries.
    if (j > 1) kernel.add_barrier();
  }
  return kernel;
}

BitonicReport run_bitonic_sort(core::Scheme scheme, std::uint64_t n,
                               std::uint32_t width, std::uint32_t latency,
                               std::uint64_t seed) {
  const std::uint64_t rows = n / width;
  const auto map = core::make_matrix_map(scheme, width, rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);

  util::Pcg32 rng(seed, /*stream=*/0x62746eull);
  std::vector<std::uint64_t> input(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    input[i] = rng();
    machine.store(i, input[i]);
  }

  BitonicReport report;
  report.stats = machine.run(build_bitonic_kernel(n, width));

  std::vector<std::uint64_t> output(n);
  for (std::uint64_t i = 0; i < n; ++i) output[i] = machine.load(i);
  report.sorted = std::is_sorted(output.begin(), output.end());
  std::sort(input.begin(), input.end());
  std::vector<std::uint64_t> sorted_output = output;
  std::sort(sorted_output.begin(), sorted_output.end());
  report.is_permutation = sorted_output == input;
  return report;
}

}  // namespace rapsim::workloads
