// Bitonic sort in shared memory.
//
// Batcher's bitonic network sorts n = 2^k values in k(k+1)/2 rounds of
// compare-exchanges; round (k, j) pairs element i with i XOR j, and each
// round reads what other warps wrote in the previous one, so the kernel
// needs a block-wide barrier per round (__syncthreads() in CUDA,
// Kernel::push_barrier() here) — this workload is the library's stress
// test for the barrier and multi-register machinery.
//
// The network is authored as a VM program (vm/suite.hpp bitonic_text)
// and lowered here: build_bitonic_kernel assembles and executes the
// `.rvm` text, describe_bitonic_kernel extracts its loop-nest IR. The
// program's pair layout keeps every address AFFINE in (lane, warp, loop
// counters): active lanes form contiguous 2j-aligned blocks, the merge
// direction is an explicit 2-trip loop, and once the partner distance
// crosses the warp width a warp-prefix mask picks the owning warps.
//
// Bank behaviour: contiguous 2j-aligned blocks never split across
// matrix rows, so RAW congestion is exactly 1 — bitonic is a
// *well-behaved* kernel, and the interesting property is that RAP does
// not break it: the randomized layout keeps both correctness and the
// ~1 congestion level (the "no harm on good kernels" half of the
// paper's pitch; reduction and matmul carry the "rescues bad kernels"
// half). The affine price is occupancy, not conflicts: rounds with
// partner distance j < w keep only j of w lanes active (a full-
// occupancy affine layout with bound 1 does not exist).
//
// Each compare-exchange is five SIMD instructions (load lo, load hi,
// min/max in registers, store min, store max); n/2 threads run the
// network.

#pragma once

#include <cstdint>
#include <vector>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"

namespace rapsim::workloads {

/// Build the full bitonic sorting network kernel over x[0 .. n),
/// n a power of two multiple of 2w, using n/2 threads.
[[nodiscard]] dmm::Kernel build_bitonic_kernel(std::uint64_t n,
                                               std::uint32_t width);

/// Loop-nest IR of the network for the symbolic passes, extracted from
/// the same VM program build_bitonic_kernel lowers. Every site is
/// affine (the old hand-written descriptor needed opaque callbacks), so
/// the prover certifies the exact per-round bounds symbolically and the
/// race verifier sees real warp attribution.
[[nodiscard]] analyze::KernelDesc describe_bitonic_kernel(
    std::uint64_t n, std::uint32_t width);

struct BitonicReport {
  bool sorted = false;
  bool is_permutation = false;  // multiset of values preserved
  dmm::RunStats stats;
};

/// Fill x with pseudo-random values from `seed`, sort under `scheme`,
/// verify order and value preservation.
[[nodiscard]] BitonicReport run_bitonic_sort(core::Scheme scheme,
                                             std::uint64_t n,
                                             std::uint32_t width,
                                             std::uint32_t latency,
                                             std::uint64_t seed);

}  // namespace rapsim::workloads
