// Bitonic sort in shared memory.
//
// Batcher's bitonic network sorts n = 2^k values in k(k+1)/2 rounds of
// compare-exchanges; round (k, j) pairs element i with i XOR j, and each
// round reads what other warps wrote in the previous one, so the kernel
// needs a block-wide barrier per round (__syncthreads() in CUDA,
// Kernel::push_barrier() here) — this workload is the library's stress
// test for the barrier and multi-register machinery.
//
// Bank behaviour: with one thread per pair (i derived from t by inserting
// a zero bit at the partner-distance position), each load stream covers a
// 2x-dilated address range, so RAW congestion never exceeds 2 — bitonic
// is a *well-behaved* kernel, and the interesting property is that RAP
// does not break it: the randomized layout keeps both correctness and the
// ~2 congestion level (the "no harm on good kernels" half of the paper's
// pitch; reduction and matmul carry the "rescues bad kernels" half).
//
// Each compare-exchange is five SIMD instructions (load lo -> r0,
// load hi -> r1, min/max in registers, store r0, store r1); one thread
// handles one pair, so n/2 threads run the network.

#pragma once

#include <cstdint>
#include <vector>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"

namespace rapsim::workloads {

/// Build the full bitonic sorting network kernel over x[0 .. n),
/// n a power of two multiple of 2w, using n/2 threads.
[[nodiscard]] dmm::Kernel build_bitonic_kernel(std::uint64_t n,
                                               std::uint32_t width);

/// Loop-nest IR of the network for the symbolic passes. The pair indexing
/// (insert a zero bit at the partner-distance position) is not affine, so
/// the sites are opaque callbacks analyzed by bounded enumeration; the
/// address streams depend only on the partner distance j, so the IR has
/// one lo/hi site pair per distinct j rather than per round.
[[nodiscard]] analyze::KernelDesc describe_bitonic_kernel(
    std::uint64_t n, std::uint32_t width);

struct BitonicReport {
  bool sorted = false;
  bool is_permutation = false;  // multiset of values preserved
  dmm::RunStats stats;
};

/// Fill x with pseudo-random values from `seed`, sort under `scheme`,
/// verify order and value preservation.
[[nodiscard]] BitonicReport run_bitonic_sort(core::Scheme scheme,
                                             std::uint64_t n,
                                             std::uint32_t width,
                                             std::uint32_t latency,
                                             std::uint64_t seed);

}  // namespace rapsim::workloads
