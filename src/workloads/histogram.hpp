// Histogram with privatized per-thread bins — the classic shared-memory
// atomics workload, and the library's demonstration that RAP survives an
// op class (atomics) whose same-address requests cannot merge.
//
// Each of the w threads of a warp owns a private sub-histogram of
// `bins` counters (subhist[t][b] at logical address t*bins + b) and
// processes `items_per_thread` input values with one atomic increment
// per item; a final pass reduces the sub-histograms into row 0.
//
// The trap: with `bins` a multiple of w, thread t's counter for bin b
// sits at address t*bins + b — bank (b mod w) under RAW, *independent of
// t*. On uniform data that is balls-in-bins, but on skewed data (many
// threads seeing the same value, the common real-world case) the whole
// warp lands atomically in ONE bank: distinct addresses, no merging,
// congestion w. Privatization was supposed to remove contention and its
// own layout sabotages it. Under RAP, the w sub-histogram rows carry
// distinct rotations, so even fully-skewed input spreads over the banks.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "dmm/machine.hpp"

namespace rapsim::workloads {

struct HistogramConfig {
  std::uint32_t width = 32;             // threads = w (one warp) per pass
  std::uint32_t bins = 64;              // per-thread private bins
  std::uint32_t items_per_thread = 32;  // values each thread consumes
};

struct HistogramReport {
  bool correct = false;                  // final counts match a host count
  std::vector<std::uint64_t> counts;     // the computed histogram
  dmm::RunStats stats;
};

/// Skew in [0, 1]: fraction of items that are the single hot value; the
/// rest are uniform over [0, bins). skew = 0 is uniform data, skew = 1 is
/// fully degenerate.
[[nodiscard]] std::vector<std::uint32_t> make_input(
    const HistogramConfig& config, double skew, std::uint64_t seed);

/// Loop-nest IR of the histogram for the symbolic passes. The "bin"
/// variable closes over every possible warp-uniform value (the skewed
/// case the layout trap punishes): the atomic site's addresses are
/// lane*bins + bin — distinct across lanes, yet all in bank (bin mod w)
/// under RAW when bins is a multiple of w.
[[nodiscard]] analyze::KernelDesc describe_histogram_kernel(
    const HistogramConfig& config);

/// Run the privatized histogram under `scheme` and verify the counts.
[[nodiscard]] HistogramReport run_histogram(const HistogramConfig& config,
                                            core::Scheme scheme,
                                            std::span<const std::uint32_t> input,
                                            std::uint64_t seed);

}  // namespace rapsim::workloads
