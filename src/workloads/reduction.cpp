#include "workloads/reduction.hpp"

#include <stdexcept>

#include "core/factory.hpp"

namespace rapsim::workloads {

const char* reduction_variant_name(ReductionVariant variant) noexcept {
  switch (variant) {
    case ReductionVariant::kInterleaved: return "interleaved";
    case ReductionVariant::kSequential: return "sequential";
  }
  return "?";
}

dmm::Kernel build_reduction_kernel(ReductionVariant variant, std::uint64_t n,
                                   std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % width != 0) {
    throw std::invalid_argument(
        "build_reduction_kernel: n must be a power of two multiple of w");
  }
  dmm::Kernel kernel;
  kernel.num_threads = static_cast<std::uint32_t>(n / 2);

  // Each step: active threads load their left operand into r0, add the
  // right operand (kLoadAdd), then store back — three instructions, so
  // the SIMD one-class-per-instruction rule holds.
  for (std::uint64_t active = n / 2; active >= 1; active /= 2) {
    dmm::Instruction load(kernel.num_threads), add(kernel.num_threads),
        store(kernel.num_threads);
    for (std::uint64_t t = 0; t < active; ++t) {
      std::uint64_t left = 0, right = 0;
      if (variant == ReductionVariant::kInterleaved) {
        const std::uint64_t stride = (n / 2) / active;  // 2^s
        left = t * 2 * stride;
        right = left + stride;
      } else {
        left = t;
        right = t + active;
      }
      load[t] = dmm::ThreadOp::load(left);
      add[t] = dmm::ThreadOp::load_add(right);
      store[t] = dmm::ThreadOp::store(left);
    }
    kernel.push(std::move(load));
    kernel.push(std::move(add));
    kernel.push(std::move(store));
    // Next step reads partial sums written by other warps: synchronize,
    // exactly like the __syncthreads() in the CUDA reduction kernels.
    if (active > 1) kernel.push_barrier();
  }
  return kernel;
}

ReductionReport run_reduction(ReductionVariant variant, core::Scheme scheme,
                              std::uint64_t n, std::uint32_t width,
                              std::uint32_t latency, std::uint64_t seed,
                              dmm::Trace* trace,
                              telemetry::RunTelemetry* telemetry) {
  const std::uint64_t rows = n / width;
  const auto map = core::make_matrix_map(scheme, width, rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);
  machine.set_telemetry(telemetry);

  // Values i + 1 so the expected sum n(n+1)/2 detects any dropped or
  // double-counted element.
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    machine.store(i, i + 1);
    expected += i + 1;
  }

  ReductionReport report;
  report.stats = machine.run(build_reduction_kernel(variant, n, width), trace);
  report.sum = machine.load(0);
  report.correct = report.sum == expected;
  return report;
}

}  // namespace rapsim::workloads
