#include "workloads/reduction.hpp"

#include <stdexcept>

#include "core/factory.hpp"

namespace rapsim::workloads {

const char* reduction_variant_name(ReductionVariant variant) noexcept {
  switch (variant) {
    case ReductionVariant::kInterleaved: return "interleaved";
    case ReductionVariant::kSequential: return "sequential";
  }
  return "?";
}

dmm::Kernel build_reduction_kernel(ReductionVariant variant, std::uint64_t n,
                                   std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % width != 0) {
    throw std::invalid_argument(
        "build_reduction_kernel: n must be a power of two multiple of w");
  }
  dmm::Kernel kernel;
  kernel.num_threads = static_cast<std::uint32_t>(n / 2);

  // Each step: active threads load their left operand into r0, add the
  // right operand (kLoadAdd), then store back — three instructions, so
  // the SIMD one-class-per-instruction rule holds.
  for (std::uint64_t active = n / 2; active >= 1; active /= 2) {
    dmm::Instruction load(kernel.num_threads), add(kernel.num_threads),
        store(kernel.num_threads);
    for (std::uint64_t t = 0; t < active; ++t) {
      std::uint64_t left = 0, right = 0;
      if (variant == ReductionVariant::kInterleaved) {
        const std::uint64_t stride = (n / 2) / active;  // 2^s
        left = t * 2 * stride;
        right = left + stride;
      } else {
        left = t;
        right = t + active;
      }
      load[t] = dmm::ThreadOp::load(left);
      add[t] = dmm::ThreadOp::load_add(right);
      store[t] = dmm::ThreadOp::store(left);
    }
    kernel.push(std::move(load));
    kernel.push(std::move(add));
    kernel.push(std::move(store));
    // Next step reads partial sums written by other warps: synchronize,
    // exactly like the __syncthreads() in the CUDA reduction kernels.
    if (active > 1) kernel.push_barrier();
  }
  return kernel;
}

analyze::KernelDesc describe_reduction_kernel(ReductionVariant variant,
                                              std::uint64_t n,
                                              std::uint32_t width) {
  if (n < 2 || (n & (n - 1)) != 0 || n % width != 0) {
    throw std::invalid_argument(
        "describe_reduction_kernel: n must be a power of two multiple of w");
  }
  using analyze::AccessDir;
  using analyze::AccessSite;

  analyze::KernelDesc kernel;
  kernel.name =
      std::string("reduction-") + reduction_variant_name(variant);
  kernel.width = width;
  kernel.rows = n / width;

  std::size_t step = 0;
  for (std::uint64_t active = n / 2; active >= 1; active /= 2, ++step) {
    const std::string prefix = "s" + std::to_string(step);
    // Lanes and the step's warp variable: full warps while active >= w,
    // a partial warp (and no variable) below that.
    const std::uint32_t lanes =
        active >= width ? width : static_cast<std::uint32_t>(active);
    std::int64_t warp_coeff = 0;
    std::size_t var = kernel.vars.size();
    std::string warp_var;
    if (active > width) {
      warp_var = "u" + std::to_string(step);
      kernel.vars.push_back({warp_var, active / width});
    } else {
      var = SIZE_MAX;  // single warp: no variable needed
    }

    std::int64_t lane_coeff = 0;
    std::int64_t right_offset = 0;
    if (variant == ReductionVariant::kInterleaved) {
      const std::int64_t stride =
          static_cast<std::int64_t>((n / 2) / active);  // 2^s
      lane_coeff = 2 * stride;
      warp_coeff = 2 * stride * width;
      right_offset = stride;  // left + 2^s
    } else {
      lane_coeff = 1;
      warp_coeff = width;
      right_offset = static_cast<std::int64_t>(active);  // left + n/2^(s+1)
    }

    const auto make_expr = [&](std::int64_t base) {
      analyze::AffineExpr expr;
      expr.base = base;
      expr.lane_coeff = lane_coeff;
      if (var != SIZE_MAX) {
        expr.coeffs.assign(kernel.vars.size(), 0);
        expr.coeffs[var] = warp_coeff;
      }
      return expr;
    };
    AccessSite left;
    left.name = prefix + ".left";
    left.dir = AccessDir::kStore;  // also loaded; the stream is identical
    left.lanes = lanes;
    left.warp = warp_var;
    left.flat = make_expr(0);
    AccessSite right;
    right.name = prefix + ".right";
    right.dir = AccessDir::kLoad;
    right.lanes = lanes;
    right.warp = warp_var;
    right.flat = make_expr(right_offset);
    kernel.sites.push_back(std::move(left));
    kernel.sites.push_back(std::move(right));
    // Mirror build_reduction_kernel: a __syncthreads() after every step
    // that feeds a successor (the next step reads what this one wrote).
    if (active > 1) kernel.add_barrier();
  }
  // Earlier steps referenced shorter coefficient vectors; that is fine —
  // AffineExpr treats missing trailing coefficients as zero.
  return kernel;
}

ReductionReport run_reduction(ReductionVariant variant, core::Scheme scheme,
                              std::uint64_t n, std::uint32_t width,
                              std::uint32_t latency, std::uint64_t seed,
                              dmm::Trace* trace,
                              telemetry::RunTelemetry* telemetry) {
  const std::uint64_t rows = n / width;
  const auto map = core::make_matrix_map(scheme, width, rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{width, latency}, *map);
  machine.set_telemetry(telemetry);

  // Values i + 1 so the expected sum n(n+1)/2 detects any dropped or
  // double-counted element.
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    machine.store(i, i + 1);
    expected += i + 1;
  }

  ReductionReport report;
  report.stats = machine.run(build_reduction_kernel(variant, n, width), trace);
  report.sum = machine.load(0);
  report.correct = report.sum == expected;
  return report;
}

}  // namespace rapsim::workloads
