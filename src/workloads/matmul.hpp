// w x w matrix multiply in shared memory — the workload the paper's
// Section I cites as the reason w x w tiles matter ("an efficient matrix
// multiplication for a large matrix ... repeats multiplication of [w x w]
// submatrices in the shared memory").
//
// Thread (i, j) accumulates C[i][j] = sum_k A[i][k] * B[k][j] over w
// load-multiply-accumulate steps. Two layouts for the B operand:
//
//   * ROW-MAJOR B    — step k reads A[i][k] (whole warp, one address:
//     merged, congestion 1) and B[k][j] (a row: contiguous, congestion 1).
//     Conflict-free under RAW; RAP must NOT break this (and doesn't:
//     merged stays merged, rows stay rows).
//   * TRANSPOSED B   — B is stored column-major (B^T), as happens when
//     the operand arrives transposed: step k reads Bt[j][k], a column —
//     stride access, congestion w under RAW, ~1 noise under RAP.
//
// So matmul doubles as both a "RAP does no harm" check and another
// "RAP rescues a stride" demonstration.

#pragma once

#include <cstdint>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"

namespace rapsim::workloads {

enum class MatmulLayout { kRowMajorB, kTransposedB };

[[nodiscard]] const char* matmul_layout_name(MatmulLayout layout) noexcept;

/// Memory layout: A at [0, w^2), B (or B^T) at [w^2, 2w^2), C at
/// [2w^2, 3w^2); the backing MatrixMap must have 3w rows.
struct MatmulArrays {
  std::uint32_t width = 32;
  [[nodiscard]] std::uint64_t a(std::uint64_t i, std::uint64_t j) const {
    return i * width + j;
  }
  [[nodiscard]] std::uint64_t b(std::uint64_t i, std::uint64_t j) const {
    return (static_cast<std::uint64_t>(width) + i) * width + j;
  }
  [[nodiscard]] std::uint64_t c(std::uint64_t i, std::uint64_t j) const {
    return (2ull * width + i) * width + j;
  }
  [[nodiscard]] std::uint64_t rows() const { return 3ull * width; }
};

/// Build the w^2-thread multiply kernel.
[[nodiscard]] dmm::Kernel build_matmul_kernel(MatmulLayout layout,
                                              const MatmulArrays& arrays);

/// Loop-nest IR of the multiply for the symbolic passes: warp u = thread
/// row i, lane = thread column j, loop variable k = the accumulation
/// step. All four access sites are affine.
[[nodiscard]] analyze::KernelDesc describe_matmul_kernel(
    MatmulLayout layout, const MatmulArrays& arrays);

struct MatmulReport {
  bool correct = false;
  dmm::RunStats stats;
};

/// Fill A and B with small deterministic values, multiply under `scheme`,
/// verify C against a host-side reference product.
[[nodiscard]] MatmulReport run_matmul(MatmulLayout layout,
                                      core::Scheme scheme,
                                      std::uint32_t width,
                                      std::uint32_t latency,
                                      std::uint64_t seed);

}  // namespace rapsim::workloads
