// Parallel sum-reduction in shared memory — the second classic
// bank-conflict workload after transpose.
//
// Reduce n = rows * w values to one sum in log2(n) SIMD steps. Two
// textbook variants:
//
//   * INTERLEAVED — step s combines x[i] += x[i + 2^s] for i multiple of
//     2^(s+1). The active threads' addresses are 2^(s+1) apart: a
//     power-of-two stride that costs min(2^(s+1), w)-way bank conflicts
//     under RAW (this is the exact example in NVIDIA's reduction
//     optimization deck).
//   * SEQUENTIAL — step s combines x[t] += x[t + n/2^(s+1)] for
//     t < n/2^(s+1): both address streams are contiguous, conflict-free
//     under RAW.
//
// RAP turns the interleaved variant's conflicts into the ~3.5 noise floor
// automatically — the "developer need not know the trick" story on a
// second workload.

#pragma once

#include <cstdint>

#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"
#include "dmm/kernel.hpp"
#include "dmm/machine.hpp"
#include "telemetry/run_telemetry.hpp"

namespace rapsim::workloads {

enum class ReductionVariant { kInterleaved, kSequential };

[[nodiscard]] const char* reduction_variant_name(
    ReductionVariant variant) noexcept;

/// Build the reduction kernel over x[0 .. n), n = a power of two multiple
/// of w, using n/2 threads. After execution the sum is in x[0].
[[nodiscard]] dmm::Kernel build_reduction_kernel(ReductionVariant variant,
                                                 std::uint64_t n,
                                                 std::uint32_t width);

/// Loop-nest IR of the reduction for the symbolic passes. Each step s
/// contributes two sites — the left stream (read AND written back) and
/// the right stream — with the step's stride baked in as constants and
/// its own warp variable (the active thread count halves every step).
[[nodiscard]] analyze::KernelDesc describe_reduction_kernel(
    ReductionVariant variant, std::uint64_t n, std::uint32_t width);

struct ReductionReport {
  bool correct = false;       // x[0] == sum of inputs
  std::uint64_t sum = 0;      // computed sum
  dmm::RunStats stats;
};

/// Fill x[0..n) with deterministic values, run the reduction under
/// `scheme`, verify the sum. A non-null `trace` receives the dispatch
/// records and a non-null `telemetry` sink the per-bank/congestion
/// telemetry of the run (rapsim_profile uses both).
[[nodiscard]] ReductionReport run_reduction(
    ReductionVariant variant, core::Scheme scheme, std::uint64_t n,
    std::uint32_t width, std::uint32_t latency, std::uint64_t seed,
    dmm::Trace* trace = nullptr,
    telemetry::RunTelemetry* telemetry = nullptr);

}  // namespace rapsim::workloads
