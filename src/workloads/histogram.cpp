#include "workloads/histogram.hpp"

#include <stdexcept>

#include "core/factory.hpp"
#include "util/rng.hpp"

namespace rapsim::workloads {

std::vector<std::uint32_t> make_input(const HistogramConfig& config,
                                      double skew, std::uint64_t seed) {
  util::Pcg32 rng(seed, /*stream=*/0x68697374ull);
  std::vector<std::uint32_t> input(
      static_cast<std::size_t>(config.width) * config.items_per_thread);
  constexpr std::uint32_t kHotValue = 0;
  for (auto& item : input) {
    const bool hot = util::uniform01(rng) < skew;
    item = hot ? kHotValue : rng.bounded(config.bins);
  }
  return input;
}

analyze::KernelDesc describe_histogram_kernel(const HistogramConfig& config) {
  if (config.bins == 0 || config.bins % config.width != 0) {
    throw std::invalid_argument(
        "describe_histogram_kernel: bins must be a multiple of width");
  }
  using analyze::AccessDir;
  using analyze::AccessSite;
  const std::int64_t bins = config.bins;

  analyze::KernelDesc kernel;
  kernel.name = "histogram";
  kernel.width = config.width;
  kernel.rows = config.bins + 1;  // w sub-histograms + the scratch row
  kernel.vars = {{"bin", config.bins}};

  // The broadcast load of the increment constant: one address, merged.
  AccessSite load_one;
  load_one.name = "load scratch(1)";
  load_one.dir = AccessDir::kLoad;
  load_one.flat = {static_cast<std::int64_t>(config.width) * bins, 0, {0}};

  // subhist[t][bin] = t*bins + bin for a warp-uniform bin value.
  AccessSite increment;
  increment.name = "atomic subhist[t][bin]";
  increment.dir = AccessDir::kAtomic;
  increment.flat = {0, bins, {1}};

  kernel.sites = {std::move(load_one), std::move(increment)};
  return kernel;
}

HistogramReport run_histogram(const HistogramConfig& config,
                              core::Scheme scheme,
                              std::span<const std::uint32_t> input,
                              std::uint64_t seed) {
  const std::uint32_t w = config.width;
  const std::uint32_t bins = config.bins;
  if (bins % w != 0) {
    throw std::invalid_argument(
        "run_histogram: bins must be a multiple of width (the layout-trap "
        "configuration this workload studies)");
  }
  if (input.size() != static_cast<std::size_t>(w) * config.items_per_thread) {
    throw std::invalid_argument("run_histogram: input size mismatch");
  }

  // Memory: w private sub-histograms of `bins` counters, then one scratch
  // word holding the constant 1 for the atomic increments.
  const std::uint64_t counters = static_cast<std::uint64_t>(w) * bins;
  const std::uint64_t scratch = counters;
  const std::uint64_t rows = (counters + w) / w;  // bins + 1 rows
  const auto map = core::make_matrix_map(scheme, w, rows, seed);
  dmm::Dmm machine(dmm::DmmConfig{w, 1}, *map);
  machine.store(scratch, 1);

  dmm::Kernel kernel{w, {}, {}};
  {
    dmm::Instruction load_one(w);
    for (std::uint32_t t = 0; t < w; ++t) {
      load_one[t] = dmm::ThreadOp::load(scratch, 0);  // merged: 1 request
    }
    kernel.push(std::move(load_one));
  }
  for (std::uint32_t item = 0; item < config.items_per_thread; ++item) {
    dmm::Instruction increment(w);
    for (std::uint32_t t = 0; t < w; ++t) {
      const std::uint32_t value = input[item * w + t];
      increment[t] = dmm::ThreadOp::atomic_add(
          static_cast<std::uint64_t>(t) * bins + value, 0);
    }
    kernel.push(std::move(increment));
  }

  HistogramReport report;
  report.stats = machine.run(kernel);

  // Reduce the private sub-histograms host-side and verify.
  report.counts.assign(bins, 0);
  for (std::uint32_t t = 0; t < w; ++t) {
    for (std::uint32_t b = 0; b < bins; ++b) {
      report.counts[b] +=
          machine.load(static_cast<std::uint64_t>(t) * bins + b);
    }
  }
  std::vector<std::uint64_t> expected(bins, 0);
  for (const std::uint32_t value : input) ++expected[value];
  report.correct = report.counts == expected;
  return report;
}

}  // namespace rapsim::workloads
