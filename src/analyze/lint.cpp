#include "analyze/lint.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>

#include "telemetry/json.hpp"

namespace rapsim::analyze {

namespace {

std::string format_bound(const CongestionCertificate& cert) {
  std::ostringstream out;
  if (cert.exact()) {
    out << static_cast<std::uint64_t>(cert.bound);
  } else {
    out.precision(3);
    out << "E<=" << cert.bound;
  }
  return out.str();
}

std::string format_bound_value(double bound) {
  std::ostringstream out;
  if (bound == static_cast<double>(static_cast<std::uint64_t>(bound))) {
    out << static_cast<std::uint64_t>(bound);
  } else {
    out.precision(3);
    out << bound;
  }
  return out.str();
}

std::string witness_string(const SiteAnalysis& analysis) {
  std::ostringstream out;
  for (std::size_t v = 0; v < analysis.witness.size(); ++v) {
    if (v != 0) out << ", ";
    out << analysis.witness[v].first << "=" << analysis.witness[v].second;
  }
  return out.str();
}

/// Propose a scheme change if it provably lowers this site's bound.
/// Returns the repaired bound when a fix-it was added.
std::optional<double> try_scheme_fixit(const KernelDesc& kernel,
                                       const AccessSite& site,
                                       const SiteAnalysis& current,
                                       core::Scheme candidate,
                                       const std::string& action,
                                       std::vector<FixIt>& fixits) {
  const SiteAnalysis repaired = analyze_site(kernel, site, candidate);
  if (repaired.out_of_bounds || repaired.cert.bound >= current.cert.bound) {
    return std::nullopt;
  }
  std::ostringstream detail;
  detail << "worst-warp congestion drops from " << format_bound(current.cert)
         << " to " << format_bound(repaired.cert) << " (rule "
         << repaired.cert.rule << ")";
  fixits.push_back({action, detail.str()});
  return repaired.cert.bound;
}

/// Propose swapping the lane with a loop variable (the "transpose the
/// traversal" repair) when re-analysis proves it helps. Flat sites only:
/// the swap is a syntactic exchange of coefficients. Returns the
/// repaired bound when a fix-it was added.
std::optional<double> try_swap_fixit(const KernelDesc& kernel,
                                     const AccessSite& site,
                                     const SiteAnalysis& current,
                                     core::Scheme scheme,
                                     std::vector<FixIt>& fixits) {
  if (site.form != IndexForm::kFlat) return std::nullopt;
  for (std::size_t v = 0; v < kernel.vars.size(); ++v) {
    if (site.flat.coeff(v) == site.flat.lane_coeff) continue;
    if (kernel.vars[v].count < kernel.width) continue;  // not a full swap
    AccessSite swapped = site;
    swapped.flat.coeffs.assign(kernel.vars.size(), 0);
    for (std::size_t u = 0; u < kernel.vars.size(); ++u) {
      swapped.flat.coeffs[u] = site.flat.coeff(u);
    }
    std::swap(swapped.flat.lane_coeff, swapped.flat.coeffs[v]);
    const SiteAnalysis repaired = analyze_site(kernel, swapped, scheme);
    if (repaired.out_of_bounds ||
        repaired.cert.bound >= current.cert.bound) {
      continue;
    }
    std::ostringstream detail;
    detail << "exchange lane with loop variable '" << kernel.vars[v].name
           << "': worst-warp congestion drops from "
           << format_bound(current.cert) << " to "
           << format_bound(repaired.cert) << " (rule " << repaired.cert.rule
           << ")";
    fixits.push_back({"swap loop order", detail.str()});
    return repaired.cert.bound;  // one swap suggestion is enough
  }
  return std::nullopt;
}

/// Propose the synthesized mapping when its certified per-site bound
/// beats the current one, quantifying the edge over the best fixed
/// fix-it (the ones above re-analyze under a FIXED scheme; synthesis
/// searched the whole permute-shift family).
void try_synth_fixit(const SynthesisResult& synthesis, std::size_t site_index,
                     const SiteAnalysis& current, double best_fixed,
                     std::vector<FixIt>& fixits) {
  if (site_index >= synthesis.site_bounds.size()) return;
  const double bound = synthesis.site_bounds[site_index];
  if (bound >= current.cert.bound) return;
  std::ostringstream detail;
  detail << "apply synthesized mapping " << synthesis.mapping.spec()
         << ": worst-warp congestion drops from "
         << format_bound(current.cert) << " to "
         << format_bound_value(bound) << " (rule "
         << synthesis.certificate.rule << "; witness "
         << witness_kind_name(synthesis.witness.kind) << "/"
         << synthesis.witness.reason << "); ";
  if (best_fixed == std::numeric_limits<double>::infinity()) {
    detail << "no fixed fix-it applies";
  } else if (bound < best_fixed) {
    detail << "beats the best fixed fix-it (" << format_bound_value(best_fixed)
           << ") by " << format_bound_value(best_fixed - bound);
  } else {
    detail << "matches the best fixed fix-it ("
           << format_bound_value(best_fixed) << ") with a certified witness";
  }
  fixits.push_back({"SYNTHESIZE", detail.str()});
}

/// Would a barrier at `pos` still leave `finding`'s pair in one phase?
bool pair_races(const RaceAnalysis& analysis, std::size_t first_site,
                std::size_t second_site) {
  for (const RaceFinding& f : analysis.findings) {
    if (f.first.site_index == first_site &&
        f.second.site_index == second_site) {
      return true;
    }
  }
  return false;
}

/// INSERT-BARRIER fix-it: place a __syncthreads() directly before the
/// second site of the racing pair and re-run the happens-before pass.
/// Suggested only when the re-analysis PROVES the pair stops racing —
/// the detail says whether the whole kernel becomes certified race-free
/// or other pairs still race. A site racing with itself across warps
/// has no separating position, so no fix-it is offered.
std::vector<FixIt> try_barrier_fixit(const KernelDesc& kernel,
                                     const RaceFinding& finding) {
  std::vector<FixIt> fixits;
  const std::size_t i = finding.first.site_index;
  const std::size_t j = finding.second.site_index;
  if (i == j) return fixits;

  KernelDesc repaired = kernel;
  repaired.barriers.push_back(j);  // any position in (i, j] separates them
  std::sort(repaired.barriers.begin(), repaired.barriers.end());
  RaceAnalysis re = analyze_races(repaired);
  if (pair_races(re, i, j)) return fixits;

  std::ostringstream detail;
  detail << "insert __syncthreads() before site '" << finding.second.site
         << "' (barrier position " << j << "): ";
  if (re.race_free()) {
    detail << "re-analysis certifies the kernel race-free ("
           << re.pairs_checked << " pair(s) proven disjoint)";
  } else if (re.findings.empty()) {
    detail << "the pair stops racing and no other race is found (analysis "
           << "not exhaustive: no certificate)";
  } else {
    detail << "the pair stops racing; " << re.findings.size()
           << " other finding(s) remain";
  }
  fixits.push_back({"INSERT-BARRIER", detail.str()});
  return fixits;
}

void race_access_json(telemetry::JsonWriter& json, const RaceAccess& access) {
  json.begin_object();
  json.kv("site", access.site);
  json.kv("dir", access_dir_name(access.dir));
  json.kv("lane", static_cast<std::uint64_t>(access.lane));
  json.kv("warp", access.warp);
  json.kv("address", access.address);
  json.key("binding");
  json.begin_object();
  for (const auto& [name, value] : access.binding) json.kv(name, value);
  json.end_object();
  json.end_object();
}

}  // namespace

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool LintReport::clean() const noexcept {
  return severity() == Severity::kInfo;
}

Severity LintReport::severity() const noexcept {
  Severity top = Severity::kInfo;
  if (races && !races->findings.empty()) top = Severity::kError;
  for (const Diagnostic& diag : diagnostics) {
    if (static_cast<int>(diag.severity) > static_cast<int>(top)) {
      top = diag.severity;
    }
  }
  return top;
}

LintReport lint_kernel(const KernelDesc& kernel, core::Scheme scheme) {
  return lint_kernel(kernel, scheme, LintOptions{});
}

LintReport lint_kernel(const KernelDesc& kernel, core::Scheme scheme,
                       const LintOptions& options) {
  const KernelAnalysis analysis = analyze_kernel(kernel, scheme);

  LintReport report;
  report.kernel = kernel.name;
  report.width = kernel.width;
  report.rows = kernel.rows;
  report.scheme = scheme;
  report.worst = analysis.worst;
  report.worst_site = analysis.worst_site;

  if (options.synthesize && !analysis.any_out_of_bounds &&
      !kernel.sites.empty() && kernel.width <= 64) {
    report.synthesis = synthesize_mapping(kernel, options.synth);
  }

  if (options.races) {
    report.races = analyze_races(kernel);
    report.race_fixits.reserve(report.races->findings.size());
    for (const RaceFinding& finding : report.races->findings) {
      report.race_fixits.push_back(try_barrier_fixit(kernel, finding));
    }
  }

  for (std::size_t s = 0; s < analysis.sites.size(); ++s) {
    const SiteAnalysis& sa = analysis.sites[s];
    const AccessSite& site = kernel.sites[s];
    Diagnostic diag;
    diag.site = sa.site;
    diag.dir = sa.dir;
    diag.analysis = sa;

    std::ostringstream message;
    if (sa.out_of_bounds) {
      diag.severity = Severity::kError;
      message << "some binding addresses words [" << sa.address_low << ", "
              << sa.address_high << "], outside the " << kernel.size()
              << "-word memory (witness " << witness_string(sa) << ")";
    } else if (sa.cert.exact() && sa.cert.bound > 1.0) {
      diag.severity = Severity::kWarning;
      message << "worst warp serializes "
              << static_cast<std::uint64_t>(sa.cert.bound)
              << "-way on a bank every run (rule " << sa.cert.rule
              << "; witness " << witness_string(sa) << ")";
      double best_fixed = std::numeric_limits<double>::infinity();
      const auto note = [&best_fixed](std::optional<double> repaired) {
        if (repaired) best_fixed = std::min(best_fixed, *repaired);
      };
      note(try_scheme_fixit(kernel, site, sa, core::Scheme::kPad,
                            "apply PAD(+1)", diag.fixits));
      note(try_scheme_fixit(kernel, site, sa, core::Scheme::kRap,
                            "apply RAP", diag.fixits));
      note(try_swap_fixit(kernel, site, sa, scheme, diag.fixits));
      if (report.synthesis) {
        try_synth_fixit(*report.synthesis, s, sa, best_fixed, diag.fixits);
      }
    } else if (sa.cert.exact()) {
      message << "conflict-free: worst-warp congestion 1 over all "
              << sa.binding_count << " bindings (rule " << sa.cert.rule
              << ")";
    } else {
      message << "expected worst-warp congestion <= " << sa.cert.bound
              << " under randomized " << core::scheme_name(scheme)
              << " (rule " << sa.cert.rule << ")";
    }
    diag.message = message.str();
    report.diagnostics.push_back(std::move(diag));
  }
  return report;
}

std::string lint_report_json(const LintReport& report) {
  telemetry::JsonWriter json;
  json.begin_object();
  json.kv("kernel", report.kernel);
  json.kv("width", static_cast<std::uint64_t>(report.width));
  json.kv("rows", report.rows);
  json.kv("scheme", core::scheme_name(report.scheme));
  json.kv("severity", severity_name(report.severity()));
  json.kv("clean", report.clean());
  json.key("worst");
  json.raw_value(report.worst.to_json());
  json.kv("worst_site",
          report.worst_site < report.diagnostics.size()
              ? report.diagnostics[report.worst_site].site
              : std::string());
  json.key("diagnostics");
  json.begin_array();
  for (const Diagnostic& diag : report.diagnostics) {
    const SiteAnalysis& sa = diag.analysis;
    json.begin_object();
    json.kv("severity", severity_name(diag.severity));
    json.kv("site", diag.site);
    json.kv("dir", access_dir_name(diag.dir));
    json.kv("message", diag.message);
    json.key("certificate");
    json.raw_value(sa.cert.to_json());
    json.kv("rule", sa.cert.rule);
    json.kv("coverage", coverage_name(sa.coverage));
    json.kv("bindings", sa.binding_count);
    json.kv("classes", sa.classes_analyzed);
    json.kv("out_of_bounds", sa.out_of_bounds);
    json.key("witness");
    json.begin_object();
    for (const auto& [name, value] : sa.witness) json.kv(name, value);
    json.end_object();
    json.key("witness_trace");
    json.begin_array();
    for (const std::uint64_t addr : sa.witness_trace) json.value(addr);
    json.end_array();
    json.key("fixits");
    json.begin_array();
    for (const FixIt& fixit : diag.fixits) {
      json.begin_object();
      json.kv("action", fixit.action);
      json.kv("detail", fixit.detail);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  if (report.races) {
    const RaceAnalysis& races = *report.races;
    json.key("races");
    json.begin_object();
    json.kv("phases", static_cast<std::uint64_t>(races.phases));
    json.kv("pairs_checked", races.pairs_checked);
    json.kv("exhaustive", races.exhaustive);
    json.kv("race_free", races.race_free());
    json.key("findings");
    json.begin_array();
    for (std::size_t f = 0; f < races.findings.size(); ++f) {
      const RaceFinding& finding = races.findings[f];
      json.begin_object();
      json.kv("kind", race_kind_name(finding.kind));
      json.kv("phase", static_cast<std::uint64_t>(finding.phase));
      json.kv("detail", finding.detail);
      json.key("first");
      race_access_json(json, finding.first);
      json.key("second");
      race_access_json(json, finding.second);
      json.key("fixits");
      json.begin_array();
      if (f < report.race_fixits.size()) {
        for (const FixIt& fixit : report.race_fixits[f]) {
          json.begin_object();
          json.kv("action", fixit.action);
          json.kv("detail", fixit.detail);
          json.end_object();
        }
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    if (races.certificate) {
      json.key("certificate");
      json.raw_value(races.certificate->to_json());
    }
    json.end_object();
  }
  if (report.synthesis) {
    json.key("synthesis");
    json.raw_value(report.synthesis->to_json());
  }
  json.end_object();
  return json.str();
}

std::string lint_report_text(const LintReport& report) {
  std::ostringstream out;
  out << report.kernel << " (w=" << report.width << ", rows=" << report.rows
      << ", scheme=" << core::scheme_name(report.scheme) << "): "
      << (report.clean() ? "clean" : severity_name(report.severity()))
      << ", worst-warp bound " << format_bound(report.worst) << "\n";
  for (const Diagnostic& diag : report.diagnostics) {
    out << "  [" << severity_name(diag.severity) << "] "
        << access_dir_name(diag.dir) << " '" << diag.site
        << "': " << diag.message << "\n";
    for (const FixIt& fixit : diag.fixits) {
      out << "      fix-it: " << fixit.action << " — " << fixit.detail
          << "\n";
    }
  }
  if (report.races) {
    const RaceAnalysis& races = *report.races;
    if (races.race_free()) {
      out << "  races: none — certified over " << races.pairs_checked
          << " conflicting pair(s) across " << races.phases << " phase(s)\n";
    } else if (races.findings.empty()) {
      out << "  races: none found, but the analysis was not exhaustive ("
          << races.pairs_checked << " pair(s) sampled)\n";
    }
    for (std::size_t f = 0; f < races.findings.size(); ++f) {
      out << "  [error] " << races.findings[f].to_string() << "\n";
      if (f < report.race_fixits.size()) {
        for (const FixIt& fixit : report.race_fixits[f]) {
          out << "      fix-it: " << fixit.action << " — " << fixit.detail
              << "\n";
        }
      }
    }
  }
  if (report.synthesis) {
    const SynthesisResult& synth = *report.synthesis;
    out << "  synthesized: " << synth.mapping.spec() << "\n"
        << "      certified bound " << format_bound(synth.certificate)
        << " (rule " << synth.certificate.rule << "), witness "
        << witness_kind_name(synth.witness.kind) << "/"
        << synth.witness.reason << " (lower bound "
        << format_bound_value(synth.witness.lower_bound) << "): "
        << synth.witness.detail << "\n"
        << "      searched " << synth.candidates << " candidates over "
        << synth.classes << " congestion classes (baseline RAW bound "
        << format_bound_value(synth.baseline_bound) << ")\n";
  }
  return out.str();
}

}  // namespace rapsim::analyze
