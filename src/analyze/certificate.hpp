// Symbolic congestion prover (static analysis, pillar 2).
//
// For a classified access pattern (analyze/affine.hpp) and a scheme, derive
// the warp's congestion analytically and emit a machine-readable
// certificate: the claim, which proof rule fired, and whether the bound is
// exact or an expected-value envelope. The rules mirror the paper:
//
//   crcw-merge            all lanes share one address -> exact 1 (Fig 2(3))
//   row-local             one row, any rotation scheme -> exact 1
//                         (distinct columns + a common shift stay distinct)
//   raw-gcd / raw-gcd-1d  RAW bank is the column alone: multiplicity of an
//                         arithmetic progression mod w -> exact
//                         ceil(n / (w / gcd(step, w)))    (Table I "w")
//   pad-gcd               PAD skews by the row: effective column step
//                         becomes col_step + row_step -> same gcd law
//   rap-distinct-shifts   RAP column-constant access down distinct rows:
//                         the permutation makes the shifts of any aligned
//                         row window distinct -> exact gcd(row_step, w)
//                         (= 1 for stride access: Theorem 2, det. part)
//   rap-fixed-shift       row_step multiple of w: one shift applies to the
//                         whole warp -> reduces to the RAW gcd law
//   ras-balls-in-bins     RAS down distinct rows: i.i.d. uniform shifts ->
//                         E[C] <= 3 ln w / ln ln w + 1 (Lemma 4 + union)
//   theorem2-envelope     any other randomized case ->
//                         E[C] <= 6 ln w / ln ln w + 1 (Theorem 2)
//   direct-eval           deterministic scheme, non-affine stream: banks
//                         are a closed form of the address, so evaluate
//                         them without instantiating a map -> exact
//
// Certificates are cross-checked against the Monte Carlo simulator by
// tests/differential_static_test.cpp over every (scheme, width, stride).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analyze/affine.hpp"
#include "core/mapping.hpp"

namespace rapsim::analyze {

/// Is the bound an exact congestion value (every draw of the scheme's
/// randomness attains it) or an upper bound on the expectation?
enum class BoundKind { kExact, kExpectedUpper };

struct CongestionCertificate {
  core::Scheme scheme = core::Scheme::kRaw;
  BoundKind kind = BoundKind::kExact;
  double bound = 0.0;
  std::string rule;     // machine-readable rule id (see header comment)
  std::string claim;    // human-readable one-line statement
  std::string pattern;  // AffineClass::describe() of the proven pattern

  [[nodiscard]] bool exact() const noexcept {
    return kind == BoundKind::kExact;
  }
  /// One-line JSON object {"scheme":...,"rule":...,"bound":...,...}.
  [[nodiscard]] std::string to_json() const;
};

/// Prove the congestion of a classified pattern under `scheme` (one of the
/// 2-D family: kRaw, kPad, kRas, kRap). Throws std::invalid_argument for
/// other schemes or for kNotAffine input (use prove_trace for raw streams).
[[nodiscard]] CongestionCertificate prove_congestion(const AffineClass& cls,
                                                     core::Scheme scheme);

/// Classify-then-prove one warp trace. Non-affine streams do not fail:
/// deterministic schemes get an exact direct-eval certificate (the bank of
/// an address is a closed form, no map instance needed) and randomized
/// schemes get the Theorem 2 envelope.
[[nodiscard]] CongestionCertificate prove_trace(
    std::span<const std::uint64_t> trace, std::uint32_t width,
    std::uint64_t size, core::Scheme scheme);

/// Certificate for the worst warp of a multi-warp trace: the per-warp
/// bounds' maximum, exact only if every warp's certificate is exact. The
/// rule/claim/pattern fields are those of the warp attaining the maximum.
[[nodiscard]] CongestionCertificate prove_worst_warp(
    const std::vector<std::vector<std::uint64_t>>& traces, std::uint32_t width,
    std::uint64_t size, core::Scheme scheme);

}  // namespace rapsim::analyze
