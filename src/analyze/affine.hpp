// Affine classification of warp address streams (static analysis, pillar 1).
//
// The paper's Table I facts are not simulation artifacts: they are provable
// from the *form* of the access pattern alone. The prover in
// analyze/certificate.hpp fires symbolic rules on patterns of the shape
//
//   1-D:  a(t) = (base + stride * t) mod m            (flat affine)
//   2-D:  i(t) = row0 + row_step * t                  (matrix affine)
//         j(t) = (col0 + col_step * t) mod w
//
// where t is the thread lane (0-based position in the warp trace). The 2-D
// form is the native language of the MatrixMap schemes — contiguous access
// is (row_step, col_step) = (0, 1), stride access is (1, 0), diagonal
// access is (1, 1) — and it is checked first because it carries strictly
// more information (the prover needs the row trajectory to reason about
// the per-row rotations of RAS/RAP/PAD). Streams that fit neither form are
// rejected with a human-readable reason; the prover then falls back to
// direct closed-form bank evaluation (deterministic schemes) or the
// Theorem 2 envelope (randomized schemes).

#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace rapsim::analyze {

enum class AffineKind {
  kEmpty,      // zero addresses: nothing to dispatch
  kConstant,   // every thread touches the same address (CRCW merge)
  kAffine2d,   // (row0 + row_step*t, (col0 + col_step*t) mod w)
  kAffine1d,   // (base + stride*t) mod m
  kNotAffine,  // rejected; see `reason`
};

[[nodiscard]] const char* affine_kind_name(AffineKind kind) noexcept;

/// Result of classifying one warp trace. Only the fields of the matched
/// kind are meaningful; `describe()` renders the matched form.
struct AffineClass {
  AffineKind kind = AffineKind::kNotAffine;
  std::uint32_t width = 0;   // banks (the paper's w)
  std::uint64_t size = 0;    // addressable words (the modulus m)
  std::size_t threads = 0;   // trace length

  // kAffine1d: a(t) = (base + stride * t) mod size.
  std::uint64_t base = 0;
  std::uint64_t stride = 0;  // canonical representative in [0, size)

  // kAffine2d: rows are plain integers (no wrap), columns wrap mod width.
  std::uint64_t row0 = 0;
  std::uint64_t col0 = 0;
  std::int64_t row_step = 0;
  std::uint32_t col_step = 0;  // canonical representative in [0, width)

  std::string reason;  // non-empty iff kind == kNotAffine

  /// One-line rendering of the matched form, e.g.
  /// "2-D affine: (i, j)(t) = (3 + 1*t, (0 + 0*t) mod 32)".
  [[nodiscard]] std::string describe() const;
};

/// Classify the logical addresses one warp issues against a memory of
/// `width` banks and `size` words. Addresses must be < size (out-of-range
/// streams are rejected as not-affine with a reason, never thrown on —
/// the sanitizer, not the classifier, polices bounds).
[[nodiscard]] AffineClass classify_warp(std::span<const std::uint64_t> trace,
                                        std::uint32_t width,
                                        std::uint64_t size);

}  // namespace rapsim::analyze
