#include "analyze/kernelir.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace rapsim::analyze {

std::int64_t AffineExpr::eval(std::uint32_t lane,
                              std::span<const std::uint64_t> binding) const {
  std::int64_t value = base + lane_coeff * static_cast<std::int64_t>(lane);
  for (std::size_t v = 0; v < coeffs.size() && v < binding.size(); ++v) {
    value += coeffs[v] * static_cast<std::int64_t>(binding[v]);
  }
  return value;
}

std::string AffineExpr::describe(const std::vector<LoopVar>& vars) const {
  std::ostringstream out;
  out << base;
  if (lane_coeff != 0) out << " + " << lane_coeff << "*lane";
  for (std::size_t v = 0; v < coeffs.size(); ++v) {
    if (coeffs[v] == 0) continue;
    out << " + " << coeffs[v] << "*"
        << (v < vars.size() ? vars[v].name : "?");
  }
  return out.str();
}

const char* access_dir_name(AccessDir dir) noexcept {
  switch (dir) {
    case AccessDir::kLoad: return "load";
    case AccessDir::kStore: return "store";
    case AccessDir::kAtomic: return "atomic";
  }
  return "?";
}

std::size_t KernelDesc::var_index(std::string_view var_name) const noexcept {
  for (std::size_t v = 0; v < vars.size(); ++v) {
    if (vars[v].name == var_name) return v;
  }
  return vars.size();
}

std::uint64_t KernelDesc::binding_count() const noexcept {
  std::uint64_t total = 1;
  for (const LoopVar& var : vars) {
    if (var.count != 0 &&
        total > std::numeric_limits<std::uint64_t>::max() / var.count) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    total *= var.count;
  }
  return total;
}

std::size_t KernelDesc::site_phase(std::size_t s) const noexcept {
  std::size_t phase = 0;
  for (const std::size_t b : barriers) {
    if (b <= s) ++phase;
  }
  return phase;
}

std::size_t KernelDesc::num_phases() const noexcept {
  return barriers.size() + 1;
}

std::vector<std::string> validate_kernel(const KernelDesc& kernel) {
  std::vector<std::string> errors;
  const auto fail = [&](const std::string& what) { errors.push_back(what); };

  if (kernel.width == 0) fail("width must be positive");
  if (kernel.rows == 0) fail("rows must be positive");
  std::unordered_set<std::string> names;
  for (const LoopVar& var : kernel.vars) {
    if (var.name.empty() || var.name == "lane" || var.name == "const") {
      fail("variable name '" + var.name + "' is empty or reserved");
    }
    if (!names.insert(var.name).second) {
      fail("duplicate variable '" + var.name + "'");
    }
    if (var.count == 0) fail("variable '" + var.name + "' has zero range");
  }
  if (kernel.sites.empty()) fail("kernel has no access sites");
  std::unordered_set<std::string> site_names;
  for (const AccessSite& site : kernel.sites) {
    const std::string where = "site '" + site.name + "': ";
    if (!site_names.insert(site.name).second) {
      fail("duplicate site '" + site.name + "'");
    }
    if (site.lanes > kernel.width) {
      fail(where + "active lanes exceed the warp width");
    }
    if (!site.warp.empty() &&
        kernel.var_index(site.warp) == kernel.vars.size()) {
      fail(where + "warp attribute names unknown variable '" + site.warp +
           "'");
    }
    const auto check_expr = [&](const AffineExpr& expr, const char* which) {
      if (expr.coeffs.size() > kernel.vars.size()) {
        fail(where + std::string(which) +
             " has more coefficients than kernel variables");
      }
    };
    switch (site.form) {
      case IndexForm::kFlat:
        check_expr(site.flat, "flat index");
        break;
      case IndexForm::kRowCol:
        check_expr(site.row, "row index");
        check_expr(site.col, "column index");
        break;
      case IndexForm::kOpaque:
        if (!site.opaque) fail(where + "opaque site has no callback");
        break;
    }
  }
  for (std::size_t b = 0; b < kernel.barriers.size(); ++b) {
    if (kernel.barriers[b] > kernel.sites.size()) {
      fail("barrier position " + std::to_string(kernel.barriers[b]) +
           " is past the last site");
    }
    if (b > 0 && kernel.barriers[b] < kernel.barriers[b - 1]) {
      fail("barrier positions are not sorted");
    }
  }
  return errors;
}

std::vector<std::int64_t> materialize_site(
    const KernelDesc& kernel, const AccessSite& site,
    std::span<const std::uint64_t> binding) {
  const std::uint32_t n = site.lanes == 0 ? kernel.width : site.lanes;
  const std::int64_t w = static_cast<std::int64_t>(kernel.width);
  std::vector<std::int64_t> trace;
  trace.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) {
    switch (site.form) {
      case IndexForm::kFlat:
        trace.push_back(site.flat.eval(t, binding));
        break;
      case IndexForm::kRowCol: {
        std::int64_t row = site.row.eval(t, binding);
        if (site.row_mod != 0) {
          const std::int64_t m = static_cast<std::int64_t>(site.row_mod);
          row = ((row % m) + m) % m;
        }
        row += site.row_base;
        const std::int64_t col =
            ((site.col.eval(t, binding) % w) + w) % w;
        trace.push_back(row * w + col);
        break;
      }
      case IndexForm::kOpaque:
        trace.push_back(
            static_cast<std::int64_t>(site.opaque(t, binding)));
        break;
    }
  }
  return trace;
}

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("kernel text, line " + std::to_string(line) +
                              ": " + what);
}

std::int64_t parse_int(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    if (used != token.size()) parse_fail(line, "bad integer '" + token + "'");
    return value;
  } catch (const std::invalid_argument&) {
    parse_fail(line, "bad integer '" + token + "'");
  } catch (const std::out_of_range&) {
    parse_fail(line, "integer out of range '" + token + "'");
  }
}

/// Parse affine terms "lane=1 u=32 const=5" into `expr`; stops at (and
/// consumes nothing of) a token in `stop_words`. Returns extra key-value
/// options ("mod", "base", "lanes") via `options`.
void parse_terms(const KernelDesc& kernel, std::vector<std::string>& tokens,
                 std::size_t& pos, std::size_t line, AffineExpr& expr,
                 const std::vector<std::string>& stop_words,
                 std::vector<std::pair<std::string, std::int64_t>>* options) {
  expr.coeffs.assign(kernel.vars.size(), 0);
  for (; pos < tokens.size(); ++pos) {
    const std::string& token = tokens[pos];
    if (std::find(stop_words.begin(), stop_words.end(), token) !=
        stop_words.end()) {
      return;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      parse_fail(line, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::int64_t value = parse_int(token.substr(eq + 1), line);
    if (key == "lane") {
      expr.lane_coeff = value;
    } else if (key == "const") {
      expr.base = value;
    } else if (key == "mod" || key == "base" || key == "lanes") {
      if (options == nullptr) {
        parse_fail(line, "'" + key + "' is not valid here");
      }
      options->emplace_back(key, value);
    } else {
      const std::size_t v = kernel.var_index(key);
      if (v == kernel.vars.size()) {
        parse_fail(line, "unknown variable '" + key + "'");
      }
      expr.coeffs[v] = value;
    }
  }
}

}  // namespace

KernelDesc parse_kernel_text(const std::string& text,
                             std::uint32_t default_width) {
  KernelDesc kernel;
  kernel.width = default_width;

  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const std::size_t hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.erase(hash);
    std::istringstream words(raw_line);
    std::vector<std::string> tokens;
    for (std::string word; words >> word;) tokens.push_back(word);
    if (tokens.empty()) continue;

    const std::string& head = tokens[0];
    if (head == "kernel") {
      if (tokens.size() != 2) parse_fail(line_no, "kernel <name>");
      kernel.name = tokens[1];
    } else if (head == "width") {
      if (tokens.size() != 2) parse_fail(line_no, "width <w>");
      kernel.width = static_cast<std::uint32_t>(parse_int(tokens[1], line_no));
    } else if (head == "rows") {
      if (tokens.size() != 2) parse_fail(line_no, "rows <r>");
      kernel.rows = static_cast<std::uint64_t>(parse_int(tokens[1], line_no));
    } else if (head == "var") {
      if (tokens.size() != 3) parse_fail(line_no, "var <name> <count>");
      if (!kernel.sites.empty()) {
        parse_fail(line_no, "declare all variables before the first site");
      }
      kernel.vars.push_back(
          {tokens[1],
           static_cast<std::uint64_t>(parse_int(tokens[2], line_no))});
    } else if (head == "barrier") {
      if (tokens.size() != 1) {
        parse_fail(line_no, "barrier takes no arguments");
      }
      kernel.barriers.push_back(kernel.sites.size());
    } else if (head == "site") {
      if (tokens.size() < 4) {
        parse_fail(line_no, "site <name> <load|store|atomic> <flat|row> ...");
      }
      AccessSite site;
      site.name = tokens[1];
      // The warp attribute's value is a variable NAME, so pull it out
      // before parse_terms (which reads integer values only).
      for (std::size_t t = 4; t < tokens.size();) {
        if (tokens[t].rfind("warp=", 0) == 0) {
          if (!site.warp.empty()) {
            parse_fail(line_no, "duplicate 'warp' attribute");
          }
          site.warp = tokens[t].substr(5);
          if (kernel.var_index(site.warp) == kernel.vars.size()) {
            parse_fail(line_no, "unknown warp variable '" + site.warp + "'");
          }
          tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(t));
        } else {
          ++t;
        }
      }
      if (tokens[2] == "load") {
        site.dir = AccessDir::kLoad;
      } else if (tokens[2] == "store") {
        site.dir = AccessDir::kStore;
      } else if (tokens[2] == "atomic") {
        site.dir = AccessDir::kAtomic;
      } else {
        parse_fail(line_no, "direction must be load, store or atomic");
      }
      std::size_t pos = 4;
      std::vector<std::pair<std::string, std::int64_t>> options;
      if (tokens[3] == "flat") {
        site.form = IndexForm::kFlat;
        parse_terms(kernel, tokens, pos, line_no, site.flat, {}, &options);
      } else if (tokens[3] == "row") {
        site.form = IndexForm::kRowCol;
        parse_terms(kernel, tokens, pos, line_no, site.row, {"col"},
                    &options);
        if (pos >= tokens.size() || tokens[pos] != "col") {
          parse_fail(line_no, "row form needs a 'col' section");
        }
        ++pos;  // consume "col"
        parse_terms(kernel, tokens, pos, line_no, site.col, {}, &options);
      } else {
        parse_fail(line_no, "index form must be 'flat' or 'row'");
      }
      for (const auto& [key, value] : options) {
        if (key == "mod") {
          if (site.form != IndexForm::kRowCol) {
            parse_fail(line_no, "'mod' only applies to the row form");
          }
          site.row_mod = static_cast<std::uint64_t>(value);
        } else if (key == "base") {
          if (site.form != IndexForm::kRowCol) {
            parse_fail(line_no, "'base' only applies to the row form");
          }
          site.row_base = value;
        } else if (key == "lanes") {
          site.lanes = static_cast<std::uint32_t>(value);
        }
      }
      kernel.sites.push_back(std::move(site));
    } else {
      parse_fail(line_no, "unknown directive '" + head + "'");
    }
  }

  if (kernel.name.empty()) {
    throw std::invalid_argument("kernel text: missing 'kernel <name>' line");
  }
  const auto errors = validate_kernel(kernel);
  if (!errors.empty()) {
    throw std::invalid_argument("kernel '" + kernel.name +
                                "' is invalid: " + errors.front());
  }
  return kernel;
}

}  // namespace rapsim::analyze
