// Whole-kernel symbolic congestion passes (static analysis, pillar 3).
//
// For every access site of a KernelDesc, close over ALL bindings of the
// loop variables (warps included) and certify the worst one — without
// enumerating the binding cross product. Two facts make that possible:
//
//   1. INTERVAL: an affine index's minimum and maximum over a box of
//      bindings are attained at per-variable extremes, so out-of-bounds
//      accesses are decided in O(#vars).
//   2. STRIDE LATTICE: every scheme's bank function is periodic in the
//      flat address with period w^2 (RAW: a mod w; PAD: (a/w + a) mod w;
//      RAS/RAP: the shift depends on the row residue mod w and the
//      column). For a fixed site the lane stride is fixed, so two
//      bindings whose base addresses agree mod w^2 produce warp traces
//      with IDENTICAL bank behaviour — under every draw of a randomized
//      scheme. The reachable base residues form a small sumset computed
//      by dynamic programming over the loop variables (each variable
//      contributes at most period = w^2 / gcd(coeff, w^2) distinct
//      residues), and one representative binding per residue class is
//      proven with the per-warp rules of analyze/certificate.hpp.
//
// Sites the affine language cannot express (IndexForm::kOpaque) fall
// back to bounded enumeration of the bindings, deduplicated by trace;
// past kEnumerationCap bindings the pass samples deterministically and
// downgrades exact claims to expected-upper (never claims exhaustive
// coverage it does not have).
//
// The result reports, per site, the certificate of the worst binding,
// the binding itself (the "worst-warp witness"), and coverage metadata;
// per kernel, the worst site. tests/differential_kernel_test.cpp checks
// every built-in kernel description against the DMM simulator.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analyze/certificate.hpp"
#include "analyze/kernelir.hpp"
#include "core/mapping.hpp"

namespace rapsim::analyze {

/// How a site's bindings were covered.
enum class Coverage {
  kSymbolic,     // residue-lattice closure: exact over ALL bindings
  kEnumerated,   // every binding materialized (opaque sites, small nests)
  kSampled,      // binding count exceeded the cap; deterministic sample
};

[[nodiscard]] const char* coverage_name(Coverage coverage) noexcept;

/// Bindings past this product are sampled instead of enumerated (opaque
/// sites only — affine sites never enumerate the cross product).
inline constexpr std::uint64_t kEnumerationCap = 4096;

struct SiteAnalysis {
  std::string site;                 // AccessSite::name
  AccessDir dir = AccessDir::kLoad;
  CongestionCertificate cert;       // worst binding's certificate
  /// The binding attaining the worst bound: one (variable, value) pair
  /// per kernel loop variable, in declaration order.
  std::vector<std::pair<std::string, std::uint64_t>> witness;
  std::vector<std::uint64_t> witness_trace;  // that binding's warp trace
  Coverage coverage = Coverage::kSymbolic;
  std::uint64_t binding_count = 0;     // bindings closed over
  std::uint64_t classes_analyzed = 0;  // residue classes / distinct traces
  bool out_of_bounds = false;          // some binding leaves the memory
  std::int64_t address_low = 0;        // address interval (diagnostics)
  std::int64_t address_high = 0;
};

struct KernelAnalysis {
  std::string kernel;
  std::uint32_t width = 0;
  std::uint64_t rows = 0;
  core::Scheme scheme = core::Scheme::kRaw;
  std::vector<SiteAnalysis> sites;      // aligned with KernelDesc::sites
  /// Worst site's certificate; exact only if every site's is (a max of
  /// expected bounds is itself only an expected claim — the same
  /// convention as prove_worst_warp).
  CongestionCertificate worst;
  std::size_t worst_site = 0;
  bool any_out_of_bounds = false;
};

/// Analyze one site. Throws std::invalid_argument on an invalid kernel
/// or an unsupported scheme (the passes cover the 2-D family:
/// kRaw, kPad, kRas, kRap).
[[nodiscard]] SiteAnalysis analyze_site(const KernelDesc& kernel,
                                        const AccessSite& site,
                                        core::Scheme scheme);

/// Analyze every site and aggregate the whole-kernel worst-warp claim.
[[nodiscard]] KernelAnalysis analyze_kernel(const KernelDesc& kernel,
                                            core::Scheme scheme);

/// Materialize up to `max_traces` distinct in-bounds warp traces across
/// the kernel's sites (one per residue class for affine sites, the worst
/// witness for opaque ones). This is the bridge to trace-based consumers:
/// the advisor scores these traces against concrete mappings while the
/// passes certify the closure they were drawn from.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> enumerate_warp_traces(
    const KernelDesc& kernel, std::size_t max_traces = 256);

}  // namespace rapsim::analyze
