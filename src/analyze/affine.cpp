#include "analyze/affine.hpp"

#include <sstream>

namespace rapsim::analyze {

const char* affine_kind_name(AffineKind kind) noexcept {
  switch (kind) {
    case AffineKind::kEmpty: return "empty";
    case AffineKind::kConstant: return "constant";
    case AffineKind::kAffine2d: return "affine-2d";
    case AffineKind::kAffine1d: return "affine-1d";
    case AffineKind::kNotAffine: return "not-affine";
  }
  return "?";
}

std::string AffineClass::describe() const {
  std::ostringstream out;
  switch (kind) {
    case AffineKind::kEmpty:
      out << "empty warp";
      break;
    case AffineKind::kConstant:
      out << "constant: a(t) = " << base;
      break;
    case AffineKind::kAffine2d:
      out << "2-D affine: (i, j)(t) = (" << row0 << " + " << row_step
          << "*t, (" << col0 << " + " << col_step << "*t) mod " << width
          << ")";
      break;
    case AffineKind::kAffine1d:
      out << "1-D affine: a(t) = (" << base << " + " << stride << "*t) mod "
          << size;
      break;
    case AffineKind::kNotAffine:
      out << "not affine: " << reason;
      break;
  }
  return out.str();
}

namespace {

/// Reject helper: everything else about the class is left defaulted.
AffineClass rejected(std::uint32_t width, std::uint64_t size,
                     std::size_t threads, std::string reason) {
  AffineClass cls;
  cls.kind = AffineKind::kNotAffine;
  cls.width = width;
  cls.size = size;
  cls.threads = threads;
  cls.reason = std::move(reason);
  return cls;
}

/// Try (i, j)(t) = (row0 + row_step*t, (col0 + col_step*t) mod w). Rows
/// are exact integers; columns wrap. Returns false when any consecutive
/// difference breaks the form.
bool match_affine_2d(std::span<const std::uint64_t> trace,
                     std::uint32_t width, AffineClass& cls) {
  const auto row = [&](std::size_t t) {
    return static_cast<std::int64_t>(trace[t] / width);
  };
  const auto col = [&](std::size_t t) {
    return static_cast<std::uint32_t>(trace[t] % width);
  };
  const std::int64_t row_step = row(1) - row(0);
  const std::uint32_t col_step = (col(1) + width - col(0)) % width;
  for (std::size_t t = 2; t < trace.size(); ++t) {
    if (row(t) - row(t - 1) != row_step) return false;
    if ((col(t) + width - col(t - 1)) % width != col_step) return false;
  }
  cls.kind = AffineKind::kAffine2d;
  cls.row0 = trace[0] / width;
  cls.col0 = col(0);
  cls.row_step = row_step;
  cls.col_step = col_step;
  return true;
}

/// Try a(t) = (base + stride*t) mod size with one canonical stride.
bool match_affine_1d(std::span<const std::uint64_t> trace, std::uint64_t size,
                     AffineClass& cls) {
  const auto diff = [&](std::size_t t) {
    return (trace[t] + size - trace[t - 1]) % size;
  };
  const std::uint64_t stride = diff(1);
  for (std::size_t t = 2; t < trace.size(); ++t) {
    if (diff(t) != stride) return false;
  }
  cls.kind = AffineKind::kAffine1d;
  cls.base = trace[0];
  cls.stride = stride;
  return true;
}

}  // namespace

AffineClass classify_warp(std::span<const std::uint64_t> trace,
                          std::uint32_t width, std::uint64_t size) {
  if (width == 0 || size == 0 || size % width != 0) {
    return rejected(width, size, trace.size(),
                    "geometry must have width > 0 and size a multiple of "
                    "width");
  }
  AffineClass cls;
  cls.width = width;
  cls.size = size;
  cls.threads = trace.size();

  if (trace.empty()) {
    cls.kind = AffineKind::kEmpty;
    return cls;
  }
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (trace[t] >= size) {
      std::ostringstream why;
      why << "address " << trace[t] << " at lane " << t
          << " is outside the " << size << "-word memory";
      return rejected(width, size, trace.size(), why.str());
    }
  }

  bool constant = true;
  for (std::size_t t = 1; t < trace.size() && constant; ++t) {
    constant = trace[t] == trace[0];
  }
  if (constant) {
    cls.kind = AffineKind::kConstant;
    cls.base = trace[0];
    return cls;
  }

  // 2-D first: it subsumes some 1-D streams (stride-w flat access IS
  // column access) and carries the row trajectory the prover needs.
  if (match_affine_2d(trace, width, cls)) return cls;
  if (match_affine_1d(trace, size, cls)) return cls;

  // Pinpoint the first lane whose difference breaks the 1-D form — the
  // most common reject and the most useful thing to tell the user.
  const std::uint64_t first_diff = (trace[1] + size - trace[0]) % size;
  std::size_t breaker = 2;
  while (breaker < trace.size() &&
         (trace[breaker] + size - trace[breaker - 1]) % size == first_diff) {
    ++breaker;
  }
  std::ostringstream why;
  why << "difference at lane " << breaker << " ("
      << (trace[breaker] + size - trace[breaker - 1]) % size
      << ") breaks the initial stride " << first_diff
      << "; stream is neither 1-D nor 2-D affine";
  return rejected(width, size, trace.size(), why.str());
}

}  // namespace rapsim::analyze
